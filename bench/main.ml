(* Benchmark harness: regenerates every experiment of DESIGN.md's
   per-experiment index. The paper (PODC 2014) is a theory paper with no
   measurement tables, so each "experiment" reproduces the shape of a
   theorem: who wins, by what order of growth, and where the frontier
   lies. Sections print machine-checkable tables; a final Bechamel pass
   times the main moving parts. *)

module LB = Ld_core.Lower_bound
module Pool = Ld_core.Pool
module Obs = Ld_obs.Obs
module Provenance = Ld_obs.Provenance
module Trace = Ld_obs.Trace
module Summary = Ld_obs.Summary
module Theorem = Ld_core.Theorem
module Sim = Ld_core.Simulate
module Packing = Ld_matching.Packing
module Po_packing = Ld_matching.Po_packing
module Mm_ec = Ld_matching.Mm_ec
module II = Ld_matching.Israeli_itai
module PR = Ld_matching.Panconesi_rizzi
module Fm = Ld_fm.Fm
module Maximum = Ld_fm.Maximum
module Greedy = Ld_fm.Greedy
module Ec = Ld_models.Ec
module Id = Ld_models.Labelled.Id
module G = Ld_graph.Graph
module Gen = Ld_graph.Generators
module Q = Ld_arith.Q
module Colouring = Ld_models.Edge_colouring
module Refinement = Ld_cover.Refinement

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let row fmt = Printf.printf fmt

(* One clock for everything: sections are [bench.section.*] spans on the
   Ld_obs monotonic clock, so the JSON section timings and the Chrome
   trace agree by construction.

   Each section additionally meters itself: counters are snapshot-diffed
   around the body (the global counters stay cumulative — the top-level
   "metrics" object and the CI guards reading it are untouched), and
   latency histograms are reset at section entry so the quantiles a
   section reports are its own, not the tail of the section before. *)
type section_stats = {
  s_name : string;
  s_wall_ms : float;
  s_counters : (string * int) list; (* increments during the section *)
  s_latency : Ld_obs.Hist.snapshot list;
}

let section_log : section_stats list ref = ref []

let now_ms = Obs.now_ms

let timed name f =
  let before = Obs.Counter.snapshot_all () in
  Ld_obs.Hist.reset_all ();
  let t0 = now_ms () in
  let v = Obs.with_span ("bench.section." ^ name) f in
  let wall = now_ms () -. t0 in
  section_log :=
    {
      s_name = name;
      s_wall_ms = wall;
      s_counters = Obs.Counter.diff before (Obs.Counter.snapshot_all ());
      s_latency = Ld_obs.Hist.snapshots ();
    }
    :: !section_log;
  v

(* ------------------------------------------------------------------ *)
(* THM1: the lower-bound frontier. For each Δ, the adversary certifies
   levels 0..Δ-2 against the real O(Δ) algorithm, while r-round
   truncations are refuted — max certified level = min(r-2, Δ-2).

   Each Δ is one independent task for the domain pool: build the memo
   cache (one full adversary run against the greedy), then replay the
   cached construction against every truncation instead of rebuilding
   Θ(Δ) constructions per scan. Results join in submission order, so
   the printed table is identical to the sequential one. *)

type thm1_row = {
  t_delta : int;
  t_levels : int;
  t_frontier : int;
  t_wall_ms : float;
  t_refine_rounds : int;
  t_descriptors : int;
  t_cache : LB.cache option;
}

(* Only COST (cost_delta) and LOCALITY (deltas 3..7) replay a row's
   cache after the THM1 table; every other cache is dropped as soon as
   its row is done. The large-delta caches dominate the live heap
   (Δ=20 alone holds hundreds of MB of probe outputs), and retaining
   all of them poisons every later section with major-GC pressure. *)
let keep_cache delta = (delta >= 3 && delta <= 7) || delta = 12

let thm1_task ~store delta =
  let t0 = now_ms () in
  (* Refinement stats are kept per domain, so this delta between
     snapshots meters exactly this task's view checks even when several
     rows run on different pool domains at once. *)
  let r0 = Refinement.Stats.current () in
  (* With --store, a populated store turns this into pure I/O: the
     construction is reassembled from its per-level records and no
     adversary runs (store.hits counts the records read). *)
  let cache = Ld_core.Cache_store.build_cache ?store ~delta Packing.greedy_algorithm in
  let levels =
    match LB.cache_outcome cache with
    | LB.Certified certs -> List.length certs
    | LB.Refuted _ -> -1
  in
  (* smallest truncation that survives the adversary; the verdict is
     analytic (colour-prefix thresholds) — no probe is re-run and no
     failure witness is materialised *)
  let frontier =
    let rec scan r =
      if r > (2 * delta) + 2 then -1
      else
        match LB.truncated_verdict cache ~rounds:r with
        | `Certified -> r
        | `Refuted -> scan (r + 1)
    in
    scan 0
  in
  let rs = Refinement.Stats.since r0 in
  {
    t_delta = delta;
    t_levels = levels;
    t_frontier = frontier;
    t_wall_ms = now_ms () -. t0;
    t_refine_rounds = rs.Refinement.Stats.rounds;
    t_descriptors = rs.Refinement.Stats.descriptors;
    t_cache = (if keep_cache delta then Some cache else None);
  }

let thm1 ~store ~deltas ~mm_deltas () =
  section "THM1  lower bound vs upper bound (Theorem 1)";
  row "  %-6s %-18s %-22s %-16s\n" "delta" "certified levels" "greedy rounds (upper)"
    "frontier r*";
  let rows = Pool.map (thm1_task ~store) deltas in
  List.iter
    (fun r ->
      (* upper bound: communication rounds of the greedy on its own
         adversary instances = number of colours = delta *)
      let upper = r.t_delta in
      row "  %-6d %-18d %-22d %-16d\n" r.t_delta r.t_levels upper r.t_frontier)
    rows;
  row "  shape: certified = delta-1 levels (0..delta-2); frontier r* = delta;\n";
  row "  both sides linear in delta — the o(delta) regime is empty.\n";
  row "\n  the same adversary vs the greedy MAXIMAL MATCHING (cf. [13]):\n";
  let mm_outcomes =
    Pool.map (fun delta -> (delta, LB.run ~delta (Mm_ec.as_packing_algorithm ()))) mm_deltas
  in
  List.iter
    (fun (delta, outcome) ->
      match outcome with
      | LB.Certified certs ->
        row "    delta=%-3d certified %d levels — greedy matching is also Ω(delta)\n"
          delta (List.length certs)
      | LB.Refuted (_, f) ->
        row "    delta=%-3d REFUTED at %d (unexpected)\n" delta f.LB.fail_level)
    mm_outcomes;
  rows

(* ------------------------------------------------------------------ *)
(* UPPER: rounds of the O(Δ) algorithms vs Δ across graph families. *)

let upper ?(deltas = [ 4; 8; 16; 32 ]) () =
  section "UPPER  rounds of maximal edge packing vs delta";
  row "  %-14s %-7s %-4s %-4s %-14s %-16s\n" "family" "n" "dlt" "k" "greedy rounds"
    "proposal rounds";
  List.iter
    (fun delta ->
      List.iter
        (fun (name, make) ->
          let g = make ~seed:42 ~n:60 ~delta in
          let ec = Colouring.ec_of_simple g in
          let k = Packing.greedy_rounds ec in
          let y = Packing.greedy_by_colour ec in
          let yp, rp = Packing.proposal ec in
          assert (Fm.is_maximal_fm y && Fm.is_maximal_fm yp);
          row "  %-14s %-7d %-4d %-4d %-14d %-16d\n" name (G.n g)
            (G.max_degree g) k k rp)
        [
          ("star", fun ~seed:_ ~n:_ ~delta -> Gen.star delta);
          ("spider", fun ~seed:_ ~n:_ ~delta -> Gen.spider ~delta ~tail:3);
          ( "caterpillar",
            fun ~seed:_ ~n:_ ~delta ->
              Gen.caterpillar ~spine:8 ~legs:(max 1 (delta - 2)) );
          ( "bounded-gnp",
            fun ~seed ~n ~delta -> Gen.random_bounded_degree ~seed n delta );
        ])
    deltas;
  row "  shape: greedy rounds = k <= 2*delta - 1 (exactly the colour count);\n";
  row "  proposal rounds stay within a small multiple of delta.\n"

(* ------------------------------------------------------------------ *)
(* COST: adversary instance growth per level (the 2^i unfolding). *)

(* The construction for [cost_delta] was already built (and memoised)
   by the THM1 fan-out; reuse its outcome instead of a fresh run. *)
let cost ~rows ~cost_delta () =
  section (Printf.sprintf "COST  adversary construction growth (delta = %d)" cost_delta);
  let outcome =
    match List.find_opt (fun r -> r.t_delta = cost_delta) rows with
    | Some { t_cache = Some cache; _ } -> LB.cache_outcome cache
    | Some { t_cache = None; _ } | None ->
      LB.run ~delta:cost_delta Packing.greedy_algorithm
  in
  (match outcome with
  | LB.Certified certs ->
    row "  %-7s %-10s %-10s %-10s %-8s\n" "level" "|G_i|" "|H_i|" "loops(G_i)"
      "colour";
    List.iter
      (fun (c : LB.certificate) ->
        row "  %-7d %-10d %-10d %-10d %-8d\n" c.level (Ec.n c.g_graph)
          (Ec.n c.h_graph)
          (Ec.num_loops c.g_graph)
          c.colour)
      certs
  | LB.Refuted _ -> row "  unexpected refutation\n");
  row "  shape: |G_i| = 2^i — the price of each unfold-and-mix level.\n"

(* ------------------------------------------------------------------ *)
(* APPROX: maximal FM is a 1/2-approximation of maximum weight (§1.2). *)

let approx () =
  section "APPROX  maximal FM weight vs maximum weight (>= 1/2)";
  row "  %-14s %-6s %-5s %-12s %-12s %-8s\n" "family" "n" "dlt" "maximal" "maximum"
    "ratio";
  let families =
    [
      ("path", Gen.path 40);
      ("cycle", Gen.cycle 41);
      ("star", Gen.star 20);
      ("complete", Gen.complete 9);
      ("k5,9", Gen.complete_bipartite 5 9);
      ("grid", Gen.grid 6 7);
      ("hypercube", Gen.hypercube 5);
      ("spider", Gen.spider ~delta:8 ~tail:3);
      ("random d4", Gen.random_bounded_degree ~seed:11 40 4);
      ("random tree", Gen.random_tree ~seed:3 40);
    ]
  in
  List.iter
    (fun (name, g) ->
      let ec = Colouring.ec_of_simple g in
      let y = Packing.greedy_by_colour ec in
      let ratio = Maximum.ratio y in
      assert (Q.compare ratio Q.half >= 0);
      row "  %-14s %-6d %-5d %-12s %-12s %-8s\n" name (G.n g) (G.max_degree g)
        (Q.to_string (Fm.total y))
        (Q.to_string (Maximum.value g))
        (Q.to_string ratio))
    families;
  row "  shape: every ratio >= 1/2, often well above; never below.\n"

(* ------------------------------------------------------------------ *)
(* VC: the vertex-cover application of [3]/[4] — saturated nodes of a
   maximal edge packing 2-approximate the minimum vertex cover. *)

let vc () =
  section "VC  vertex cover from edge packing (2-approximation, [3]/[4])";
  row "  %-14s %-6s %-8s %-8s %-8s\n" "family" "n" "|cover|" "opt" "ratio";
  List.iter
    (fun (name, g) ->
      let ec = Colouring.ec_of_simple g in
      let y = Packing.greedy_by_colour ec in
      let cover = Ld_fm.Vertex_cover.of_fm y in
      assert (Ld_fm.Vertex_cover.is_vertex_cover ec cover);
      let opt = Ld_fm.Vertex_cover.minimum_size g in
      let ratio = Ld_fm.Vertex_cover.approximation_ratio y in
      assert (Q.compare ratio (Q.of_int 2) <= 0);
      row "  %-14s %-6d %-8d %-8d %-8s\n" name (G.n g) (List.length cover) opt
        (Q.to_string ratio))
    [
      ("path", Gen.path 15);
      ("cycle", Gen.cycle 15);
      ("star", Gen.star 10);
      ("complete", Gen.complete 7);
      ("grid", Gen.grid 3 5);
      ("spider", Gen.spider ~delta:6 ~tail:2);
      ("random d3", Gen.random_bounded_degree ~seed:21 16 3);
      ("random tree", Gen.random_tree ~seed:9 16);
    ];
  row "  shape: every cover valid, every ratio <= 2 — so Theorem 1 also\n";
  row "  lower-bounds the canonical distributed 2-approx of vertex cover.\n"

(* ------------------------------------------------------------------ *)
(* BASE: the §1.1 baselines — randomised O(log n) and deterministic
   O(Δ + log* n) maximal matching. *)

let base () =
  section "BASE  maximal matching baselines (§1.1)";
  row "  Israeli-Itai (randomised): rounds vs n at delta=4\n";
  row "  %-8s %-8s\n" "n" "rounds";
  List.iter
    (fun n ->
      let g = Gen.random_bounded_degree ~seed:(n + 3) n 4 in
      let r = II.run ~seed:5 ~max_rounds:10000 (Id.trivial g) in
      assert (II.is_maximal g r);
      row "  %-8d %-8d\n" n r.II.rounds)
    [ 16; 64; 256; 1024; 4096 ];
  row "  shape: rounds grow ~ log n (each x4 in n adds a few rounds).\n\n";
  row "  Panconesi-Rizzi (deterministic): rounds vs delta (n=60) and vs n (delta=4)\n";
  row "  %-10s %-8s %-8s %-8s\n" "delta" "n" "rounds" "cv iters";
  List.iter
    (fun delta ->
      let g = Gen.random_bounded_degree ~seed:7 60 delta in
      let r = PR.run (Id.trivial g) in
      assert (PR.is_maximal g r);
      row "  %-10d %-8d %-8d %-8d\n" (G.max_degree g) 60 r.PR.rounds
        r.PR.cv_iterations)
    [ 2; 4; 8; 16; 24 ];
  List.iter
    (fun n ->
      let g = Gen.random_bounded_degree ~seed:8 n 4 in
      let r = PR.run (Id.trivial g) in
      assert (PR.is_maximal g r);
      row "  %-10d %-8d %-8d %-8d\n" (G.max_degree g) n r.PR.rounds
        r.PR.cv_iterations)
    [ 16; 256; 4096 ];
  row "  shape: linear in delta, almost flat in n (log* through CV iters).\n\n";
  row "  EC greedy matching (§2.1: trivial in EC): rounds = colours\n";
  row "  %-10s %-8s %-8s\n" "delta" "rounds" "maximal";
  List.iter
    (fun delta ->
      let ec = Colouring.ec_of_simple (Gen.spider ~delta ~tail:3) in
      let r = Mm_ec.greedy ec in
      row "  %-10d %-8d %-8b\n" delta r.Mm_ec.rounds (Mm_ec.is_maximal ec r))
    [ 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* SIM: the Section 5 chain measured end to end. *)

let sim () =
  section "SIM  simulation chain EC <= PO <= OI (Section 5)";
  row "  adversary vs PO proposal through EC<=PO (Fig. 8):\n";
  List.iter
    (fun delta ->
      match Theorem.against_po ~delta Po_packing.proposal_algorithm with
      | LB.Certified certs ->
        row "    delta=%-3d certified %d levels\n" delta (List.length certs)
      | LB.Refuted (_, f) ->
        row "    delta=%-3d REFUTED at level %d (unexpected)\n" delta
          f.LB.fail_level)
    [ 3; 4; 5; 6 ];
  row "  adversary vs small-radius OI rules through PO<=OI (Fig. 9):\n";
  List.iter
    (fun rounds ->
      match Theorem.against_oi ~delta:4 (Sim.proposal_rule ~rounds) with
      | LB.Certified certs ->
        row "    oi-rule radius %d: certified %d levels\n" (rounds + 1)
          (List.length certs)
      | LB.Refuted (_, f) ->
        row "    oi-rule radius %d: refuted at level %d (fast => wrong)\n"
          (rounds + 1) f.LB.fail_level)
    [ 0; 1; 2 ];
  row "  simulated OI proposal rule == direct truncated run:\n";
  let g = Ld_models.Po.of_ec (Colouring.ec_of_simple (Gen.spider ~delta:4 ~tail:2)) in
  List.iter
    (fun rounds ->
      let direct, _ = Po_packing.proposal ~truncate:rounds g in
      let simulated = (Sim.po_of_oi (Sim.proposal_rule ~rounds)).Po_packing.run g in
      row "    rounds=%d exact match: %b\n" rounds
        (Ld_fm.Po_fm.equal direct simulated))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* CONTRAST (§1.2): approximation is Θ(log Δ), maximality is Θ(Δ) —
   the gap Theorem 1 establishes, side by side. *)

let contrast () =
  section "CONTRAST  approximate vs maximal fractional matching (§1.2)";
  row "  %-6s %-16s %-16s %-14s\n" "delta" "approx rounds" "maximal rounds"
    "approx ratio";
  List.iter
    (fun delta ->
      let ec = Colouring.ec_of_simple (Gen.spider ~delta ~tail:2) in
      let y, r_approx = Ld_matching.Approx_packing.run ~delta ec in
      assert (Fm.is_fm y);
      let ratio = Maximum.ratio y in
      assert (Q.compare ratio (Q.of_ints 1 4) >= 0);
      row "  %-6d %-16d %-16d %-14s\n" delta r_approx
        (Packing.greedy_rounds ec) (Q.to_string ratio))
    [ 4; 8; 16; 32; 64; 128 ];
  row "  shape: constant-factor approximation needs ~log2(delta)+1 rounds,\n";
  row "  maximality needs delta — the exponential gap Theorem 1 certifies.\n"

(* ------------------------------------------------------------------ *)
(* LOCALITY: Definition (1) measured on the adversary's own probes. *)

let locality ~rows () =
  section "LOCALITY  empirical run-time (Definition (1)) on adversary probes";
  row "  %-6s %-22s %-14s\n" "delta" "measured locality" "forced above";
  let outcome_for delta =
    match List.find_opt (fun r -> r.t_delta = delta) rows with
    | Some { t_cache = Some cache; _ } -> LB.cache_outcome cache
    | Some { t_cache = None; _ } | None ->
      LB.run ~delta Packing.greedy_algorithm
  in
  List.iter
    (fun delta ->
      match outcome_for delta with
      | LB.Refuted _ -> row "  unexpected refutation\n"
      | LB.Certified certs ->
        let probes = Ld_core.Locality.probes_of_certificates certs in
        (match
           Ld_core.Locality.empirical_locality ~max_radius:(delta + 2)
             Packing.greedy_algorithm probes
         with
        | Some t ->
          assert (t > delta - 2);
          row "  %-6d %-22d %-14d\n" delta t (delta - 2)
        | None -> row "  %-6d (none within delta+2)\n" delta))
    [ 3; 4; 5; 6; 7 ];
  row "  shape: the certificates force the measured locality above delta-2\n";
  row "  at every delta — Definition (1), observed rather than assumed.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel timings for the moving parts. *)

let bechamel_pass () =
  section "TIMING  Bechamel micro-benchmarks";
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"adversary delta=8 (greedy)"
        (Staged.stage (fun () ->
             ignore (LB.run ~check_views:false ~delta:8 Packing.greedy_algorithm)));
      Test.make ~name:"adversary delta=8 (+view checks)"
        (Staged.stage (fun () ->
             ignore (LB.run ~check_views:true ~delta:8 Packing.greedy_algorithm)));
      Test.make ~name:"greedy packing, spider delta=16"
        (Staged.stage
           (let ec = Colouring.ec_of_simple (Gen.spider ~delta:16 ~tail:3) in
            fun () -> ignore (Packing.greedy_by_colour ec)));
      Test.make ~name:"proposal packing, spider delta=16"
        (Staged.stage
           (let ec = Colouring.ec_of_simple (Gen.spider ~delta:16 ~tail:3) in
            fun () -> ignore (Packing.proposal ec)));
      Test.make ~name:"refinement radius=10, n=2048"
        (Staged.stage
           (let tree = Gen.random_tree ~seed:1 2048 in
            let ec = Colouring.ec_of_simple tree in
            fun () -> ignore (Ld_cover.Refinement.refine_ec ec ~rounds:10)));
      Test.make ~name:"panconesi-rizzi n=256 delta=4"
        (Staged.stage
           (let g = Gen.random_bounded_degree ~seed:2 256 4 in
            let idg = Id.trivial g in
            fun () -> ignore (PR.run idg)));
      Test.make ~name:"israeli-itai n=256 delta=4"
        (Staged.stage
           (let g = Gen.random_bounded_degree ~seed:2 256 4 in
            let idg = Id.trivial g in
            fun () -> ignore (II.run ~seed:3 ~max_rounds:10000 idg)));
      Test.make ~name:"maximum FM (hopcroft-karp) n=512"
        (Staged.stage
           (let g = Gen.random_bounded_degree ~seed:4 512 6 in
            fun () -> ignore (Maximum.value g)));
    ]
  in
  let grouped = Test.make_grouped ~name:"linear-delta" ~fmt:"%s %s" tests in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let collected = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ t ] ->
        row "  %-42s %12.0f ns/run\n" name t;
        collected := (name, t) :: !collected
      | _ -> row "  %-42s (no estimate)\n" name)
    results;
  (* Benchmark names are unique Hashtbl keys, so ordering by name is total. *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) !collected

(* ------------------------------------------------------------------ *)
(* Machine-readable dump of the headline experiment: one object per
   THM1 row, the per-section wall clocks, and the Bechamel estimates. *)

let json_escape = Ld_obs.Json.escape

let emit_json ~path ~rows ~timings =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n  \"bench\": \"linear-delta-local THM1 frontier\",\n";
  add "  \"meta\": {\n";
  (* Provenance (HEAD + dirty flag) comes from the shared probe so
     this artefact and BENCH_RUNTIME.json stay schema-identical. *)
  List.iter
    (fun field -> add (Printf.sprintf "    %s,\n" field))
    (Provenance.json_meta_fields (Provenance.capture ()));
  (* the crew [Pool.map] really ran with (LD_DOMAINS and the task-count
     clamp applied), not the unclamped recommendation *)
  add (Printf.sprintf "    \"domains\": %d\n" (Pool.max_workers_used ()));
  add "  },\n";
  add "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      add
        (Printf.sprintf
           "    {\"delta\": %d, \"certified_levels\": %d, \"frontier\": %d, \
            \"wall_ms\": %.3f, \"refine_rounds\": %d, \"descriptors\": %d}%s\n"
           r.t_delta r.t_levels r.t_frontier r.t_wall_ms r.t_refine_rounds
           r.t_descriptors
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  add "  ],\n  \"sections_ms\": {\n";
  let sections = Summary.section_ms ~prefix:"bench.section." in
  List.iteri
    (fun i (name, ms) ->
      add
        (Printf.sprintf "    \"%s\": %.3f%s\n" (json_escape name) ms
           (if i = List.length sections - 1 then "" else ",")))
    sections;
  add "  },\n  \"metrics\": {\n";
  (* Cumulative over the whole run — CI's jq perf guards key on these,
     so they are never reset between sections. *)
  let metrics = Obs.counters () in
  List.iteri
    (fun i (name, v) ->
      add
        (Printf.sprintf "    \"%s\": %d%s\n" (json_escape name) v
           (if i = List.length metrics - 1 then "" else ",")))
    metrics;
  add "  },\n  \"sections\": {\n";
  (* Per-section view: counter increments and latency quantiles scoped
     to the section (histograms reset at entry, counters diffed). *)
  let sections = List.rev !section_log in
  List.iteri
    (fun i s ->
      add (Printf.sprintf "    \"%s\": {\n" (json_escape s.s_name));
      add (Printf.sprintf "      \"wall_ms\": %.3f,\n" s.s_wall_ms);
      add "      \"metrics\": {";
      List.iteri
        (fun j (name, v) ->
          add
            (Printf.sprintf "%s\n        \"%s\": %d"
               (if j = 0 then "" else ",")
               (json_escape name) v))
        s.s_counters;
      add "\n      },\n      \"latency\": {";
      List.iteri
        (fun j (sn : Ld_obs.Hist.snapshot) ->
          add
            (Printf.sprintf
               "%s\n        \"%s\": {\"count\": %d, \"p50_ms\": %.4f, \
                \"p99_ms\": %.4f, \"max_ms\": %.4f}"
               (if j = 0 then "" else ",")
               (json_escape sn.Ld_obs.Hist.sn_name)
               sn.Ld_obs.Hist.sn_count
               (Ld_obs.Hist.quantile_ms sn 0.5)
               (Ld_obs.Hist.quantile_ms sn 0.99)
               (Ld_obs.Hist.max_ms sn)))
        s.s_latency;
      add
        (Printf.sprintf "\n      }\n    }%s\n"
           (if i = List.length sections - 1 then "" else ",")))
    sections;
  add "  },\n  \"timing_ns_per_run\": [\n";
  List.iteri
    (fun i (name, t) ->
      add
        (Printf.sprintf "    {\"name\": \"%s\", \"ns\": %.1f}%s\n"
           (json_escape name) t
           (if i = List.length timings - 1 then "" else ",")))
    timings;
  add "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* Flag parsing kept dependency-free: --quick, --trace FILE (Chrome
   trace-event export), --json FILE (override/enable the JSON artefact;
   the full pass defaults to BENCH_THM1.json, --quick to none),
   --max-delta N (cap the THM1 sweep, default 20), --store DIR (persist
   constructions in the content-addressed store: a second run warm-loads
   them instead of re-running the adversary). *)
let flag_value name =
  let rec scan i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let () =
  let quick = Array.mem "--quick" Sys.argv in
  let trace_path = flag_value "--trace" in
  let json_path = flag_value "--json" in
  let max_delta =
    match flag_value "--max-delta" with
    | None -> 20
    | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 2 -> d
      | _ ->
        Printf.eprintf "bad --max-delta %S (need an int >= 2)\n" s;
        exit 2)
  in
  let store =
    match flag_value "--store" with
    | None -> None
    | Some dir -> Some (Ld_store.Store.open_store ~dir ())
  in
  (* LD_OBS=off leaves the sink disabled end to end: the instrumentation
     overhead check diffs a --quick wall clock with and without it. *)
  (match Sys.getenv_opt "LD_OBS" with
  | Some "off" -> ()
  | _ -> Obs.enable ());
  Printf.printf
    "linear-delta-local benchmark harness\n\
     reproduces: Goos, Hirvonen, Suomela — Linear-in-Delta Lower Bounds in \
     the LOCAL Model (PODC 2014)\n";
  let rows, timings =
    if quick then begin
      (* Smoke pass for CI: the THM1 fan-out (pool + memo cache), the
         UPPER path (greedy + proposal through the active-set runtime)
         and the COST table on small deltas; no Bechamel. *)
      let deltas =
        List.init (Stdlib.min max_delta 6 - 1) (fun i -> i + 2)
      in
      let rows = timed "thm1" (thm1 ~store ~deltas ~mm_deltas:[ 4 ]) in
      timed "upper" (upper ~deltas:[ 4; 8 ]);
      timed "cost" (cost ~rows ~cost_delta:6);
      (rows, [])
    end
    else begin
      let deltas = List.init (max_delta - 1) (fun i -> i + 2) in
      let rows = timed "thm1" (thm1 ~store ~deltas ~mm_deltas:[ 4; 8; 12 ]) in
      timed "upper" (upper ?deltas:None);
      timed "cost" (cost ~rows ~cost_delta:12);
      timed "approx" approx;
      timed "vc" vc;
      timed "base" base;
      timed "sim" sim;
      timed "contrast" contrast;
      timed "locality" (locality ~rows);
      let timings = timed "timing" bechamel_pass in
      (rows, timings)
    end
  in
  let json_target =
    match json_path with
    | Some _ as p -> p
    | None -> if quick then None else Some "BENCH_THM1.json"
  in
  (match json_target with
  | Some path ->
    emit_json ~path ~rows ~timings;
    Printf.printf "\nwrote %s (%d thm1 rows)\n" path (List.length rows)
  | None -> ());
  (match trace_path with
  | Some path ->
    Trace.write ~path;
    Printf.printf "wrote Chrome trace to %s (load in Perfetto; tid = domain)\n"
      path
  | None -> ());
  Printf.printf "\nall benchmark assertions passed.\n"
