(* `ld bench-runtime` — mega-scale throughput bench for the packed
   runtime (BENCH_RUNTIME.json). Streams CSR instances at 10^5..10^7
   nodes straight into int arrays, runs the packed matching workloads
   at 1 and [Pool.default_domains ()] domains, and reports sends/sec,
   rounds/sec, wall time and peak RSS per row. The quick mode (CI
   smoke) keeps only the 10^5 legs plus the packed-vs-packed domain
   identity check.

   Peak RSS is VmHWM: a process-lifetime high-water mark, monotone
   across rows — the figure recorded per row is "peak so far", and the
   [runtime.bench.peak_rss_kb] gauge holds the final maximum. *)

module Csr = Ld_graph.Csr
module Gen = Ld_graph.Generators
module Obs = Ld_obs.Obs
module Provenance = Ld_obs.Provenance
module Pool = Ld_pool.Pool
module Packed = Ld_runtime.Packed
module Packed_ii = Ld_matching.Packed_ii
module Packed_pr = Ld_matching.Packed_pr
module Davies_peck = Ld_matching.Davies_peck

let rss_gauge = Obs.Gauge.make "runtime.bench.peak_rss_kb"

(* Same interned histogram the packed executors record into; reset
   around each measured run so every row reports its own quantiles. *)
let h_round = Ld_obs.Hist.make "runtime.packed.round"

type row = {
  r_workload : string;
  r_algo : string;
  r_n : int;
  r_delta : int;
  r_domains : int;
  r_rounds : int;
  r_sends : int;
  r_wall_ms : float;
  r_rss_kb : int;
  r_round_p50_ms : float;
  r_round_p99_ms : float;
}

let tree_d = 3
let tree_delta = 8
let reg_d = 8
let ii_max_rounds = 100_000

let run_algo ~algo ~domains g =
  match algo with
  | `Ii ->
    let _, stats =
      Packed_ii.run ~domains ~seed:42 ~max_rounds:ii_max_rounds g
    in
    stats
  | `Dp ->
    let _, stats =
      Davies_peck.run ~domains ~seed:42 ~max_rounds:ii_max_rounds g
    in
    stats
  | `Pr ->
    let _, stats = Packed_pr.run ~domains g in
    stats

let algo_name = function `Ii -> "israeli-itai" | `Dp -> "davies-peck" | `Pr -> "panconesi-rizzi"

let measure ~workload ~algo ~domains g =
  let n = g.Csr.n in
  Ld_obs.Hist.reset h_round;
  let t0 = Obs.now_ms () in
  let stats = run_algo ~algo ~domains g in
  let wall = Obs.now_ms () -. t0 in
  let sn = Ld_obs.Hist.snapshot h_round in
  let rss = Option.value ~default:0 (Obs.peak_rss_kb ()) in
  Obs.Gauge.record rss_gauge rss;
  let r =
    {
      r_workload = workload;
      r_algo = algo_name algo;
      r_n = n;
      r_delta = Csr.max_degree g;
      r_domains = domains;
      r_rounds = stats.Packed.rounds;
      r_sends = stats.Packed.sends;
      r_wall_ms = wall;
      r_rss_kb = rss;
      r_round_p50_ms = Ld_obs.Hist.quantile_ms sn 0.5;
      r_round_p99_ms = Ld_obs.Hist.quantile_ms sn 0.99;
    }
  in
  Printf.printf
    "%-14s %-15s n=%-8d domains=%d  rounds=%-4d wall=%8.1fms  %10.0f sends/s  \
     round p50=%.3fms p99=%.3fms\n\
     %!"
    r.r_workload r.r_algo n domains r.r_rounds wall
    (float_of_int r.r_sends /. (wall /. 1000.))
    r.r_round_p50_ms r.r_round_p99_ms;
  r

(* Packed-vs-packed domain identity: the same workload at 1 domain and
   at a forced multi-domain split (par_threshold 0 so small inputs
   split too) must produce identical mates and rounds. *)
let identity_check () =
  let g = Gen.stream_biregular_tree ~d:tree_d ~delta:tree_delta 100_000 in
  let a, _ =
    Packed_ii.run ~domains:1 ~seed:42 ~max_rounds:ii_max_rounds g
  in
  let b, _ =
    Packed_ii.run ~par_threshold:0 ~domains:4 ~seed:42
      ~max_rounds:ii_max_rounds g
  in
  a.Packed_ii.mate = b.Packed_ii.mate && a.Packed_ii.rounds = b.Packed_ii.rounds

let json_escape = Ld_obs.Json.escape

let emit_json ~path ~quick ~identical ~rows =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n  \"bench\": \"linear-delta-local packed runtime throughput\",\n";
  add "  \"meta\": {\n";
  List.iter
    (fun field -> add (Printf.sprintf "    %s,\n" field))
    (Provenance.json_meta_fields (Provenance.capture ()));
  add (Printf.sprintf "    \"quick\": %b,\n" quick);
  add (Printf.sprintf "    \"default_domains\": %d,\n" (Pool.default_domains ()));
  add (Printf.sprintf "    \"identical\": %b,\n" identical);
  add
    (Printf.sprintf "    \"peak_rss_kb\": %d\n" (Obs.Gauge.value rss_gauge));
  add "  },\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      let secs = r.r_wall_ms /. 1000. in
      add
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"algo\": \"%s\", \"n\": %d, \
            \"delta\": %d, \"domains\": %d, \"rounds\": %d, \"sends\": %d, \
            \"wall_ms\": %.3f, \"sends_per_sec\": %.0f, \
            \"rounds_per_sec\": %.2f, \"peak_rss_kb\": %d, \
            \"round_p50_ms\": %.4f, \"round_p99_ms\": %.4f}%s\n"
           (json_escape r.r_workload) (json_escape r.r_algo) r.r_n r.r_delta
           r.r_domains r.r_rounds r.r_sends r.r_wall_ms
           (float_of_int r.r_sends /. secs)
           (float_of_int r.r_rounds /. secs)
           r.r_rss_kb r.r_round_p50_ms r.r_round_p99_ms
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  add "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let run ~quick ~out =
  Obs.enable ();
  let domain_legs =
    let d = Pool.default_domains () in
    if d > 1 then [ 1; d ] else [ 1 ]
  in
  let tree_sizes = if quick then [ 100_000 ] else [ 100_000; 1_000_000; 10_000_000 ] in
  let reg_sizes = if quick then [ 100_000 ] else [ 100_000; 1_000_000 ] in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  List.iter
    (fun n ->
      let g = Gen.stream_biregular_tree ~d:tree_d ~delta:tree_delta n in
      List.iter
        (fun domains ->
          push (measure ~workload:"biregular-tree" ~algo:`Ii ~domains g);
          push (measure ~workload:"biregular-tree" ~algo:`Dp ~domains g);
          (* PR carries 5+5Δ state words per node: keep it off the
             10^7 leg, where II remains the headline. *)
          if n <= 1_000_000 then
            push (measure ~workload:"biregular-tree" ~algo:`Pr ~domains g))
        domain_legs)
    tree_sizes;
  List.iter
    (fun n ->
      (* stream_regular's configuration-model rejection is hopeless at
         this scale; the permutation-cover family is the O(n d)
         near-regular stand-in. *)
      let g = Gen.stream_perm_regular ~seed:42 n reg_d in
      List.iter
        (fun domains ->
          push (measure ~workload:"perm-regular" ~algo:`Ii ~domains g);
          push (measure ~workload:"perm-regular" ~algo:`Dp ~domains g))
        domain_legs)
    reg_sizes;
  let identical = identity_check () in
  Printf.printf "domain identity (1 vs 4 domains, n=100000): %b\n%!" identical;
  emit_json ~path:out ~quick ~identical ~rows:(List.rev !rows);
  Printf.printf "wrote %s\n" out;
  if identical then 0 else 1
