(* `ld` — command-line front end for the linear-delta-local library.

   Subcommands:
     ld adversary  run the Section 4 lower-bound adversary
     ld pack       run a distributed maximal edge packing
     ld match      run a maximal matching baseline
     ld factor     compute a factor graph and loopiness
     ld order      sort tree addresses by the Appendix A canonical order
     ld stats      run the adversary and print the observability summary
     ld metrics    expose the metric registry in OpenMetrics text format
     ld top        live terminal dashboard over a running workload
     ld serve      certificate service over a length-prefixed JSON socket
     ld load       closed-loop load harness replaying verify requests
     ld bench-diff compare two bench artefacts, fail on regressions
     ld lint       run the determinism/exactness static analyzer

   Every subcommand honours the global --trace FILE (Chrome trace-event
   export of the run, tid = domain) and -v/--verbosity (Logs). *)

open Cmdliner

module LB = Ld_core.Lower_bound
module Packing = Ld_matching.Packing
module Ec = Ld_models.Ec
module G = Ld_graph.Graph
module Gen = Ld_graph.Generators
module Fm = Ld_fm.Fm
module Q = Ld_arith.Q
module Colouring = Ld_models.Edge_colouring
module Id = Ld_models.Labelled.Id
module Obs = Ld_obs.Obs

(* ---- global observability/logging plumbing ----

   [common] carries the --trace target through every subcommand; the
   sink is enabled before the command body runs and the trace file is
   written after it returns (also on nonzero exits). *)

let setup_common trace level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level;
  (match trace with
  | Some _ -> Obs.enable ()
  | None -> ());
  trace

let common_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~docs:Manpage.s_common_options
          ~doc:
            "Record spans and counters and write a Chrome trace-event JSON \
             file to $(docv) (load it in Perfetto; tid = OCaml domain id).")
  in
  Term.(const setup_common $ trace_arg $ Logs_cli.level ())

let with_common trace f =
  let code = f () in
  (match trace with
  | Some path ->
    Ld_obs.Trace.write ~path;
    Logs.app (fun m -> m "wrote Chrome trace to %s" path)
  | None -> ());
  code

let family_conv =
  let parse s =
    if List.mem_assoc s Gen.bench_families then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown family %S (choose from: %s)" s
             (String.concat ", " (List.map fst Gen.bench_families))))
  in
  Arg.conv (parse, Format.pp_print_string)

let make_graph family ~seed ~n ~delta =
  (List.assoc family Gen.bench_families) ~seed ~n ~delta

let family_arg =
  Arg.(value & opt family_conv "spider" & info [ "family" ] ~doc:"Graph family.")

let n_arg = Arg.(value & opt int 30 & info [ "nodes" ] ~doc:"Number of nodes.")
let delta_arg = Arg.(value & opt int 6 & info [ "delta" ] ~doc:"Maximum degree.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let algo_arg =
  Arg.(
    value
    & opt (enum [ ("greedy", `Greedy); ("proposal", `Proposal) ]) `Greedy
    & info [ "algo" ] ~doc:"Packing algorithm: $(b,greedy) or $(b,proposal).")

let truncate_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "truncate" ] ~doc:"Truncate the algorithm to this many rounds.")

(* ---- adversary ---- *)

let adversary common delta algo truncate verbose =
  with_common common @@ fun () ->
  let algorithm =
    match truncate with
    | Some r -> Packing.truncated algo r
    | None -> (
      match algo with
      | `Greedy -> Packing.greedy_algorithm
      | `Proposal -> Packing.proposal_algorithm)
  in
  Logs.info (fun m ->
      m "running Section 4 adversary: delta=%d vs %s" delta
        algorithm.Packing.name);
  Printf.printf "adversary: delta=%d vs %s\n" delta algorithm.Packing.name;
  match LB.run ~delta algorithm with
  | LB.Certified certs ->
    Printf.printf
      "CERTIFIED: %d levels — the algorithm needs more than %d rounds.\n"
      (List.length certs) (delta - 2);
    if verbose then List.iter (Format.printf "%a@." LB.pp_certificate) certs;
    0
  | LB.Refuted (certs, f) ->
    Printf.printf "REFUTED after %d certified levels:\n" (List.length certs);
    Format.printf "%a@." LB.pp_failure f;
    if verbose then Format.printf "graph: %a@." Ec.pp f.LB.fail_graph;
    0

let adversary_cmd =
  (* [-v] now belongs to the global Logs verbosity. *)
  let verbose =
    Arg.(value & flag & info [ "certificates" ] ~doc:"Print every certificate.")
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:"Run the Section 4 unfold-and-mix lower-bound adversary.")
    Term.(
      const adversary $ common_term $ delta_arg $ algo_arg $ truncate_arg
      $ verbose)

(* ---- pack ---- *)

let pack common family n delta seed algo truncate =
  with_common common @@ fun () ->
  let g = make_graph family ~seed ~n ~delta in
  let ec = Colouring.ec_of_simple g in
  Printf.printf "%s: n=%d m=%d delta=%d, %d colours\n" family (G.n g) (G.m g)
    (G.max_degree g) (Ec.max_colour ec);
  let y, rounds =
    match algo with
    | `Greedy ->
      let r =
        match truncate with
        | Some t -> Stdlib.min t (Packing.greedy_rounds ec)
        | None -> Packing.greedy_rounds ec
      in
      (Packing.greedy_by_colour ?truncate ec, r)
    | `Proposal -> Packing.proposal ?truncate ec
  in
  Printf.printf "rounds=%d total=%s fm=%b maximal=%b ratio=%s\n" rounds
    (Q.to_string (Fm.total y)) (Fm.is_fm y) (Fm.is_maximal_fm y)
    (if G.m g = 0 then "-" else Q.to_string (Ld_fm.Maximum.ratio y));
  0

let pack_cmd =
  Cmd.v
    (Cmd.info "pack" ~doc:"Run a distributed maximal edge packing.")
    Term.(
      const pack $ common_term $ family_arg $ n_arg $ delta_arg $ seed_arg
      $ algo_arg $ truncate_arg)

(* ---- match ---- *)

let match_ common family n delta seed which =
  with_common common @@ fun () ->
  let g = make_graph family ~seed ~n ~delta in
  Printf.printf "%s: n=%d m=%d delta=%d\n" family (G.n g) (G.m g) (G.max_degree g);
  (match which with
  | `Ec ->
    let ec = Colouring.ec_of_simple g in
    let r = Ld_matching.Mm_ec.greedy ec in
    Printf.printf "ec-greedy: rounds=%d size=%d maximal=%b\n" r.rounds
      (List.length r.matched_edges)
      (Ld_matching.Mm_ec.is_maximal ec r)
  | `Ii ->
    let r = Ld_matching.Israeli_itai.run ~seed ~max_rounds:100000 (Id.trivial g) in
    let size =
      Array.fold_left (fun a m -> if m <> None then a + 1 else a) 0 r.mate / 2
    in
    Printf.printf "israeli-itai: rounds=%d size=%d maximal=%b\n" r.rounds size
      (Ld_matching.Israeli_itai.is_maximal g r)
  | `Pr ->
    let r = Ld_matching.Panconesi_rizzi.run (Id.trivial g) in
    let size =
      Array.fold_left (fun a m -> if m <> None then a + 1 else a) 0 r.mate / 2
    in
    Printf.printf "panconesi-rizzi: rounds=%d (cv=%d) size=%d maximal=%b\n"
      r.rounds r.cv_iterations size
      (Ld_matching.Panconesi_rizzi.is_maximal g r));
  0

let match_cmd =
  let which =
    Arg.(
      value
      & opt (enum [ ("ec", `Ec); ("israeli-itai", `Ii); ("panconesi-rizzi", `Pr) ]) `Pr
      & info [ "algo" ] ~doc:"$(b,ec), $(b,israeli-itai) or $(b,panconesi-rizzi).")
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Run a maximal matching baseline.")
    Term.(
      const match_ $ common_term $ family_arg $ n_arg $ delta_arg $ seed_arg
      $ which)

(* ---- factor ---- *)

let factor common family n delta seed =
  with_common common @@ fun () ->
  let g = make_graph family ~seed ~n ~delta in
  let ec = Colouring.ec_of_simple g in
  let fg, _ = Ld_cover.Factor.factor ec in
  Format.printf "graph: n=%d, factor graph:@.%a@." (G.n g) Ec.pp fg;
  Printf.printf "loopiness (Definition 1): %d\n" (Ld_cover.Loopy.loopiness ec);
  0

let factor_cmd =
  Cmd.v
    (Cmd.info "factor" ~doc:"Compute the factor graph and loopiness.")
    Term.(const factor $ common_term $ family_arg $ n_arg $ delta_arg $ seed_arg)

(* ---- order ---- *)

let order_demo common words =
  with_common common @@ fun () ->
  let module O = Ld_order.Tree_order in
  let parse w =
    (* e.g. "+1-2+3": alternating sign and colour *)
    let rec go i acc =
      if i >= String.length w then List.rev acc
      else begin
        let fwd =
          match w.[i] with
          | '+' -> true
          | '-' -> false
          | _ -> invalid_arg "address syntax: use e.g. +1-2+3"
        in
        let j = ref (i + 1) in
        while !j < String.length w && w.[!j] >= '0' && w.[!j] <= '9' do
          incr j
        done;
        let colour = int_of_string (String.sub w (i + 1) (!j - i - 1)) in
        go !j ({ O.fwd; colour } :: acc)
      end
    in
    O.normalize (go 0 [])
  in
  let addresses = List.map parse words in
  let sorted = O.sort_nodes addresses in
  Format.printf "canonical order:@.";
  List.iter (fun a -> Format.printf "  %a@." O.pp a) sorted;
  0

let order_cmd =
  let words =
    Arg.(
      value
      & pos_all string [ "+1"; "-1"; "+2"; "-2"; "+1+2"; "+1-2"; "" ]
      & info [] ~docv:"ADDR" ~doc:"Tree addresses like $(b,+1-2+3).")
  in
  Cmd.v
    (Cmd.info "order"
       ~doc:"Sort tree addresses by the Appendix A canonical order.")
    Term.(const order_demo $ common_term $ words)

(* ---- report ---- *)

let report common delta algo truncate output =
  with_common common @@ fun () ->
  let algorithm =
    match truncate with
    | Some r -> Packing.truncated algo r
    | None -> (
      match algo with
      | `Greedy -> Packing.greedy_algorithm
      | `Proposal -> Packing.proposal_algorithm)
  in
  let outcome = LB.run ~delta algorithm in
  let doc =
    Ld_core.Report.markdown ~delta ~algorithm_name:algorithm.Packing.name outcome
  in
  (match output with
  | None -> print_string doc
  | Some path ->
    let oc = open_out path in
    output_string oc doc;
    close_out oc;
    Printf.printf "report written to %s\n" path);
  0

let report_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the Markdown report to this file.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a full adversary run as a Markdown report.")
    Term.(
      const report $ common_term $ delta_arg $ algo_arg $ truncate_arg $ output)

(* ---- dot ---- *)

let dot common family n delta seed kind =
  with_common common @@ fun () ->
  let g = make_graph family ~seed ~n ~delta in
  (match kind with
  | `Simple -> print_string (Ld_models.Dot.simple g)
  | `Ec -> print_string (Ld_models.Dot.ec (Colouring.ec_of_simple g))
  | `Po ->
    print_string (Ld_models.Dot.po (Ld_models.Po.of_ec (Colouring.ec_of_simple g)))
  | `Factor ->
    let fg, _ = Ld_cover.Factor.factor (Colouring.ec_of_simple g) in
    print_string (Ld_models.Dot.ec fg));
  0

let dot_cmd =
  let kind =
    Arg.(
      value
      & opt
          (enum
             [ ("simple", `Simple); ("ec", `Ec); ("po", `Po); ("factor", `Factor) ])
          `Ec
      & info [ "as" ] ~doc:"$(b,simple), $(b,ec), $(b,po) or $(b,factor).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz DOT for a generated graph.")
    Term.(
      const dot $ common_term $ family_arg $ n_arg $ delta_arg $ seed_arg $ kind)

(* ---- certify / verify ---- *)

let certify common delta algo output =
  with_common common @@ fun () ->
  let algorithm =
    match algo with
    | `Greedy -> Packing.greedy_algorithm
    | `Proposal -> Packing.proposal_algorithm
  in
  match LB.run ~delta algorithm with
  | LB.Refuted (_, f) ->
    Format.printf "cannot certify: %a@." LB.pp_failure f;
    1
  | LB.Certified certs ->
    Ld_core.Certificate_io.save output certs;
    Printf.printf "%d certificates (delta=%d, %s) written to %s\n"
      (List.length certs) delta algorithm.Packing.name output;
    0

let certify_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Certificate file to write.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Run the adversary and export the certificate chain to a file.")
    Term.(const certify $ common_term $ delta_arg $ algo_arg $ output)

let verify common delta algo input =
  with_common common @@ fun () ->
  let algorithm =
    match algo with
    | Some `Greedy -> Some Packing.greedy_algorithm
    | Some `Proposal -> Some Packing.proposal_algorithm
    | None -> None
  in
  let certs = Ld_core.Certificate_io.load input in
  let checks = Ld_core.Certificate_io.verify ?algorithm ~delta certs in
  List.iter (Format.printf "  %a@." Ld_core.Certificate_io.pp_check) checks;
  if List.for_all Ld_core.Certificate_io.check_ok checks then begin
    Printf.printf
      "VERIFIED: %d levels — any algorithm producing these outputs needs \
       more than %d rounds.\n"
      (List.length checks)
      (List.fold_left (fun a c -> max a c.Ld_core.Certificate_io.chk_level) (-1) checks);
    0
  end
  else begin
    Printf.printf "verification FAILED\n";
    1
  end

let verify_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Certificate file to check.")
  in
  let algo_opt =
    Arg.(
      value
      & opt (some (enum [ ("greedy", `Greedy); ("proposal", `Proposal) ])) None
      & info [ "algo" ]
          ~doc:"Also re-run this algorithm and compare the claimed outputs.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Independently re-verify a certificate file from scratch.")
    Term.(const verify $ common_term $ delta_arg $ algo_opt $ input)

(* ---- stats ---- *)

let stats common delta algo frontier tree level json =
  (* The summary needs the sink on even without --trace. *)
  Obs.enable ();
  with_common common @@ fun () ->
  let base_algo =
    match algo with
    | `Greedy -> Packing.greedy_algorithm
    | `Proposal -> Packing.proposal_algorithm
  in
  Logs.info (fun m ->
      m "stats: delta=%d algo=%s frontier=%b" delta base_algo.Packing.name
        frontier);
  let cache = LB.build_cache ~delta base_algo in
  let outcome = LB.cache_outcome cache in
  if not json then
    (match outcome with
    | LB.Certified certs ->
      Printf.printf "adversary: delta=%d vs %s — CERTIFIED %d levels\n" delta
        base_algo.Packing.name (List.length certs)
    | LB.Refuted (certs, f) ->
      Printf.printf
        "adversary: delta=%d vs %s — REFUTED at level %d (%d certified)\n"
        delta base_algo.Packing.name f.LB.fail_level (List.length certs));
  if frontier then begin
    (* Replay the memoised construction against every truncation, as the
       bench's frontier scan does — analytically when the base is greedy
       (colour-prefix thresholds, no algorithm re-runs), by re-running
       probes otherwise. The memo counters below show the hit/refute
       behaviour either way. *)
    let rec scan r =
      if r > (2 * delta) + 2 then None
      else
        let verdict =
          match algo with
          | `Greedy -> LB.truncated_verdict cache ~rounds:r
          | `Proposal -> (
            match LB.cached_run cache (Packing.truncated `Proposal r) with
            | LB.Certified _ -> `Certified
            | LB.Refuted _ -> `Refuted)
        in
        match verdict with
        | `Certified -> Some r
        | `Refuted -> scan (r + 1)
    in
    match scan 0 with
    | Some r ->
      if not json then
        Printf.printf "frontier: smallest surviving truncation r* = %d\n" r
    | None ->
      if not json then
        Printf.printf "frontier: no truncation survives within 2*delta+2\n"
  end;
  if json then begin
    (* One top-level object: the adversary outcome plus the whole
       span/counter/histogram summary, machine-readable. *)
    let outcome_str, levels =
      match outcome with
      | LB.Certified certs -> ("certified", List.length certs)
      | LB.Refuted (certs, _) -> ("refuted", List.length certs)
    in
    Printf.printf
      "{\n\"delta\": %d,\n\"algo\": \"%s\",\n\"outcome\": \"%s\",\n\
       \"certified_levels\": %d,\n\"summary\": %s}\n"
      delta
      (Ld_obs.Json.escape base_algo.Packing.name)
      outcome_str levels
      (Ld_obs.Summary.to_json ())
  end
  else begin
    Printf.printf "\n";
    (match level with
    | Some i -> Format.printf "%a@." (Ld_obs.Summary.pp_level ~level:i) ()
    | None -> Format.printf "%a@." Ld_obs.Summary.pp ());
    if tree then Format.printf "%a@." Ld_obs.Summary.pp_tree ()
  end;
  0

let stats_cmd =
  let frontier =
    Arg.(
      value & opt bool true
      & info [ "frontier" ]
          ~doc:"Also replay the memoised frontier scan (exercises the cache).")
  in
  let tree =
    Arg.(
      value & flag
      & info [ "tree" ] ~doc:"Print the span tree of the main domain as well.")
  in
  let level =
    Arg.(
      value
      & opt (some int) None
      & info [ "level" ]
          ~doc:
            "Restrict the span table to one adversary level: only spans \
             inside the core.lb.level span carrying this level index \
             (probe fan-out included).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object (outcome, spans, counters, gauges, \
             histogram quantiles) instead of the text tables.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the adversary with the observability sink enabled and print \
          the span/counter summary table.")
    Term.(
      const stats $ common_term $ delta_arg $ algo_arg $ frontier $ tree
      $ level $ json)

(* ---- metrics ---- *)

let algorithm_of = function
  | `Greedy -> Packing.greedy_algorithm
  | `Proposal -> Packing.proposal_algorithm

let metrics common delta algo serve loop =
  Obs.enable ();
  with_common common @@ fun () ->
  let algorithm = algorithm_of algo in
  let run_workload () = ignore (LB.run ~delta algorithm : LB.outcome) in
  match serve with
  | None ->
    run_workload ();
    print_string (Ld_obs.Openmetrics.render ());
    0
  | Some port ->
    (* Long-running exporter: keep the numeric instruments recording
       but stop span events so buffers don't grow without bound. *)
    Obs.set_span_recording false;
    run_workload ();
    if loop then
      ignore
        (Domain.spawn (fun () ->
             while true do
               run_workload ()
             done)
          : unit Domain.t);
    Logs.app (fun m ->
        m "serving OpenMetrics on http://127.0.0.1:%d/metrics" port);
    Ld_obs.Openmetrics.serve ~port (fun () -> Ld_obs.Openmetrics.render ());
    0

let metrics_cmd =
  let serve =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve" ] ~docv:"PORT"
          ~doc:
            "Serve GET /metrics over HTTP on $(docv) instead of printing \
             one scrape; each scrape re-renders the live registry.")
  in
  let loop =
    Arg.(
      value & flag
      & info [ "loop" ]
          ~doc:
            "With $(b,--serve): keep re-running the adversary workload in \
             a background domain so scrapes see a moving system.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the adversary workload and expose every counter, gauge and \
          latency histogram in OpenMetrics (Prometheus) text format — \
          counters as _total, histograms as cumulative _bucket/_sum/_count \
          families in seconds.")
    Term.(const metrics $ common_term $ delta_arg $ algo_arg $ serve $ loop)

(* ---- top ---- *)

let top common delta algo interval frames =
  Obs.enable ();
  (* Dashboard sampling wants rates and quantiles, not an ever-growing
     event log. *)
  Obs.set_span_recording false;
  with_common common @@ fun () ->
  let algorithm = algorithm_of algo in
  let stop = Atomic.make false in
  let worker =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          ignore (LB.run ~delta algorithm : LB.outcome)
        done)
  in
  let clear = Unix.isatty Unix.stdout in
  let prev = ref (Obs.Counter.snapshot_all ()) in
  let prev_t = ref (Obs.now_ms ()) in
  let lookup snap name =
    match List.assoc_opt name snap with Some v -> v | None -> 0
  in
  for frame = 1 to frames do
    Unix.sleepf interval;
    let now = Obs.Counter.snapshot_all () in
    let t = Obs.now_ms () in
    let dt = Stdlib.max 1e-9 ((t -. !prev_t) /. 1000.) in
    let deltas = Obs.Counter.diff !prev now in
    let rate name = float_of_int (lookup deltas name) /. dt in
    if clear then print_string "\027[2J\027[H";
    Printf.printf "ld top — frame %d/%d  every %.1fs  (delta=%d vs %s)\n"
      frame frames interval delta algorithm.Packing.name;
    let hits = lookup now "core.lb.memo_replay_hits" in
    let probes = lookup now "core.lb.probes" in
    let memo_ratio =
      if hits + probes = 0 then 0.
      else float_of_int hits /. float_of_int (hits + probes)
    in
    Printf.printf
      "  refine rounds/s %10.0f    probes/s %10.0f    sends/s %10.0f\n"
      (rate "cover.refine.rounds")
      (rate "core.lb.probes")
      (rate "runtime.ec.sends" +. rate "runtime.po.sends"
      +. rate "runtime.packed.sends");
    Printf.printf "  memo hit ratio  %10.3f    pool tasks/s %6.0f%s\n"
      memo_ratio
      (rate "core.pool.tasks")
      (match Obs.peak_rss_kb () with
      | Some kb -> Printf.sprintf "    peak RSS %d kB" kb
      | None -> "");
    let lat = Ld_obs.Hist.snapshots () in
    if lat <> [] then begin
      Printf.printf "  %-28s %10s %10s %10s %10s\n" "latency" "count"
        "p50 ms" "p99 ms" "max ms";
      List.iter
        (fun sn ->
          Printf.printf "  %-28s %10d %10.3f %10.3f %10.3f\n"
            sn.Ld_obs.Hist.sn_name sn.Ld_obs.Hist.sn_count
            (Ld_obs.Hist.quantile_ms sn 0.5)
            (Ld_obs.Hist.quantile_ms sn 0.99)
            (Ld_obs.Hist.max_ms sn))
        lat
    end;
    (* Busiest counters this frame, by increment. *)
    let top_deltas =
      List.sort (fun (_, a) (_, b) -> Int.compare b a) deltas
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    (match take 5 top_deltas with
    | [] -> ()
    | busiest ->
      Printf.printf "  busiest counters (+/frame):\n";
      List.iter
        (fun (name, d) -> Printf.printf "    %-40s +%d\n" name d)
        busiest);
    flush stdout;
    prev := now;
    prev_t := t
  done;
  Atomic.set stop true;
  Domain.join worker;
  0

let top_cmd =
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between dashboard frames.")
  in
  let frames =
    Arg.(
      value & opt int 10
      & info [ "frames" ] ~docv:"N" ~doc:"Stop after $(docv) frames.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run the adversary workload on a background domain and sample the \
          metric registry live: refine rounds/s, probe and send rates, \
          memoisation hit ratio, latency quantiles and peak RSS, with \
          per-frame deltas.")
    Term.(const top $ common_term $ delta_arg $ algo_arg $ interval $ frames)

(* ---- bench-diff ---- *)

let bench_diff common old_path new_path tolerance normalize min_wall_ms =
  with_common common @@ fun () ->
  match Ld_obs.Bench_diff.tolerance_of_string tolerance with
  | None ->
    Printf.eprintf
      "ld bench-diff: bad --tolerance %S (expected e.g. 1.5x, > 1)\n"
      tolerance;
    2
  | Some tolerance -> (
    match
      Ld_obs.Bench_diff.compare_files ~tolerance ~normalize ~min_wall_ms
        ~old_path ~new_path ()
    with
    | Error e ->
      Printf.eprintf "ld bench-diff: %s\n" e;
      2
    | Ok report ->
      print_string (Ld_obs.Bench_diff.render report);
      Ld_obs.Bench_diff.exit_code report)

let bench_diff_cmd =
  let old_path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench artefact (JSON).")
  in
  let new_path =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench artefact (JSON).")
  in
  let tolerance =
    Arg.(
      value & opt string "1.5x"
      & info [ "tolerance" ] ~docv:"RATIO"
          ~doc:
            "Fail when new wall time exceeds old by more than this factor \
             (e.g. $(b,1.5x)).")
  in
  let normalize =
    Arg.(
      value & flag
      & info [ "normalize" ]
          ~doc:
            "Divide every ratio by the median ratio first: cancels a \
             uniform machine-speed difference between the two runs, keeps \
             selective per-row regressions visible.")
  in
  let min_wall_ms =
    Arg.(
      value & opt float 1.0
      & info [ "min-wall-ms" ] ~docv:"MS"
          ~doc:
            "Ignore rows whose baseline wall time is below $(docv) — too \
             noisy to gate on.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Join two bench artefacts (BENCH_THM1.json / BENCH_RUNTIME.json \
          shape) on their key columns and compare per-row wall time. Exits \
          1 if any compared row regressed beyond the tolerance, 2 if the \
          files cannot be compared at all; rows present in only one file \
          are reported but never fail.")
    Term.(
      const bench_diff $ common_term $ old_path $ new_path $ tolerance
      $ normalize $ min_wall_ms)

(* ---- serve / load ---- *)

let serve common port store_dir no_store max_delta preload metrics_port =
  with_common common @@ fun () ->
  Serve.run ~port ~store_dir ~no_store ~max_delta ~preload ~metrics_port ()

let port_arg =
  Arg.(
    value & opt int 7421
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port on 127.0.0.1.")

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Persistent certificate store directory (default: $(b,LD_STORE), \
           else ~/.cache/ld).")

let serve_cmd =
  let no_store =
    Arg.(
      value & flag
      & info [ "no-store" ]
          ~doc:"Run purely in memory; do not touch the persistent store.")
  in
  let max_delta =
    Arg.(
      value & opt int 20
      & info [ "max-delta" ] ~docv:"DELTA"
          ~doc:"Reject requests above this delta.")
  in
  let preload =
    Arg.(
      value
      & opt (some int) None
      & info [ "preload" ] ~docv:"DELTA"
          ~doc:
            "Before accepting clients, build (or warm-load) the \
             constructions for delta=2..$(docv), fanned out over the \
             domain pool.")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:"Also serve GET /metrics (OpenMetrics) on $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running certificate service: batched probe/verify/frontier \
          requests over a length-prefixed JSON protocol, one shared memo \
          cache across connections, constructions persisted in the \
          content-addressed store so restarts are warm.")
    Term.(
      const serve $ common_term $ port_arg $ store_dir_arg $ no_store
      $ max_delta $ preload $ metrics_port)

let load common port conns batch requests max_delta skew seed quick out
    shutdown =
  with_common common @@ fun () ->
  Load.run ~port ~conns ~batch ~requests ~max_delta ~skew ~seed ~quick ~out
    ~shutdown ()

let load_cmd =
  let conns =
    Arg.(
      value & opt int 8
      & info [ "conns" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Requests per frame.")
  in
  let requests =
    Arg.(
      value & opt int 1_000_000
      & info [ "requests" ] ~docv:"N" ~doc:"Total verify requests to send.")
  in
  let max_delta =
    Arg.(
      value & opt int 8
      & info [ "max-delta" ] ~docv:"DELTA"
          ~doc:"Largest delta in the request mix.")
  in
  let skew =
    Arg.(
      value & opt float 1.0
      & info [ "skew" ] ~docv:"ALPHA"
          ~doc:
            "Key-skew exponent: delta is drawn with weight \
             1/(delta-1)^$(docv); 0 = uniform.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (splitmix64).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"CI smoke: cap at 100k requests over 4 connections.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_SERVE.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the JSON artefact.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Ask the server to exit after the run (CI convenience).")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Closed-loop load harness for $(b,ld serve): replay millions of \
          skewed verification requests over concurrent connections and \
          write throughput, latency quantiles, hit ratios and peak RSS to \
          a bench-diff-joinable JSON artefact.")
    Term.(
      const load $ common_term $ port_arg $ conns $ batch $ requests
      $ max_delta $ skew $ seed $ quick $ out $ shutdown)

(* ---- bench-runtime ---- *)

let bench_runtime common quick out =
  with_common common @@ fun () -> Bench_runtime.run ~quick ~out

let bench_runtime_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"CI smoke: only the $(b,10^5)-node legs plus the domain \
                identity check.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_RUNTIME.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the JSON artefact.")
  in
  Cmd.v
    (Cmd.info "bench-runtime"
       ~doc:
         "Mega-scale packed-runtime throughput bench: streaming CSR \
          instances at $(b,10^5)..$(b,10^7) nodes through the packed \
          matching workloads, reporting sends/sec, rounds/sec, wall time \
          and peak RSS per row. Exits nonzero if the 1-domain and \
          multi-domain runs disagree.")
    Term.(const bench_runtime $ common_term $ quick $ out)

(* ---- lint ---- *)

let lint common json list_rules deep sarif_out cmt_root no_cache store_dir
    paths =
  with_common common @@ fun () ->
  if list_rules then begin
    Format.printf "%a" Ld_lint.Driver.pp_rules ();
    List.iter
      (fun (id, sev, doc) ->
        Format.printf "@[<v 2>%s [%s]@,@[<hov>%a@]@]@.@." id
          (Ld_lint.Diagnostic.severity_to_string sev)
          Format.pp_print_text doc)
      Ld_lint_deep.Deep_driver.rules_meta;
    0
  end
  else begin
    match Ld_lint.Driver.invalid_inputs paths with
    | _ :: _ as bad ->
      List.iter
        (fun (p, why) -> Format.eprintf "ld lint: %s: %s@." p why)
        bad;
      2
    | [] ->
      let paths =
        match paths with
        | [] ->
          List.filter Sys.file_exists [ "lib"; "bin"; "test"; "bench"; "examples" ]
        | ps -> ps
      in
      let shallow = Ld_lint.Driver.lint_paths paths in
      let deep_diags =
        if not deep then []
        else begin
          let cmt_root =
            match cmt_root with
            | Some r -> r
            | None ->
              if Sys.file_exists "_build/default" then "_build/default" else "."
          in
          let store =
            if no_cache then None
            else Some (Ld_store.Store.open_store ?dir:store_dir ())
          in
          Ld_lint_deep.Deep_driver.analyze
            {
              Ld_lint_deep.Deep_driver.cmt_roots = [ cmt_root ];
              source_roots = [ "."; cmt_root ];
              skip = Ld_lint_deep.Deep_driver.default_skip;
              store;
            }
        end
      in
      let diags = Ld_lint.Driver.dedup_sorted (shallow @ deep_diags) in
      Option.iter
        (fun path ->
          let rules =
            Ld_lint.Sarif.of_shallow_rules ()
            @ List.map
                (fun (id, sev, doc) ->
                  Ld_lint.Sarif.meta ~id ~severity:sev ~doc)
                Ld_lint_deep.Deep_driver.rules_meta
          in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (Ld_lint.Sarif.render ~rules diags)))
        sarif_out;
      Ld_lint.Driver.report ~json Format.std_formatter diags
  end

let lint_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit diagnostics as a JSON array on stdout.")
  in
  let list_rules =
    Arg.(
      value & flag
      & info [ "rules" ] ~doc:"Print the rule catalogue and exit.")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Also run the whole-program typed analysis over compiler \
             .cmt files: interprocedural effect inference with call-chain \
             diagnostics (deep-nondet-source, deep-domain-safety, \
             deep-machine-purity). Requires a prior $(b,dune build \
             \\@check) (or any full build).")
  in
  let sarif_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Write all diagnostics as a SARIF 2.1.0 log to $(docv).")
  in
  let cmt_root =
    Arg.(
      value
      & opt (some string) None
      & info [ "cmt-root" ] ~docv:"DIR"
          ~doc:
            "Directory walked for .cmt files in --deep mode (default: \
             _build/default when present, else .).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the content-addressed summary cache in --deep mode.")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Root of the summary store for --deep (default: LD_STORE, \
             then XDG cache, then ./.ld-store).")
  in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint (default: lib bin test bench \
             examples). Directories are walked recursively; _build and \
             the test fixture trees are skipped. A path that does not \
             exist (or is not an .ml/.mli file) exits 2.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the ld-lint determinism/exactness/domain-safety static \
          analyzer over OCaml sources. Exits 1 if any violation is found. \
          Suppress a finding with a (* ld-lint: allow <rule> *) comment on \
          the same or preceding line.")
    Term.(
      const lint $ common_term $ json $ list_rules $ deep $ sarif_out
      $ cmt_root $ no_cache $ store_dir $ paths)

let main_cmd =
  Cmd.group
    (Cmd.info "ld" ~version:"1.0.0"
       ~doc:
         "Linear-in-Delta lower bounds in the LOCAL model — executable \
          reproduction of Goos, Hirvonen, Suomela (PODC 2014).")
    [ adversary_cmd; pack_cmd; match_cmd; factor_cmd; order_cmd; report_cmd; dot_cmd;
      certify_cmd; verify_cmd; stats_cmd; metrics_cmd; top_cmd; serve_cmd;
      load_cmd; bench_diff_cmd; bench_runtime_cmd; lint_cmd ]

let () = exit (Cmd.eval' main_cmd)
