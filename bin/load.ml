(* `ld load` — closed-loop load harness for `ld serve`.

   Replays verification requests against a running server: C
   connections each keep exactly one batch of B requests in flight
   (closed loop — a connection sends its next batch only when the
   previous response lands), so concurrency is C batches and the
   request stream is deterministic for a given --seed. Key skew draws
   deltas from a power law (small deltas hot, exponent --skew) and
   truncation rounds uniformly from [0, delta+2], mixing certified and
   refuted verdicts.

   A warmup pass probes every delta in the mix first, so the server
   builds (or warm-loads) each construction outside the timed window —
   the timed phase measures the service, not a cold cache. Batch
   round-trips land in the [load.rtt] histogram; every request in a
   batch waited the batch's round-trip, so its quantiles are the
   per-request latency figures. Results go to BENCH_SERVE.json with
   the shared {!Ld_obs.Provenance} metadata; the single `rows` entry
   keys on `op` so `ld bench-diff` joins it against a committed
   baseline. *)

module Obs = Ld_obs.Obs
module Json = Ld_obs.Json
module Provenance = Ld_obs.Provenance

let h_rtt = Ld_obs.Hist.make "load.rtt"
let c_sent = Obs.Counter.make "load.requests_sent"
let c_failures = Obs.Counter.make "load.failures"

(* Deterministic splitmix64 stream — the repo bans [Random] outside
   sanctioned modules, and the request stream must be reproducible from
   --seed alone. *)
let mix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform state =
  Int64.to_float (Int64.shift_right_logical (mix state) 11)
  *. (1.0 /. 9007199254740992.0)

(* delta ~ power law over [2, max_delta]: weight 1/(delta-1)^skew. *)
let delta_sampler ~max_delta ~skew =
  let n = max_delta - 1 in
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) skew);
    cum.(i) <- !total
  done;
  fun state ->
    let u = uniform state *. !total in
    let rec find i = if i >= n - 1 || cum.(i) >= u then i + 2 else find (i + 1) in
    find 0

type conn = {
  fd : Unix.file_descr;
  mutable sent_at : int64;
  mutable in_flight : int; (* requests in the outstanding batch; 0 = idle *)
}

let connect ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* One small frame per round-trip: Nagle would serialise the closed
     loop at 40ms ticks. *)
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  fd

let request ~port v =
  let fd = connect ~port in
  Fun.protect
    ~finally:(fun () ->
      match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
    (fun () ->
      Wire.send fd (Wire.render v);
      Json.parse (Wire.recv fd))

let int_counter kvs name =
  match List.assoc_opt name kvs with
  | Some (Json.Num f) -> int_of_float f
  | _ -> 0

let emit ~path ~quick ~nconns ~batch ~max_delta ~skew ~seed ~requests
    ~wall_ms ~rps ~p50 ~p99 ~pmax ~certified ~refuted ~failures
    ~server_counters ~server_rss =
  let buf = Buffer.create 2048 in
  let add = Buffer.add_string buf in
  add "{\n  \"bench\": \"linear-delta-local certificate service\",\n";
  add "  \"meta\": {\n";
  List.iter
    (fun field -> add (Printf.sprintf "    %s,\n" field))
    (Provenance.json_meta_fields (Provenance.capture ()));
  add
    (Printf.sprintf
       "    \"quick\": %b,\n    \"conns\": %d,\n    \"batch\": %d,\n    \
        \"max_delta\": %d,\n    \"skew\": %g,\n    \"seed\": %d\n" quick
       nconns batch max_delta skew seed);
  add "  },\n";
  (* The joinable row: `op` (the only non-measure field) is the key, so
     quick and full artefacts land on the same row for bench-diff. *)
  add "  \"rows\": [\n";
  add (Printf.sprintf "    {\"op\": \"verify\", \"wall_ms\": %.3f}\n" wall_ms);
  add "  ],\n";
  add "  \"results\": {\n";
  add (Printf.sprintf "    \"requests\": %d,\n" requests);
  add (Printf.sprintf "    \"rps\": %.0f,\n" rps);
  add (Printf.sprintf "    \"p50_ms\": %.4f,\n" p50);
  add (Printf.sprintf "    \"p99_ms\": %.4f,\n" p99);
  add (Printf.sprintf "    \"max_ms\": %.4f,\n" pmax);
  add (Printf.sprintf "    \"certified\": %d,\n" certified);
  add (Printf.sprintf "    \"refuted\": %d,\n" refuted);
  add (Printf.sprintf "    \"failures\": %d,\n" failures);
  let verdict_hits = int_counter server_counters "serve.verdict_memo_hits" in
  add
    (Printf.sprintf "    \"verdict_hit_ratio\": %.4f,\n"
       (float_of_int verdict_hits /. float_of_int (Stdlib.max 1 requests)));
  add
    (Printf.sprintf "    \"store_hits\": %d,\n"
       (int_counter server_counters "store.hits"));
  add
    (Printf.sprintf "    \"store_misses\": %d,\n"
       (int_counter server_counters "store.misses"));
  add
    (Printf.sprintf "    \"store_corrupt\": %d,\n"
       (int_counter server_counters "store.corrupt"));
  add
    (Printf.sprintf "    \"server_peak_rss_kb\": %d,\n"
       (match server_rss with Some kb -> kb | None -> 0));
  add
    (Printf.sprintf "    \"peak_rss_kb\": %d\n"
       (match Obs.peak_rss_kb () with Some kb -> kb | None -> 0));
  add "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let run ~port ~conns:nconns ~batch ~requests ~max_delta ~skew ~seed ~quick
    ~out ~shutdown () =
  Obs.enable ();
  Obs.set_span_recording false;
  let requests = if quick then Stdlib.min requests 100_000 else requests in
  let nconns = Stdlib.max 1 (if quick then Stdlib.min nconns 4 else nconns) in
  let batch = Stdlib.max 1 batch in
  if max_delta < 2 then invalid_arg "ld load: --max-delta < 2";
  (* Warmup: build/warm every construction in the mix outside the timed
     window, and fail fast if no server is listening. *)
  (match
     request ~port
       (Json.Arr
          (List.init (max_delta - 1) (fun i ->
               Json.Obj
                 [
                   ("op", Json.Str "probe");
                   ("delta", Json.Num (float_of_int (i + 2)));
                 ])))
   with
  | Json.Arr resps ->
    List.iter
      (fun r ->
        match Json.member "ok" r with
        | Some (Json.Bool true) -> ()
        | _ -> failwith ("ld load: warmup probe failed: " ^ Wire.render r))
      resps
  | other -> failwith ("ld load: unexpected warmup response: " ^ Wire.render other)
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "ld load: cannot reach server on 127.0.0.1:%d: %s\n" port
      (Unix.error_message e);
    exit 2);
  let prng = ref (Int64.of_int seed) in
  let draw_delta = delta_sampler ~max_delta ~skew in
  let build_batch n =
    Wire.render
      (Json.Arr
         (List.init n (fun _ ->
              let delta = draw_delta prng in
              let rounds =
                int_of_float (uniform prng *. float_of_int (delta + 3))
              in
              Json.Obj
                [
                  ("op", Json.Str "verify");
                  ("delta", Json.Num (float_of_int delta));
                  ("rounds", Json.Num (float_of_int rounds));
                ])))
  in
  let conns =
    List.init nconns (fun _ ->
        { fd = connect ~port; sent_at = 0L; in_flight = 0 })
  in
  let total_batches = (requests + batch - 1) / batch in
  let issued = ref 0 and completed = ref 0 in
  let certified = ref 0 and refuted = ref 0 in
  let send_next conn =
    if !issued < total_batches then begin
      let n = Stdlib.min batch (requests - (!issued * batch)) in
      incr issued;
      conn.in_flight <- n;
      conn.sent_at <- Obs.now_ns ();
      Wire.send conn.fd (build_batch n);
      Obs.Counter.add c_sent n
    end
  in
  let t0 = Obs.now_ms () in
  List.iter send_next conns;
  while !completed < total_batches do
    let busy = List.filter (fun c -> c.in_flight > 0) conns in
    let readable, _, _ =
      Unix.select (List.map (fun c -> c.fd) busy) [] [] 5.0
    in
    List.iter
      (fun c ->
        if List.mem c.fd readable then begin
          let resp = Wire.recv c.fd in
          Ld_obs.Hist.observe h_rtt
            (Int64.to_int (Int64.sub (Obs.now_ns ()) c.sent_at));
          (match Json.parse resp with
          | Json.Arr rs ->
            List.iter
              (fun r ->
                match (Json.member "ok" r, Wire.str_member "verdict" r) with
                | Some (Json.Bool true), Some "certified" -> incr certified
                | Some (Json.Bool true), Some "refuted" -> incr refuted
                | _ -> Obs.Counter.incr c_failures)
              rs;
            if List.length rs <> c.in_flight then
              Obs.Counter.incr c_failures
          | _ -> Obs.Counter.add c_failures c.in_flight);
          incr completed;
          c.in_flight <- 0;
          send_next c
        end)
      busy
  done;
  let wall_ms = Obs.now_ms () -. t0 in
  (* Server-side counters (memo hits, store traffic, peak RSS) over a
     fresh connection so the loaded ones can close cleanly. *)
  let server_counters, server_rss =
    match request ~port (Json.Obj [ ("op", Json.Str "stats") ]) with
    | resp -> (
      ( (match Json.member "counters" resp with
        | Some (Json.Obj kvs) -> kvs
        | _ -> []),
        match Json.member "peak_rss_kb" resp with
        | Some (Json.Num f) -> Some (int_of_float f)
        | _ -> None ))
    | exception Unix.Unix_error _ -> ([], None)
  in
  if shutdown then
    ignore (request ~port (Json.Obj [ ("op", Json.Str "shutdown") ]) : Json.value);
  List.iter
    (fun c ->
      match Unix.close c.fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
    conns;
  let sn = Ld_obs.Hist.snapshot h_rtt in
  let p50 = Ld_obs.Hist.quantile_ms sn 0.5 in
  let p99 = Ld_obs.Hist.quantile_ms sn 0.99 in
  let pmax = Ld_obs.Hist.max_ms sn in
  let rps = float_of_int requests /. (wall_ms /. 1000.) in
  let failures = Obs.Counter.value c_failures in
  Printf.printf
    "ld load: %d requests over %d conns (batch %d) in %.1f ms\n\
    \  throughput %.0f req/s\n\
    \  batch round-trip p50 %.3f ms  p99 %.3f ms  max %.3f ms\n\
    \  verdicts: %d certified, %d refuted, %d failures\n"
    requests nconns batch wall_ms rps p50 p99 pmax !certified !refuted
    failures;
  emit ~path:out ~quick ~nconns ~batch ~max_delta ~skew ~seed ~requests
    ~wall_ms ~rps ~p50 ~p99 ~pmax ~certified:!certified ~refuted:!refuted
    ~failures ~server_counters ~server_rss;
  Printf.printf "wrote %s\n" out;
  if failures = 0 then 0 else 1
