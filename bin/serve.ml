(* `ld serve` — long-running certificate service over a Unix socket.

   Clients speak the {!Wire} protocol: one frame is a JSON array of
   request objects and the response is an equal-length array, in
   order. Supported ops:

     {"op":"ping"}                          liveness
     {"op":"probe","delta":D}               build/warm the construction
     {"op":"verify","delta":D,"rounds":R}   truncation verdict
     {"op":"frontier","delta":D}            smallest surviving truncation
     {"op":"stats"}                         counter snapshot
     {"op":"shutdown"}                      ack, then exit the loop

   All constructions are against greedy-by-colour with view checks on —
   the memoised analytic replay ({!Lower_bound.truncated_verdict})
   makes every verify after the first a hash lookup plus one threshold
   comparison. The memo tables live in the single event-loop domain
   and are shared by every connection; a persistent {!Ld_store.Store}
   (unless [--no-store]) makes constructions survive restarts.

   The loop is a single-domain [Unix.select] state machine: reads are
   non-blocking-by-readiness and reassembled per connection, responses
   are written synchronously (they are small; a stalled reader stalls
   only its own batch stream). [--preload] fans the per-delta
   construction work over the {!Ld_pool.Pool} domains before the
   socket opens, so the first client never pays a cold build. *)

module LB = Ld_core.Lower_bound
module Cache_store = Ld_core.Cache_store
module Store = Ld_store.Store
module Packing = Ld_matching.Packing
module Obs = Ld_obs.Obs
module Json = Ld_obs.Json

let c_conns = Obs.Counter.make "serve.connections"
let c_batches = Obs.Counter.make "serve.batches"
let c_requests = Obs.Counter.make "serve.requests"
let c_errors = Obs.Counter.make "serve.errors"
let c_verdict_hits = Obs.Counter.make "serve.verdict_memo_hits"
let c_cache_builds = Obs.Counter.make "serve.cache_builds"
let h_batch = Ld_obs.Hist.make "serve.batch"
let h_request = Ld_obs.Hist.make "serve.request"

type state = {
  store : Store.t option;
  caches : (int, LB.cache) Hashtbl.t; (* delta -> construction *)
  verdicts : (int * int, bool) Hashtbl.t; (* (delta, rounds) -> certified *)
  max_delta : int;
  mutable shutdown : bool;
}

let algo = Packing.greedy_algorithm

let get_cache state delta =
  match Hashtbl.find_opt state.caches delta with
  | Some c -> c
  | None ->
    Obs.Counter.incr c_cache_builds;
    let c = Cache_store.build_cache ?store:state.store ~delta algo in
    Hashtbl.replace state.caches delta c;
    c

let verdict state ~delta ~rounds =
  match Hashtbl.find_opt state.verdicts (delta, rounds) with
  | Some v ->
    Obs.Counter.incr c_verdict_hits;
    v
  | None ->
    let cache = get_cache state delta in
    let v =
      match LB.truncated_verdict cache ~rounds with
      | `Certified -> true
      | `Refuted -> false
    in
    Hashtbl.replace state.verdicts (delta, rounds) v;
    v

let frontier state ~delta =
  let rec scan r =
    if r > (2 * delta) + 2 then None
    else if verdict state ~delta ~rounds:r then Some r
    else scan (r + 1)
  in
  scan 0

(* ---- request handling ---- *)

let err fmt = Printf.ksprintf (fun m -> Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str m) ]) fmt
let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let with_delta state req f =
  match Wire.int_member "delta" req with
  | None -> err "missing or non-integer \"delta\""
  | Some delta when delta < 2 || delta > state.max_delta ->
    err "delta %d out of range [2, %d]" delta state.max_delta
  | Some delta -> f delta

let handle_request state req =
  Obs.Counter.incr c_requests;
  Ld_obs.Hist.timed h_request @@ fun () ->
  match Wire.str_member "op" req with
  | Some "ping" -> ok []
  | Some "probe" ->
    with_delta state req (fun delta ->
        let cache = get_cache state delta in
        let outcome = LB.cache_outcome cache in
        ok
          [
            ("delta", Json.Num (float_of_int delta));
            ( "outcome",
              Json.Str
                (match outcome with
                | LB.Certified _ -> "certified"
                | LB.Refuted _ -> "refuted") );
            ("levels", Json.Num (float_of_int (LB.max_level outcome + 1)));
            ( "probes",
              Json.Num (float_of_int (List.length (LB.cache_probes cache))) );
          ])
  | Some "verify" ->
    with_delta state req (fun delta ->
        match Wire.int_member "rounds" req with
        | None -> err "missing or non-integer \"rounds\""
        | Some rounds when rounds < 0 -> err "negative \"rounds\""
        | Some rounds ->
          let v = verdict state ~delta ~rounds in
          ok
            [
              ("delta", Json.Num (float_of_int delta));
              ("rounds", Json.Num (float_of_int rounds));
              ("verdict", Json.Str (if v then "certified" else "refuted"));
            ])
  | Some "frontier" ->
    with_delta state req (fun delta ->
        match frontier state ~delta with
        | Some r ->
          ok
            [
              ("delta", Json.Num (float_of_int delta));
              ("frontier", Json.Num (float_of_int r));
            ]
        | None -> err "no truncation survives within 2*delta+2")
  | Some "stats" ->
    ok
      [
        ( "counters",
          Json.Obj
            (List.map
               (fun (name, v) -> (name, Json.Num (float_of_int v)))
               (Obs.Counter.snapshot_all ())) );
        ( "peak_rss_kb",
          match Obs.peak_rss_kb () with
          | Some kb -> Json.Num (float_of_int kb)
          | None -> Json.Null );
      ]
  | Some "shutdown" ->
    state.shutdown <- true;
    ok []
  | Some op -> err "unknown op %S" op
  | None -> err "missing \"op\""

let handle_payload state payload =
  Obs.Counter.incr c_batches;
  Ld_obs.Hist.timed h_batch @@ fun () ->
  match Json.parse payload with
  | Json.Arr reqs ->
    Wire.render (Json.Arr (List.map (handle_request state) reqs))
  | Json.Obj _ as req ->
    (* Single-object convenience: respond in kind. *)
    Wire.render (handle_request state req)
  | _ ->
    Obs.Counter.incr c_errors;
    Wire.render (err "expected a request object or array")
  | exception Json.Parse_error (msg, pos) ->
    Obs.Counter.incr c_errors;
    Wire.render (err "parse error: %s at byte %d" msg pos)

(* ---- connection state machine ---- *)

type conn = {
  fd : Unix.file_descr;
  hdr : Bytes.t;
  mutable hdr_got : int;
  mutable body : Bytes.t;
  mutable body_want : int; (* -1 while the header is incomplete *)
  mutable body_got : int;
}

let new_conn fd =
  { fd; hdr = Bytes.create 4; hdr_got = 0; body = Bytes.empty;
    body_want = -1; body_got = 0 }

let complete state conn payload =
  conn.hdr_got <- 0;
  conn.body_want <- -1;
  conn.body <- Bytes.empty;
  conn.body_got <- 0;
  Wire.send conn.fd (handle_payload state payload)

(* One readiness-driven read; [`Dead] when the peer is gone or the
   stream is unframeable. *)
let on_readable state conn =
  match
    if conn.body_want < 0 then begin
      let n = Unix.read conn.fd conn.hdr conn.hdr_got (4 - conn.hdr_got) in
      if n = 0 then raise Wire.Closed;
      conn.hdr_got <- conn.hdr_got + n;
      if conn.hdr_got = 4 then begin
        let want = Int32.to_int (Bytes.get_int32_be conn.hdr 0) in
        if want < 0 || want > Wire.max_frame then
          failwith "bad frame length";
        if want = 0 then complete state conn ""
        else begin
          conn.body_want <- want;
          conn.body <- Bytes.create want;
          conn.body_got <- 0
        end
      end
    end
    else begin
      let n =
        Unix.read conn.fd conn.body conn.body_got
          (conn.body_want - conn.body_got)
      in
      if n = 0 then raise Wire.Closed;
      conn.body_got <- conn.body_got + n;
      if conn.body_got = conn.body_want then
        complete state conn (Bytes.to_string conn.body)
    end
  with
  | () -> `Alive
  | exception Wire.Closed -> `Dead
  | exception Unix.Unix_error _ -> `Dead
  | exception Failure _ ->
    Obs.Counter.incr c_errors;
    `Dead

let close_quietly fd =
  match Unix.close fd with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

let run ~port ~store_dir ~no_store ~max_delta ~preload ~metrics_port () =
  Obs.enable ();
  (* Long-running: keep the numeric instruments, drop the span log. *)
  Obs.set_span_recording false;
  let store =
    if no_store then None else Some (Store.open_store ?dir:store_dir ())
  in
  let state =
    { store; caches = Hashtbl.create 16; verdicts = Hashtbl.create 256;
      max_delta; shutdown = false }
  in
  (match preload with
  | None -> ()
  | Some upto ->
    let upto = Stdlib.min upto max_delta in
    let deltas = List.init (Stdlib.max 0 (upto - 1)) (fun i -> i + 2) in
    Logs.app (fun m ->
        m "preloading constructions for delta=2..%d over %d domains" upto
          (Ld_pool.Pool.default_domains ()));
    let built =
      Ld_pool.Pool.map
        (fun delta ->
          (delta, Cache_store.build_cache ?store ~delta algo))
        deltas
    in
    List.iter (fun (d, c) -> Hashtbl.replace state.caches d c) built);
  (match metrics_port with
  | None -> ()
  | Some p ->
    ignore
      (Domain.spawn (fun () ->
           Ld_obs.Openmetrics.serve ~port:p (fun () ->
               Ld_obs.Openmetrics.render ()))
        : unit Domain.t);
    Logs.app (fun m ->
        m "serving OpenMetrics on http://127.0.0.1:%d/metrics" p));
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  Logs.app (fun m ->
      m "ld serve: listening on 127.0.0.1:%d (store: %s, max delta %d)" port
        (match store with Some s -> Store.dir s | None -> "disabled")
        max_delta);
  let conns = ref [] in
  while not state.shutdown do
    let fds = sock :: List.map (fun c -> c.fd) !conns in
    let readable, _, _ = Unix.select fds [] [] 1.0 in
    if List.mem sock readable then begin
      let fd, _ = Unix.accept sock in
      Obs.Counter.incr c_conns;
      conns := new_conn fd :: !conns
    end;
    conns :=
      List.filter
        (fun conn ->
          if not (List.mem conn.fd readable) then true
          else
            match on_readable state conn with
            | `Alive -> true
            | `Dead ->
              close_quietly conn.fd;
              false)
        !conns
  done;
  List.iter (fun c -> close_quietly c.fd) !conns;
  close_quietly sock;
  Logs.app (fun m ->
      m "ld serve: shutdown after %d batches" (Obs.Counter.value c_batches));
  0
