(* Length-prefixed JSON framing shared by `ld serve` and `ld load`.

   One frame = a 4-byte big-endian payload length followed by the
   payload, which is JSON text: a batch is an array of request
   objects and its response an equal-length array of response
   objects, in order. The framing lets both sides read exactly one
   message without a streaming JSON parser, and the length cap keeps
   a garbled header from provoking a multi-gigabyte allocation. *)

module Json = Ld_obs.Json

exception Closed
(** Peer closed the connection mid-frame. *)

let max_frame = 1 lsl 26 (* 64 MiB *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* Header and payload as one string, so a frame goes out in (usually)
   one syscall. *)
let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Wire.frame: frame too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* `send` here is the socket frame writer, not a machine transition;
   the name-based transition heuristic cannot tell them apart and the
   I/O is the whole point. *)
(* ld-lint: allow deep-machine-purity — socket writer, not a transition *)
let send fd payload =
  let f = frame payload in
  write_all fd f 0 (String.length f)

let rec read_exact fd buf off len =
  if len > 0 then begin
    let n = Unix.read fd buf off len in
    if n = 0 then raise Closed;
    read_exact fd buf (off + n) (len - n)
  end

let recv fd =
  let hdr = Bytes.create 4 in
  read_exact fd hdr 0 4;
  let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if n < 0 || n > max_frame then failwith "Wire.recv: bad frame length";
  let b = Bytes.create n in
  read_exact fd b 0 n;
  Bytes.unsafe_to_string b

(* ---- JSON rendering ----

   [Ld_obs.Json] is parse-only (the artefact emitters print their JSON
   by hand); the protocol builds values programmatically, so render
   the [value] tree here. Integral floats print without an exponent or
   decimal point — counters and ids round-trip exactly. *)

let render_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec render = function
  | Json.Null -> "null"
  | Json.Bool b -> if b then "true" else "false"
  | Json.Num f -> render_num f
  | Json.Str s -> "\"" ^ Json.escape s ^ "\""
  | Json.Arr vs -> "[" ^ String.concat "," (List.map render vs) ^ "]"
  | Json.Obj kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> "\"" ^ Json.escape k ^ "\":" ^ render v)
           kvs)
    ^ "}"

(* ---- typed accessors for request objects ---- *)

let str_member k v = Option.bind (Json.member k v) Json.to_string

let int_member k v =
  match Option.bind (Json.member k v) Json.to_float with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
