(* The Section 4 adversary in action: watch the unfold-and-mix
   construction certify that the O(Δ) algorithm cannot be beaten, and
   watch it refute a truncated (fast) algorithm with a concrete
   counterexample graph.

     dune exec examples/lower_bound_demo.exe *)

module LB = Ld_core.Lower_bound
module Packing = Ld_matching.Packing
module Ec = Ld_models.Ec
module Fm = Ld_fm.Fm
module Q = Ld_arith.Q

let delta = 5

let () =
  Printf.printf "=== adversary vs the full O(Δ) algorithm (Δ = %d) ===\n" delta;
  (match LB.run ~delta Packing.greedy_algorithm with
  | LB.Certified certs ->
    List.iter
      (fun c ->
        Format.printf "%a@." LB.pp_certificate c;
        if c.LB.level = 0 then begin
          (* Figure 5: the base case pair, in full. *)
          Format.printf "  (Fig. 5) G_0 = %a@." Ec.pp c.LB.g_graph;
          Format.printf "  (Fig. 5) H_0 = %a@." Ec.pp c.LB.h_graph
        end)
      certs;
    Printf.printf
      "every level i has isomorphic radius-i views with different outputs:\n\
       any algorithm computing these outputs needs more than %d rounds.\n"
      (delta - 2)
  | LB.Refuted (_, f) -> Format.printf "unexpected: %a@." LB.pp_failure f);

  Printf.printf "\n=== adversary vs a truncated, genuinely fast algorithm ===\n";
  let r = 3 in
  match LB.run ~delta (Packing.truncated `Greedy r) with
  | LB.Certified _ -> Printf.printf "unexpected certification\n"
  | LB.Refuted (certs, f) ->
    Printf.printf "truncated to %d rounds: survived %d levels, then failed.\n" r
      (List.length certs);
    Format.printf "%a@." LB.pp_failure f;
    Format.printf "the failing loopy multigraph: %a@." Ec.pp f.LB.fail_graph;
    let unsat =
      List.filter
        (fun v -> not (Fm.is_saturated f.LB.fail_output v))
        (List.init (Ec.n f.LB.fail_graph) Fun.id)
    in
    Printf.printf "unsaturated nodes: [%s]\n"
      (String.concat "; " (List.map string_of_int unsat));
    (* Lemma 2 / Fig. 4: the same failure on a simple (loop-free) graph. *)
    let lifted = Fm.pull_back f.LB.fail_lift f.LB.fail_output in
    Printf.printf
      "on the loop-free 2-lift (%d nodes): still maximal? %b — fast implies \
       wrong, on ordinary simple graphs too.\n"
      (Ec.n f.LB.fail_lift.total)
      (Fm.is_maximal_fm lifted)
