(* The matching-algorithm zoo of §1.1–1.2: every algorithm in the
   library run side by side on the same graphs, with their round
   complexities annotated.

     dune exec examples/matching_zoo.exe *)

module Gen = Ld_graph.Generators
module G = Ld_graph.Graph
module Id = Ld_models.Labelled.Id
module Colouring = Ld_models.Edge_colouring
module Packing = Ld_matching.Packing
module Mm_ec = Ld_matching.Mm_ec
module II = Ld_matching.Israeli_itai
module PR = Ld_matching.Panconesi_rizzi
module Greedy = Ld_fm.Greedy
module Maximum = Ld_fm.Maximum
module Fm = Ld_fm.Fm
module Q = Ld_arith.Q

let zoo g name =
  Printf.printf "\n--- %s: n=%d, m=%d, delta=%d ---\n" name (G.n g) (G.m g)
    (G.max_degree g);
  let ec = Colouring.ec_of_simple g in
  (* fractional, EC model, O(Δ) rounds *)
  let y = Packing.greedy_by_colour ec in
  Printf.printf "  %-34s rounds=%-4d total=%-8s maximal=%b\n"
    "greedy edge packing   (EC, O(Δ))" (Packing.greedy_rounds ec)
    (Q.to_string (Fm.total y)) (Fm.is_maximal_fm y);
  let yp, rp = Packing.proposal ec in
  Printf.printf "  %-34s rounds=%-4d total=%-8s maximal=%b\n"
    "proposal edge packing (PO-ready)" rp
    (Q.to_string (Fm.total yp)) (Fm.is_maximal_fm yp);
  (* integral, EC model *)
  let mm = Mm_ec.greedy ec in
  Printf.printf "  %-34s rounds=%-4d size=%-9d maximal=%b\n"
    "greedy matching       (EC, O(Δ))" mm.Mm_ec.rounds
    (List.length mm.Mm_ec.matched_edges)
    (Mm_ec.is_maximal ec mm);
  (* integral, ID model *)
  let idg = Id.trivial g in
  let ii = II.run ~seed:1 ~max_rounds:10000 idg in
  let size mate =
    Array.fold_left (fun a m -> if m <> None then a + 1 else a) 0 mate / 2
  in
  Printf.printf "  %-34s rounds=%-4d size=%-9d maximal=%b\n"
    "Israeli-Itai          (ID, O(log n) rand.)" ii.II.rounds (size ii.II.mate)
    (II.is_maximal g ii);
  let pr = PR.run idg in
  Printf.printf "  %-34s rounds=%-4d size=%-9d maximal=%b\n"
    "Panconesi-Rizzi       (ID, O(Δ+log* n))" pr.PR.rounds (size pr.PR.mate)
    (PR.is_maximal g pr);
  (* centralised references *)
  Printf.printf "  %-34s             total=%-8s (ν_f = %s)\n"
    "centralised greedy FM / optimum"
    (Q.to_string (Fm.total (Greedy.maximal_fm ec)))
    (Q.to_string (Maximum.value g))

let () =
  zoo (Gen.path 17) "path";
  zoo (Gen.cycle 12) "cycle";
  zoo (Gen.spider ~delta:8 ~tail:3) "spider (Δ=8)";
  zoo (Gen.hypercube 5) "hypercube (d=5)";
  zoo (Gen.random_bounded_degree ~seed:4 50 6) "random, Δ<=6";
  zoo (Gen.complete_bipartite 6 9) "K_{6,9}"
