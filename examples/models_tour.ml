(* Figure 1 as code: one graph seen through the four deterministic
   models — ID, OI, PO, EC — plus the lift machinery of §3.4–3.5
   (universal covers, factor graphs, loopiness).

     dune exec examples/models_tour.exe *)

module G = Ld_graph.Graph
module Gen = Ld_graph.Generators
module Labelled = Ld_models.Labelled
module Ec = Ld_models.Ec
module Po = Ld_models.Po
module Colouring = Ld_models.Edge_colouring
module Factor = Ld_cover.Factor
module Loopy = Ld_cover.Loopy
module Lift = Ld_cover.Lift
module View = Ld_cover.View
module Refinement = Ld_cover.Refinement

let () =
  (* The 4-cycle: small enough to see everything. *)
  let g = Gen.cycle 4 in
  Format.printf "the graph: %a@.@." G.pp g;

  (* ID: unique identifiers — the strongest model. *)
  let id = Labelled.Id.create g [| 12; 7; 30; 4 |] in
  Printf.printf "[ID] identifiers: %s\n"
    (String.concat " "
       (List.map (fun v -> string_of_int (Labelled.Id.id id v)) [ 0; 1; 2; 3 ]));

  (* OI: only the relative order of the labels survives. *)
  let oi = Labelled.Oi.of_id id in
  Printf.printf "[OI] node ranks:  %s\n"
    (String.concat " "
       (List.map (fun v -> string_of_int (Labelled.Oi.rank oi v)) [ 0; 1; 2; 3 ]));

  (* PO: orientation + port numbering, no names at all. *)
  let po =
    Po.of_ports ~n:4
      ~connections:[ (0, 1, 1, 2); (1, 1, 2, 2); (2, 1, 3, 2); (3, 1, 0, 2) ]
  in
  Format.printf "[PO] %a@." Po.pp po;

  (* EC: a proper edge colouring is the only symmetry breaker. *)
  let ec =
    Ec.of_simple g ~colour:(fun (u, v) -> if v = u + 1 && u mod 2 = 0 then 1 else 2)
  in
  Format.printf "[EC] %a@." Ec.pp ec;

  (* §3.4: the EC 4-cycle is vertex-transitive, so its factor graph is
     one node with loops (all its symmetry in the most concise form). *)
  let fg, cls = Factor.factor ec in
  Format.printf "factor graph FG: %a@." Ec.pp fg;
  Printf.printf "class map: [%s]   loopiness of FG source: %d\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int cls)))
    (Loopy.loopiness ec);

  (* All four nodes have isomorphic universal-cover views at any radius
     (they sit above the same factor node). *)
  Printf.printf "radius-3 views of nodes 0 and 2 isomorphic: %b\n"
    (Refinement.equivalent_radius ec 0 ec 2 ~radius:3);
  Format.printf "the radius-2 view tree of node 0: %a@."
    View.pp (View.of_ec ec 0 ~radius:2);

  (* §3.5 loops as lifts: unfold one loop of the factor graph and check
     the covering map mechanically. *)
  let cov = Lift.unfold_loop fg ~loop_id:0 in
  Printf.printf "unfolded FG loop 0: %d nodes, is a covering: %b\n"
    (Ec.n cov.total) (Lift.is_covering cov);

  (* The original graph is itself a lift of FG. *)
  Printf.printf "original graph covers FG: %b\n"
    (Lift.is_covering { total = ec; base = fg; map = cls })
