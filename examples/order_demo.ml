(* Appendix A / Figure 10: the canonical homogeneous order on the
   infinite PO-tree, computed through the combinatorial bracket
   ⟦x⇝y⟧, and its use in the PO ⇐ OI simulation (Fig. 9).

     dune exec examples/order_demo.exe *)

module O = Ld_order.Tree_order
module Sim = Ld_core.Simulate
module Po = Ld_models.Po

let fwd c = { O.fwd = true; colour = c }
let bwd c = { O.fwd = false; colour = c }

let show a = Format.asprintf "%a" O.pp a

let () =
  Printf.printf "=== the bracket order on tree addresses ===\n";
  let nodes =
    [
      [];
      [ fwd 1 ];
      [ bwd 1 ];
      [ fwd 2 ];
      [ bwd 2 ];
      [ fwd 1; fwd 2 ];
      [ fwd 1; bwd 2 ];
      [ bwd 2; fwd 1 ];
      [ fwd 2; fwd 1; bwd 2 ];
    ]
  in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if x < y then
            Printf.printf "  [[ %s -> %s ]] = %+d   so %s\n" (show x) (show y)
              (O.bracket x y)
              (if O.compare x y < 0 then show x ^ " precedes " ^ show y
               else show y ^ " precedes " ^ show x))
        nodes)
    (List.filteri (fun i _ -> i < 3) nodes);

  Printf.printf "\nsorted neighbourhood of the origin:\n  %s\n"
    (String.concat " < " (List.map show (O.sort_nodes nodes)));

  (* Homogeneity (Lemma 4): translating every address by a common
     prefix never changes a comparison. *)
  Printf.printf "\n=== homogeneity ===\n";
  let z = [ bwd 2; fwd 1; fwd 3 ] in
  let ok =
    List.for_all
      (fun x ->
        List.for_all
          (fun y -> O.compare (O.concat z x) (O.concat z y) = O.compare x y)
          nodes)
      nodes
  in
  Printf.printf "all %d comparisons survive translation by %s: %b\n"
    (List.length nodes * List.length nodes)
    (show z) ok;

  (* The order at work: an ordered view of a PO graph (Fig. 9). *)
  Printf.printf "\n=== canonically ordered view (PO <= OI simulation) ===\n";
  let g = Po.create ~n:3 ~arcs:[ (0, 1, 1); (2, 1, 2) ] ~loops:[ (0, 2) ] in
  let ov = Sim.ordered_view g 0 ~radius:2 in
  Printf.printf "view tree of node 0 at radius 2: %d nodes\n" (Po.n ov.ov_graph);
  Array.iteri
    (fun node rank -> Printf.printf "  tree node %d has canonical rank %d\n" node rank)
    ov.Sim.ov_rank
