(* Quickstart: build a graph, run the O(Δ) distributed maximal
   fractional matching, verify the result exactly.

     dune exec examples/quickstart.exe *)

module Gen = Ld_graph.Generators
module G = Ld_graph.Graph
module Colouring = Ld_models.Edge_colouring
module Packing = Ld_matching.Packing
module Fm = Ld_fm.Fm
module Maximum = Ld_fm.Maximum
module Q = Ld_arith.Q

let () =
  (* 1. A graph: the "spider" — a centre of degree Δ with pendant
     paths, a classic hard case for matching algorithms. *)
  let g = Gen.spider ~delta:6 ~tail:3 in
  Printf.printf "graph: n = %d, m = %d, max degree = %d\n" (G.n g) (G.m g)
    (G.max_degree g);

  (* 2. Enter the EC model: attach a proper edge colouring with at most
     2Δ-1 colours (the symmetry-breaking input the model assumes). *)
  let ec = Colouring.ec_of_simple g in
  Printf.printf "edge-coloured with %d colours\n" (Ld_models.Ec.max_colour ec);

  (* 3. Run the distributed greedy-by-colour edge packing: one
     communication round per colour, O(Δ) rounds total. *)
  let y = Packing.greedy_by_colour ec in
  Printf.printf "rounds used: %d\n" (Packing.greedy_rounds ec);

  (* 4. Verify — exactly, with rational arithmetic. *)
  Printf.printf "is a fractional matching: %b\n" (Fm.is_fm y);
  Printf.printf "is maximal:               %b\n" (Fm.is_maximal_fm y);
  Printf.printf "total weight:             %s\n" (Q.to_string (Fm.total y));
  Printf.printf "maximum possible:         %s\n" (Q.to_string (Maximum.value g));
  Printf.printf "approximation ratio:      %s  (always >= 1/2)\n"
    (Q.to_string (Maximum.ratio y));

  (* 5. The same via the proposal dynamics (no colour schedule needed). *)
  let y', rounds = Packing.proposal ec in
  Printf.printf "proposal dynamics: maximal = %b in %d rounds\n"
    (Fm.is_maximal_fm y') rounds
