(* Section 5 end to end: carry an algorithm down the model hierarchy
   OI ⇒ PO ⇒ EC and hand it to the Section 4 adversary; also run the
   finite Ramsey (§5.4) and derandomisation (Appendix B) searches.

     dune exec examples/simulation_demo.exe *)

module Sim = Ld_core.Simulate
module Theorem = Ld_core.Theorem
module LB = Ld_core.Lower_bound
module Ramsey = Ld_core.Ramsey
module Derand = Ld_core.Derand
module Po_packing = Ld_matching.Po_packing
module II = Ld_matching.Israeli_itai
module Id = Ld_models.Labelled.Id

let () =
  Printf.printf "=== EC <= PO (Fig. 8): a PO algorithm meets the adversary ===\n";
  (match Theorem.against_po ~delta:5 Po_packing.proposal_algorithm with
  | LB.Certified certs ->
    Printf.printf
      "PO proposal: correct, so the adversary certifies %d levels — it too \
       needs Ω(Δ) rounds.\n"
      (List.length certs)
  | LB.Refuted (_, f) -> Format.printf "unexpected: %a@." LB.pp_failure f);

  Printf.printf "\n=== PO <= OI (Fig. 9): OI rules through the canonical order ===\n";
  List.iter
    (fun rounds ->
      match Theorem.against_oi ~delta:4 (Sim.proposal_rule ~rounds) with
      | LB.Certified _ -> Printf.printf "  radius-%d rule certified?!\n" (rounds + 1)
      | LB.Refuted (certs, f) ->
        Printf.printf
          "  OI rule of radius %d: refuted at level %d (after %d certificates) \
           — locality bites in OI as well.\n"
          (rounds + 1) f.LB.fail_level (List.length certs))
    [ 0; 1; 2 ];

  Printf.printf "\n=== §5.4 (Lemma 5): finding the order-invariant identifier set ===\n";
  (* An ID-dependent saturation indicator: parity-sensitive. *)
  let indicator ids =
    [| ids.(0) mod 2 = 0; ids.(1) mod 2 = 0; (ids.(0) + ids.(2)) mod 2 = 0 |]
  in
  (match
     Ramsey.order_invariant_identifiers ~universe:(List.init 30 Fun.id)
       ~nodes:3 ~indicator ~size:8
   with
  | Some ids ->
    Printf.printf "  I = {%s}: the indicator is constant on I — Ramsey, found.\n"
      (String.concat ", " (List.map string_of_int ids));
    let j = Ramsey.sparsify ~gap:3 ids in
    Printf.printf "  sparsified J = {%s} (Lemma 7's buffer of unused ids).\n"
      (String.concat ", " (List.map string_of_int j))
  | None -> Printf.printf "  no monochromatic set in this universe\n");

  Printf.printf "\n=== Appendix B (Lemma 10): derandomising Israeli–Itai ===\n";
  let correct idg ~seed =
    try
      let r = II.run ~seed ~max_rounds:12 idg in
      II.is_maximal (Id.graph idg) r
    with Failure _ -> false
  in
  let ids = [ 2; 5; 11; 17 ] in
  Printf.printf "  identifier set S = {%s}: %d graphs to satisfy\n"
    (String.concat ", " (List.map string_of_int ids))
    (List.length (Derand.all_id_graphs ids));
  Printf.printf "  empirical failure rate of the randomised run: %.3f\n"
    (Derand.failure_rate ~ids ~seeds:(List.init 25 Fun.id) ~correct);
  match Derand.find_seed ~ids ~seeds:(List.init 500 Fun.id) ~correct with
  | Some (seed, trials) ->
    Printf.printf
      "  fixed randomness rho = seed %d is correct on every graph over S \
       (%d trials) — the deterministic algorithm of Lemma 10.\n"
      seed trials
  | None -> Printf.printf "  search failed (enlarge the seed pool)\n"
