(* Invariant: [den] is positive and [gcd num den = 1]; zero is [0/1]. *)

type t = { num : Z.t; den : Z.t }

let make num den =
  if Z.is_zero den then raise Division_by_zero
  else if Z.is_zero num then { num = Z.zero; den = Z.one }
  else begin
    let num, den = if Z.sign den < 0 then (Z.neg num, Z.neg den) else (num, den) in
    let g = Z.gcd num den in
    { num = Z.div num g; den = Z.div den g }
  end

let of_ints num den = make (Z.of_int num) (Z.of_int den)
let of_int n = { num = Z.of_int n; den = Z.one }

let zero = of_int 0
let one = of_int 1
let half = of_ints 1 2

let num t = t.num
let den t = t.den

let neg t = { t with num = Z.neg t.num }
let abs t = { t with num = Z.abs t.num }

(* [add]/[mul] below use the classical cross-reduced (Henrici) formulas:
   with canonical inputs the gcds run on the small cofactors instead of
   the full-size products, and the results are canonical by
   construction — the canonical form is unique, so observable values
   are unchanged. *)
let add a b =
  if Z.is_zero a.num then b
  else if Z.is_zero b.num then a
  else begin
    let g1 = Z.gcd a.den b.den in
    if Z.equal g1 Z.one then
      { num = Z.add (Z.mul a.num b.den) (Z.mul b.num a.den);
        den = Z.mul a.den b.den }
    else begin
      let d1 = Z.div a.den g1 and d2 = Z.div b.den g1 in
      let t = Z.add (Z.mul a.num d2) (Z.mul b.num d1) in
      if Z.is_zero t then { num = Z.zero; den = Z.one }
      else begin
        let g2 = Z.gcd t g1 in
        { num = Z.div t g2; den = Z.mul d1 (Z.div b.den g2) }
      end
    end
  end

let sub a b = add a (neg b)

let mul a b =
  if Z.is_zero a.num || Z.is_zero b.num then { num = Z.zero; den = Z.one }
  else begin
    let g1 = Z.gcd a.num b.den and g2 = Z.gcd b.num a.den in
    { num = Z.mul (Z.div a.num g1) (Z.div b.num g2);
      den = Z.mul (Z.div a.den g2) (Z.div b.den g1) }
  end

(* A canonical [t] inverts by swapping fields; no re-reduction needed. *)
let inv t =
  if Z.is_zero t.num then raise Division_by_zero
  else if Z.sign t.num < 0 then { num = Z.neg t.den; den = Z.neg t.num }
  else { num = t.den; den = t.num }

let div a b = mul a (inv b)

let compare a b = Z.compare (Z.mul a.num b.den) (Z.mul b.num a.den)
let equal a b = Z.equal a.num b.num && Z.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign t = Z.sign t.num
let is_zero t = Z.is_zero t.num
let is_integer t = Z.equal t.den Z.one

let sum qs = List.fold_left add zero qs

let to_string t =
  if is_integer t then Z.to_string t.num
  else Z.to_string t.num ^ "/" ^ Z.to_string t.den

let of_string s =
  match String.index_opt s '/' with
  | None -> { num = Z.of_string s; den = Z.one }
  | Some i ->
    make
      (Z.of_string (String.sub s 0 i))
      (Z.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let to_float t =
  (* Exact for small values; for large ones fall back to string digits. *)
  match (Z.to_int_opt t.num, Z.to_int_opt t.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ -> float_of_string (Z.to_string t.num) /. float_of_string (Z.to_string t.den)

let hash t = (Z.hash t.num * 31) + Z.hash t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
