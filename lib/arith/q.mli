(** Exact rational arithmetic.

    Values are kept normalised: the denominator is positive and coprime
    with the numerator. All fractional-matching weights in this project
    are values of this type, so feasibility and maximality certificates
    are exact, never subject to floating-point error. *)

type t

val zero : t
val one : t
val half : t

(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero if [den] is zero. *)
val make : Z.t -> Z.t -> t

(** [of_ints num den] is [make (Z.of_int num) (Z.of_int den)]. *)
val of_ints : int -> int -> t

val of_int : int -> t

val num : t -> Z.t
val den : t -> Z.t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero if the divisor is zero. *)
val div : t -> t -> t

(** [inv t] is [1/t]. @raise Division_by_zero if [t] is zero. *)
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val sign : t -> int
val is_zero : t -> bool

(** [is_integer t] holds iff the denominator is 1. *)
val is_integer : t -> bool

(** [sum qs] adds a list of rationals. *)
val sum : t list -> t

(** [of_string s] parses ["p"], ["p/q"] or ["-p/q"].
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_string : t -> string
val to_float : t -> float
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Infix operators, for readability in weight arithmetic. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
