(* Little-endian magnitude in base 2^15; [sign] is -1, 0 or +1 and is 0
   exactly when the magnitude is empty.  Base 2^15 keeps every digit
   product comfortably inside a native int. *)

let base_bits = 15
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else begin
    (* Work with the negative absolute value so that [min_int] needs no
       special case; OCaml's [mod] then yields remainders in (-base, 0]. *)
    let sign = if n > 0 then 1 else -1 in
    let rec digits acc m =
      if m = 0 then List.rev acc
      else digits (-(m mod base) :: acc) (m / base)
    in
    let m = if n > 0 then -n else n in
    normalize sign (Array.of_list (digits [] m))
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let is_zero t = t.sign = 0
let sign t = t.sign

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Int.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Int.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Requires a >= b digit-wise value. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)
  end

and sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.mag.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalize (a.sign * b.sign) r
  end

let shift_left_bits t k =
  if t.sign = 0 || k = 0 then t
  else begin
    let word = k / base_bits and bit = k mod base_bits in
    let la = Array.length t.mag in
    let r = Array.make (la + word + 1) 0 in
    for i = 0 to la - 1 do
      let v = t.mag.(i) lsl bit in
      r.(i + word) <- r.(i + word) lor (v land base_mask);
      r.(i + word + 1) <- r.(i + word + 1) lor (v lsr base_bits)
    done;
    normalize t.sign r
  end

let shift_right_bits t k =
  if t.sign = 0 || k = 0 then t
  else begin
    let word = k / base_bits and bit = k mod base_bits in
    let la = Array.length t.mag in
    if word >= la then zero
    else begin
      let lr = la - word in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = t.mag.(i + word) lsr bit in
        let hi =
          if i + word + 1 < la then t.mag.(i + word + 1) lsl (base_bits - bit)
          else 0
        in
        r.(i) <- (lo lor hi) land base_mask
      done;
      normalize t.sign r
    end
  end

let num_bits t =
  if t.sign = 0 then 0
  else begin
    let top = t.mag.(Array.length t.mag - 1) in
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    ((Array.length t.mag - 1) * base_bits) + bits top 0
  end

(* Short division: divisor fits one limb. *)
let divmod_mag_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize 1 q, of_int !r)

(* Magnitude long division, Knuth TAOCP vol. 2 Algorithm D: limb-at-a-
   time with a two-limb trial quotient against a divisor normalised so
   its top limb is >= base/2. All intermediates fit a native int (limb
   products are < 2^30). Replaces the historic bit-by-bit
   shift-and-subtract loop, which allocated two bignums per dividend
   bit and made every [gcd] (hence every canonicalising [Q] operation)
   quadratic in the operand's bit length with a brutal constant. *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 1 then divmod_mag_small a b.(0)
  else if compare_mag a b < 0 then (zero, normalize 1 (Array.copy a))
  else begin
    let la = Array.length a in
    (* Normalise: shift so the divisor's top limb has its high bit set. *)
    let rec count_shift v acc =
      if v land (base lsr 1) <> 0 then acc else count_shift (v lsl 1) (acc + 1)
    in
    let shift = count_shift b.(lb - 1) 0 in
    let u = Array.make (la + 1) 0 in
    for i = 0 to la - 1 do
      let x = a.(i) lsl shift in
      u.(i) <- u.(i) lor (x land base_mask);
      u.(i + 1) <- x lsr base_bits
    done;
    let v = Array.make lb 0 in
    for i = 0 to lb - 1 do
      let x = b.(i) lsl shift in
      v.(i) <- v.(i) lor (x land base_mask);
      if i + 1 < lb then v.(i + 1) <- x lsr base_bits
    done;
    let v1 = v.(lb - 1) and v2 = v.(lb - 2) in
    let q = Array.make (la - lb + 1) 0 in
    for j = la - lb downto 0 do
      (* Trial quotient from the top two dividend limbs. *)
      let top = (u.(j + lb) lsl base_bits) lor u.(j + lb - 1) in
      let qhat = ref (Stdlib.min (top / v1) base_mask) in
      let rhat = ref (top - (!qhat * v1)) in
      while
        !rhat < base && !qhat * v2 > (!rhat lsl base_bits) lor u.(j + lb - 2)
      do
        decr qhat;
        rhat := !rhat + v1
      done;
      (* Multiply-subtract v * qhat from u[j .. j+lb]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to lb - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let s = u.(i + j) - (p land base_mask) - !borrow in
        if s < 0 then begin
          u.(i + j) <- s + base;
          borrow := 1
        end
        else begin
          u.(i + j) <- s;
          borrow := 0
        end
      done;
      let s = u.(j + lb) - !carry - !borrow in
      if s < 0 then begin
        (* Trial quotient one too large: add the divisor back. *)
        u.(j + lb) <- s + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to lb - 1 do
          let t = u.(i + j) + v.(i) + !c in
          u.(i + j) <- t land base_mask;
          c := t lsr base_bits
        done;
        u.(j + lb) <- (u.(j + lb) + !c) land base_mask
      end
      else u.(j + lb) <- s;
      q.(j) <- !qhat
    done;
    (* Denormalise the remainder (first lb limbs of u, shifted back). *)
    let r = Array.make lb 0 in
    for i = 0 to lb - 1 do
      let hi = if i + 1 < lb then u.(i + 1) else 0 in
      r.(i) <- ((u.(i) lsr shift) lor (hi lsl (base_bits - shift))) land base_mask
    done;
    (normalize 1 q, normalize 1 r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let q, r = divmod_mag a.mag b.mag in
    let q = if a.sign * b.sign > 0 then q else neg q in
    let r = if a.sign > 0 then r else neg r in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Binary (Stein) GCD: shifts and subtractions only. Division-free, so
   canonicalising a [Q] no longer pays a long division per Euclid step. *)
let gcd a b =
  let a = abs a and b = abs b in
  if is_zero a then b
  else if is_zero b then a
  else begin
    let trailing_zeros t =
      let i = ref 0 in
      while t.mag.(!i) = 0 do
        incr i
      done;
      let v = ref t.mag.(!i) and bits = ref 0 in
      while !v land 1 = 0 do
        v := !v lsr 1;
        incr bits
      done;
      (!i * base_bits) + !bits
    in
    let ka = trailing_zeros a and kb = trailing_zeros b in
    let a = ref (shift_right_bits a ka) and b = ref (shift_right_bits b kb) in
    (* Both odd; the invariant is restored after every step. *)
    let continue = ref true in
    while !continue do
      let c = compare_mag !a.mag !b.mag in
      if c = 0 then continue := false
      else begin
        if c < 0 then begin
          let t = !a in
          a := !b;
          b := t
        end;
        let d = normalize 1 (sub_mag !a.mag !b.mag) in
        a := !b;
        b := shift_right_bits d (trailing_zeros d)
      end
    done;
    shift_left_bits !a (Stdlib.min ka kb)
  end

let pow b n =
  if n < 0 then invalid_arg "Z.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
    else go acc (mul b b) (n lsr 1)
  in
  go one b n

let to_int_opt t =
  if t.sign = 0 then Some 0
  else begin
    let bits = num_bits t in
    if bits <= 62 then begin
      let v = ref 0 in
      for i = Array.length t.mag - 1 downto 0 do
        v := (!v lsl base_bits) lor t.mag.(i)
      done;
      Some (t.sign * !v)
    end
    else if bits = 63 && t.sign < 0 && equal t (of_int Stdlib.min_int) then
      Some Stdlib.min_int
    else None
  end

let to_int t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Z.to_int: does not fit in a native int"

let ten_thousand = of_int 10_000

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks acc v =
      if is_zero v then acc
      else begin
        let q, r = divmod v ten_thousand in
        chunks (to_int r :: acc) q
      end
    in
    match chunks [] (abs t) with
    | [] -> "0"
    | first :: rest ->
      if t.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Z.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Z.of_string: no digits";
  let v = ref zero in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Z.of_string: invalid character";
    v := add (mul !v (of_int 10)) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !v else !v

let hash t =
  Array.fold_left (fun acc d -> (acc * 31) + d) (t.sign + 1) t.mag

let pp fmt t = Format.pp_print_string fmt (to_string t)
