(** Arbitrary-precision signed integers.

    A small, dependency-free bignum used as the substrate for exact
    rational edge weights ({!Q}). The magnitudes arising in this project
    are modest (hundreds of digits at most), so the implementation favours
    simplicity and obvious correctness over asymptotic speed: schoolbook
    multiplication and shift-subtract division. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** [of_int n] converts an OCaml native integer exactly. *)
val of_int : int -> t

(** [to_int t] converts back to a native integer.
    @raise Failure if the value does not fit. *)
val to_int : t -> int

(** [to_int_opt t] is [Some n] iff [t] fits in a native integer. *)
val to_int_opt : t -> int option

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward
    zero and [r] carrying the sign of [a] (OCaml [/] and [mod] semantics).
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

(** [pow base n] for [n >= 0]. @raise Invalid_argument on negative [n]. *)
val pow : t -> int -> t

val sign : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_zero : t -> bool
val hash : t -> int

(** Decimal conversion. [of_string] accepts an optional leading ['-'].
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t
val to_string : t -> string

val pp : Format.formatter -> t -> unit
