(* Warm-restart persistence — see cache_store.mli for the policy. *)

module LB = Lower_bound
module Store = Ld_store.Store
module Obs = Ld_obs.Obs

let c_warm = Obs.Counter.make "core.cache_store.warm"
let c_cold = Obs.Counter.make "core.cache_store.cold"
let c_levels_saved = Obs.Counter.make "core.cache_store.levels_saved"

let code_version = "1"

let key ~delta ~level ~algo ~check_views =
  Printf.sprintf "ld-cache/v%s delta=%d level=%d views=%b algo=%s" code_version
    delta level check_views algo

type entry = {
  entry_level : int;
  entry_certificate : LB.certificate;
  entry_probes : LB.probe list;
}

(* Entry framing: level, certificate, probe count, probes — all via the
   Certificate_io binary codec conventions (64-bit LE ints). *)

let put_int buf i = Buffer.add_int64_le buf (Int64.of_int i)

let get_int s pos =
  if !pos + 8 > String.length s then
    failwith "Cache_store: truncated binary record";
  let v = Int64.to_int (String.get_int64_le s !pos) in
  pos := !pos + 8;
  v

let entry_to_string e =
  let buf = Buffer.create 4096 in
  put_int buf e.entry_level;
  Certificate_io.certificate_to_binary buf e.entry_certificate;
  put_int buf (List.length e.entry_probes);
  List.iter (Certificate_io.probe_to_binary buf) e.entry_probes;
  Buffer.contents buf

let entry_of_string s =
  let decode () =
    let pos = ref 0 in
    let entry_level = get_int s pos in
    let entry_certificate = Certificate_io.certificate_of_binary s ~pos in
    let n = get_int s pos in
    if n < 0 || n > String.length s then
      failwith "Cache_store: absurd probe count";
    let entry_probes =
      List.init n (fun _ -> Certificate_io.probe_of_binary s ~pos)
    in
    if !pos <> String.length s then
      failwith "Cache_store: trailing bytes after entry";
    { entry_level; entry_certificate; entry_probes }
  in
  (* A garbled-but-checksummed payload can trip constructor validation
     ([Ec.create_arrays], [Q.of_string]) with [Invalid_argument] or
     [Division_by_zero]; fold those into the codec's [Failure] contract
     so callers have one corruption signal. *)
  match decode () with
  | e -> e
  | exception Invalid_argument msg ->
    failwith ("Cache_store: invalid binary record: " ^ msg)
  | exception Division_by_zero ->
    failwith "Cache_store: invalid binary record: division by zero"

let save_cache store cache =
  match LB.cache_outcome cache with
  | LB.Refuted _ -> false
  | LB.Certified certs ->
    let delta = LB.cache_delta cache in
    let algo = LB.cache_algo_name cache in
    let check_views = LB.cache_check_views cache in
    let probes = LB.cache_probes cache in
    let grouped =
      List.map
        (fun (c : LB.certificate) ->
          ( c,
            List.filter
              (fun (p : LB.probe) -> p.probe_level = c.level)
              probes ))
        certs
    in
    let covered =
      List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 grouped
    in
    if covered <> List.length probes then
      (* Some probe's level matches no certificate — the partition
         assumption the warm path depends on is broken; refuse to
         persist a construction we could not faithfully reload. *)
      false
    else begin
      List.iter
        (fun ((c : LB.certificate), entry_probes) ->
          let payload =
            entry_to_string
              {
                entry_level = c.level;
                entry_certificate = c;
                entry_probes;
              }
          in
          Store.put store
            ~key:(key ~delta ~level:c.level ~algo ~check_views)
            payload;
          Obs.Counter.incr c_levels_saved)
        grouped;
      true
    end

let load_cache store ~check_views ~delta ~algo_name =
  if delta < 2 then invalid_arg "Cache_store.load_cache: delta < 2";
  let corrupt k msg =
    raise (Store.Store_corrupt (Printf.sprintf "%s: %s" k msg))
  in
  let rec fetch acc level =
    if level > delta - 2 then Some (List.rev acc)
    else begin
      let k = key ~delta ~level ~algo:algo_name ~check_views in
      match Store.get store ~key:k with
      | None -> None
      | Some payload ->
        let e =
          match entry_of_string payload with
          | e -> e
          | exception Failure msg -> corrupt k msg
        in
        if e.entry_level <> level then corrupt k "entry level mismatch";
        fetch (e :: acc) (level + 1)
    end
  in
  match fetch [] 0 with
  | None -> None
  | Some entries ->
    let certs = List.map (fun e -> e.entry_certificate) entries in
    let probes = List.concat_map (fun e -> e.entry_probes) entries in
    Some
      (LB.assemble_cache ~delta ~algo_name ~check_views ~probes
         ~outcome:(LB.Certified certs))

let build_cache ?store ?(check_views = true) ?(incremental_views = true)
    ~delta (algo : LB.algorithm) =
  match store with
  | None -> LB.build_cache ~check_views ~incremental_views ~delta algo
  | Some store -> (
    if delta < 2 then invalid_arg "Cache_store.build_cache: delta < 2";
    let warm =
      match load_cache store ~check_views ~delta ~algo_name:algo.name with
      | warm -> warm
      | exception Store.Store_corrupt _ ->
        (* Self-heal: [store.corrupt] already counted the incident;
           drop the damaged level records so the cold re-save below
           publishes clean ones, and recompute. *)
        for level = 0 to delta - 2 do
          Store.delete store
            ~key:(key ~delta ~level ~algo:algo.name ~check_views)
        done;
        None
    in
    match warm with
    | Some cache ->
      Obs.Counter.incr c_warm;
      cache
    | None ->
      Obs.Counter.incr c_cold;
      let cache = LB.build_cache ~check_views ~incremental_views ~delta algo in
      let (_ : bool) = save_cache store cache in
      cache)
