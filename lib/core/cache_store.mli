(** Warm-restart persistence for memoised constructions.

    {!Lower_bound.build_cache} is the dominant cost of every frontier
    scan: it runs the full adversary once per [(delta, algorithm)].
    This module spills the resulting cache into a content-addressed
    {!Ld_store.Store} as one record per level — the level's certificate
    plus every feasibility probe recorded while constructing it — and
    rebuilds the cache on a later run without executing the algorithm
    at all, so a second full THM1 sweep is dominated by I/O.

    Keys include a {!code_version} fingerprint: bumping it (on any
    codec or construction change) cleanly invalidates old records
    instead of misreading them. Only [Certified] outcomes are stored —
    a refutation carries a failure witness whose value is in being
    fresh, and refuted runs are cheap (they stop early).

    Corruption policy: a record that fails the store's frame checks or
    this module's decode surfaces as {!Ld_store.Store.Store_corrupt}
    from {!load_cache}; the {!build_cache} wrapper catches it, deletes
    the damaged records, recomputes cold and re-saves
    ([store.corrupt] counts the incident). A corrupt store never
    crashes a run and never masquerades as a hit. *)

module Store = Ld_store.Store

(** Bump on any change to the entry codec or to the construction
    itself; stale records then miss instead of being misread. *)
val code_version : string

(** The store key of one level's record. Single-line, human-greppable
    in the store index: [ld-cache/v<ver> delta=<d> level=<l>
    views=<b> algo=<name>]. *)
val key : delta:int -> level:int -> algo:string -> check_views:bool -> string

(** One persisted level: its certificate and, in canonical check
    order, the probes recorded while constructing it. *)
type entry = {
  entry_level : int;
  entry_certificate : Lower_bound.certificate;
  entry_probes : Lower_bound.probe list;
}

val entry_to_string : entry -> string

(** @raise Failure on malformed input (trailing bytes included). *)
val entry_of_string : string -> entry

(** [save_cache store cache] writes one record per certified level.
    Returns [false] (and writes nothing) for a [Refuted] outcome or a
    cache whose probes don't partition by certificate level. Writing
    an already-present level is a no-op ({!Store.put} recognises the
    byte-identical record). *)
val save_cache : Store.t -> Lower_bound.cache -> bool

(** [load_cache store ~check_views ~delta ~algo_name] reassembles a
    cache from the store, or [None] if any level [0 … delta-2] is
    missing. The reassembled cache is field-for-field identical to the
    {!Lower_bound.build_cache} original (the warm/cold pin in
    [test_store] holds this to byte-identical serialisations).
    @raise Store.Store_corrupt if a present record is undecodable.
    @raise Invalid_argument if [delta < 2]. *)
val load_cache :
  Store.t -> check_views:bool -> delta:int -> algo_name:string ->
  Lower_bound.cache option

(** [build_cache ?store ~delta algo] is {!Lower_bound.build_cache}
    with optional persistence: with a store, a fully-populated set of
    level records short-circuits the construction entirely (no
    [core.lb.build_cache] span is emitted, [core.cache_store.warm]
    increments); on a miss or corruption it recomputes and saves
    ([core.cache_store.cold]). Without [store] it is exactly
    {!Lower_bound.build_cache}.
    @raise Invalid_argument if [delta < 2]. *)
val build_cache :
  ?store:Store.t -> ?check_views:bool -> ?incremental_views:bool ->
  delta:int -> Lower_bound.algorithm -> Lower_bound.cache
