module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Fm = Ld_fm.Fm
module S = Sexp

(* ---- serialisation ---- *)

let sexp_of_graph g =
  S.list
    [
      S.field "n" [ S.int (Ec.n g) ];
      S.field "edges"
        (List.map
           (fun (e : Ec.edge) -> S.list [ S.int e.u; S.int e.v; S.int e.colour ])
           (Ec.edges g));
      S.field "loops"
        (List.map
           (fun (l : Ec.loop) -> S.list [ S.int l.node; S.int l.colour ])
           (Ec.loops g));
    ]

let graph_of_sexp s =
  let n = S.to_int (List.hd (S.find "n" s)) in
  let triple = function
    | S.List [ a; b; c ] -> (S.to_int a, S.to_int b, S.to_int c)
    | _ -> failwith "Certificate_io: bad edge"
  in
  let pair = function
    | S.List [ a; b ] -> (S.to_int a, S.to_int b)
    | _ -> failwith "Certificate_io: bad loop"
  in
  Ec.create ~n
    ~edges:(List.map triple (S.find "edges" s))
    ~loops:(List.map pair (S.find "loops" s))

let sexp_of_certificate (c : Lower_bound.certificate) =
  S.field "certificate"
    [
      S.field "level" [ S.int c.level ];
      S.field "colour" [ S.int c.colour ];
      S.field "g-graph" [ sexp_of_graph c.g_graph ];
      S.field "h-graph" [ sexp_of_graph c.h_graph ];
      S.field "g-node" [ S.int c.g_node ];
      S.field "h-node" [ S.int c.h_node ];
      S.field "g-loop" [ S.int c.g_loop ];
      S.field "h-loop" [ S.int c.h_loop ];
      S.field "g-weight" [ S.atom (Q.to_string c.g_weight) ];
      S.field "h-weight" [ S.atom (Q.to_string c.h_weight) ];
    ]

let certificate_of_sexp s =
  let body =
    match s with
    | S.List (S.Atom "certificate" :: body) -> S.List body
    | _ -> failwith "Certificate_io: expected (certificate ...)"
  in
  let one name = List.hd (S.find name body) in
  {
    Lower_bound.level = S.to_int (one "level");
    colour = S.to_int (one "colour");
    g_graph = graph_of_sexp (one "g-graph");
    h_graph = graph_of_sexp (one "h-graph");
    g_node = S.to_int (one "g-node");
    h_node = S.to_int (one "h-node");
    g_loop = S.to_int (one "g-loop");
    h_loop = S.to_int (one "h-loop");
    g_weight = Q.of_string (S.to_atom (one "g-weight"));
    h_weight = Q.of_string (S.to_atom (one "h-weight"));
    views_checked = false; (* a loaded certificate is unverified *)
  }

let to_string certs =
  String.concat "\n" (List.map (fun c -> S.to_string (sexp_of_certificate c)) certs)
  ^ "\n"

let of_string text =
  (* One sexp per line group: reparse greedily by balancing parens. *)
  let items = ref [] in
  let depth = ref 0 and start = ref None in
  String.iteri
    (fun i ch ->
      match ch with
      | '(' ->
        if !depth = 0 then start := Some i;
        incr depth
      | ')' ->
        decr depth;
        if !depth = 0 then begin
          match !start with
          | Some s_pos ->
            items := String.sub text s_pos (i - s_pos + 1) :: !items;
            start := None
          | None -> failwith "Certificate_io.of_string: unbalanced"
        end
      | _ -> ())
    text;
  if !depth <> 0 then failwith "Certificate_io.of_string: unbalanced";
  List.rev_map (fun item -> certificate_of_sexp (S.of_string item)) !items

let save path certs =
  let oc = open_out path in
  output_string oc (to_string certs);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

(* ---- verification ---- *)

type check = {
  chk_level : int;
  chk_structure : bool;
  chk_views : bool;
  chk_weights_differ : bool;
  chk_outputs : bool option;
}

let check_ok c =
  c.chk_structure && c.chk_views && c.chk_weights_differ
  && (match c.chk_outputs with Some false -> false | Some true | None -> true)

let is_tree_plus_loops g =
  let module Gr = Ld_graph.Graph in
  match
    Gr.create (Ec.n g)
      (List.map (fun (x : Ec.edge) -> (Stdlib.min x.u x.v, Stdlib.max x.u x.v))
         (Ec.edges g))
  with
  | exception Invalid_argument _ -> false
  | sg -> Gr.m sg = Gr.n sg - 1 && Gr.is_connected sg

let verify ?algorithm ~delta certs =
  List.map
    (fun (c : Lower_bound.certificate) ->
      let loop_ok g loop_id node =
        loop_id >= 0
        && loop_id < Ec.num_loops g
        &&
        let l = Ec.loop g loop_id in
        l.colour = c.colour && l.node = node
      in
      let chk_structure =
        loop_ok c.g_graph c.g_loop c.g_node
        && loop_ok c.h_graph c.h_loop c.h_node
        && Ec.min_loops c.g_graph >= delta - 1 - c.level
        && Ec.min_loops c.h_graph >= delta - 1 - c.level
        && Ec.max_degree c.g_graph <= delta
        && Ec.max_degree c.h_graph <= delta
        && is_tree_plus_loops c.g_graph
        && is_tree_plus_loops c.h_graph
      in
      let chk_views =
        chk_structure
        && Ld_cover.Refinement.equivalent_radius c.g_graph c.g_node c.h_graph
             c.h_node ~radius:c.level
      in
      let chk_weights_differ = not (Q.equal c.g_weight c.h_weight) in
      let chk_outputs =
        match algorithm with
        | None -> None
        | Some (a : Lower_bound.algorithm) ->
          if not chk_structure then Some false
          else begin
            let yg = a.run c.g_graph and yh = a.run c.h_graph in
            Some
              (Q.equal (Fm.loop_weight yg c.g_loop) c.g_weight
              && Q.equal (Fm.loop_weight yh c.h_loop) c.h_weight)
          end
      in
      { chk_level = c.level; chk_structure; chk_views; chk_weights_differ; chk_outputs })
    certs

let pp_check fmt c =
  Format.fprintf fmt
    "level %d: structure %s, views %s, weights differ %s, outputs %s"
    c.chk_level
    (if c.chk_structure then "ok" else "FAIL")
    (if c.chk_views then "isomorphic" else "FAIL")
    (if c.chk_weights_differ then "ok" else "FAIL")
    (match c.chk_outputs with
    | None -> "not re-run"
    | Some true -> "reproduced"
    | Some false -> "FAIL")
