module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Fm = Ld_fm.Fm
module S = Sexp

(* ---- serialisation ---- *)

let sexp_of_graph g =
  S.list
    [
      S.field "n" [ S.int (Ec.n g) ];
      S.field "edges"
        (List.map
           (fun (e : Ec.edge) -> S.list [ S.int e.u; S.int e.v; S.int e.colour ])
           (Ec.edges g));
      S.field "loops"
        (List.map
           (fun (l : Ec.loop) -> S.list [ S.int l.node; S.int l.colour ])
           (Ec.loops g));
    ]

let graph_of_sexp s =
  let n = S.to_int (List.hd (S.find "n" s)) in
  let triple = function
    | S.List [ a; b; c ] -> (S.to_int a, S.to_int b, S.to_int c)
    | _ -> failwith "Certificate_io: bad edge"
  in
  let pair = function
    | S.List [ a; b ] -> (S.to_int a, S.to_int b)
    | _ -> failwith "Certificate_io: bad loop"
  in
  Ec.create ~n
    ~edges:(List.map triple (S.find "edges" s))
    ~loops:(List.map pair (S.find "loops" s))

let sexp_of_certificate (c : Lower_bound.certificate) =
  S.field "certificate"
    [
      S.field "level" [ S.int c.level ];
      S.field "colour" [ S.int c.colour ];
      S.field "g-graph" [ sexp_of_graph c.g_graph ];
      S.field "h-graph" [ sexp_of_graph c.h_graph ];
      S.field "g-node" [ S.int c.g_node ];
      S.field "h-node" [ S.int c.h_node ];
      S.field "g-loop" [ S.int c.g_loop ];
      S.field "h-loop" [ S.int c.h_loop ];
      S.field "g-weight" [ S.atom (Q.to_string c.g_weight) ];
      S.field "h-weight" [ S.atom (Q.to_string c.h_weight) ];
    ]

let certificate_of_sexp s =
  let body =
    match s with
    | S.List (S.Atom "certificate" :: body) -> S.List body
    | _ -> failwith "Certificate_io: expected (certificate ...)"
  in
  let one name = List.hd (S.find name body) in
  {
    Lower_bound.level = S.to_int (one "level");
    colour = S.to_int (one "colour");
    g_graph = graph_of_sexp (one "g-graph");
    h_graph = graph_of_sexp (one "h-graph");
    g_node = S.to_int (one "g-node");
    h_node = S.to_int (one "h-node");
    g_loop = S.to_int (one "g-loop");
    h_loop = S.to_int (one "h-loop");
    g_weight = Q.of_string (S.to_atom (one "g-weight"));
    h_weight = Q.of_string (S.to_atom (one "h-weight"));
    views_checked = false; (* a loaded certificate is unverified *)
  }

let to_string certs =
  String.concat "\n" (List.map (fun c -> S.to_string (sexp_of_certificate c)) certs)
  ^ "\n"

let of_string text =
  (* One sexp per line group: reparse greedily by balancing parens. *)
  let items = ref [] in
  let depth = ref 0 and start = ref None in
  String.iteri
    (fun i ch ->
      match ch with
      | '(' ->
        if !depth = 0 then start := Some i;
        incr depth
      | ')' ->
        decr depth;
        if !depth = 0 then begin
          match !start with
          | Some s_pos ->
            items := String.sub text s_pos (i - s_pos + 1) :: !items;
            start := None
          | None -> failwith "Certificate_io.of_string: unbalanced"
        end
      | _ -> ())
    text;
  if !depth <> 0 then failwith "Certificate_io.of_string: unbalanced";
  List.rev_map (fun item -> certificate_of_sexp (S.of_string item)) !items

let save path certs =
  let oc = open_out path in
  output_string oc (to_string certs);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

(* ---- binary codecs (persistent store) ----

   The sexp codec above is the human-auditable interchange format; the
   persistent store wants something it can write and reparse at disk
   speed for multi-megabyte level-18 graphs. Layout: ints are 64-bit
   little-endian, strings (rational weights via [Q.to_string]) are
   length-prefixed, arrays are count-prefixed. Truncated or garbled
   input surfaces as [Failure] from the explicit bounds checks — never
   an out-of-bounds crash. *)

let bin_truncated () = failwith "Certificate_io: truncated binary record"

let bput_int buf i = Buffer.add_int64_le buf (Int64.of_int i)

let bget_int s pos =
  if !pos + 8 > String.length s then bin_truncated ();
  let v = Int64.to_int (String.get_int64_le s !pos) in
  pos := !pos + 8;
  v

let bput_str buf x =
  bput_int buf (String.length x);
  Buffer.add_string buf x

let bget_str s pos =
  let n = bget_int s pos in
  if n < 0 || !pos + n > String.length s then bin_truncated ();
  let x = String.sub s !pos n in
  pos := !pos + n;
  x

let graph_to_binary buf g =
  bput_int buf (Ec.n g);
  bput_int buf (Ec.num_edges g);
  for j = 0 to Ec.num_edges g - 1 do
    let (e : Ec.edge) = Ec.edge g j in
    bput_int buf e.u;
    bput_int buf e.v;
    bput_int buf e.colour
  done;
  bput_int buf (Ec.num_loops g);
  for j = 0 to Ec.num_loops g - 1 do
    let (l : Ec.loop) = Ec.loop g j in
    bput_int buf l.node;
    bput_int buf l.colour
  done

let graph_of_binary s ~pos =
  let n = bget_int s pos in
  let num_edges = bget_int s pos in
  if num_edges < 0 then bin_truncated ();
  let edges =
    Array.init num_edges (fun _ ->
        let u = bget_int s pos in
        let v = bget_int s pos in
        let colour = bget_int s pos in
        { Ec.u; v; colour })
  in
  let num_loops = bget_int s pos in
  if num_loops < 0 then bin_truncated ();
  let loops =
    Array.init num_loops (fun _ ->
        let node = bget_int s pos in
        let colour = bget_int s pos in
        { Ec.node; colour })
  in
  Ec.create_arrays ~n ~edges ~loops

let fm_to_binary buf y =
  let g = Fm.graph y in
  bput_int buf (Ec.num_edges g);
  for j = 0 to Ec.num_edges g - 1 do
    bput_str buf (Q.to_string (Fm.edge_weight y j))
  done;
  bput_int buf (Ec.num_loops g);
  for j = 0 to Ec.num_loops g - 1 do
    bput_str buf (Q.to_string (Fm.loop_weight y j))
  done

(* The output of a probe, decoded against its graph (weight counts must
   match the graph's edge and loop counts). *)
let fm_of_binary s ~pos graph =
  let ne = bget_int s pos in
  if ne <> Ec.num_edges graph then
    failwith "Certificate_io: binary FM edge count does not match graph";
  let edge_w = Array.init ne (fun _ -> Q.of_string (bget_str s pos)) in
  let nl = bget_int s pos in
  if nl <> Ec.num_loops graph then
    failwith "Certificate_io: binary FM loop count does not match graph";
  let loop_w = Array.init nl (fun _ -> Q.of_string (bget_str s pos)) in
  Fm.create graph ~edge_w ~loop_w

let certificate_to_binary buf (c : Lower_bound.certificate) =
  bput_int buf c.level;
  bput_int buf c.colour;
  graph_to_binary buf c.g_graph;
  graph_to_binary buf c.h_graph;
  bput_int buf c.g_node;
  bput_int buf c.h_node;
  bput_int buf c.g_loop;
  bput_int buf c.h_loop;
  bput_str buf (Q.to_string c.g_weight);
  bput_str buf (Q.to_string c.h_weight);
  bput_int buf (if c.views_checked then 1 else 0)

let certificate_of_binary s ~pos =
  let level = bget_int s pos in
  let colour = bget_int s pos in
  let g_graph = graph_of_binary s ~pos in
  let h_graph = graph_of_binary s ~pos in
  let g_node = bget_int s pos in
  let h_node = bget_int s pos in
  let g_loop = bget_int s pos in
  let h_loop = bget_int s pos in
  let g_weight = Q.of_string (bget_str s pos) in
  let h_weight = Q.of_string (bget_str s pos) in
  let views_checked = bget_int s pos <> 0 in
  {
    Lower_bound.level;
    colour;
    g_graph;
    h_graph;
    g_node;
    h_node;
    g_loop;
    h_loop;
    g_weight;
    h_weight;
    views_checked;
  }

let probe_to_binary buf (p : Lower_bound.probe) =
  bput_int buf p.probe_level;
  graph_to_binary buf p.probe_graph;
  fm_to_binary buf p.probe_base

let probe_of_binary s ~pos =
  let probe_level = bget_int s pos in
  let probe_graph = graph_of_binary s ~pos in
  let probe_base = fm_of_binary s ~pos probe_graph in
  { Lower_bound.probe_level; probe_graph; probe_base }

(* ---- verification ---- *)

type check = {
  chk_level : int;
  chk_structure : bool;
  chk_views : bool;
  chk_weights_differ : bool;
  chk_outputs : bool option;
}

let check_ok c =
  c.chk_structure && c.chk_views && c.chk_weights_differ
  && (match c.chk_outputs with Some false -> false | Some true | None -> true)

let is_tree_plus_loops g =
  let module Gr = Ld_graph.Graph in
  match
    Gr.create (Ec.n g)
      (List.map (fun (x : Ec.edge) -> (Stdlib.min x.u x.v, Stdlib.max x.u x.v))
         (Ec.edges g))
  with
  | exception Invalid_argument _ -> false
  | sg -> Gr.m sg = Gr.n sg - 1 && Gr.is_connected sg

let verify ?algorithm ~delta certs =
  List.map
    (fun (c : Lower_bound.certificate) ->
      let loop_ok g loop_id node =
        loop_id >= 0
        && loop_id < Ec.num_loops g
        &&
        let l = Ec.loop g loop_id in
        l.colour = c.colour && l.node = node
      in
      let chk_structure =
        loop_ok c.g_graph c.g_loop c.g_node
        && loop_ok c.h_graph c.h_loop c.h_node
        && Ec.min_loops c.g_graph >= delta - 1 - c.level
        && Ec.min_loops c.h_graph >= delta - 1 - c.level
        && Ec.max_degree c.g_graph <= delta
        && Ec.max_degree c.h_graph <= delta
        && is_tree_plus_loops c.g_graph
        && is_tree_plus_loops c.h_graph
      in
      let chk_views =
        chk_structure
        && Ld_cover.Refinement.equivalent_radius c.g_graph c.g_node c.h_graph
             c.h_node ~radius:c.level
      in
      let chk_weights_differ = not (Q.equal c.g_weight c.h_weight) in
      let chk_outputs =
        match algorithm with
        | None -> None
        | Some (a : Lower_bound.algorithm) ->
          if not chk_structure then Some false
          else begin
            let yg = a.run c.g_graph and yh = a.run c.h_graph in
            Some
              (Q.equal (Fm.loop_weight yg c.g_loop) c.g_weight
              && Q.equal (Fm.loop_weight yh c.h_loop) c.h_weight)
          end
      in
      { chk_level = c.level; chk_structure; chk_views; chk_weights_differ; chk_outputs })
    certs

let pp_check fmt c =
  Format.fprintf fmt
    "level %d: structure %s, views %s, weights differ %s, outputs %s"
    c.chk_level
    (if c.chk_structure then "ok" else "FAIL")
    (if c.chk_views then "isomorphic" else "FAIL")
    (if c.chk_weights_differ then "ok" else "FAIL")
    (match c.chk_outputs with
    | None -> "not re-run"
    | Some true -> "reproduced"
    | Some false -> "FAIL")
