(** Serialisation and independent verification of lower-bound
    certificates.

    A certificate chain produced by {!Lower_bound.run} can be written to
    disk and later re-verified from scratch — against the graphs alone
    (view isomorphism + structural claims), or additionally against the
    algorithm (re-running it and comparing the claimed outputs). This
    separates certificate {e checking} from certificate {e generation},
    the usual standard for a verifiable artifact. *)

(** Serialise a certificate chain. *)
val to_string : Lower_bound.certificate list -> string

(** @raise Failure on malformed input. *)
val of_string : string -> Lower_bound.certificate list

val save : string -> Lower_bound.certificate list -> unit
val load : string -> Lower_bound.certificate list

(** What independent verification established for one level. *)
type check = {
  chk_level : int;
  chk_structure : bool;
      (** the named loops exist, with the stated colour, at the stated
          nodes; P2 loopiness and P3 tree-shape hold for the stated Δ *)
  chk_views : bool;
      (** radius-[level] views at the distinguished nodes are isomorphic
          (recomputed by colour refinement) *)
  chk_weights_differ : bool;
  chk_outputs : bool option;
      (** when an algorithm is supplied: re-running it reproduces the
          claimed loop weights on both graphs ([None] if not re-run) *)
}

val check_ok : check -> bool

(** [verify ?algorithm ~delta certs] re-checks every level. *)
val verify :
  ?algorithm:Lower_bound.algorithm -> delta:int ->
  Lower_bound.certificate list -> check list

val pp_check : Format.formatter -> check -> unit
