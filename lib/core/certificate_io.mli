(** Serialisation and independent verification of lower-bound
    certificates.

    A certificate chain produced by {!Lower_bound.run} can be written to
    disk and later re-verified from scratch — against the graphs alone
    (view isomorphism + structural claims), or additionally against the
    algorithm (re-running it and comparing the claimed outputs). This
    separates certificate {e checking} from certificate {e generation},
    the usual standard for a verifiable artifact. *)

(** Serialise a certificate chain. *)
val to_string : Lower_bound.certificate list -> string

(** @raise Failure on malformed input. *)
val of_string : string -> Lower_bound.certificate list

val save : string -> Lower_bound.certificate list -> unit
val load : string -> Lower_bound.certificate list

(** {2 Binary codecs}

    The persistent certificate store ({!Cache_store}) serialises whole
    constructions — certificates plus every recorded probe — and a
    level-18 probe graph runs to megabytes, so the store uses a compact
    binary layout instead of the sexp text above: 64-bit little-endian
    ints, length-prefixed strings ([Q.to_string] rationals),
    count-prefixed arrays. Unlike {!of_string}, the binary certificate
    codec round-trips [views_checked], so a reloaded construction is
    field-for-field identical to the one that was saved.

    Encoders append to a [Buffer.t]; decoders read from a string at
    [!pos] and advance it. Decoders raise [Failure] on truncated or
    malformed input — never an out-of-bounds exception. *)

val certificate_to_binary : Buffer.t -> Lower_bound.certificate -> unit

(** @raise Failure on malformed input. *)
val certificate_of_binary : string -> pos:int ref -> Lower_bound.certificate

val probe_to_binary : Buffer.t -> Lower_bound.probe -> unit

(** @raise Failure on malformed input (including an output whose weight
    counts do not match its probe graph). *)
val probe_of_binary : string -> pos:int ref -> Lower_bound.probe

(** What independent verification established for one level. *)
type check = {
  chk_level : int;
  chk_structure : bool;
      (** the named loops exist, with the stated colour, at the stated
          nodes; P2 loopiness and P3 tree-shape hold for the stated Δ *)
  chk_views : bool;
      (** radius-[level] views at the distinguished nodes are isomorphic
          (recomputed by colour refinement) *)
  chk_weights_differ : bool;
  chk_outputs : bool option;
      (** when an algorithm is supplied: re-running it reproduces the
          claimed loop weights on both graphs ([None] if not re-run) *)
}

val check_ok : check -> bool

(** [verify ?algorithm ~delta certs] re-checks every level. *)
val verify :
  ?algorithm:Lower_bound.algorithm -> delta:int ->
  Lower_bound.certificate list -> check list

val pp_check : Format.formatter -> check -> unit
