module G = Ld_graph.Graph
module Id = Ld_models.Labelled.Id

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let s = subsets rest in
    List.map (fun t -> x :: t) s @ s

let all_graphs_on k =
  (* All edge subsets of the complete graph on k nodes. *)
  let pairs = ref [] in
  for u = 0 to k - 1 do
    for v = u + 1 to k - 1 do
      pairs := (u, v) :: !pairs
    done
  done;
  List.map (fun es -> G.create k es) (subsets !pairs)

let all_id_graphs ids =
  let ids = List.sort_uniq Int.compare ids in
  List.concat_map
    (fun subset ->
      match subset with
      | [] -> []
      | _ ->
        let arr = Array.of_list subset in
        List.map
          (fun g -> Id.create g arr)
          (all_graphs_on (Array.length arr)))
    (subsets ids)

let find_seed ~ids ~seeds ~correct =
  let graphs = all_id_graphs ids in
  let trials = ref 0 in
  let good seed =
    List.for_all
      (fun idg ->
        incr trials;
        correct idg ~seed)
      graphs
  in
  List.find_opt good seeds |> Option.map (fun s -> (s, !trials))

let failure_rate ~ids ~seeds ~correct =
  let graphs = all_id_graphs ids in
  let total = ref 0 and failures = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun idg ->
          incr total;
          if not (correct idg ~seed) then incr failures)
        graphs)
    seeds;
  if !total = 0 then 0.0 else float_of_int !failures /. float_of_int !total
