(** Derandomising local algorithms (Appendix B, Lemma 10).

    Lemma 10: for every [n] there are an [n]-element identifier set
    [S_n] and a fixed assignment of random strings [ρ_n] such that the
    randomised algorithm, run with [ρ_n] in place of fresh randomness,
    is correct on {e all} graphs whose identifiers come from [S_n]. The
    paper proves existence by an averaging/amplification argument; here
    we simply conduct the search for concrete small [n]: enumerate every
    graph over every subset of [S], and scan candidate randomness seeds
    (a seed determines each identifier's random string, exactly the
    [ρ : V → {0,1}*] of the paper) until one works everywhere. *)

(** [all_id_graphs ids] enumerates every simple graph whose node set is
    any non-empty subset of [ids] (identifiers attached in sorted
    order). Sizes grow as [2^(k choose 2)]; intended for [|ids| <= 5]. *)
val all_id_graphs : int list -> Ld_models.Labelled.Id.t list

(** [find_seed ~ids ~seeds ~correct] returns the first seed under which
    [correct] holds on every graph of [all_id_graphs ids], together
    with the number of (graph, seed) trials performed. *)
val find_seed :
  ids:int list -> seeds:int list ->
  correct:(Ld_models.Labelled.Id.t -> seed:int -> bool) ->
  (int * int) option

(** [failure_rate ~ids ~seeds ~correct] measures, for reporting, the
    fraction of (graph, seed) pairs on which [correct] fails — the
    empirical failure probability that Lemma 10's averaging argument
    beats. *)
val failure_rate :
  ids:int list -> seeds:int list ->
  correct:(Ld_models.Labelled.Id.t -> seed:int -> bool) -> float
