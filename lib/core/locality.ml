module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Fm = Ld_fm.Fm
module Refinement = Ld_cover.Refinement

type violation = {
  graph_a : int;
  node_a : int;
  graph_b : int;
  node_b : int;
  radius : int;
}

(* A node's local output: the weight on each of its dart colours. *)
let node_output y v =
  List.map
    (fun d -> (Ec.dart_colour d, Fm.dart_weight y d))
    (Ec.darts (Fm.graph y) v)

let violation_at ~radius (algo : Lower_bound.algorithm) probes =
  let outputs = List.map algo.run probes in
  (* One refinement over the disjoint union keeps labels comparable
     across probes. *)
  let union = List.fold_left Ec.disjoint_union (Ec.create ~n:0 ~edges:[] ~loops:[]) probes in
  let history = Refinement.refine_ec union ~rounds:radius in
  let labels = history.(radius) in
  let offsets =
    List.rev
      (snd
         (List.fold_left
            (fun (off, acc) g -> (off + Ec.n g, off :: acc))
            (0, []) probes))
  in
  (* Group nodes by label; within a group, all outputs must agree. *)
  let table : (int, (int * int * (int * Q.t) list)) Hashtbl.t = Hashtbl.create 64 in
  let found = ref None in
  List.iteri
    (fun gi g ->
      let off = List.nth offsets gi in
      let y = List.nth outputs gi in
      for v = 0 to Ec.n g - 1 do
        if !found = None then begin
          let label = labels.(off + v) in
          let out = node_output y v in
          match Hashtbl.find_opt table label with
          | None -> Hashtbl.add table label (gi, v, out)
          | Some (gj, w, out') ->
            let equal_outputs =
              List.length out = List.length out'
              && List.for_all2
                   (fun (c, q) (c', q') -> c = c' && Q.equal q q')
                   out out'
            in
            if not equal_outputs then
              found :=
                Some { graph_a = gj; node_a = w; graph_b = gi; node_b = v; radius }
        end
      done)
    probes;
  !found

let empirical_locality ~max_radius algo probes =
  let rec scan t =
    if t > max_radius then None
    else if violation_at ~radius:t algo probes = None then Some t
    else scan (t + 1)
  in
  scan 0

let probes_of_certificates certs =
  List.concat_map
    (fun (c : Lower_bound.certificate) -> [ c.g_graph; c.h_graph ])
    certs

let id_local_at ~radius ~run ~equal idg v =
  let full = run idg in
  let ball = Ld_cover.Ball.extract idg v ~radius in
  let local = run ball.Ld_cover.Ball.ball_graph in
  equal full.(v) local.(ball.Ld_cover.Ball.root)
