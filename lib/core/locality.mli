(** Empirical locality measurement — the paper's Definition (1) as a
    test.

    A [t]-time algorithm is a function with [A(G, v) = A(τ_t(G, v))]:
    nodes with isomorphic radius-[t] views must receive identical
    outputs. Given a black-box algorithm and a set of probe graphs,
    this module searches for violations — pairs of nodes whose radius-[t]
    views are isomorphic (decided by colour refinement) while their
    output dart weights differ — and reports the smallest radius at
    which no violation is visible.

    The result is an {e empirical} bound: a violation at radius [t]
    {b proves} run-time [> t] (these are exactly the certificates the
    Section 4 adversary manufactures deliberately); absence of
    violations is only evidence, bounded by the probe set. *)

type violation = {
  graph_a : int;  (** index into the probe list *)
  node_a : int;
  graph_b : int;
  node_b : int;
  radius : int;  (** views isomorphic at this radius, outputs differ *)
}

(** [violation_at ~radius algo probes] finds some violation at exactly
    this radius, if one exists among all node pairs of the probes. *)
val violation_at :
  radius:int -> Lower_bound.algorithm -> Ld_models.Ec.t list ->
  violation option

(** [empirical_locality ~max_radius algo probes] is the least
    [t <= max_radius] without violations, or [None] if even
    [max_radius] shows one. A correct [t]-round machine (in the
    communication sense) never exceeds [t + 1] here. *)
val empirical_locality :
  max_radius:int -> Lower_bound.algorithm -> Ld_models.Ec.t list ->
  int option

(** The probe set the adversary's certificates induce: all the [G_i],
    [H_i] graphs of a certificate chain — on these, [empirical_locality]
    of the certified algorithm is provably above the top level. *)
val probes_of_certificates :
  Lower_bound.certificate list -> Ld_models.Ec.t list

(** {1 ID-model locality}

    For identifier-based algorithms the paper's condition (1) reads
    [A(G, v) = A(τ_t(G, v))] over the identified ball. *)

(** [id_local_at ~radius ~run ~equal idg v] extracts [τ_radius(idg, v)]
    (with its original identifiers), re-runs the algorithm on the ball
    alone, and compares the root's two outputs. The outputs must be
    index-independent values (e.g. the matched partner's {e identifier},
    not its node index). *)
val id_local_at :
  radius:int -> run:(Ld_models.Labelled.Id.t -> 'a array) ->
  equal:('a -> 'a -> bool) -> Ld_models.Labelled.Id.t -> int -> bool
