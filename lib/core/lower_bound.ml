module Ec = Ld_models.Ec
module Fm = Ld_fm.Fm
module Q = Ld_arith.Q
module Lift = Ld_cover.Lift
module Refinement = Ld_cover.Refinement
module Propagation = Ld_fm.Propagation
module Obs = Ld_obs.Obs
module Pool = Ld_pool.Pool

(* Adversary-level metrics: probes (algorithm invocations on adversary
   graphs), certificate/refutation outcomes, and the fate of memoised
   frontier replays — hits replay the cached construction, refutations
   stop a replay early, divergences fall back to a full run.
   [incremental_seeded] counts view checks answered against a composed
   covering anchor instead of the full unfolded graph. *)
let c_probes = Obs.Counter.make "core.lb.probes"
let c_certificates = Obs.Counter.make "core.lb.certificates"
let c_refutations = Obs.Counter.make "core.lb.refutations"
let c_memo_hits = Obs.Counter.make "core.lb.memo_replay_hits"
let c_memo_refuted = Obs.Counter.make "core.lb.memo_replay_refuted"
let c_memo_diverged = Obs.Counter.make "core.lb.memo_diverged"
let c_incremental = Obs.Counter.make "core.lb.incremental_seeded"

(* Probe latency histogram; [Hist.timed_span] keeps emitting the same
   "core.lb.probe" span events the trace consumers already expect. *)
let h_probe = Ld_obs.Hist.make "core.lb.probe"

type algorithm = Ld_matching.Packing.algorithm = {
  name : string;
  run : Ec.t -> Fm.t;
}

type certificate = {
  level : int;
  g_graph : Ec.t;
  h_graph : Ec.t;
  g_node : int;
  h_node : int;
  colour : int;
  g_loop : int;
  h_loop : int;
  g_weight : Q.t;
  h_weight : Q.t;
  views_checked : bool;
}

type failure = {
  fail_level : int;
  fail_graph : Ec.t;
  fail_output : Fm.t;
  fail_violations : Fm.violation list;
  fail_lift : Lift.covering;
  fail_note : string;
}

type outcome =
  | Certified of certificate list
  | Refuted of certificate list * failure

(* The running state of the induction: the pair (G, H) together with the
   distinguished nodes g, h, the colour-c loops e, f on which A's
   outputs y_G = A(G) and y_H = A(H) disagree.

   [anchor]/[amap] make the P1 view checks incremental across adjacent
   levels: [gr] is produced by a chain of 2-lifts from some smaller
   ancestor (level i+1's unfolding extends level i's), and covering maps
   preserve universal-cover views exactly at every radius, so
   τ_r(gr, v) ≅ τ_r(anchor, amap.(v)) for all r. The views check can
   therefore refine [anchor ∪ GH] instead of [target ∪ GH]; the anchor
   only resets (to the previous mixture) when the construction switches
   to the H side, whose graph is not a lift of anything smaller. *)
type level_state = {
  i : int;
  gr : Ec.t;
  hr : Ec.t;
  g : int;
  h : int;
  c : int;
  e : int; (* loop id in gr *)
  f : int; (* loop id in hr *)
  y_g : Fm.t;
  y_h : Fm.t;
  anchor : Ec.t; (* deepest non-lift ancestor of gr *)
  amap : int array; (* composed covering map: node of gr -> node of anchor *)
}

exception Refutation of failure

(* A Lemma-2-style simple witness: the output of a lift-invariant
   algorithm fails on the loop-free 2-lift whenever it fails on the
   loopy base (an unsaturated loop becomes an edge with two unsaturated
   endpoints; other violations pull back verbatim). *)
let infeasible ~level graph output violations =
  {
    fail_level = level;
    fail_graph = graph;
    fail_output = output;
    fail_violations = violations;
    fail_lift = Lift.double graph;
    fail_note =
      "output is not a fully saturated maximal fractional matching on \
       a loopy EC-graph (cf. Lemma 2); the violation persists on the \
       loop-free 2-lift [fail_lift]";
  }

let check_feasible ~level graph output =
  (* On the loopy graphs of this construction, maximality already forces
     full saturation (Lemma 2): every node carries a loop, and an
     unsaturated loop endpoint is a maximality violation. *)
  let violations = Fm.feasibility_violations output in
  if violations <> [] then
    raise (Refutation (infeasible ~level graph output violations))

(* A feasibility probe: one (graph, base output) pair in the exact order
   [run] checks feasibility — level 0: G_0 then H_0; level i: GG, HH,
   GH. The memoisation cache below replays these against other
   algorithms instead of rebuilding the construction. The probe is
   recorded {e before} the feasibility check so that a refuted base
   algorithm's failing graph is replayed too. *)
type probe = { probe_level : int; probe_graph : Ec.t; probe_base : Fm.t }

let run_checked ?record ~level algo graph =
  Obs.Counter.incr c_probes;
  let y = Ld_obs.Hist.timed_span h_probe (fun () -> algo.run graph) in
  (match record with
  | Some r -> r := { probe_level = level; probe_graph = graph; probe_base = y } :: !r
  | None -> ());
  check_feasible ~level graph y;
  y

(* Base case (Fig. 5). *)
let base_case ?record ~delta algo =
  Obs.with_span "core.lb.base_case" @@ fun () ->
  let g0 =
    Ec.create ~n:1 ~edges:[] ~loops:(List.init delta (fun c -> (0, c + 1)))
  in
  let y0 = run_checked ?record ~level:0 algo g0 in
  (* Saturation means some loop has positive weight. *)
  let e =
    match
      List.find_index (fun id -> Q.sign (Fm.loop_weight y0 id) > 0)
        (List.init delta Fun.id)
    with
    | Some id -> id
    | None -> assert false (* fully saturated => positive weight exists *)
  in
  let h0 = Ec.remove_loop g0 e in
  let y0' = run_checked ?record ~level:0 algo h0 in
  (* Find a surviving loop whose weight changed. Loop j of g0 (j <> e)
     is loop (j < e ? j : j - 1) of h0. *)
  let surviving = List.filter (fun j -> j <> e) (List.init delta Fun.id) in
  let changed =
    List.find_opt
      (fun j ->
        let j' = if j < e then j else j - 1 in
        not (Q.equal (Fm.loop_weight y0 j) (Fm.loop_weight y0' j')))
      surviving
  in
  match changed with
  | None ->
    (* Impossible for feasible outputs: both saturate the node, and the
       removed loop had positive weight. *)
    assert false
  | Some j ->
    let j' = if j < e then j else j - 1 in
    {
      i = 0;
      gr = g0;
      hr = h0;
      g = 0;
      h = 0;
      c = (Ec.loop g0 j).colour;
      e = j;
      f = j';
      y_g = y0;
      y_h = y0';
      anchor = g0;
      amap = [| 0 |];
    }

(* The mixture GH (Fig. 6): copy of (G - e), copy of (H - f), and a new
   colour-c crossing edge between g and h. Copy A keeps G's node, edge
   and (filtered) loop ids; copy B shifts H's nodes by [n G]. Surviving
   loops keep their relative order, so G-loop j (j <> e) has GH-loop id
   [j < e ? j : j-1], and H-loop j has id [num_loops G - 1 + (j < f ? j : j-1)]. *)
let mix state =
  let { gr; hr; g; h; c; e; f; _ } = state in
  let ng = Ec.n gr in
  let mg = Ec.num_edges gr and mh = Ec.num_edges hr in
  let edges =
    Array.init (mg + mh + 1) (fun i ->
        if i < mg then Ec.edge gr i
        else if i < mg + mh then
          let (x : Ec.edge) = Ec.edge hr (i - mg) in
          { x with u = x.u + ng; v = x.v + ng }
        else { Ec.u = g; v = ng + h; colour = c })
  in
  let lg = Ec.num_loops gr - 1 and lh = Ec.num_loops hr - 1 in
  let loops =
    Array.init (lg + lh) (fun i ->
        if i < lg then Ec.loop gr (if i < e then i else i + 1)
        else
          let j = i - lg in
          let (x : Ec.loop) = Ec.loop hr (if j < f then j else j + 1) in
          { x with node = x.node + ng })
  in
  Ec.create_arrays ~n:(ng + Ec.n hr) ~edges ~loops

(* Transport the side-local weights of y_mix (an FM on the mixture GH or
   on the 2-lift) onto the unfolded graph [target = GG or HH], producing
   the y' of §4.3: identical to A's output on [target] outside the side
   we walk in, and equal to A's output on the mixture inside it.

   [side] selects which copy: `G means copy A of GG vs copy A of GH
   (identity on ids); `H means copy A of HH vs copy B of GH (node shift
   ng, edge shift mg, loop shift |keep G|). *)
let transport ~side ~state ~target ~y_target ~y_mix =
  let { gr; hr; _ } = state in
  let mg = Ec.num_edges gr in
  let lg = Ec.num_loops gr - 1 (* loops of G - e *) in
  let lh = Ec.num_loops hr - 1 in
  let side_edges, side_loops, edge_map, loop_map =
    match side with
    | `G -> (mg, lg, (fun j -> j), fun j -> j)
    | `H -> (Ec.num_edges hr, lh, (fun j -> mg + j), fun j -> lg + j)
  in
  let crossing_target = Ec.num_edges target - 1 in
  let crossing_mix = mg + Ec.num_edges hr in
  let edge_w =
    Array.init (Ec.num_edges target) (fun j ->
        if j < side_edges then Fm.edge_weight y_mix (edge_map j)
        else if j = crossing_target then Fm.edge_weight y_mix crossing_mix
        else Fm.edge_weight y_target j)
  in
  let loop_w =
    Array.init (Ec.num_loops target) (fun j ->
        if j < side_loops then Fm.loop_weight y_mix (loop_map j)
        else Fm.loop_weight y_target j)
  in
  Fm.create target ~edge_w ~loop_w

(* P3: the graph is a tree once loops are ignored. *)
let is_tree_plus_loops g =
  let module Gr = Ld_graph.Graph in
  match
    Gr.create (Ec.n g)
      (List.map (fun (x : Ec.edge) -> (Stdlib.min x.u x.v, Stdlib.max x.u x.v))
         (Ec.edges g))
  with
  | exception Invalid_argument _ -> false (* parallel edges: not a tree *)
  | sg -> Gr.m sg = Gr.n sg - 1 && Gr.is_connected sg

(* One unfold-and-mix step (Fig. 6 + Fig. 7). This `step` is the
   adversary driver, not an executor machine transition; it
   legitimately fans out over Pool (whose env-var fallback may warn
   on stderr once at startup). *)
(* ld-lint: allow deep-machine-purity — adversary driver, not a transition *)
let step ?record ~delta ~algo ~check_views ~check_lift_invariance
    ~incremental_views state =
  let level = state.i + 1 in
  Obs.with_span ~args:[ ("level", string_of_int level) ] "core.lb.level"
  @@ fun () ->
  let { gr; hr; g; h; c; e; f; y_g; y_h; _ } = state in
  let cov_gg, cov_hh =
    Obs.with_span "core.lb.unfold" (fun () ->
        (Lift.unfold_loop gr ~loop_id:e, Lift.unfold_loop hr ~loop_id:f))
  in
  let gg = cov_gg.Lift.total and hh = cov_hh.Lift.total in
  let gh = Obs.with_span "core.lb.mix" (fun () -> mix state) in
  (* P2 and P3 for the freshly built graphs. *)
  List.iter
    (fun x ->
      assert (Ec.min_loops x >= delta - 1 - level);
      assert (Ec.max_degree x <= delta);
      assert (is_tree_plus_loops x))
    [ gg; hh; gh ];
  (* The three probes of a level are independent runs of A — fan them
     out over the pool (submission-order join keeps results, and
     therefore everything downstream, deterministic), then record and
     feasibility-check sequentially in the canonical GG, HH, GH order so
     the probe log and the failing probe are exactly the sequential
     ones. *)
  let y_gg, y_hh, y_gh =
    match
      Pool.map
        (fun graph -> Ld_obs.Hist.timed_span h_probe (fun () -> algo.run graph))
        [ gg; hh; gh ]
    with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let accept graph y =
    Obs.Counter.incr c_probes;
    (match record with
    | Some r ->
      r := { probe_level = level; probe_graph = graph; probe_base = y } :: !r
    | None -> ());
    check_feasible ~level graph y
  in
  accept gg y_gg;
  accept hh y_hh;
  accept gh y_gh;
  if check_lift_invariance then begin
    if not (Fm.equal y_gg (Fm.pull_back cov_gg y_g)) then
      failwith
        (algo.name
       ^ ": not lift-invariant (output on 2-lift GG differs from pulled-back \
          output on G) — not an EC-model algorithm");
    if not (Fm.equal y_hh (Fm.pull_back cov_hh y_h)) then
      failwith (algo.name ^ ": not lift-invariant on HH")
  end;
  let w_e = Fm.loop_weight y_g e in
  let w_f = Fm.loop_weight y_h f in
  let crossing_gh = Ec.num_edges gh - 1 in
  let w_cross = Fm.edge_weight y_gh crossing_gh in
  assert (not (Q.equal w_e w_f));
  (* Choose the side whose unfolded weight differs from the crossing
     weight; at least one does since w_e <> w_f. *)
  let side, target, y_target, start =
    if not (Q.equal w_cross w_e) then (`G, gg, y_gg, g) else (`H, hh, y_hh, h)
  in
  let y' = transport ~side ~state ~target ~y_target ~y_mix:y_gh in
  let first =
    match Ec.dart_by_colour target start c with
    | Some d -> d
    | None -> assert false (* the crossing edge has colour c at start *)
  in
  let g_star, loop_target =
    match
      Obs.with_span "core.lb.propagation" (fun () ->
          Propagation.walk ~y:y_target ~y':y' ~start ~first)
    with
    | Propagation.Loop_found { node; loop_id; _ } -> (node, loop_id)
    | Propagation.Stuck { node; _ } ->
      (* Impossible once feasibility was checked: every node saturated
         and Fact 3 applies. *)
      failwith
        (Printf.sprintf
           "propagation walk stuck at node %d despite feasible outputs" node)
  in
  (* Identify the same objects inside the mixture GH. *)
  let lg = Ec.num_loops gr - 1 in
  let g_star_gh, loop_gh =
    match side with
    | `G -> (g_star, loop_target) (* copy A ids coincide *)
    | `H -> (Ec.n gr + g_star, lg + loop_target)
  in
  let wg = Fm.loop_weight y_target loop_target in
  let wh = Fm.loop_weight y_gh loop_gh in
  assert (not (Q.equal wg wh));
  (* Compose the covering chain for the side we walked into: the new gr
     is a 2-lift of the old gr (side `G) or of the old mixture (side
     `H). Either way τ_r(target, v) ≅ τ_r(anchor', amap'.(v)) exactly. *)
  let anchor', amap' =
    match side with
    | `G ->
      let m = cov_gg.Lift.map and pmap = state.amap in
      (state.anchor, Array.init (Ec.n gg) (fun v -> pmap.(m.(v))))
    | `H -> (hr, cov_hh.Lift.map)
  in
  let views_checked =
    check_views
    && Obs.with_span "core.lb.views" (fun () ->
           if incremental_views then begin
             Obs.Counter.incr c_incremental;
             Refinement.equivalent_radius anchor' amap'.(g_star) gh g_star_gh
               ~radius:level
           end
           else
             Refinement.equivalent_radius target g_star gh g_star_gh
               ~radius:level)
  in
  if check_views && not views_checked then
    failwith "P1 violated: radius-level views are not isomorphic (engine bug)";
  let colour = (Ec.loop target loop_target).colour in
  ( {
      i = level;
      gr = target;
      hr = gh;
      g = g_star;
      h = g_star_gh;
      c = colour;
      e = loop_target;
      f = loop_gh;
      y_g = y_target;
      y_h = y_gh;
      anchor = anchor';
      amap = amap';
    },
    views_checked )

let certificate_of_state ~views_checked s =
  {
    level = s.i;
    g_graph = s.gr;
    h_graph = s.hr;
    g_node = s.g;
    h_node = s.h;
    colour = s.c;
    g_loop = s.e;
    h_loop = s.f;
    g_weight = Fm.loop_weight s.y_g s.e;
    h_weight = Fm.loop_weight s.y_h s.f;
    views_checked;
  }

let run_recording ?record ~check_views ~check_lift_invariance
    ~incremental_views ~delta algo =
  if delta < 2 then invalid_arg "Lower_bound.run: delta must be >= 2";
  Obs.with_span
    ~args:[ ("delta", string_of_int delta); ("algorithm", algo.name) ]
    "core.lb.run"
  @@ fun () ->
  let certificates = ref [] in
  let outcome =
    try
      let state = ref (base_case ?record ~delta algo) in
      certificates := [ certificate_of_state ~views_checked:check_views !state ];
      while !state.i < delta - 2 do
        let next, views_checked =
          step ?record ~delta ~algo ~check_views ~check_lift_invariance
            ~incremental_views !state
        in
        state := next;
        certificates := certificate_of_state ~views_checked next :: !certificates
      done;
      Certified (List.rev !certificates)
    with Refutation failure -> Refuted (List.rev !certificates, failure)
  in
  (match outcome with
  | Certified certs -> Obs.Counter.add c_certificates (List.length certs)
  | Refuted (certs, _) ->
    Obs.Counter.add c_certificates (List.length certs);
    Obs.Counter.incr c_refutations);
  outcome

let run ?(check_views = true) ?(check_lift_invariance = true)
    ?(incremental_views = true) ~delta algo =
  run_recording ~check_views ~check_lift_invariance ~incremental_views ~delta
    algo

let max_level = function
  | Certified certs | Refuted (certs, _) ->
    List.fold_left (fun acc c -> Stdlib.max acc c.level) (-1) certs

(* Memoised frontier scans. Every level of the construction is
   determined by the algorithm's outputs on the probe graphs, so two
   algorithms that agree on every probe walk through {e the same}
   construction and reach the same outcome. The cache stores the base
   algorithm's probes (keyed by [(delta, level)] through the probe
   order) plus its outcome; [cached_run] replays the probes in order:

   - a feasibility failure at some probe is exactly where [run] would
     have stopped, so the cached certificates below that level are
     returned with a fresh failure witness;
   - an output that is feasible but differs from the base output means
     the replay is invalid — we fall back to a full [run].

   The point: a truncated-but-feasible output on a loopy graph is fully
   saturated (Lemma 2 forces it), and our base algorithms are monotone
   accumulators, so feasible truncations equal the full output — the
   fallback never fires for the benchmark's truncation scans, and every
   scan shares one construction instead of rebuilding Θ(Δ) of them. *)
type cache = {
  cache_delta : int;
  cache_check_views : bool;
  cache_algo_name : string;
  cache_outcome : outcome;
  cache_probes : probe list;
  cache_prefix_rounds : int array;
      (* Per probe, in probe order: the smallest truncation [r] whose
         colour-<=r restriction of the base output is still feasible —
         the largest colour carrying positive weight for probes the base
         passed, [max_int] for a probe the base itself failed (then no
         truncation passes either). Fuels {!truncated_replay}. *)
}

(* Largest colour with positive weight anywhere in the output. Every
   positive item sits at some node, so this equals the max over nodes of
   their largest positive colour — the exact threshold below which a
   colour restriction leaves some node unsaturated. *)
let prefix_round p =
  let y = p.probe_base and graph = p.probe_graph in
  let r = ref 0 in
  for j = 0 to Ec.num_edges graph - 1 do
    if Q.sign (Fm.edge_weight y j) > 0 then
      r := Stdlib.max !r (Ec.edge graph j).colour
  done;
  for j = 0 to Ec.num_loops graph - 1 do
    if Q.sign (Fm.loop_weight y j) > 0 then
      r := Stdlib.max !r (Ec.loop graph j).colour
  done;
  !r

let build_cache ?(check_views = true) ?(incremental_views = true) ~delta algo =
  Obs.with_span ~args:[ ("delta", string_of_int delta) ] "core.lb.build_cache"
  @@ fun () ->
  let record = ref [] in
  let outcome =
    run_recording ~record ~check_views ~check_lift_invariance:true
      ~incremental_views ~delta algo
  in
  let probes = List.rev !record in
  let prefix_rounds = Array.of_list (List.map prefix_round probes) in
  (* When the base itself was refuted, the failing probe is the last one
     recorded: its output is infeasible at every truncation. *)
  (match outcome with
  | Refuted _ when Array.length prefix_rounds > 0 ->
    prefix_rounds.(Array.length prefix_rounds - 1) <- max_int
  | _ -> ());
  {
    cache_delta = delta;
    cache_check_views = check_views;
    cache_algo_name = algo.name;
    cache_outcome = outcome;
    cache_probes = probes;
    cache_prefix_rounds = prefix_rounds;
  }

let cache_outcome cache = cache.cache_outcome
let cache_delta cache = cache.cache_delta
let cache_algo_name cache = cache.cache_algo_name
let cache_check_views cache = cache.cache_check_views
let cache_probes cache = cache.cache_probes

(* Rebuild a cache from stored parts (the persistent store's warm
   path). The thresholds are a pure function of the probes, and the
   Refuted fixup mirrors [build_cache]: when the base itself failed,
   the failing probe is the last recorded one and no truncation of it
   passes either. *)
let assemble_cache ~delta ~algo_name ~check_views ~probes ~outcome =
  let prefix_rounds = Array.of_list (List.map prefix_round probes) in
  (match outcome with
  | Refuted _ when Array.length prefix_rounds > 0 ->
    prefix_rounds.(Array.length prefix_rounds - 1) <- max_int
  | _ -> ());
  {
    cache_delta = delta;
    cache_check_views = check_views;
    cache_algo_name = algo_name;
    cache_outcome = outcome;
    cache_probes = probes;
    cache_prefix_rounds = prefix_rounds;
  }

exception Diverged

let cached_run cache algo =
  let replay () =
    Obs.with_span "core.lb.memo_replay" @@ fun () ->
    List.iter
      (fun p ->
        let y = algo.run p.probe_graph in
        check_feasible ~level:p.probe_level p.probe_graph y;
        if not (Fm.equal y p.probe_base) then raise Diverged)
      cache.cache_probes;
    cache.cache_outcome
  in
  match replay () with
  | outcome ->
    Obs.Counter.incr c_memo_hits;
    outcome
  | exception Refutation failure ->
    Obs.Counter.incr c_memo_refuted;
    let certs =
      match cache.cache_outcome with
      | Certified certs | Refuted (certs, _) -> certs
    in
    let prefix = List.filter (fun c -> c.level < failure.fail_level) certs in
    Refuted (prefix, failure)
  | exception Diverged ->
    Obs.Counter.incr c_memo_diverged;
    run ~check_views:cache.cache_check_views ~delta:cache.cache_delta algo

(* The colour-<=rounds restriction of an output, materialised as an FM
   on the same graph — what the truncated greedy computes. *)
let restrict_output y graph ~rounds =
  let edge_w =
    Array.init (Ec.num_edges graph) (fun j ->
        if (Ec.edge graph j).colour <= rounds then Fm.edge_weight y j
        else Q.zero)
  in
  let loop_w =
    Array.init (Ec.num_loops graph) (fun j ->
        if (Ec.loop graph j).colour <= rounds then Fm.loop_weight y j
        else Q.zero)
  in
  Fm.create graph ~edge_w ~loop_w

let truncated_replay cache ~rounds =
  if
    cache.cache_algo_name <> Ld_matching.Packing.greedy_algorithm.name
  then
    invalid_arg
      "Lower_bound.truncated_replay: cache was not built against \
       greedy-by-colour (truncations of other bases are not colour-prefix \
       restrictions)";
  if rounds < 0 then invalid_arg "Lower_bound.truncated_replay: negative rounds";
  Obs.with_span "core.lb.frontier_replay" @@ fun () ->
  (* First probe (in check order) whose feasibility threshold exceeds
     [rounds] — exactly where the replay would raise [Refutation]. *)
  let failing =
    let rec scan i = function
      | [] -> None
      | p :: rest ->
        if cache.cache_prefix_rounds.(i) > rounds then Some p
        else scan (i + 1) rest
    in
    scan 0 cache.cache_probes
  in
  match failing with
  | None ->
    Obs.Counter.incr c_memo_hits;
    cache.cache_outcome
  | Some p ->
    Obs.Counter.incr c_memo_refuted;
    let y_r = restrict_output p.probe_base p.probe_graph ~rounds in
    let violations = Fm.feasibility_violations y_r in
    let failure =
      infeasible ~level:p.probe_level p.probe_graph y_r violations
    in
    let certs =
      match cache.cache_outcome with
      | Certified certs | Refuted (certs, _) -> certs
    in
    Refuted (List.filter (fun c -> c.level < failure.fail_level) certs, failure)

let truncated_verdict cache ~rounds =
  if
    cache.cache_algo_name <> Ld_matching.Packing.greedy_algorithm.name
  then
    invalid_arg
      "Lower_bound.truncated_verdict: cache was not built against \
       greedy-by-colour (truncations of other bases are not colour-prefix \
       restrictions)";
  if rounds < 0 then
    invalid_arg "Lower_bound.truncated_verdict: negative rounds";
  Obs.with_span "core.lb.frontier_verdict" @@ fun () ->
  let fails =
    Array.exists (fun threshold -> threshold > rounds) cache.cache_prefix_rounds
  in
  if fails then begin
    Obs.Counter.incr c_memo_refuted;
    `Refuted
  end
  else begin
    Obs.Counter.incr c_memo_hits;
    match cache.cache_outcome with
    | Certified _ -> `Certified
    | Refuted _ -> `Refuted
  end

let boundary ~delta ~truncate_max base =
  let base_algo =
    match base with
    | `Greedy -> Ld_matching.Packing.greedy_algorithm
    | `Proposal -> Ld_matching.Packing.proposal_algorithm
  in
  let cache = build_cache ~check_views:false ~delta base_algo in
  let outcome_at r =
    match base with
    | `Greedy -> truncated_replay cache ~rounds:r
    | `Proposal -> cached_run cache (Ld_matching.Packing.truncated base r)
  in
  List.init (truncate_max + 1) (fun r -> (r, max_level (outcome_at r)))

let pp_certificate fmt c =
  Format.fprintf fmt
    "@[<v>level %d: |G_i| = %d nodes, |H_i| = %d nodes;@ distinguished nodes \
     g=%d h=%d; colour-%d loops carry weights %a vs %a;@ radius-%d views %s@]"
    c.level (Ec.n c.g_graph) (Ec.n c.h_graph) c.g_node c.h_node c.colour Q.pp
    c.g_weight Q.pp c.h_weight c.level
    (if c.views_checked then "verified isomorphic (colour refinement)"
     else "not checked")

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v>refuted at level %d: on a loopy EC-graph with %d nodes the output \
     has %d violation(s);@ note: %s@]"
    f.fail_level (Ec.n f.fail_graph)
    (List.length f.fail_violations)
    f.fail_note
