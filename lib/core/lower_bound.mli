(** The Section 4 adversary: an executable unfold-and-mix lower bound.

    Given any deterministic, lift-invariant EC algorithm [A] for the
    maximal fractional matching problem, the engine constructs the
    inductive sequence of loopy EC-graph pairs [(G_i, H_i)],
    [i = 0 … Δ-2], of the paper:

    - {b Base case} (Fig. 5): [G_0] is a single node with [Δ]
      differently-coloured loops; [H_0] removes a loop that [A] weights
      positively, which forces [A] to change some other loop's weight.
    - {b Unfold & mix} (Fig. 6): from [(G, H)] with differing colour-[c]
      loops at [g, h], build the 2-lift [GG] (or [HH]) and the mixture
      [GH]; the crossing edge's weight in [GH] must differ from the
      weight of [e] in [GG] or of [f] in [HH].
    - {b Propagation} (Fig. 7): the disagreement walks through the
      common, fully saturated side until it reaches a loop [e*] with
      differing weights — the distinguished pair of the next level.

    Every emitted level is {e machine-checked}: the radius-[i] views of
    the distinguished nodes are verified isomorphic by exact colour
    refinement while the outputs on the named loop differ, so each level
    [i] is a standalone certificate that [A]'s run-time exceeds [i]
    (in the paper's [τ_t] locality sense; an [r]-communication-round
    machine is a [t = r+1] algorithm in that sense).

    If [A] is not actually correct on the constructed loopy graphs —
    e.g. because it is a truncated, genuinely fast algorithm — the
    invariants of the construction must break, and the engine returns a
    concrete {e failure witness}: a loopy EC multigraph on which [A]'s
    output is infeasible or non-maximal (together with a simple 2-lift
    on which the violation persists, via Lemma 2). This is the other
    half of the dichotomy: fast implies wrong, correct implies slow. *)

module Ec = Ld_models.Ec
module Fm = Ld_fm.Fm
module Q = Ld_arith.Q

type algorithm = Ld_matching.Packing.algorithm = {
  name : string;
  run : Ec.t -> Fm.t;
}

type certificate = {
  level : int;  (** the [i] of [(G_i, H_i)] *)
  g_graph : Ec.t;
  h_graph : Ec.t;
  g_node : int;
  h_node : int;
  colour : int;  (** colour [c_i] of the distinguished loops *)
  g_loop : int;  (** loop id in [g_graph] *)
  h_loop : int;  (** loop id in [h_graph] *)
  g_weight : Q.t;
  h_weight : Q.t;  (** differing outputs: [g_weight <> h_weight] *)
  views_checked : bool;
      (** radius-[level] view isomorphism verified by refinement *)
}

type failure = {
  fail_level : int;
  fail_graph : Ec.t;  (** loopy multigraph where [A]'s output fails *)
  fail_output : Fm.t;
  fail_violations : Fm.violation list;
  fail_lift : Ld_cover.Lift.covering;
      (** a loop-free 2-lift of [fail_graph]; [A]'s (pulled-back) output
          fails on this {e simple} graph too *)
  fail_note : string;
}

type outcome =
  | Certified of certificate list
      (** certificates for levels [0 … Δ-2]: run-time [> Δ-2] *)
  | Refuted of certificate list * failure
      (** [A] is not a correct maximal-FM algorithm; levels certified
          before the break are included *)

(** [run ~delta a] executes the adversary against [a] for maximum
    degree [delta >= 2].

    The three probes of every level (GG, HH, GH) are independent runs of
    [a] and are fanned out over the {!Ld_pool.Pool} domains; recording
    and feasibility checks happen in the canonical sequential order, so
    outcomes are bit-for-bit those of a sequential run.

    @param check_views verify P1 view-isomorphism by colour refinement
    at every level (default [true]).
    @param check_lift_invariance re-run [a] on each 2-lift and compare
    with the pulled-back base output; a mismatch means [a] violates the
    EC model's condition (2) and raises [Failure] (default [true]).
    @param incremental_views make the P1 checks incremental across
    adjacent levels (default [true]): each level's graph extends the
    previous level's by a 2-lift, and covering maps preserve
    universal-cover views exactly at every radius, so the check refines
    the composed covering anchor (the deepest non-lift ancestor) against
    the mixture instead of the full unfolded graph — same verdict on a
    smaller union ([core.lb.incremental_seeded] counts these).
    @raise Invalid_argument if [delta < 2]. *)
val run :
  ?check_views:bool -> ?check_lift_invariance:bool ->
  ?incremental_views:bool -> delta:int -> algorithm -> outcome

(** Highest certified level of an outcome ([-1] if none). *)
val max_level : outcome -> int

(** {2 Memoised frontier scans}

    [run] rebuilds the whole [(G_i, H_i)] construction for every
    algorithm it is pointed at, which makes the benchmark's truncation
    scans ([r = 0, 1, …]) pay for [Θ(Δ)] constructions per scan. A
    {!cache} stores one construction — every feasibility probe
    [(level, graph, base output)] in check order, keyed by
    [(delta, level)] — so the scans replay it instead. *)
type cache

(** [build_cache ~delta a] runs the full adversary against [a] once and
    records every probe together with the outcome (plus, per probe, the
    largest colour carrying positive weight — the feasibility threshold
    {!truncated_replay} compares against). [check_views] and
    [incremental_views] are forwarded to the underlying {!run};
    [check_views] is also used by any fallback {!run} a later
    {!cached_run} needs.
    @raise Invalid_argument if [delta < 2]. *)
val build_cache :
  ?check_views:bool -> ?incremental_views:bool -> delta:int -> algorithm ->
  cache

(** The base algorithm's recorded outcome — what {!run} returned during
    {!build_cache}, physically shared (no recomputation). *)
val cache_outcome : cache -> outcome

(** [cached_run cache b] computes the outcome [run] would produce for
    [b], reusing the cached construction: each probe graph is re-run
    under [b] and checked for feasibility.

    - If [b] fails feasibility at some probe, that is exactly where
      [run] would have refuted it: the result is [Refuted] with the
      cached certificates below the failing level (physically shared
      with the cache) and a fresh failure witness.
    - If [b] is feasible {e and equal to the base output} on every
      probe, it walks the identical construction: the cached outcome is
      returned as-is (physically shared).
    - If [b] is feasible but diverges from the base output on some
      probe, the cache does not apply and a full [run] is performed.

    For the benchmark's truncated algorithms the divergent case never
    arises: by Lemma 2 a feasible output on these loopy graphs is fully
    saturated, and a saturated truncation of greedy/proposal equals the
    untruncated output. *)
val cached_run : cache -> algorithm -> outcome

(** [truncated_replay cache ~rounds] is the exact outcome of
    [cached_run cache (Packing.truncated `Greedy rounds)], computed
    {e analytically} — no algorithm is re-run on any probe graph.

    Greedy-by-colour reads exactly the colour-[c] dart in phase [c], so
    its [rounds]-truncation outputs precisely the colour-[≤ rounds]
    prefix of the base output, and on the adversary's loopy probe graphs
    that prefix is feasible iff every positive base colour is [≤ rounds]
    (feasible ⟺ fully saturated, Lemma 2) — in which case it {e equals}
    the base output and the cached outcome is returned as-is. Otherwise
    the first probe whose threshold exceeds [rounds] is where the real
    replay would refute, and an identical failure witness (restricted
    output, freshly checked violations, same 2-lift) is materialised.
    @raise Invalid_argument if the cache's base algorithm is not
    greedy-by-colour or [rounds < 0]. *)
val truncated_replay : cache -> rounds:int -> outcome

(** {2 Cache introspection and reassembly}

    The persistent certificate store ({!Cache_store}) serialises a
    cache as per-level records and rebuilds it on warm restart without
    re-running the adversary. These accessors expose exactly the data
    that determines a cache; {!assemble_cache} is the inverse. *)

(** One recorded feasibility probe: the graph the base algorithm was
    run on at [probe_level], together with its output. The probe list
    of a cache is in canonical check order (level 0: G_0 then H_0;
    level i: GG, HH, GH). *)
type probe = { probe_level : int; probe_graph : Ec.t; probe_base : Fm.t }

val cache_delta : cache -> int
val cache_algo_name : cache -> string
val cache_check_views : cache -> bool
val cache_probes : cache -> probe list

(** [assemble_cache ~delta ~algo_name ~check_views ~probes ~outcome]
    rebuilds a cache from stored parts. The per-probe feasibility
    thresholds are recomputed from the probes (they are a pure function
    of the recorded outputs), so a reassembled cache is
    indistinguishable from the {!build_cache} original: [cached_run],
    {!truncated_replay} and {!truncated_verdict} return identical
    results. No algorithm is run. *)
val assemble_cache :
  delta:int -> algo_name:string -> check_views:bool -> probes:probe list ->
  outcome:outcome -> cache

(** [truncated_verdict cache ~rounds] is the constructor of
    [truncated_replay cache ~rounds] alone ([`Certified] or
    [`Refuted]), skipping the failure-witness materialisation (the
    restricted output, its violation list, and the 2-lift) that a
    refuted replay builds. A frontier scan only consumes the verdict,
    and the witness is by far the dominant cost of a refuted replay —
    this is one threshold comparison per probe. Counter traffic
    ([memo_replay_hits] / [memo_replay_refuted]) matches the full
    replay.
    @raise Invalid_argument if the cache's base algorithm is not
    greedy-by-colour or [rounds < 0]. *)
val truncated_verdict : cache -> rounds:int -> [ `Certified | `Refuted ]

(** [boundary ~delta ~truncate_max base] runs the adversary against the
    [base] algorithm truncated to [r = 0, 1, …, truncate_max]
    communication rounds and returns, for each [r], the outcome's
    maximal certified level — the empirical round-vs-locality frontier
    plotted in the benchmark. *)
val boundary :
  delta:int -> truncate_max:int -> [ `Greedy | `Proposal ] -> (int * int) list

val pp_certificate : Format.formatter -> certificate -> unit
val pp_failure : Format.formatter -> failure -> unit
