(* The pool now lives in [Ld_pool] (bottom of the library stack) so the
   runtime executors can fan rounds out across domains without creating
   a cycle with [ld_core]. Re-exported here so callers keep addressing
   it as [Ld_core.Pool]. *)

include Ld_pool.Pool
