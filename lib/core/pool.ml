(* A minimal fork-join pool over OCaml 5 domains for the benchmark's
   outer fan-out (per-Δ theorem rows, per-r frontier probes). Tasks are
   pulled from a shared atomic index; results land in a slot per task,
   so the output order is the submission order no matter which domain
   ran what — callers see deterministic results. *)

type 'b slot = Pending | Done of 'b | Failed of exn

let default_domains () =
  match Sys.getenv_opt "LD_DOMAINS" with
  | Some s -> ( try Stdlib.max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> Stdlib.max 1 (Stdlib.min 8 (Domain.recommended_domain_count ()))

let map ?domains f items =
  let input = Array.of_list items in
  let n = Array.length input in
  let requested =
    match domains with Some d -> Stdlib.max 1 d | None -> default_domains ()
  in
  let workers = Stdlib.min requested n in
  if workers <= 1 then List.map f items
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- (match f input.(i) with v -> Done v | exception e -> Failed e);
        work ()
      end
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join spawned;
    (* Surface the first failure in submission order, as sequential
       [List.map] would. *)
    Array.to_list results
    |> List.map (function
         | Done v -> v
         | Failed e -> raise e
         | Pending -> assert false)
  end

let mapi ?domains f items =
  map ?domains (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) items)
