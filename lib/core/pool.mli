(** Fork-join fan-out over OCaml 5 domains.

    The lower-bound engine's outer loops — one theorem row per [Δ], one
    frontier probe per truncation round [r] — are embarrassingly
    parallel: the engine has no global mutable state and the arithmetic
    layer is purely functional, so each task can run in its own domain.
    This pool maps a function over a task list with a small crew of
    domains and joins the results {e in submission order}, so output is
    bit-for-bit identical to the sequential run. *)

(** [map ?domains f tasks] is [List.map f tasks], computed by up to
    [domains] domains pulling tasks from a shared queue.

    - [domains] defaults to the [LD_DOMAINS] environment variable if
      set, else [min 8 (Domain.recommended_domain_count ())].
    - With one worker (or fewer tasks than two) no domain is spawned:
      the call degrades to plain [List.map f tasks].
    - If any task raises, the exception of the {e earliest} failed task
      (submission order) is re-raised after all domains joined — again
      matching the sequential behaviour. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [mapi] is {!map} with the task's submission index. *)
val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
