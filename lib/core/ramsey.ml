(* Sorted [arity]-subsets of a sorted list. *)
let rec subsets k list =
  if k = 0 then [ [] ]
  else
    match list with
    | [] -> []
    | x :: rest ->
      List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let monochromatic_subset ~universe ~arity ~colour ~size =
  let universe = List.sort_uniq Int.compare universe in
  if size < arity then invalid_arg "Ramsey.monochromatic_subset: size < arity";
  (* Backtracking: grow a candidate subset; whenever it reaches [arity]
     elements the colour of every new tuple must match the first one. *)
  let rec grow chosen target rest =
    if List.length chosen = size then Some (List.rev chosen)
    else begin
      let rec try_elements = function
        | [] -> None
        | x :: more -> begin
          let chosen' = x :: chosen in
          (* tuples completed by adding x *)
          let new_tuples =
            if List.length chosen' < arity then []
            else
              List.map
                (fun s -> List.sort Int.compare (x :: s))
                (subsets (arity - 1) (List.rev chosen))
          in
          let target', ok =
            List.fold_left
              (fun (t, ok) tuple ->
                if not ok then (t, false)
                else begin
                  let c = colour tuple in
                  match t with
                  | None -> (Some c, true)
                  | Some c0 -> (t, c = c0)
                end)
              (target, true) new_tuples
          in
          match (ok, if ok then grow chosen' target' more else None) with
          | true, Some s -> Some s
          | _ -> try_elements more
        end
      in
      try_elements rest
    end
  in
  grow [] None universe

let order_invariant_identifiers ~universe ~nodes ~indicator ~size =
  let colour tuple =
    let pattern = indicator (Array.of_list tuple) in
    Array.fold_left (fun acc b -> (acc * 2) + if b then 1 else 0) 0 pattern
  in
  monochromatic_subset ~universe ~arity:nodes ~colour ~size

let sparsify ~gap ids =
  let ids = List.sort_uniq Int.compare ids in
  List.filteri (fun i _ -> i mod (gap + 1) = 0) ids

let relabelling_stable ~ids ~nodes ~run ~equal =
  let assignments = subsets nodes (List.sort_uniq Int.compare ids) in
  match List.map (fun a -> run (Array.of_list a)) assignments with
  | [] -> true
  | first :: rest -> List.for_all (equal first) rest
