(** Finite versions of the Ramsey arguments of §5.4 (Lemmas 5–7).

    The paper invokes the infinite Ramsey theorem to find an identifier
    set [I] on which the saturation indicator [A*] of an ID-algorithm
    becomes order-invariant, then passes to a sparse subset [J] on which
    the full algorithm is relabelling-stable. Neither step is effective,
    but both are {e searches}: for concrete radii, graphs and identifier
    universes, the monochromatic subset can simply be found. This module
    performs those searches, turning Lemma 5's "there is an infinite
    set I" into "here is the set I for this instance". *)

(** [monochromatic_subset ~universe ~arity ~colour ~size] finds a subset
    [S] of [universe] with [|S| = size] such that [colour] takes one
    value on all sorted [arity]-tuples of [S] (Ramsey's theorem, finite
    search by backtracking). Returns [None] when the universe admits no
    such subset. *)
val monochromatic_subset :
  universe:int list -> arity:int -> colour:(int list -> int) -> size:int ->
  int list option

(** Lemma 5, finite form: [indicator ids] is the saturation pattern an
    ID-algorithm produces when the rank-[k] node of a fixed ordered
    graph on [nodes] nodes gets the [k]-th smallest identifier of
    [ids]. Finds a [size]-element identifier set on which the pattern
    is constant — i.e. on which the indicator is order-invariant. *)
val order_invariant_identifiers :
  universe:int list -> nodes:int -> indicator:(int array -> bool array) ->
  size:int -> int list option

(** Lemma 7's sparsification [J ⊆ I]: keep every [(gap+1)]-th element,
    so that consecutive kept identifiers have at least [gap] unused
    identifiers of [I] between them. *)
val sparsify : gap:int -> int list -> int list

(** Lemma 7's conclusion as a checkable property: [relabelling_stable
    ~ids ~nodes ~run ~equal] holds iff [run] gives [equal] outputs for
    every pair of order-respecting assignments of [nodes] identifiers
    drawn from [ids]. *)
val relabelling_stable :
  ids:int list -> nodes:int -> run:(int array -> 'a) ->
  equal:('a -> 'a -> bool) -> bool
