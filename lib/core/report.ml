module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Fm = Ld_fm.Fm

let graph_block buf title g =
  Buffer.add_string buf (Printf.sprintf "%s (%d nodes, %d edges, %d loops):\n\n```\n" title
    (Ec.n g) (Ec.num_edges g) (Ec.num_loops g));
  if Ec.n g <= 8 then begin
    Buffer.add_string buf (Format.asprintf "%a" Ec.pp g);
    Buffer.add_string buf "\n```\n\nDOT:\n\n```dot\n";
    Buffer.add_string buf (Ld_models.Dot.ec g);
    Buffer.add_string buf "```\n\n"
  end
  else begin
    Buffer.add_string buf
      (Printf.sprintf "(too large to inline; min loops per node = %d, max degree = %d)\n```\n\n"
        (Ec.min_loops g) (Ec.max_degree g))
  end

let certificate buf delta (c : Lower_bound.certificate) =
  Buffer.add_string buf
    (Printf.sprintf "### Level %d\n\n" c.level);
  Buffer.add_string buf
    (Printf.sprintf
       "* distinguished nodes: `g = %d` in G, `h = %d` in H\n\
        * colour-%d loops carry weights **%s** (in G) vs **%s** (in H)\n\
        * radius-%d views at `g`/`h`: %s\n\
        * P2: both graphs are %d-loopy (required: %d); degrees ≤ %d\n\n"
       c.g_node c.h_node c.colour (Q.to_string c.g_weight)
       (Q.to_string c.h_weight) c.level
       (if c.views_checked then "verified isomorphic by colour refinement"
        else "not checked in this run")
       (min (Ec.min_loops c.g_graph) (Ec.min_loops c.h_graph))
       (delta - 1 - c.level) delta);
  if c.level <= 1 then begin
    graph_block buf "G_i" c.g_graph;
    graph_block buf "H_i" c.h_graph
  end
  else
    Buffer.add_string buf
      (Printf.sprintf "* sizes: |G_%d| = %d, |H_%d| = %d (the 2^i unfolding)\n\n"
         c.level (Ec.n c.g_graph) c.level (Ec.n c.h_graph))

let markdown ~delta ~algorithm_name outcome =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "# Adversary report\n\n\
        * paper: Göös–Hirvonen–Suomela, *Linear-in-Δ Lower Bounds in the \
        LOCAL Model* (PODC 2014)\n\
        * algorithm: `%s`\n\
        * maximum degree Δ = %d\n\n"
       algorithm_name delta);
  (match outcome with
  | Lower_bound.Certified certs ->
    Buffer.add_string buf
      (Printf.sprintf
         "## Outcome: CERTIFIED (%d levels)\n\n\
          For every `i = 0 … %d` the pair `(G_i, H_i)` below has \
          isomorphic radius-`i` views at its distinguished nodes while \
          the algorithm outputs different weights on the named loop. \
          Any algorithm computing these outputs therefore has run-time \
          greater than %d — linear in Δ.\n\n"
         (List.length certs) (delta - 2) (delta - 2));
    List.iter (certificate buf delta) certs
  | Lower_bound.Refuted (certs, f) ->
    Buffer.add_string buf
      (Printf.sprintf
         "## Outcome: REFUTED at level %d\n\n\
          The algorithm survived %d level(s), then produced an output \
          that is **not** a maximal fractional matching on the loopy \
          EC-graph below (%d violation(s)). %s\n\n"
         f.fail_level (List.length certs)
         (List.length f.fail_violations)
         f.fail_note);
    graph_block buf "Failing graph" f.fail_graph;
    let lifted = Fm.pull_back f.fail_lift f.fail_output in
    Buffer.add_string buf
      (Printf.sprintf
         "On its loop-free 2-lift (%d nodes) the pulled-back output is \
          maximal: **%b** — the failure persists on a simple graph \
          (Lemma 2 / Fig. 4).\n\n"
         (Ec.n f.fail_lift.total)
         (Fm.is_maximal_fm lifted));
    List.iter (certificate buf delta) certs);
  Buffer.contents buf
