(** Human-readable reports of adversary runs.

    Renders the outcome of {!Lower_bound.run} as a Markdown document:
    per-level certificates with the distinguished graphs inlined (small
    levels) or summarised (large ones), the base-case pair of Fig. 5,
    and — for refutations — the failure witness together with its
    loop-free 2-lift, plus DOT sources for the small graphs. *)

(** [markdown ~delta ~algorithm_name outcome] renders the outcome. *)
val markdown :
  delta:int -> algorithm_name:string -> Lower_bound.outcome -> string
