type t = Atom of string | List of t list

let atom s = Atom s
let int n = Atom (string_of_int n)
let list l = List l
let field name body = List (Atom name :: body)

let rec to_buffer buf = function
  | Atom s -> Buffer.add_string buf s
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ' ';
        to_buffer buf item)
      items;
    Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> failwith "Sexp.of_string: unexpected end of input"
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec items_loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> failwith "Sexp.of_string: unclosed parenthesis"
        | Some _ ->
          items := parse () :: !items;
          items_loop ()
      in
      items_loop ();
      List (List.rev !items)
    | Some ')' -> failwith "Sexp.of_string: unexpected ')'"
    | Some _ ->
      let start = !pos in
      let rec scan () =
        match peek () with
        | Some (' ' | '\t' | '\n' | '\r' | '(' | ')') | None -> ()
        | Some _ ->
          advance ();
          scan ()
      in
      scan ();
      Atom (String.sub s start (!pos - start))
  in
  let result = parse () in
  skip_ws ();
  if !pos <> n then failwith "Sexp.of_string: trailing input";
  result

let find name = function
  | List items ->
    let rec go = function
      | [] -> failwith (Printf.sprintf "Sexp.find: no field %S" name)
      | List (Atom a :: body) :: _ when a = name -> body
      | _ :: rest -> go rest
    in
    go items
  | Atom _ -> failwith "Sexp.find: not a list"

let to_int = function
  | Atom a -> (
    match int_of_string_opt a with
    | Some n -> n
    | None -> failwith (Printf.sprintf "Sexp.to_int: %S" a))
  | List _ -> failwith "Sexp.to_int: not an atom"

let to_atom = function
  | Atom a -> a
  | List _ -> failwith "Sexp.to_atom: not an atom"
