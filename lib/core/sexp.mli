(** A minimal S-expression reader/writer (no external dependencies),
    used to serialise lower-bound certificates ({!Certificate_io}). *)

type t = Atom of string | List of t list

val to_string : t -> string

(** @raise Failure on malformed input. *)
val of_string : string -> t

(** Helpers for the common shapes. *)
val atom : string -> t
val int : int -> t
val list : t list -> t

(** [field name body] is [(name body...)]. *)
val field : string -> t list -> t

(** [find name sexp] extracts the body of the unique [(name ...)] entry
    of a list. @raise Failure if absent. *)
val find : string -> t -> t list

val to_int : t -> int
val to_atom : t -> string
