module Ec = Ld_models.Ec
module Po = Ld_models.Po
module Q = Ld_arith.Q
module Fm = Ld_fm.Fm
module Po_fm = Ld_fm.Po_fm
module View_po = Ld_cover.View_po
module Tree_order = Ld_order.Tree_order
module Packing = Ld_matching.Packing
module Po_packing = Ld_matching.Po_packing

(* ------------------------------------------------------------------ *)
(* EC ⇐ PO (§5.1).  [Po.of_ec] lists, for EC edge i, its two arcs at
   ids 2i and 2i+1, and maps EC loop j to PO loop j.                    *)

let ec_of_po (a : Po_packing.algorithm) : Packing.algorithm =
  {
    name = Printf.sprintf "ec-of-po(%s)" a.name;
    run =
      (fun ec ->
        let po = Po.of_ec ec in
        let y = a.run po in
        let edge_w =
          Array.init (Ec.num_edges ec) (fun i ->
              Q.add (Po_fm.arc_weight y (2 * i)) (Po_fm.arc_weight y ((2 * i) + 1)))
        in
        let loop_w =
          Array.init (Ec.num_loops ec) (fun j ->
              (* the loop's lifted edge carries one arc each way *)
              Q.add (Po_fm.loop_weight y j) (Po_fm.loop_weight y j))
        in
        Fm.create ec ~edge_w ~loop_w);
  }

(* ------------------------------------------------------------------ *)
(* PO ⇐ OI (§5.3).                                                     *)

type ordered_view = { ov_graph : Po.t; ov_root : int; ov_rank : int array }

let address_of_path path =
  List.map
    (fun (k : View_po.key) -> { Tree_order.fwd = k.out; colour = k.colour })
    path

let ordered_view g v ~radius =
  let view = View_po.of_po g v ~radius in
  let po, index = View_po.to_po view in
  let nodes = List.map (fun (path, id) -> (id, address_of_path path)) index in
  let sorted =
    List.sort (fun (_, a) (_, b) -> Tree_order.compare a b) nodes
  in
  let rank = Array.make (Po.n po) 0 in
  List.iteri (fun r (id, _) -> rank.(id) <- r) sorted;
  { ov_graph = po; ov_root = 0; ov_rank = rank }

type oi_rule = {
  oi_name : string;
  oi_radius : int;
  oi_apply : ordered_view -> (int * Q.t) list;
}

(* The depth-1 tree node across each dart of the input node: root darts
   of the materialised view keep the keys of the original node's darts. *)
let root_children ov =
  List.map
    (fun dart ->
      match dart with
      | Po.Out { neighbour; colour; _ } ->
        ({ View_po.out = true; colour }, neighbour)
      | Po.In { neighbour; colour; _ } ->
        ({ View_po.out = false; colour }, neighbour)
      | Po.Loop_out _ | Po.Loop_in _ ->
        assert false (* the materialised view tree is loop-free *))
    (Po.darts ov.ov_graph ov.ov_root)

let po_of_oi rule : Po_packing.algorithm =
  if rule.oi_radius < 1 then invalid_arg "Simulate.po_of_oi: radius must be >= 1";
  {
    name = Printf.sprintf "po-of-oi(%s)" rule.oi_name;
    run =
      (fun g ->
        let answer =
          Array.init (Po.n g) (fun v ->
              let ov = ordered_view g v ~radius:rule.oi_radius in
              let by_child = rule.oi_apply ov in
              List.map
                (fun (key, child) ->
                  match List.assoc_opt child by_child with
                  | Some w -> (key, w)
                  | None ->
                    failwith
                      (rule.oi_name
                     ^ ": rule returned no weight for a root edge"))
                (root_children ov))
        in
        let weight_at v key =
          match List.assoc_opt key answer.(v) with
          | Some w -> w
          | None -> failwith (rule.oi_name ^ ": missing dart answer")
        in
        let arc_w =
          Array.of_list
            (List.map
               (fun (a : Po.arc) ->
                 let wt = weight_at a.tail { View_po.out = true; colour = a.colour } in
                 let wh = weight_at a.head { View_po.out = false; colour = a.colour } in
                 if not (Q.equal wt wh) then
                   failwith
                     (rule.oi_name
                    ^ ": endpoints disagree — the rule is not a consistent \
                       local algorithm");
                 wt)
               (Po.arcs g))
        in
        let loop_w =
          Array.of_list
            (List.map
               (fun (l : Po.loop) ->
                 let wo = weight_at l.node { View_po.out = true; colour = l.colour } in
                 let wi = weight_at l.node { View_po.out = false; colour = l.colour } in
                 if not (Q.equal wo wi) then
                   failwith
                     (rule.oi_name ^ ": loop dart answers disagree — not \
                        lift-invariant");
                 wo)
               (Po.loops g))
        in
        Po_fm.create g ~arc_w ~loop_w);
  }

let proposal_rule ~rounds =
  if rounds < 0 then invalid_arg "Simulate.proposal_rule: negative rounds";
  {
    oi_name = Printf.sprintf "oi-proposal[%d rounds]" rounds;
    oi_radius = rounds + 1;
    oi_apply =
      (fun ov ->
        (* Run the dynamics centrally on the (loop-free) view tree; the
           root's dart weights after [rounds] rounds coincide with its
           weights on the full graph, because a radius-(rounds+1) view
           determines a (rounds)-round state. *)
        let y, _ = Po_packing.proposal ~truncate:rounds ov.ov_graph in
        List.filter_map
          (fun dart ->
            match dart with
            | Po.Out { neighbour; arc_id; _ } | Po.In { neighbour; arc_id; _ } ->
              Some (neighbour, Po_fm.arc_weight y arc_id)
            | Po.Loop_out _ | Po.Loop_in _ -> None)
          (Po.darts ov.ov_graph ov.ov_root));
  }

let rank_weighted_rule =
  {
    oi_name = "rank-weighted";
    oi_radius = 2;
    oi_apply =
      (fun ov ->
        let po = ov.ov_graph and rank = ov.ov_rank in
        (* Underlying (undirected) adjacency of the view tree. *)
        let nbrs v =
          List.map
            (fun dart ->
              match dart with
              | Po.Out { neighbour; _ } | Po.In { neighbour; _ } -> neighbour
              | Po.Loop_out _ | Po.Loop_in _ -> assert false)
            (Po.darts po v)
        in
        let degree v = List.length (nbrs v) in
        let root = ov.ov_root in
        List.map
          (fun w ->
            let a, b = if rank.(root) < rank.(w) then (root, w) else (w, root) in
            let count =
              List.length
                (List.filter (fun x -> x <> b && rank.(x) < rank.(b)) (nbrs a))
            in
            let base = Q.of_ints 1 (degree root + degree w) in
            (w, if count mod 2 = 0 then base else Q.mul Q.half base))
          (nbrs root));
  }
