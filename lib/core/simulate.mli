(** The local simulations EC ⇐ PO ⇐ OI of Section 5.

    Each transformer turns an algorithm for a stronger model into one
    for a weaker model, preserving the run-time up to a constant factor.
    Chained with the Section 4 adversary (which lives in the weakest
    model, EC), they lift the Ω(Δ) lower bound up the model hierarchy:
    a fast algorithm in PO or OI would yield a fast EC algorithm, which
    {!Lower_bound} refutes.

    {b EC ⇐ PO (§5.1, Fig. 8).} Interpret every EC edge of colour [c] as
    two opposite arcs of colour [c] (and every EC loop as a directed
    loop); run the PO algorithm; return to each EC edge the sum of its
    two arc weights (an EC loop gets twice its directed loop's weight —
    the loop's lifted edge carries one arc in each direction).

    {b PO ⇐ OI (§5.3, Fig. 9).} A [t]-time OI algorithm is a function of
    the ordered view [(τ_t(UG, v), ≼)]. The PO simulation materialises
    the view tree, embeds it in the infinite [2d]-regular tree [T] by
    reading each node's step word as an address, and inherits the
    canonical homogeneous order of Lemma 4 ([Ld_order.Tree_order]); by
    homogeneity the resulting ordered structure is independent of the
    embedding, so the rule's answer is well-defined and automatically
    lift-invariant. *)

module Po = Ld_models.Po
module Q = Ld_arith.Q

(** {1 EC ⇐ PO} *)

(** [ec_of_po a] is the §5.1 simulation; same number of rounds. *)
val ec_of_po : Ld_matching.Po_packing.algorithm -> Ld_matching.Packing.algorithm

(** {1 PO ⇐ OI} *)

type ordered_view = {
  ov_graph : Po.t;  (** the view tree materialised as a PO graph *)
  ov_root : int;  (** always 0 *)
  ov_rank : int array;  (** canonical order: rank of each tree node *)
}

(** [ordered_view g v ~radius] is [(τ_radius(UG, v), ≼)]. *)
val ordered_view : Po.t -> int -> radius:int -> ordered_view

(** An OI local rule: the radius of the view it needs, and the local
    output — a weight for each edge at the root, keyed by the depth-1
    tree node across it. The rule {b must} be order-invariant: its
    answer may depend only on the {e underlying graph} of the view and
    the canonical ranks (the PO decorations carried by [ov_graph] are
    harness bookkeeping, off-limits to a genuine OI rule). It is
    queried once per node of the input PO graph. *)
type oi_rule = {
  oi_name : string;
  oi_radius : int;
  oi_apply : ordered_view -> (int * Q.t) list;
}

(** [po_of_oi rule] is the §5.3 simulation. The assembled weights are
    cross-checked: the two endpoints of every arc must announce the
    same weight, otherwise the rule was not a consistent local
    algorithm.
    @raise Failure on an endpoint disagreement. *)
val po_of_oi : oi_rule -> Ld_matching.Po_packing.algorithm

(** [proposal_rule ~rounds] packages [rounds] iterations of the
    proposal dynamics — run centrally on the underlying graph of the
    view — as an (order-oblivious) OI rule with view radius
    [rounds + 1]. Simulating it through {!po_of_oi} reproduces
    [Po_packing.proposal ~truncate:rounds] {e exactly} — the end-to-end
    validation that view unfolding, embedding and read-back are
    faithful. *)
val proposal_rule : rounds:int -> oi_rule

(** A radius-2 OI rule defined {e purely} in terms of the ordered
    structure: for an edge [{a, b}] with [a ≺ b], the weight is
    [1/(deg a + deg b)], halved when an odd number of [a]'s other
    neighbours precede [b] in the canonical order. Always a feasible
    FM; consistent between endpoints precisely because both views rank
    the shared nodes identically — the homogeneity of Lemma 4 at work. *)
val rank_weighted_rule : oi_rule
