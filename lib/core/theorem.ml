let against_ec ~delta algo = Lower_bound.run ~delta algo

let against_po ~delta algo = Lower_bound.run ~delta (Simulate.ec_of_po algo)

let against_oi ~delta rule =
  Lower_bound.run ~delta (Simulate.ec_of_po (Simulate.po_of_oi rule))
