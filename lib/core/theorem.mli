(** Theorem 1, assembled: no LOCAL algorithm finds a maximal fractional
    matching in [o(Δ)] rounds.

    The adversary of {!Lower_bound} operates in the EC model; the
    simulations of {!Simulate} feed the stronger models into it:

    - an EC algorithm meets the adversary directly;
    - a PO algorithm is first pushed through EC ⇐ PO (§5.1) — note the
      degree bookkeeping: the adversary's EC graphs of maximum degree
      [Δ] become PO graphs of maximum degree [2Δ], which is why the
      paper's conclusion loses only a constant factor;
    - an OI rule is pushed through PO ⇐ OI (§5.3) and then EC ⇐ PO;
    - for the ID model the paper's remaining step is Ramsey-based and
      non-constructive ({!Ramsey} reproduces it as a finite search); a
      {e concrete} ID algorithm whose outputs are order-invariant on
      the relevant identifier sets factors through the OI entry point.

    Every entry point returns the adversary's machine-checked outcome:
    either per-level certificates [0 … Δ-2] (run-time [> Δ-2]) or a
    concrete failure witness (the algorithm does not solve the
    problem). *)

(** Adversary against an EC algorithm (identity entry point). *)
val against_ec :
  delta:int -> Ld_matching.Packing.algorithm -> Lower_bound.outcome

(** Adversary against a PO algorithm, via §5.1. [delta] is the EC-side
    maximum degree; the PO algorithm faces degree up to [2 delta]. *)
val against_po :
  delta:int -> Ld_matching.Po_packing.algorithm -> Lower_bound.outcome

(** Adversary against an OI rule, via §5.3 then §5.1. *)
val against_oi : delta:int -> Simulate.oi_rule -> Lower_bound.outcome
