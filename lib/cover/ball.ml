module G = Ld_graph.Graph
module Id = Ld_models.Labelled.Id

type t = {
  ball_graph : Id.t;
  root : int;
  original : int array;
}

let extract idg v ~radius =
  if radius < 0 then invalid_arg "Ball.extract: negative radius";
  let g = Id.graph idg in
  let dist = G.bfs_dist g v in
  let members =
    List.filter (fun u -> dist.(u) <= radius) (List.init (G.n g) Fun.id)
  in
  let original = Array.of_list members in
  let index = Hashtbl.create (Array.length original) in
  Array.iteri (fun i u -> Hashtbl.add index u i) original;
  (* Edge distance = min endpoint distance + 1 <= radius. *)
  let edges =
    List.filter_map
      (fun (a, b) ->
        if Stdlib.min dist.(a) dist.(b) + 1 <= radius then
          Some (Hashtbl.find index a, Hashtbl.find index b)
        else None)
      (G.edges g)
  in
  let ball = G.create (Array.length original) edges in
  let ids = Array.map (Id.id idg) original in
  {
    ball_graph = Id.create ball ids;
    root = Hashtbl.find index v;
    original;
  }

let size t = Array.length t.original
