(** Identified radius-[t] neighbourhoods — the [τ_t(G, v)] of the ID
    model (paper §3.1).

    For identifier-based networks the view is not a tree but the actual
    subgraph: all nodes within distance [t] of the root, together with
    the edges at distance at most [t] (the distance of an edge being
    [min] of its endpoints' distances plus one — so edges between two
    radius-[t] nodes are {e excluded}, matching the paper's convention
    that loops sit at distance 1).

    The paper's locality condition (1), [A(G, v) = A(τ_t(G, v))], then
    becomes executable: run the algorithm on the extracted ball (with
    its original identifiers) and compare the root's output —
    see [Ld_core.Locality]. *)

type t = {
  ball_graph : Ld_models.Labelled.Id.t;
      (** the ball, carrying the original identifiers *)
  root : int;  (** index of the centre inside [ball_graph] *)
  original : int array;  (** original node index per ball node *)
}

(** [extract idg v ~radius]. *)
val extract : Ld_models.Labelled.Id.t -> int -> radius:int -> t

(** Number of nodes in the ball. *)
val size : t -> int
