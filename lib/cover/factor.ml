module Ec = Ld_models.Ec

let factor g =
  let cls = Refinement.stable_partition_ec g in
  let num_classes =
    Array.fold_left (fun acc c -> Stdlib.max acc (c + 1)) 0 cls
  in
  (* One representative per class; stability guarantees that every class
     member has the same (colour, target class) dart signature. *)
  let repr = Array.make num_classes (-1) in
  Array.iteri (fun v c -> if repr.(c) < 0 then repr.(c) <- v) cls;
  let edges = ref [] and loops = ref [] in
  for c = 0 to num_classes - 1 do
    let v = repr.(c) in
    List.iter
      (fun dart ->
        match dart with
        | Ec.Into_loop { colour; _ } -> loops := (c, colour) :: !loops
        | Ec.To_neighbour { neighbour; colour; _ } ->
          let c' = cls.(neighbour) in
          if c' = c then loops := (c, colour) :: !loops
          else if c < c' then edges := (c, c', colour) :: !edges)
      (Ec.darts g v)
  done;
  let fg = Ec.create ~n:num_classes ~edges:!edges ~loops:!loops in
  (fg, cls)

let is_own_factor g =
  let cls = Refinement.stable_partition_ec g in
  List.length (List.sort_uniq Int.compare (Array.to_list cls)) = Ec.n g
