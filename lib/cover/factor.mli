(** Factor graphs (paper §3.4, Fig. 3).

    The factor graph [FG] of a connected EC graph [G] is the smallest
    graph that [G] covers — the most concise representation of the
    global symmetry-breaking information in [G]. We compute it as the
    quotient of [G] by its coarsest stable colour-refinement partition:
    properly edge-coloured graphs behave like deterministic automata, so
    this quotient is exactly the minimal base (cf. Angluin 1980;
    Leighton 1982). A colour class folding into its own class becomes a
    loop (semi-edge) in the quotient. *)

(** [factor g] is [(fg, cls)] where [cls.(v)] is the factor node below
    [v]. The returned pair always satisfies
    [Lift.is_covering { total = g; base = fg; map = cls }]. *)
val factor : Ld_models.Ec.t -> Ld_models.Ec.t * int array

(** [is_own_factor g] holds iff the stable partition is discrete, i.e.
    [g] is (isomorphic to) its own factor graph. *)
val is_own_factor : Ld_models.Ec.t -> bool
