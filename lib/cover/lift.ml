module Ec = Ld_models.Ec

type covering = { total : Ec.t; base : Ec.t; map : int array }

let is_covering { total; base; map } =
  Array.length map = Ec.n total
  && Array.for_all (fun b -> b >= 0 && b < Ec.n base) map
  && begin
       (* Surjectivity. *)
       let hit = Array.make (Ec.n base) false in
       Array.iter (fun b -> hit.(b) <- true) map;
       Array.for_all Fun.id hit
     end
  &&
  (* Dart-level local bijection: since colourings are proper, it is
     enough that at every total node the colour set matches the base
     node's colour set and every dart's target projects correctly. *)
  begin
    let pair_compare (a1, a2) (b1, b2) =
      let c = Int.compare a1 b1 in
      if c <> 0 then c else Int.compare a2 b2
    in
    let ok = ref true in
    for v = 0 to Ec.n total - 1 do
      let total_sig =
        List.map
          (fun d ->
            match d with
            | Ec.To_neighbour { neighbour; colour; _ } -> (colour, map.(neighbour))
            | Ec.Into_loop { colour; _ } -> (colour, map.(v)))
          (Ec.darts total v)
      in
      let base_sig =
        List.map
          (fun d ->
            match d with
            | Ec.To_neighbour { neighbour; colour; _ } -> (colour, neighbour)
            | Ec.Into_loop { colour; _ } -> (colour, map.(v)))
          (Ec.darts base map.(v))
      in
      if
        not
          (List.equal
             (fun x y -> pair_compare x y = 0)
             (List.sort pair_compare total_sig)
             (List.sort pair_compare base_sig))
      then ok := false
    done;
    !ok
  end

(* The unfold and double constructions run inside the adversary's hot
   loop on graphs that double per level, so both build their edge and
   loop arrays directly (no intermediate lists, no quadratic appends):
   copy A keeps the base ids, copy B follows shifted, extras last. *)

let unfold_loop g ~loop_id =
  let n = Ec.n g in
  let m = Ec.num_edges g in
  let nl = Ec.num_loops g in
  let l = Ec.loop g loop_id in
  let edges =
    Array.init
      ((2 * m) + 1)
      (fun i ->
        if i < m then Ec.edge g i
        else if i < 2 * m then
          let (e : Ec.edge) = Ec.edge g (i - m) in
          { e with u = e.u + n; v = e.v + n }
        else { Ec.u = l.node; v = l.node + n; colour = l.colour })
  in
  let kept i = if i < loop_id then i else i + 1 in
  let loops =
    Array.init
      (2 * (nl - 1))
      (fun i ->
        if i < nl - 1 then Ec.loop g (kept i)
        else
          let (x : Ec.loop) = Ec.loop g (kept (i - (nl - 1))) in
          { x with node = x.node + n })
  in
  let total = Ec.create_arrays ~n:(2 * n) ~edges ~loops in
  { total; base = g; map = Array.init (2 * n) (fun v -> v mod n) }

let double g =
  let n = Ec.n g in
  let m = Ec.num_edges g in
  let nl = Ec.num_loops g in
  let edges =
    Array.init
      ((2 * m) + nl)
      (fun i ->
        if i < m then Ec.edge g i
        else if i < 2 * m then
          let (e : Ec.edge) = Ec.edge g (i - m) in
          { e with u = e.u + n; v = e.v + n }
        else
          let (l : Ec.loop) = Ec.loop g (i - (2 * m)) in
          { Ec.u = l.node; v = l.node + n; colour = l.colour })
  in
  let total = Ec.create_arrays ~n:(2 * n) ~edges ~loops:[||] in
  { total; base = g; map = Array.init (2 * n) (fun v -> v mod n) }

(* Round-robin schedule: in round r, team f-1 plays team r, and team
   (r + i) plays (r - i) modulo f - 1 for i = 1 .. f/2 - 1. *)
let one_factorisation f =
  if f <= 0 || f mod 2 <> 0 then invalid_arg "Lift.one_factorisation: f must be even";
  let m = f - 1 in
  List.init m (fun r ->
      (m, r)
      :: List.init ((f / 2) - 1) (fun k ->
             let i = k + 1 in
             (((r + i) mod m + m) mod m, ((r - i) mod m + m) mod m)))

let simple_lift g =
  let n = Ec.n g in
  let max_loops = ref 0 in
  for v = 0 to n - 1 do
    max_loops := Stdlib.max !max_loops (List.length (Ec.loops_at g v))
  done;
  if !max_loops = 0 then { total = g; base = g; map = Array.init n Fun.id }
  else begin
    let f = if (!max_loops + 1) mod 2 = 0 then !max_loops + 1 else !max_loops + 2 in
    let matchings = Array.of_list (one_factorisation f) in
    let node v i = (v * f) + i in
    let edges =
      List.concat_map
        (fun (e : Ec.edge) ->
          List.init f (fun i -> (node e.u i, node e.v i, e.colour)))
        (Ec.edges g)
    in
    (* The j-th loop at each node uses the j-th matching of K_f, so the
       loops' lifted edges inside a fiber are pairwise disjoint. *)
    let loop_edges =
      List.concat_map
        (fun v ->
          List.concat
            (List.mapi
               (fun j loop_id ->
                 let l = Ec.loop g loop_id in
                 List.map
                   (fun (a, b) -> (node v a, node v b, l.colour))
                   matchings.(j))
               (Ec.loops_at g v)))
        (List.init n Fun.id)
    in
    let total = Ec.create ~n:(n * f) ~edges:(edges @ loop_edges) ~loops:[] in
    { total; base = g; map = Array.init (n * f) (fun x -> x / f) }
  end

let compose outer inner =
  if not (Ec.equal inner.base outer.total) then
    invalid_arg "Lift.compose: inner base does not match outer total";
  {
    total = inner.total;
    base = outer.base;
    map = Array.map (fun v -> outer.map.(v)) inner.map;
  }

let identity g = { total = g; base = g; map = Array.init (Ec.n g) Fun.id }
