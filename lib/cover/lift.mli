(** Graph lifts and covering maps (paper §3.4–3.5).

    A covering map [α : V(H) → V(G)] sends each node of the total graph
    [H] to a node of the base graph [G] so that the darts at [v] and at
    [α(v)] are in colour-preserving bijection. An EC loop (semi-edge) of
    colour [c] on a base node lifts to colour-[c] edges pairing up the
    fiber (or to loops on unpaired fiber members). *)

type covering = {
  total : Ld_models.Ec.t;
  base : Ld_models.Ec.t;
  map : int array;  (** [map.(v)] is the base node below total node [v]. *)
}

(** [is_covering c] verifies that [c.map] is a surjective covering map:
    every total dart of colour [k] at [v] points at a node above the
    target of the colour-[k] base dart at [map.(v)], and vice versa. *)
val is_covering : covering -> bool

(** [unfold_loop g ~loop_id] is the 2-lift of Section 4's "unfolding":
    two disjoint copies of [g] minus the loop, plus one crossing edge of
    the loop's colour joining the two copies of the loop's node. Copy A
    keeps the node numbering of [g]; copy B is shifted by [n g]. The
    crossing edge has the largest edge id of the total graph. *)
val unfold_loop : Ld_models.Ec.t -> loop_id:int -> covering

(** [double g] is the canonical 2-lift that unfolds {e every} loop at
    once: two copies of the loop-free part, every loop becoming a
    crossing edge between the copies of its node. The total graph is
    simple (loop-free). *)
val double : Ld_models.Ec.t -> covering

(** [simple_lift g] produces a loop-free lift via a 1-factorisation:
    every node's fiber has even size [f] (the least even number
    exceeding the maximum loop count), ordinary edges lift fiberwise,
    and the [j]-th loop of a node lifts to the [j]-th perfect matching
    of the complete graph [K_f] — distinct loops use edge-disjoint
    matchings, so no parallel edges are created. The total has [f * n]
    nodes (compare [2^loops] for naive repeated unfolding). The result
    contains no loops; it is a simple graph whenever the base has no
    parallel edges between a node pair. *)
val simple_lift : Ld_models.Ec.t -> covering

(** The [f - 1] perfect matchings of the round-robin 1-factorisation of
    [K_f] ([f] even), each pairing all of [0 .. f-1].
    @raise Invalid_argument if [f] is odd or non-positive. *)
val one_factorisation : int -> (int * int) list list

(** [compose outer inner] composes covering maps:
    [inner.base == outer.total] is required (physical equality of
    structure is checked with [Ec.equal]).
    @raise Invalid_argument on mismatch. *)
val compose : covering -> covering -> covering

(** Identity covering. *)
val identity : Ld_models.Ec.t -> covering
