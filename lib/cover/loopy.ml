let loopiness g =
  let fg, _ = Factor.factor g in
  Ld_models.Ec.min_loops fg

let is_loopy g = loopiness g >= 1
