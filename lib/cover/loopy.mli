(** Loopiness (paper Definition 1).

    An EC graph is [k]-loopy if every node of its factor graph carries at
    least [k] loops. Loops measure the inability to break local symmetry:
    a node with a loop always has, in any simple lift, a neighbour with an
    identical view — the engine behind Lemma 2. *)

(** [loopiness g] is the largest [k] such that [g] is [k]-loopy
    (0 if some factor node has no loop). *)
val loopiness : Ld_models.Ec.t -> int

(** [is_loopy g] is [loopiness g >= 1]. *)
val is_loopy : Ld_models.Ec.t -> bool
