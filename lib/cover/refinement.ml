module Ec = Ld_models.Ec
module Po = Ld_models.Po
module Obs = Ld_obs.Obs

type history = int array array

(* Metrics of the flat path (DESIGN.md § Observability): rounds actually
   computed vs skipped by the stabilisation early-exit, and the interning
   behaviour that dominates a round's cost. *)
let c_rounds = Obs.Counter.make "cover.refine.rounds"
let c_rounds_skipped = Obs.Counter.make "cover.refine.rounds_skipped"
let c_descriptors = Obs.Counter.make "cover.refine.descriptors_sorted"
let c_intern_hits = Obs.Counter.make "cover.refine.intern_hits"
let c_intern_misses = Obs.Counter.make "cover.refine.intern_misses"

(* ------------------------------------------------------------------ *)
(* Reference path: generic refinement over a dart structure given as
   closures producing (key, other end) lists. Labels are interned per
   round so that equal labels mean structurally identical descriptors.
   Kept verbatim as the differential-testing oracle for the flat path
   below (exposed through [~reference:true]). *)

(* Lexicographic on int pairs: same order as the polymorphic compare the
   reference path historically used, so interned labels are unchanged. *)
let pair_compare (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let refine_generic_reference ~n ~(darts : int -> (int * int) list) ~rounds =
  let history = Array.make (rounds + 1) [||] in
  history.(0) <- Array.make n 0;
  for r = 1 to rounds do
    let prev = history.(r - 1) in
    let intern : ((int * (int * int) list), int) Hashtbl.t = Hashtbl.create (2 * n) in
    let next = Array.make n 0 in
    for v = 0 to n - 1 do
      let descriptor =
        ( prev.(v),
          List.sort pair_compare (List.map (fun (k, u) -> (k, prev.(u))) (darts v)) )
      in
      let label =
        match Hashtbl.find_opt intern descriptor with
        | Some l -> l
        | None ->
          let l = Hashtbl.length intern in
          Hashtbl.add intern descriptor l;
          l
      in
      next.(v) <- label
    done;
    history.(r) <- next
  done;
  history

let ec_darts g v =
  List.map
    (function
      | Ec.To_neighbour { neighbour; colour; _ } -> (colour, neighbour)
      | Ec.Into_loop { colour; _ } -> (colour, v))
    (Ec.darts g v)

let po_darts g v =
  List.map
    (function
      | Po.Out { neighbour; colour; _ } -> ((colour * 2) + 0, neighbour)
      | Po.In { neighbour; colour; _ } -> ((colour * 2) + 1, neighbour)
      | Po.Loop_out { colour; _ } -> ((colour * 2) + 0, v)
      | Po.Loop_in { colour; _ } -> ((colour * 2) + 1, v))
    (Po.darts g v)

(* ------------------------------------------------------------------ *)
(* Flat path: the same refinement on the graphs' cached CSR dart views.
   Each round packs every dart descriptor [(key, label of other end)]
   into a single int [key * stride + label] (exactly the lexicographic
   order of the pairs, since labels < stride), insertion-sorts each
   node's short segment in place, and interns the int-tuple
   [prev label; sorted dart codes...] through a monomorphic hash table —
   no per-round lists, no polymorphic compare. Interning is in node
   order, so the labels produced are identical (not merely
   partition-equal) to the reference path's. *)

type flat = {
  fn : int;
  frow : int array; (* length fn + 1 *)
  fkey : int array; (* dart keys, per-node segments in [frow] *)
  fother : int array; (* node at the dart's far end; self for loops *)
}

let flat_ec g =
  let c = Ec.csr g in
  { fn = Ec.n g; frow = c.Ec.row; fkey = c.Ec.colour; fother = c.Ec.other }

let flat_po g =
  let c = Po.csr g in
  {
    fn = Po.n g;
    frow = c.Po.row;
    fkey =
      Array.init (Array.length c.Po.colour) (fun d ->
          (c.Po.colour.(d) * 2) + c.Po.dir.(d));
    fother = c.Po.other;
  }

module Descriptor = struct
  type t = int array

  let equal a b =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i =
      i >= la || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  (* FNV-1a over the ints, folded to a non-negative value. *)
  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193
    done;
    !h land max_int
end

module Intern = Hashtbl.Make (Descriptor)

(* One refinement round: reads [prev], writes [next], returns the number
   of distinct labels assigned. [codes] is a scratch array of size
   [frow.(fn)] reused across rounds. *)
let flat_round { fn = n; frow = row; fkey = key; fother = other } ~stride ~codes
    prev next =
  let m = row.(n) in
  for d = 0 to m - 1 do
    Array.unsafe_set codes d
      ((Array.unsafe_get key d * stride) + Array.unsafe_get prev (Array.unsafe_get other d))
  done;
  for v = 0 to n - 1 do
    (* Insertion sort of the node's dart codes: segments are at most Δ
       long and nearly sorted already (keys ascend within a node). *)
    let lo = row.(v) and hi = row.(v + 1) - 1 in
    for i = lo + 1 to hi do
      let x = codes.(i) in
      let j = ref (i - 1) in
      while !j >= lo && codes.(!j) > x do
        codes.(!j + 1) <- codes.(!j);
        decr j
      done;
      codes.(!j + 1) <- x
    done
  done;
  let intern = Intern.create (2 * n) in
  let hits = ref 0 in
  for v = 0 to n - 1 do
    let lo = row.(v) and len = row.(v + 1) - row.(v) in
    let descriptor = Array.make (len + 1) prev.(v) in
    Array.blit codes lo descriptor 1 len;
    let label =
      match Intern.find_opt intern descriptor with
      | Some l ->
        incr hits;
        l
      | None ->
        let l = Intern.length intern in
        Intern.add intern descriptor l;
        l
    in
    next.(v) <- label
  done;
  Obs.Counter.incr c_rounds;
  Obs.Counter.add c_descriptors n;
  Obs.Counter.add c_intern_hits !hits;
  Obs.Counter.add c_intern_misses (n - !hits);
  Intern.length intern

let refine_flat fl ~rounds =
  let n = fl.fn in
  let history = Array.make (rounds + 1) [||] in
  history.(0) <- Array.make n 0;
  if n > 0 then begin
    let stride = n + 1 in
    let codes = Array.make fl.frow.(n) 0 in
    let classes = ref 1 in
    let stable = ref false in
    for r = 1 to rounds do
      if !stable then begin
        (* Refinement only ever splits classes, and labels are assigned
           densely by first occurrence, so once the class count stops
           growing every later round relabels identically: share the
           stabilised array instead of recomputing it. *)
        Obs.Counter.incr c_rounds_skipped;
        history.(r) <- history.(r - 1)
      end
      else begin
        let next = Array.make n 0 in
        let k = flat_round fl ~stride ~codes history.(r - 1) next in
        history.(r) <- next;
        if k = !classes then stable := true else classes := k
      end
    done
  end;
  history

let refine_ec ?(reference = false) g ~rounds =
  if reference then
    refine_generic_reference ~n:(Ec.n g) ~darts:(ec_darts g) ~rounds
  else
    Obs.with_span "cover.refine.ec" (fun () -> refine_flat (flat_ec g) ~rounds)

let refine_po ?(reference = false) g ~rounds =
  if reference then
    refine_generic_reference ~n:(Po.n g) ~darts:(po_darts g) ~rounds
  else
    Obs.with_span "cover.refine.po" (fun () -> refine_flat (flat_po g) ~rounds)

let equivalent_radius g u h v ~radius =
  Obs.with_span "cover.refine.equivalent_radius" (fun () ->
      let union = Ec.disjoint_union g h in
      let history = refine_ec union ~rounds:radius in
      history.(radius).(u) = history.(radius).(Ec.n g + v))

let first_distinguishing_radius g u h v ~max_radius =
  let union = Ec.disjoint_union g h in
  let history = refine_ec union ~rounds:max_radius in
  let rec scan r =
    if r > max_radius then None
    else if history.(r).(u) <> history.(r).(Ec.n g + v) then Some r
    else scan (r + 1)
  in
  scan 0

(* Refine to a fixpoint incrementally — one round at a time on the flat
   view, stopping as soon as the class count stops growing (refinement
   only ever splits classes), instead of restarting the whole history
   for every candidate round count. *)
let stable_flat fl =
  let n = fl.fn in
  if n = 0 then [||]
  else begin
    let stride = n + 1 in
    let codes = Array.make fl.frow.(n) 0 in
    let labels = ref (Array.make n 0) in
    let classes = ref 1 in
    let rounds = ref 0 in
    let stable = ref false in
    (* Stabilisation takes at most n rounds; the cap is just a guard. *)
    while (not !stable) && !rounds <= n + 1 do
      let next = Array.make n 0 in
      let k = flat_round fl ~stride ~codes !labels next in
      labels := next;
      if k = !classes then stable := true else classes := k;
      incr rounds
    done;
    !labels
  end

let densify labels =
  let mapping = Hashtbl.create 16 in
  Array.map
    (fun l ->
      match Hashtbl.find_opt mapping l with
      | Some d -> d
      | None ->
        let d = Hashtbl.length mapping in
        Hashtbl.add mapping l d;
        d)
    labels

let stable_partition_ec g =
  Obs.with_span "cover.refine.stable_partition" (fun () ->
      densify (stable_flat (flat_ec g)))

let stable_partition_po g =
  Obs.with_span "cover.refine.stable_partition" (fun () ->
      densify (stable_flat (flat_po g)))
