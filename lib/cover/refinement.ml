module Ec = Ld_models.Ec
module Po = Ld_models.Po

type history = int array array

(* Generic refinement over a dart structure: [darts v] lists pairs of a
   dart key (colour, direction, ...) and the node at the dart's other
   end; a loop dart lists the node itself. Labels are interned per call
   so that equal labels mean structurally identical descriptors. *)
let refine_generic ~n ~(darts : int -> (int * int) list) ~rounds =
  let history = Array.make (rounds + 1) [||] in
  history.(0) <- Array.make n 0;
  for r = 1 to rounds do
    let prev = history.(r - 1) in
    let intern : ((int * (int * int) list), int) Hashtbl.t = Hashtbl.create (2 * n) in
    let next = Array.make n 0 in
    for v = 0 to n - 1 do
      let descriptor =
        (prev.(v), List.sort compare (List.map (fun (k, u) -> (k, prev.(u))) (darts v)))
      in
      let label =
        match Hashtbl.find_opt intern descriptor with
        | Some l -> l
        | None ->
          let l = Hashtbl.length intern in
          Hashtbl.add intern descriptor l;
          l
      in
      next.(v) <- label
    done;
    history.(r) <- next
  done;
  history

let ec_darts g v =
  List.map
    (function
      | Ec.To_neighbour { neighbour; colour; _ } -> (colour, neighbour)
      | Ec.Into_loop { colour; _ } -> (colour, v))
    (Ec.darts g v)

let po_darts g v =
  List.map
    (function
      | Po.Out { neighbour; colour; _ } -> ((colour * 2) + 0, neighbour)
      | Po.In { neighbour; colour; _ } -> ((colour * 2) + 1, neighbour)
      | Po.Loop_out { colour; _ } -> ((colour * 2) + 0, v)
      | Po.Loop_in { colour; _ } -> ((colour * 2) + 1, v))
    (Po.darts g v)

let refine_ec g ~rounds = refine_generic ~n:(Ec.n g) ~darts:(ec_darts g) ~rounds
let refine_po g ~rounds = refine_generic ~n:(Po.n g) ~darts:(po_darts g) ~rounds

let equivalent_radius g u h v ~radius =
  let union = Ec.disjoint_union g h in
  let history = refine_ec union ~rounds:radius in
  history.(radius).(u) = history.(radius).(Ec.n g + v)

let first_distinguishing_radius g u h v ~max_radius =
  let union = Ec.disjoint_union g h in
  let history = refine_ec union ~rounds:max_radius in
  let rec scan r =
    if r > max_radius then None
    else if history.(r).(u) <> history.(r).(Ec.n g + v) then Some r
    else scan (r + 1)
  in
  scan 0

let num_classes labels =
  List.length (List.sort_uniq compare (Array.to_list labels))

let stable_generic ~n ~darts =
  (* Refinement stabilises after at most n rounds; stop as soon as the
     class count stops growing (refinement only ever splits classes). *)
  let rec go r prev_classes =
    let history = refine_generic ~n ~darts ~rounds:r in
    let classes = num_classes history.(r) in
    if classes = prev_classes || r >= n + 1 then history.(r)
    else go (r + 1) classes
  in
  if n = 0 then [||] else go 1 1

let densify labels =
  let mapping = Hashtbl.create 16 in
  Array.map
    (fun l ->
      match Hashtbl.find_opt mapping l with
      | Some d -> d
      | None ->
        let d = Hashtbl.length mapping in
        Hashtbl.add mapping l d;
        d)
    labels

let stable_partition_ec g =
  densify (stable_generic ~n:(Ec.n g) ~darts:(ec_darts g))

let stable_partition_po g =
  densify (stable_generic ~n:(Po.n g) ~darts:(po_darts g))
