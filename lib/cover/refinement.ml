module Ec = Ld_models.Ec
module Po = Ld_models.Po
module Obs = Ld_obs.Obs

type history = int array array

(* Metrics of the partition-refinement path (DESIGN.md § Observability):
   rounds actually computed vs skipped by the stabilisation early-exit,
   block split events, and the interning behaviour inside splits.
   [descriptors_sorted] counts per-node descriptor sorts and therefore
   stays at zero on the default path — only the reference oracle sorts;
   CI guards on exactly that. *)
let c_rounds = Obs.Counter.make "cover.refine.rounds"
let c_rounds_skipped = Obs.Counter.make "cover.refine.rounds_skipped"
let c_descriptors = Obs.Counter.make "cover.refine.descriptors_sorted"
let c_intern_hits = Obs.Counter.make "cover.refine.intern_hits"
let c_intern_misses = Obs.Counter.make "cover.refine.intern_misses"
let c_blocks_split = Obs.Counter.make "cover.refine.blocks_split"
let h_round = Ld_obs.Hist.make "cover.refine.round"

(* Per-domain running totals, so a pool task (which runs entirely on one
   domain) can difference them around a row of work without racing the
   global atomics against sibling domains. *)
type domain_stats = {
  mutable s_rounds : int;
  mutable s_descriptors : int;
  mutable s_blocks_split : int;
}

let stats_key =
  Domain.DLS.new_key (fun () ->
      { s_rounds = 0; s_descriptors = 0; s_blocks_split = 0 })

module Stats = struct
  type t = { rounds : int; descriptors : int; blocks_split : int }

  let current () =
    let s = Domain.DLS.get stats_key in
    {
      rounds = s.s_rounds;
      descriptors = s.s_descriptors;
      blocks_split = s.s_blocks_split;
    }

  let since t0 =
    let t1 = current () in
    {
      rounds = t1.rounds - t0.rounds;
      descriptors = t1.descriptors - t0.descriptors;
      blocks_split = t1.blocks_split - t0.blocks_split;
    }
end

(* ------------------------------------------------------------------ *)
(* Reference path: generic refinement over a dart structure given as
   closures producing (key, other end) lists. Labels are interned per
   round so that equal labels mean structurally identical descriptors.
   Kept verbatim as the differential-testing oracle for the partition
   refinement below (exposed through [~reference:true]); it is the only
   path that sorts descriptors, which is what [descriptors_sorted]
   meters. *)

(* Lexicographic on int pairs: same order as the polymorphic compare the
   reference path historically used, so interned labels are unchanged. *)
let pair_compare (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let refine_generic_reference ~n ~(darts : int -> (int * int) list) ~rounds =
  let history = Array.make (rounds + 1) [||] in
  history.(0) <- Array.make n 0;
  for r = 1 to rounds do
    let prev = history.(r - 1) in
    let intern : ((int * (int * int) list), int) Hashtbl.t = Hashtbl.create (2 * n) in
    let next = Array.make n 0 in
    for v = 0 to n - 1 do
      let descriptor =
        ( prev.(v),
          List.sort pair_compare (List.map (fun (k, u) -> (k, prev.(u))) (darts v)) )
      in
      let label =
        match Hashtbl.find_opt intern descriptor with
        | Some l -> l
        | None ->
          let l = Hashtbl.length intern in
          Hashtbl.add intern descriptor l;
          l
      in
      next.(v) <- label
    done;
    history.(r) <- next;
    Obs.Counter.incr c_rounds;
    Obs.Counter.add c_descriptors n
  done;
  history

let ec_darts g v =
  List.map
    (function
      | Ec.To_neighbour { neighbour; colour; _ } -> (colour, neighbour)
      | Ec.Into_loop { colour; _ } -> (colour, v))
    (Ec.darts g v)

let po_darts g v =
  List.map
    (function
      | Po.Out { neighbour; colour; _ } -> ((colour * 2) + 0, neighbour)
      | Po.In { neighbour; colour; _ } -> ((colour * 2) + 1, neighbour)
      | Po.Loop_out { colour; _ } -> ((colour * 2) + 0, v)
      | Po.Loop_in { colour; _ } -> ((colour * 2) + 1, v))
    (Po.darts g v)

(* ------------------------------------------------------------------ *)
(* Flat dart view shared by both models. The per-node dart segments are
   in ascending key order with all keys distinct (EC enforces a proper
   colouring including loops; PO enforces properness per direction and
   the key [2 * colour + dir] separates directions by parity), so the
   fixed segment order IS the lexicographically sorted descriptor order:
   no per-round sort is ever needed. *)

type flat = {
  fn : int;
  frow : int array; (* length fn + 1 *)
  fkey : int array; (* dart keys, ascending within each node segment *)
  fother : int array; (* node at the dart's far end; self for loops *)
}

let flat_ec g =
  let c = Ec.csr g in
  (* EC CSR segments are already colour-ascending: share the arrays. *)
  { fn = Ec.n g; frow = c.Ec.row; fkey = c.Ec.colour; fother = c.Ec.other }

let flat_po g =
  let c = Po.csr g in
  let n = Po.n g in
  let row = c.Po.row in
  let m = row.(n) in
  let key = Array.make m 0 and oth = Array.make m 0 in
  (* A PO segment is two ascending runs — out darts (even keys) then in
     darts (odd keys). One merge pass per node makes the whole segment
     key-ascending; this happens once per graph, not once per round. *)
  for v = 0 to n - 1 do
    let lo = row.(v) and hi = row.(v + 1) in
    let b = ref lo in
    while !b < hi && c.Po.dir.(!b) = 0 do
      incr b
    done;
    let i = ref lo and j = ref !b and t = ref lo in
    while !i < !b || !j < hi do
      let take_out =
        !j >= hi
        || (!i < !b && c.Po.colour.(!i) * 2 < (c.Po.colour.(!j) * 2) + 1)
      in
      let d = if take_out then !i else !j in
      if take_out then incr i else incr j;
      key.(!t) <- (c.Po.colour.(d) * 2) + c.Po.dir.(d);
      oth.(!t) <- c.Po.other.(d);
      incr t
    done
  done;
  { fn = n; frow = row; fkey = key; fother = oth }

(* Disjoint union on flat views: pure array blits with an offset — no
   [Ec.t] is materialised (no dart lists, no validation, no sorting).
   This is what [equivalent_radius] refines. *)
let flat_union a b =
  let n = a.fn + b.fn in
  let ma = a.frow.(a.fn) and mb = b.frow.(b.fn) in
  let row = Array.make (n + 1) 0 in
  Array.blit a.frow 0 row 0 (a.fn + 1);
  for j = 1 to b.fn do
    row.(a.fn + j) <- ma + b.frow.(j)
  done;
  let key = Array.make (ma + mb) 0 in
  Array.blit a.fkey 0 key 0 ma;
  Array.blit b.fkey 0 key ma mb;
  let oth = Array.make (ma + mb) 0 in
  Array.blit a.fother 0 oth 0 ma;
  for d = 0 to mb - 1 do
    oth.(ma + d) <- b.fother.(d) + a.fn
  done;
  { fn = n; frow = row; fkey = key; fother = oth }

module Descriptor = struct
  type t = int array

  let equal a b =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i =
      i >= la || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  (* FNV-1a over the ints, folded to a non-negative value. *)
  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193
    done;
    !h land max_int
end

module Intern = Hashtbl.Make (Descriptor)

(* ------------------------------------------------------------------ *)
(* Round-synchronous Paige–Tarjan partition refinement.

   Blocks carry stable internal ids; node descriptors are computed
   against the id snapshot of the previous round, so a block only needs
   re-examination in round [r] if one of its members — or a neighbour of
   one — changed id in round [r-1]. When a dirty block splits, the
   {e largest} sub-block keeps the parent id (ties broken towards the
   first-encountered group, which is deterministic because members are
   scanned in slice order), so only members of the smaller parts are
   marked changed: every id change at least halves the node's block, so
   a node is marked O(log n) times and the total work is O(m log n)
   rather than O(m · rounds).

   Classical Paige–Tarjan is asynchronous — it may refine "ahead" of the
   round counter — which would be unsound here: [equivalent_radius]
   queries the partition after {e exactly} r rounds (radius-r view
   isomorphism, paper §3.1). The engine therefore stays round-
   synchronous and the per-round partitions coincide label-for-label
   with the reference oracle after the dense relabelling pass. *)

type engine = {
  fl : flat;
  stride : int; (* fn + 1: labels fit under it, codes pack as key * stride + label *)
  ids : int array; (* current block id per node *)
  ids_prev : int array; (* snapshot taken at the top of each round *)
  elems : int array; (* nodes grouped by block: one contiguous slice each *)
  blk_start : int array; (* slice start, indexed by block id *)
  blk_len : int array;
  mutable nblocks : int;
  (* Nodes whose id changed in the last completed round; double-buffered
     so a round can read the previous list while writing its own. *)
  mutable changed : int array;
  mutable nchanged : int;
  mutable changed_next : int array;
  mutable nchanged_next : int;
  dirty_stamp : int array; (* by block id; stamped with the round number *)
  dirty : int array;
  mutable ndirty : int;
  (* Scratch reused across rounds (all indexed within one block slice
     or by group index, both bounded by fn). *)
  gidx : int array;
  member : int array;
  gcount : int array;
  gstart : int array;
  gfill : int array;
  dense_map : int array; (* internal id -> dense label, per relabel pass *)
  dense_stamp : int array;
  mutable split_last_round : bool;
}

let engine_create fl =
  let n = fl.fn in
  let sz = Stdlib.max 1 n in
  {
    fl;
    stride = n + 1;
    ids = Array.make sz 0;
    ids_prev = Array.make sz 0;
    elems = Array.init sz (fun i -> i);
    blk_start = Array.make sz 0;
    blk_len = (let a = Array.make sz 0 in a.(0) <- n; a);
    nblocks = 1;
    changed = Array.make sz 0;
    nchanged = 0;
    changed_next = Array.make sz 0;
    nchanged_next = 0;
    dirty_stamp = Array.make sz (-1);
    dirty = Array.make sz 0;
    ndirty = 0;
    gidx = Array.make sz 0;
    member = Array.make sz 0;
    gcount = Array.make sz 0;
    gstart = Array.make sz 0;
    gfill = Array.make sz 0;
    dense_map = Array.make sz 0;
    dense_stamp = Array.make sz (-1);
    split_last_round = false;
  }

(* One refinement round. [r] must increase strictly across calls on the
   same engine (it doubles as the dirty stamp). *)
let engine_round_body eng r =
  let n = eng.fl.fn in
  let row = eng.fl.frow and key = eng.fl.fkey and other = eng.fl.fother in
  let stride = eng.stride in
  Array.blit eng.ids 0 eng.ids_prev 0 n;
  let prev = eng.ids_prev in
  (* Collect the blocks whose members' descriptors may have changed:
     blocks of changed nodes and blocks of their neighbours. Members of
     a split's largest part kept their id, so neither their own blocks
     nor their neighbours' read any different id value — they stay
     clean, which is exactly the smaller-half discipline. *)
  eng.ndirty <- 0;
  let mark b =
    if eng.dirty_stamp.(b) <> r then begin
      eng.dirty_stamp.(b) <- r;
      eng.dirty.(eng.ndirty) <- b;
      eng.ndirty <- eng.ndirty + 1
    end
  in
  if r = 1 then mark 0
  else
    for ci = 0 to eng.nchanged - 1 do
      let v = eng.changed.(ci) in
      mark prev.(v);
      for d = row.(v) to row.(v + 1) - 1 do
        mark prev.(other.(d))
      done
    done;
  eng.nchanged_next <- 0;
  let nsplit = ref 0 and ndesc = ref 0 and hits = ref 0 in
  for di = 0 to eng.ndirty - 1 do
    let b = eng.dirty.(di) in
    let len = eng.blk_len.(b) in
    (* A singleton can never split; its descriptor need not exist. *)
    if len > 1 then begin
      let s = eng.blk_start.(b) in
      let intern = Intern.create 16 in
      let ngroups = ref 0 in
      (* Group members by descriptor. Within a block all previous ids
         are equal, so the descriptor is just the dart codes in the
         segment's fixed key-ascending order — already canonical. *)
      for i = 0 to len - 1 do
        let v = eng.elems.(s + i) in
        let lo = row.(v) in
        let deg = row.(v + 1) - lo in
        let descr = Array.make deg 0 in
        for d = 0 to deg - 1 do
          descr.(d) <-
            (Array.unsafe_get key (lo + d) * stride)
            + Array.unsafe_get prev (Array.unsafe_get other (lo + d))
        done;
        incr ndesc;
        let g =
          match Intern.find_opt intern descr with
          | Some g ->
            incr hits;
            g
          | None ->
            let g = !ngroups in
            Intern.add intern descr g;
            incr ngroups;
            g
        in
        eng.gidx.(i) <- g;
        eng.gcount.(g) <- eng.gcount.(g) + 1
      done;
      if !ngroups > 1 then begin
        incr nsplit;
        let largest = ref 0 in
        for g = 1 to !ngroups - 1 do
          if eng.gcount.(g) > eng.gcount.(!largest) then largest := g
        done;
        (* Stable re-layout of the slice: groups in first-occurrence
           order, members keeping their relative order — both needed for
           determinism of later tie-breaks. *)
        let acc = ref s in
        for g = 0 to !ngroups - 1 do
          eng.gstart.(g) <- !acc;
          eng.gfill.(g) <- !acc;
          acc := !acc + eng.gcount.(g)
        done;
        Array.blit eng.elems s eng.member 0 len;
        for i = 0 to len - 1 do
          let v = eng.member.(i) in
          let g = eng.gidx.(i) in
          let p = eng.gfill.(g) in
          eng.gfill.(g) <- p + 1;
          eng.elems.(p) <- v
        done;
        for g = 0 to !ngroups - 1 do
          let id =
            if g = !largest then b
            else begin
              let id = eng.nblocks in
              eng.nblocks <- id + 1;
              id
            end
          in
          eng.blk_start.(id) <- eng.gstart.(g);
          eng.blk_len.(id) <- eng.gcount.(g);
          if g <> !largest then
            for p = eng.gstart.(g) to eng.gstart.(g) + eng.gcount.(g) - 1 do
              let v = eng.elems.(p) in
              eng.ids.(v) <- id;
              eng.changed_next.(eng.nchanged_next) <- v;
              eng.nchanged_next <- eng.nchanged_next + 1
            done
        done
      end;
      for g = 0 to !ngroups - 1 do
        eng.gcount.(g) <- 0
      done
    end
  done;
  let tmp = eng.changed in
  eng.changed <- eng.changed_next;
  eng.changed_next <- tmp;
  eng.nchanged <- eng.nchanged_next;
  eng.split_last_round <- !nsplit > 0;
  Obs.Counter.incr c_rounds;
  Obs.Counter.add c_intern_hits !hits;
  Obs.Counter.add c_intern_misses (!ndesc - !hits);
  Obs.Counter.add c_blocks_split !nsplit;
  let ds = Domain.DLS.get stats_key in
  ds.s_rounds <- ds.s_rounds + 1;
  ds.s_descriptors <- ds.s_descriptors + !ndesc;
  ds.s_blocks_split <- ds.s_blocks_split + !nsplit

(* Per-round latency feeds the "cover.refine.round" histogram; with the
   sink off [Hist.timed] is a direct call, so the refinement loop pays
   one atomic read per round and nothing else. *)
let engine_round eng r = Ld_obs.Hist.timed h_round (fun () -> engine_round_body eng r)

(* Internal ids densified by first occurrence in node order — exactly
   the label discipline of the reference oracle, so histories match
   label-for-label, not merely partition-for-partition. [stamp] must be
   unused by earlier relabel passes on this engine; round numbers are. *)
let engine_dense eng stamp =
  let n = eng.fl.fn in
  let out = Array.make n 0 in
  let k = ref 0 in
  for v = 0 to n - 1 do
    let b = eng.ids.(v) in
    if eng.dense_stamp.(b) <> stamp then begin
      eng.dense_stamp.(b) <- stamp;
      eng.dense_map.(b) <- !k;
      incr k
    end;
    out.(v) <- eng.dense_map.(b)
  done;
  out

let refine_flat fl ~rounds =
  let n = fl.fn in
  let history = Array.make (rounds + 1) [||] in
  history.(0) <- Array.make n 0;
  if n > 0 && rounds > 0 then begin
    let eng = engine_create fl in
    let stable = ref false in
    for r = 1 to rounds do
      if !stable then begin
        (* Refinement only ever splits classes, so once a round splits
           nothing every later round relabels identically: share the
           stabilised array instead of recomputing it. *)
        Obs.Counter.incr c_rounds_skipped;
        history.(r) <- history.(r - 1)
      end
      else begin
        engine_round eng r;
        if eng.split_last_round then history.(r) <- engine_dense eng r
        else begin
          stable := true;
          history.(r) <- history.(r - 1)
        end
      end
    done
  end;
  history

let refine_ec ?(reference = false) g ~rounds =
  if reference then
    refine_generic_reference ~n:(Ec.n g) ~darts:(ec_darts g) ~rounds
  else
    Obs.with_span "cover.refine.ec" (fun () -> refine_flat (flat_ec g) ~rounds)

let refine_po ?(reference = false) g ~rounds =
  if reference then
    refine_generic_reference ~n:(Po.n g) ~darts:(po_darts g) ~rounds
  else
    Obs.with_span "cover.refine.po" (fun () -> refine_flat (flat_po g) ~rounds)

(* Equivalence queries need no label history at all: two nodes are
   round-r equivalent iff they sit in the same block after r rounds, and
   blocks never merge — so the scan can stop early both on divergence
   (answer is No forever) and on stabilisation (answer is the current
   one forever). *)
let query_equivalent fl u v ~radius =
  u = v
  || radius = 0
  ||
  let eng = engine_create fl in
  let r = ref 1 and equal = ref true and scanning = ref true in
  while !scanning do
    engine_round eng !r;
    if eng.ids.(u) <> eng.ids.(v) then begin
      equal := false;
      scanning := false
    end
    else if (not eng.split_last_round) || !r >= radius then scanning := false
    else incr r
  done;
  !equal

let equivalent_radius g u h v ~radius =
  Obs.with_span "cover.refine.equivalent_radius" (fun () ->
      let union = flat_union (flat_ec g) (flat_ec h) in
      query_equivalent union u (Ec.n g + v) ~radius)

let first_distinguishing_radius g u h v ~max_radius =
  let union = flat_union (flat_ec g) (flat_ec h) in
  let v = Ec.n g + v in
  if u = v || max_radius < 1 then None
  else begin
    let eng = engine_create union in
    let r = ref 1 and answer = ref None and scanning = ref true in
    while !scanning do
      engine_round eng !r;
      if eng.ids.(u) <> eng.ids.(v) then begin
        answer := Some !r;
        scanning := false
      end
      else if (not eng.split_last_round) || !r >= max_radius then
        scanning := false
      else incr r
    done;
    !answer
  end

(* Refine to a fixpoint: iterate until a round splits nothing. Each
   splitting round grows the block count, so this terminates within n
   rounds. *)
let stable_flat fl =
  let n = fl.fn in
  if n = 0 then [||]
  else begin
    let eng = engine_create fl in
    let r = ref 1 and scanning = ref true in
    while !scanning do
      engine_round eng !r;
      if eng.split_last_round then incr r else scanning := false
    done;
    engine_dense eng (!r + 1)
  end

let stable_partition_ec g =
  Obs.with_span "cover.refine.stable_partition" (fun () ->
      stable_flat (flat_ec g))

let stable_partition_po g =
  Obs.with_span "cover.refine.stable_partition" (fun () ->
      stable_flat (flat_po g))
