(** Colour refinement on edge-coloured multigraphs — the exact test for
    universal-cover view isomorphism.

    Two rooted (multi)graphs have isomorphic radius-[t] universal-cover
    neighbourhoods [τ_t(UG, u) ≅ τ_t(UH, v)] (paper §3.1) if and only if
    [t] rounds of colour refinement assign [u] and [v] the same label,
    where refinement starts from a constant labelling and each round
    re-labels a node by the sorted list of (dart key, previous label of
    the dart's other end); a loop dart reflects the node's own label.

    This replaces the paper's infinite universal covers with an exact
    finite computation: no views are ever materialised. *)

(** Refinement labels after each round: [labels.(r).(v)] is the label of
    node [v] after [r] rounds, [r = 0 .. rounds]. Labels are small ints,
    consistent {e within one call} across all nodes (so cross-graph
    comparisons must go through a disjoint union — see
    {!equivalent_radius}). *)
type history = int array array

(** [refine_ec g ~rounds] runs refinement on an EC multigraph.

    The default implementation works on the graph's cached CSR dart
    view: descriptors are packed into flat int arrays, interned through
    a monomorphic int-tuple hash table, and rounds past partition
    stabilisation share the stabilised labelling instead of recomputing
    it. [~reference:true] selects the original list-based,
    polymorphic-compare implementation; both produce {e identical}
    label arrays (a tested invariant), the reference path just does so
    slowly. *)
val refine_ec : ?reference:bool -> Ld_models.Ec.t -> rounds:int -> history

(** [refine_po g ~rounds] runs refinement on a PO multigraph; dart keys
    carry the direction, so orientation is respected. [?reference] as in
    {!refine_ec}. *)
val refine_po : ?reference:bool -> Ld_models.Po.t -> rounds:int -> history

(** [equivalent_radius g u h v ~radius] decides
    [τ_radius(UG, u) ≅ τ_radius(UH, v)] for EC graphs. *)
val equivalent_radius :
  Ld_models.Ec.t -> int -> Ld_models.Ec.t -> int -> radius:int -> bool

(** [first_distinguishing_radius g u h v ~max_radius] is the smallest
    [r <= max_radius] with inequivalent radius-[r] views, if any. *)
val first_distinguishing_radius :
  Ld_models.Ec.t -> int -> Ld_models.Ec.t -> int -> max_radius:int -> int option

(** [stable_partition_ec g] refines to a fixpoint and returns the class
    of every node (classes numbered densely from 0). Nodes in the same
    class have isomorphic universal-cover views of every radius. *)
val stable_partition_ec : Ld_models.Ec.t -> int array

val stable_partition_po : Ld_models.Po.t -> int array
