(** Colour refinement on edge-coloured multigraphs — the exact test for
    universal-cover view isomorphism.

    Two rooted (multi)graphs have isomorphic radius-[t] universal-cover
    neighbourhoods [τ_t(UG, u) ≅ τ_t(UH, v)] (paper §3.1) if and only if
    [t] rounds of colour refinement assign [u] and [v] the same label,
    where refinement starts from a constant labelling and each round
    re-labels a node by the sorted list of (dart key, previous label of
    the dart's other end); a loop dart reflects the node's own label.

    This replaces the paper's infinite universal covers with an exact
    finite computation: no views are ever materialised. *)

(** Refinement labels after each round: [labels.(r).(v)] is the label of
    node [v] after [r] rounds, [r = 0 .. rounds]. Labels are small ints,
    consistent {e within one call} across all nodes (so cross-graph
    comparisons must go through a disjoint union — see
    {!equivalent_radius}). *)
type history = int array array

(** Per-domain tallies of refinement work, for benchmark rows that need
    the cost of {e their own} task rather than the process-wide atomic
    counters (which mix all pool domains together). Totals accumulate
    per domain; difference two {!Stats.current} snapshots around a task
    to meter it. *)
module Stats : sig
  type t = { rounds : int; descriptors : int; blocks_split : int }

  (** Running totals of the calling domain. *)
  val current : unit -> t

  (** [since t0] is the work done on this domain since the [t0]
      snapshot. *)
  val since : t -> t
end

(** [refine_ec g ~rounds] runs refinement on an EC multigraph.

    The default implementation is round-synchronous Paige–Tarjan
    partition refinement on the graph's cached CSR dart view: a round
    re-examines only the blocks whose members (or their neighbours)
    changed block in the previous round, a split keeps the parent id on
    the largest sub-block so only the smaller parts propagate dirtiness
    (each node changes id O(log n) times), and per-node descriptors are
    read off in the CSR segment's fixed key-ascending order — keys are
    distinct within a node, so that order is already canonical and
    nothing is ever sorted ([cover.refine.descriptors_sorted] stays 0).
    A dense relabelling pass per round reproduces the reference label
    discipline exactly. [~reference:true] selects the original
    list-based, sort-per-node implementation; both produce {e identical}
    label arrays (a tested invariant), the reference path just does so
    slowly. *)
val refine_ec : ?reference:bool -> Ld_models.Ec.t -> rounds:int -> history

(** [refine_po g ~rounds] runs refinement on a PO multigraph; dart keys
    carry the direction, so orientation is respected. [?reference] as in
    {!refine_ec}. *)
val refine_po : ?reference:bool -> Ld_models.Po.t -> rounds:int -> history

(** [equivalent_radius g u h v ~radius] decides
    [τ_radius(UG, u) ≅ τ_radius(UH, v)] for EC graphs. *)
val equivalent_radius :
  Ld_models.Ec.t -> int -> Ld_models.Ec.t -> int -> radius:int -> bool

(** [first_distinguishing_radius g u h v ~max_radius] is the smallest
    [r <= max_radius] with inequivalent radius-[r] views, if any. *)
val first_distinguishing_radius :
  Ld_models.Ec.t -> int -> Ld_models.Ec.t -> int -> max_radius:int -> int option

(** [stable_partition_ec g] refines to a fixpoint and returns the class
    of every node (classes numbered densely from 0). Nodes in the same
    class have isomorphic universal-cover views of every radius. *)
val stable_partition_ec : Ld_models.Ec.t -> int array

val stable_partition_po : Ld_models.Po.t -> int array
