module Ec = Ld_models.Ec

type t = { branches : (int * t) list }

let banned_is banned colour =
  match banned with Some c -> c = colour | None -> false

let of_ec g root ~radius =
  if radius < 0 then invalid_arg "View.of_ec: negative radius";
  let rec unfold v banned depth =
    if depth = 0 then { branches = [] }
    else begin
      let follow dart =
        match dart with
        | Ec.To_neighbour { neighbour; colour; _ } ->
          if banned_is banned colour then None
          else Some (colour, unfold neighbour (Some colour) (depth - 1))
        | Ec.Into_loop { colour; _ } ->
          if banned_is banned colour then None
          else Some (colour, unfold v (Some colour) (depth - 1))
      in
      { branches = List.filter_map follow (Ec.darts g v) }
    end
  in
  unfold root None radius

let rec equal a b =
  match (a.branches, b.branches) with
  | [], [] -> true
  | (ca, ta) :: ra, (cb, tb) :: rb ->
    ca = cb && equal ta tb && equal { branches = ra } { branches = rb }
  | _ -> false

let rec compare a b =
  match (a.branches, b.branches) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (ca, ta) :: ra, (cb, tb) :: rb ->
    let c = Int.compare ca cb in
    if c <> 0 then c
    else begin
      let c = compare ta tb in
      if c <> 0 then c else compare { branches = ra } { branches = rb }
    end

let rec size v = 1 + List.fold_left (fun acc (_, t) -> acc + size t) 0 v.branches

let rec depth v =
  List.fold_left (fun acc (_, t) -> Stdlib.max acc (1 + depth t)) 0 v.branches

let branch v c = List.assoc_opt c v.branches

let to_ec view =
  let counter = ref 0 in
  let edges = ref [] in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  let rec walk v id =
    List.iter
      (fun (colour, sub) ->
        let child = fresh () in
        edges := (id, child, colour) :: !edges;
        walk sub child)
      v.branches
  in
  let root = fresh () in
  walk view root;
  Ec.create ~n:!counter ~edges:!edges ~loops:[]

let rec pp fmt v =
  if v.branches = [] then Format.pp_print_string fmt "."
  else begin
    Format.fprintf fmt "(";
    List.iteri
      (fun i (c, sub) ->
        if i > 0 then Format.fprintf fmt " ";
        Format.fprintf fmt "%d:%a" c pp sub)
      v.branches;
    Format.fprintf fmt ")"
  end
