module Ec = Ld_models.Ec
module Obs = Ld_obs.Obs

type t = { tag : int; branches : (int * t) list }

let c_cons_hits = Obs.Counter.make "cover.view.cons_hits"

(* ------------------------------------------------------------------ *)
(* Global hash-cons arena. A view's identity is its branch list with
   children taken by tag; because branches are built in ascending
   colour order with distinct colours, the list is canonical and two
   isomorphic views always cons to the same node. The arena is shared
   across graphs, levels and deltas for the lifetime of the process, so
   equality is a single tag comparison. A mutex serialises consing —
   views are built off the refinement hot path, sharing matters more
   than lock-free speed here. *)

module Key = struct
  type t = int array

  let equal a b =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i =
      i >= la || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193
    done;
    !h land max_int
end

module Arena = Hashtbl.Make (Key)

let arena : t Arena.t = Arena.create 4096
let arena_mutex = Mutex.create ()
let next_tag = ref 0

let cons branches =
  let key = Array.make (2 * List.length branches) 0 in
  List.iteri
    (fun i (c, child) ->
      key.(2 * i) <- c;
      key.((2 * i) + 1) <- child.tag)
    branches;
  Mutex.protect arena_mutex (fun () ->
      match Arena.find_opt arena key with
      | Some v ->
        Obs.Counter.incr c_cons_hits;
        v
      | None ->
        let v = { tag = !next_tag; branches } in
        incr next_tag;
        Arena.add arena key v;
        v)

let banned_is banned colour =
  match banned with Some c -> c = colour | None -> false

(* Memoised over (node, banned colour, depth) within one call: the
   universal cover repeats subtrees massively (every visit to [v] with
   the same entry colour and remaining depth unfolds identically), so
   the tree of size Δ^t is built in O(n · Δ · t) cons operations. *)
let of_ec g root ~radius =
  if radius < 0 then invalid_arg "View.of_ec: negative radius";
  (* banned is [None] or an edge colour >= 1; encode as 0 / colour. *)
  let csr = Ec.csr g in
  let maxc = Array.fold_left Stdlib.max 0 csr.Ec.colour in
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let memo_key v banned depth =
    let b = match banned with Some c -> c | None -> 0 in
    ((v * (maxc + 1)) + b) * (radius + 1) + depth
  in
  let rec unfold v banned depth =
    if depth = 0 then cons []
    else begin
      let k = memo_key v banned depth in
      match Hashtbl.find_opt memo k with
      | Some t -> t
      | None ->
        let follow dart =
          match dart with
          | Ec.To_neighbour { neighbour; colour; _ } ->
            if banned_is banned colour then None
            else Some (colour, unfold neighbour (Some colour) (depth - 1))
          | Ec.Into_loop { colour; _ } ->
            if banned_is banned colour then None
            else Some (colour, unfold v (Some colour) (depth - 1))
        in
        let t = cons (List.filter_map follow (Ec.darts g v)) in
        Hashtbl.add memo k t;
        t
    end
  in
  unfold root None radius

(* Hash-consing makes equality a tag comparison: same arena node iff
   structurally equal. *)
let equal a b = a.tag = b.tag

(* Ordering stays structural: tags are assigned in arena insertion
   order, which depends on evaluation history — using them for ordering
   would be a run-to-run determinism hazard. *)
let rec compare_branches ba bb =
  match (ba, bb) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (ca, ta) :: ra, (cb, tb) :: rb ->
    let c = Int.compare ca cb in
    if c <> 0 then c
    else begin
      let c = if ta.tag = tb.tag then 0 else compare_branches ta.branches tb.branches in
      if c <> 0 then c else compare_branches ra rb
    end

let compare a b = if a.tag = b.tag then 0 else compare_branches a.branches b.branches

let rec size v = 1 + List.fold_left (fun acc (_, t) -> acc + size t) 0 v.branches

let rec depth v =
  List.fold_left (fun acc (_, t) -> Stdlib.max acc (1 + depth t)) 0 v.branches

let branch v c = List.assoc_opt c v.branches

let to_ec view =
  let counter = ref 0 in
  let edges = ref [] in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  let rec walk v id =
    List.iter
      (fun (colour, sub) ->
        let child = fresh () in
        edges := (id, child, colour) :: !edges;
        walk sub child)
      v.branches
  in
  let root = fresh () in
  walk view root;
  Ec.create ~n:!counter ~edges:!edges ~loops:[]

let rec pp fmt v =
  if v.branches = [] then Format.pp_print_string fmt "."
  else begin
    Format.fprintf fmt "(";
    List.iteri
      (fun i (c, sub) ->
        if i > 0 then Format.fprintf fmt " ";
        Format.fprintf fmt "%d:%a" c pp sub)
      v.branches;
    Format.fprintf fmt ")"
  end
