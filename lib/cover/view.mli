(** Explicit universal-cover view trees for EC multigraphs.

    [of_ec g v ~radius:t] is the radius-[t] neighbourhood [τ_t(UG, v)] of
    the universal cover (paper §3.4), materialised as a rooted tree whose
    branches are indexed by edge colour. Because the colouring is proper,
    each node has at most one branch per colour, so structural equality
    of these trees {e is} isomorphism of the neighbourhoods.

    A loop dart (semi-edge) unfolds into a fresh copy of its own node,
    exactly as in a simple lift. Views are hash-consed in a global arena
    shared across graphs, levels and deltas: isomorphic subtrees are one
    arena node, [of_ec] is memoised over (node, entry colour, depth) so
    the [Δ^t]-node tree costs only [O(n·Δ·t)] cons operations, and
    {!equal} is a single tag comparison. The arena lives for the whole
    process ([cover.view.cons_hits] meters the sharing); the scalable
    equivalence test is still {!Refinement}. *)

type t = private { tag : int; branches : (int * t) list }
(** Branches sorted by colour, colours distinct. A leaf has
    [branches = []]. [tag] is the arena index: equal tags iff
    structurally equal trees. Tags depend on arena insertion order, so
    they identify but must never {e order} views. *)

val of_ec : Ld_models.Ec.t -> int -> radius:int -> t

(** Tag (pointer) equality — O(1) thanks to hash-consing. *)
val equal : t -> t -> bool

(** Structural colour-lexicographic order (deterministic across runs;
    tags are not). *)
val compare : t -> t -> int

(** Number of nodes in the tree (root included). *)
val size : t -> int

val depth : t -> int

(** [branch v c] is the subtree reached along colour [c], if present. *)
val branch : t -> int -> t option

(** Materialise the view tree as an EC graph (no loops); the root is
    node 0. Running any anonymous algorithm for [depth t] rounds on the
    materialised radius-[t+1] tree reproduces the root's behaviour on
    the original graph. *)
val to_ec : t -> Ld_models.Ec.t

val pp : Format.formatter -> t -> unit
