(** Explicit universal-cover view trees for EC multigraphs.

    [of_ec g v ~radius:t] is the radius-[t] neighbourhood [τ_t(UG, v)] of
    the universal cover (paper §3.4), materialised as a rooted tree whose
    branches are indexed by edge colour. Because the colouring is proper,
    each node has at most one branch per colour, so structural equality
    of these trees {e is} isomorphism of the neighbourhoods.

    A loop dart (semi-edge) unfolds into a fresh copy of its own node,
    exactly as in a simple lift. Beware the [Δ^t] size growth: view trees
    are for small radii and cross-validation; the scalable equivalence
    test is {!Refinement}. *)

type t = { branches : (int * t) list }
(** Branches sorted by colour, colours distinct. A leaf is [{branches = []}]. *)

val of_ec : Ld_models.Ec.t -> int -> radius:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Number of nodes in the tree (root included). *)
val size : t -> int

val depth : t -> int

(** [branch v c] is the subtree reached along colour [c], if present. *)
val branch : t -> int -> t option

(** Materialise the view tree as an EC graph (no loops); the root is
    node 0. Running any anonymous algorithm for [depth t] rounds on the
    materialised radius-[t+1] tree reproduces the root's behaviour on
    the original graph. *)
val to_ec : t -> Ld_models.Ec.t

val pp : Format.formatter -> t -> unit
