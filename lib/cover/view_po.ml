module Po = Ld_models.Po
module Obs = Ld_obs.Obs

type key = { out : bool; colour : int }

type t = { tag : int; branches : (key * t) list }

let c_cons_hits = Obs.Counter.make "cover.view.cons_hits"

let key_of_dart = function
  | Po.Out { colour; _ } | Po.Loop_out { colour; _ } -> { out = true; colour }
  | Po.In { colour; _ } | Po.Loop_in { colour; _ } -> { out = false; colour }

(* Field order (out, colour) matches the record declaration, so this is
   the same total order the polymorphic compare used to give. *)
let key_compare a b =
  let c = Bool.compare a.out b.out in
  if c <> 0 then c else Int.compare a.colour b.colour

(* ------------------------------------------------------------------ *)
(* Global hash-cons arena, the PO twin of {!View}'s: identity is the
   canonical (key-sorted) branch list with children by tag, packed as an
   int array [out; colour; child tag; ...]. Shared process-wide under a
   mutex; {!equal} is a tag comparison. *)

module Arena_key = struct
  type t = int array

  let equal a b =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i =
      i >= la || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let hash a =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor Array.unsafe_get a i) * 0x01000193
    done;
    !h land max_int
end

module Arena = Hashtbl.Make (Arena_key)

let arena : t Arena.t = Arena.create 4096
let arena_mutex = Mutex.create ()
let next_tag = ref 0

let cons branches =
  let akey = Array.make (3 * List.length branches) 0 in
  List.iteri
    (fun i (k, child) ->
      akey.(3 * i) <- Bool.to_int k.out;
      akey.((3 * i) + 1) <- k.colour;
      akey.((3 * i) + 2) <- child.tag)
    branches;
  Mutex.protect arena_mutex (fun () ->
      match Arena.find_opt arena akey with
      | Some v ->
        Obs.Counter.incr c_cons_hits;
        v
      | None ->
        let v = { tag = !next_tag; branches } in
        incr next_tag;
        Arena.add arena akey v;
        v)

(* The node at a dart's other end, together with the arrival dart key
   over there. Loops lead to a fiber copy of the node itself. *)
let cross v = function
  | Po.Out { neighbour; colour; _ } -> (neighbour, { out = false; colour })
  | Po.In { neighbour; colour; _ } -> (neighbour, { out = true; colour })
  | Po.Loop_out { colour; _ } -> (v, { out = false; colour })
  | Po.Loop_in { colour; _ } -> (v, { out = true; colour })

(* Memoised over (node, banned key, depth) as in {!View.of_ec}: the
   cover repeats subtrees, so the Δ^t tree needs only O(n·Δ·t) conses. *)
let of_po g root ~radius =
  if radius < 0 then invalid_arg "View_po.of_po: negative radius";
  let csr = Po.csr g in
  let maxc = Array.fold_left Stdlib.max 0 csr.Po.colour in
  (* banned encodes as 0 (none) or 2*colour + out?; colours >= 1. *)
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let memo_key v banned depth =
    let b =
      match banned with
      | Some k -> (2 * k.colour) + Bool.to_int k.out
      | None -> 0
    in
    ((v * ((2 * maxc) + 2)) + b) * (radius + 1) + depth
  in
  let rec unfold v banned depth =
    if depth = 0 then cons []
    else begin
      let mk = memo_key v banned depth in
      match Hashtbl.find_opt memo mk with
      | Some t -> t
      | None ->
        let follow dart =
          let key = key_of_dart dart in
          let is_banned =
            match banned with Some k -> key_compare k key = 0 | None -> false
          in
          if is_banned then None
          else begin
            let target, arrival = cross v dart in
            Some (key, unfold target (Some arrival) (depth - 1))
          end
        in
        (* Keys are unique among a node's darts, so sorting by key alone
           is the same total order the polymorphic sort used to give. *)
        let by_key (ka, _) (kb, _) = key_compare ka kb in
        let t = cons (List.sort by_key (List.filter_map follow (Po.darts g v))) in
        Hashtbl.add memo mk t;
        t
    end
  in
  unfold root None radius

(* Tag equality — same arena node iff structurally equal. *)
let equal a b = a.tag = b.tag

let rec size v = 1 + List.fold_left (fun acc (_, t) -> acc + size t) 0 v.branches

let rec depth v =
  List.fold_left (fun acc (_, t) -> Stdlib.max acc (1 + depth t)) 0 v.branches

let paths view =
  let acc = ref [] in
  let rec walk prefix v =
    acc := List.rev prefix :: !acc;
    List.iter (fun (k, sub) -> walk (k :: prefix) sub) v.branches
  in
  walk [] view;
  List.rev !acc

let to_po view =
  let counter = ref 0 in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  let arcs = ref [] in
  let index = ref [] in
  let rec walk prefix v id =
    index := (List.rev prefix, id) :: !index;
    List.iter
      (fun (k, sub) ->
        let child = fresh () in
        if k.out then arcs := (id, child, k.colour) :: !arcs
        else arcs := (child, id, k.colour) :: !arcs;
        walk (k :: prefix) sub child)
      v.branches
  in
  let root = fresh () in
  walk [] view root;
  (Po.create ~n:!counter ~arcs:(List.rev !arcs) ~loops:[], List.rev !index)

let rec pp fmt v =
  if v.branches = [] then Format.pp_print_string fmt "."
  else begin
    Format.fprintf fmt "(";
    List.iteri
      (fun i (k, sub) ->
        if i > 0 then Format.fprintf fmt " ";
        Format.fprintf fmt "%s%d:%a" (if k.out then "+" else "-") k.colour pp sub)
      v.branches;
    Format.fprintf fmt ")"
  end
