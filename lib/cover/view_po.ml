module Po = Ld_models.Po

type key = { out : bool; colour : int }

type t = { branches : (key * t) list }

let key_of_dart = function
  | Po.Out { colour; _ } | Po.Loop_out { colour; _ } -> { out = true; colour }
  | Po.In { colour; _ } | Po.Loop_in { colour; _ } -> { out = false; colour }

(* Field order (out, colour) matches the record declaration, so this is
   the same total order the polymorphic compare used to give. *)
let key_compare a b =
  let c = Bool.compare a.out b.out in
  if c <> 0 then c else Int.compare a.colour b.colour

(* The node at a dart's other end, together with the arrival dart key
   over there. Loops lead to a fiber copy of the node itself. *)
let cross v = function
  | Po.Out { neighbour; colour; _ } -> (neighbour, { out = false; colour })
  | Po.In { neighbour; colour; _ } -> (neighbour, { out = true; colour })
  | Po.Loop_out { colour; _ } -> (v, { out = false; colour })
  | Po.Loop_in { colour; _ } -> (v, { out = true; colour })

let of_po g root ~radius =
  if radius < 0 then invalid_arg "View_po.of_po: negative radius";
  let rec unfold v banned depth =
    if depth = 0 then { branches = [] }
    else begin
      let follow dart =
        let key = key_of_dart dart in
        let is_banned =
          match banned with Some k -> key_compare k key = 0 | None -> false
        in
        if is_banned then None
        else begin
          let target, arrival = cross v dart in
          Some (key, unfold target (Some arrival) (depth - 1))
        end
      in
      (* Keys are unique among a node's darts, so sorting by key alone is
         the same total order the polymorphic sort used to give. *)
      let by_key (ka, _) (kb, _) = key_compare ka kb in
      { branches = List.sort by_key (List.filter_map follow (Po.darts g v)) }
    end
  in
  unfold root None radius

let rec equal a b =
  match (a.branches, b.branches) with
  | [], [] -> true
  | (ka, ta) :: ra, (kb, tb) :: rb ->
    key_compare ka kb = 0
    && equal ta tb
    && equal { branches = ra } { branches = rb }
  | _ -> false

let rec size v = 1 + List.fold_left (fun acc (_, t) -> acc + size t) 0 v.branches

let rec depth v =
  List.fold_left (fun acc (_, t) -> Stdlib.max acc (1 + depth t)) 0 v.branches

let paths view =
  let acc = ref [] in
  let rec walk prefix v =
    acc := List.rev prefix :: !acc;
    List.iter (fun (k, sub) -> walk (k :: prefix) sub) v.branches
  in
  walk [] view;
  List.rev !acc

let to_po view =
  let counter = ref 0 in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  let arcs = ref [] in
  let index = ref [] in
  let rec walk prefix v id =
    index := (List.rev prefix, id) :: !index;
    List.iter
      (fun (k, sub) ->
        let child = fresh () in
        if k.out then arcs := (id, child, k.colour) :: !arcs
        else arcs := (child, id, k.colour) :: !arcs;
        walk (k :: prefix) sub child)
      v.branches
  in
  let root = fresh () in
  walk [] view root;
  (Po.create ~n:!counter ~arcs:(List.rev !arcs) ~loops:[], List.rev !index)

let rec pp fmt v =
  if v.branches = [] then Format.pp_print_string fmt "."
  else begin
    Format.fprintf fmt "(";
    List.iteri
      (fun i (k, sub) ->
        if i > 0 then Format.fprintf fmt " ";
        Format.fprintf fmt "%s%d:%a" (if k.out then "+" else "-") k.colour pp sub)
      v.branches;
    Format.fprintf fmt ")"
  end
