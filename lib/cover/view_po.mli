(** Universal-cover view trees for PO multigraphs.

    The PO analogue of {!View}: [of_po g v ~radius:t] unfolds
    [τ_t(UG, v)] as a rooted tree whose branches are indexed by the dart
    key [(out?, colour)] — legal names because out-colours and
    in-colours are separately distinct at every node. A directed loop
    unfolds through its two darts into fresh copies of its node, exactly
    as in a lift (where the loop becomes a directed cycle through the
    fiber).

    These trees are the [τ] of the PO ⇐ OI simulation (paper §5.3,
    Fig. 9): {!paths} exposes each tree node as its step word from the
    root, ready to be embedded into the infinite tree [T] and ordered by
    [Ld_order.Tree_order]. *)

type key = { out : bool; colour : int }

type t = private { tag : int; branches : (key * t) list }
(** Branches sorted by key; keys distinct. Trees are hash-consed in a
    global process-lifetime arena exactly as in {!View}: [tag] is the
    arena index (equal tags iff structurally equal; never use tags for
    ordering — they depend on insertion order). *)

val of_po : Ld_models.Po.t -> int -> radius:int -> t

(** Tag (pointer) equality — O(1) thanks to hash-consing. *)
val equal : t -> t -> bool
val size : t -> int
val depth : t -> int

(** All nodes of the tree as root-relative step words, in DFS order;
    the root is [[]]. A step [{out = true; colour}] follows an outgoing
    arc (the walker is at the tail). *)
val paths : t -> key list list

(** Materialise the view as a PO graph (no loops). Returns the graph and
    the node index of each path in {!paths} order; the root is node 0. *)
val to_po : t -> Ld_models.Po.t * (key list * int) list

val pp : Format.formatter -> t -> unit
