module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Obs = Ld_obs.Obs

(* The adversary feasibility-checks every probe output; these make the
   checker traffic (and any violations found) visible. *)
let c_validity = Obs.Counter.make "fm.check.validity"
let c_maximality = Obs.Counter.make "fm.check.maximality"
let c_violations = Obs.Counter.make "fm.check.violations"

type t = { graph : Ec.t; edge_w : Q.t array; loop_w : Q.t array }

let create graph ~edge_w ~loop_w =
  if Array.length edge_w <> Ec.num_edges graph then
    invalid_arg "Fm.create: edge weight count mismatch";
  if Array.length loop_w <> Ec.num_loops graph then
    invalid_arg "Fm.create: loop weight count mismatch";
  { graph; edge_w; loop_w }

let zero graph =
  {
    graph;
    edge_w = Array.make (Ec.num_edges graph) Q.zero;
    loop_w = Array.make (Ec.num_loops graph) Q.zero;
  }

let graph y = y.graph
let edge_weight y id = y.edge_w.(id)
let loop_weight y id = y.loop_w.(id)

let dart_weight y = function
  | Ec.To_neighbour { edge_id; _ } -> y.edge_w.(edge_id)
  | Ec.Into_loop { loop_id; _ } -> y.loop_w.(loop_id)

(* Weight of the dart at CSR code [c] (edge id, or [-loop_id - 1]). *)
let code_weight y c = if c >= 0 then y.edge_w.(c) else y.loop_w.(-c - 1)

let node_weight y v =
  let { Ec.row; code; _ } = Ec.csr y.graph in
  let acc = ref Q.zero in
  for d = row.(v) to row.(v + 1) - 1 do
    acc := Q.add !acc (code_weight y code.(d))
  done;
  !acc

let is_saturated y v = Q.equal (node_weight y v) Q.one

(* All node weights in one pass over the CSR darts; the feasibility
   checkers below use this to test saturation per node once instead of
   once per incident edge. *)
let node_weights y =
  let n = Ec.n y.graph in
  let { Ec.row; code; _ } = Ec.csr y.graph in
  let w = Array.make n Q.zero in
  for v = 0 to n - 1 do
    let acc = ref Q.zero in
    for d = row.(v) to row.(v + 1) - 1 do
      acc := Q.add !acc (code_weight y code.(d))
    done;
    w.(v) <- !acc
  done;
  w

let total y =
  Q.add
    (Array.fold_left Q.add Q.zero y.edge_w)
    (Array.fold_left Q.add Q.zero y.loop_w)

type violation =
  | Weight_out_of_range of [ `Edge of int | `Loop of int ]
  | Node_overloaded of int
  | Unsaturated_edge of int
  | Unsaturated_loop of int

let in_range w = Q.sign w >= 0 && Q.compare w Q.one <= 0

let validity_violations y =
  Obs.Counter.incr c_validity;
  Obs.with_span "fm.check.validity" @@ fun () ->
  let acc = ref [] in
  Array.iteri
    (fun id w -> if not (in_range w) then acc := Weight_out_of_range (`Edge id) :: !acc)
    y.edge_w;
  Array.iteri
    (fun id w -> if not (in_range w) then acc := Weight_out_of_range (`Loop id) :: !acc)
    y.loop_w;
  let w = node_weights y in
  for v = 0 to Ec.n y.graph - 1 do
    if Q.compare w.(v) Q.one > 0 then acc := Node_overloaded v :: !acc
  done;
  let vs = List.rev !acc in
  if vs <> [] then Obs.Counter.add c_violations (List.length vs);
  vs

let maximality_violations y =
  Obs.Counter.incr c_maximality;
  Obs.with_span "fm.check.maximality" @@ fun () ->
  let w = node_weights y in
  let sat v = Q.equal w.(v) Q.one in
  let acc = ref [] in
  for id = Ec.num_loops y.graph - 1 downto 0 do
    if not (sat (Ec.loop y.graph id).node) then acc := Unsaturated_loop id :: !acc
  done;
  for id = Ec.num_edges y.graph - 1 downto 0 do
    let e = Ec.edge y.graph id in
    if not (sat e.u || sat e.v) then acc := Unsaturated_edge id :: !acc
  done;
  if !acc <> [] then Obs.Counter.add c_violations (List.length !acc);
  !acc

(* Exactly [validity_violations y @ maximality_violations y], sharing
   one node-weight pass between the two checker families. The adversary
   feasibility-checks every probe output for validity AND maximality,
   and the exact-arithmetic Q sums of [node_weights] dominate the
   checker cost — fusing halves them. Violation order and counter
   traffic match the unfused pair, so refutation records are
   reproduced verbatim. *)
let feasibility_violations y =
  Obs.Counter.incr c_validity;
  Obs.Counter.incr c_maximality;
  Obs.with_span "fm.check.feasibility" @@ fun () ->
  let n = Ec.n y.graph in
  let w = node_weights y in
  let sat = Array.init n (fun v -> Q.equal w.(v) Q.one) in
  let acc = ref [] in
  for id = Ec.num_loops y.graph - 1 downto 0 do
    if not sat.((Ec.loop y.graph id).Ec.node) then acc := Unsaturated_loop id :: !acc
  done;
  for id = Ec.num_edges y.graph - 1 downto 0 do
    let e = Ec.edge y.graph id in
    if not (sat.(e.Ec.u) || sat.(e.Ec.v)) then acc := Unsaturated_edge id :: !acc
  done;
  for v = n - 1 downto 0 do
    if Q.compare w.(v) Q.one > 0 then acc := Node_overloaded v :: !acc
  done;
  for id = Array.length y.loop_w - 1 downto 0 do
    if not (in_range y.loop_w.(id)) then
      acc := Weight_out_of_range (`Loop id) :: !acc
  done;
  for id = Array.length y.edge_w - 1 downto 0 do
    if not (in_range y.edge_w.(id)) then
      acc := Weight_out_of_range (`Edge id) :: !acc
  done;
  let vs = !acc in
  if vs <> [] then Obs.Counter.add c_violations (List.length vs);
  vs

let is_fm y = validity_violations y = []
let is_maximal_fm y = is_fm y && maximality_violations y = []

let is_fully_saturated y =
  let w = node_weights y in
  Array.for_all (fun x -> Q.equal x Q.one) w

let equal a b =
  Ec.equal a.graph b.graph
  && Array.for_all2 Q.equal a.edge_w b.edge_w
  && Array.for_all2 Q.equal a.loop_w b.loop_w

let pull_back (cov : Ld_cover.Lift.covering) y =
  if not (Ec.equal y.graph cov.base) then
    invalid_arg "Fm.pull_back: matching is not on the covering's base";
  let base_dart v colour =
    match Ec.dart_by_colour cov.base v colour with
    | Some d -> d
    | None -> invalid_arg "Fm.pull_back: not a covering (missing base dart)"
  in
  let edge_w =
    Array.init (Ec.num_edges cov.total) (fun id ->
        let e = Ec.edge cov.total id in
        dart_weight y (base_dart cov.map.(e.u) e.colour))
  in
  let loop_w =
    Array.init (Ec.num_loops cov.total) (fun id ->
        let l = Ec.loop cov.total id in
        dart_weight y (base_dart cov.map.(l.node) l.colour))
  in
  { graph = cov.total; edge_w; loop_w }

let pp fmt y =
  Format.fprintf fmt "@[<v>fm on %d nodes:@," (Ec.n y.graph);
  List.iteri
    (fun id (e : Ec.edge) ->
      Format.fprintf fmt "  y(%d-%d, colour %d) = %a@," e.u e.v e.colour Q.pp
        y.edge_w.(id))
    (Ec.edges y.graph);
  List.iteri
    (fun id (l : Ec.loop) ->
      Format.fprintf fmt "  y(loop@@%d, colour %d) = %a@," l.node l.colour Q.pp
        y.loop_w.(id))
    (Ec.loops y.graph);
  Format.fprintf fmt "@]"
