(** Fractional matchings on EC multigraphs (paper §1.2).

    A fractional matching [y] assigns a weight in [[0,1]] to every edge
    and loop; the node weight [y[v]] sums the weights of all darts at
    [v], a loop counting {e once} (the EC semi-edge convention: in a
    simple lift the loop is a single edge incident to each fiber copy).

    [y] is a {e fractional matching} if [y[v] <= 1] everywhere, and
    {e maximal} if every edge has a saturated endpoint — for a loop,
    its node must be saturated, since in any lift both endpoints of the
    lifted edge are fiber copies with the same node weight.

    All weights are exact rationals, so the checkers below are decision
    procedures, not approximations. *)

module Q = Ld_arith.Q

type t

(** [create g ~edge_w ~loop_w] — weights indexed by edge id and loop id.
    @raise Invalid_argument on length mismatch. Weights are {e not}
    range-checked here; see {!validity_violations}. *)
val create :
  Ld_models.Ec.t -> edge_w:Q.t array -> loop_w:Q.t array -> t

(** The all-zero fractional matching. *)
val zero : Ld_models.Ec.t -> t

val graph : t -> Ld_models.Ec.t
val edge_weight : t -> int -> Q.t
val loop_weight : t -> int -> Q.t

(** Weight of the edge or loop behind a dart. *)
val dart_weight : t -> Ld_models.Ec.dart -> Q.t

(** Weight of the dart behind a CSR dart code ([Ec.csr]'s [code.(d)]:
    an edge id, or [-loop_id - 1]) — the allocation-free variant of
    {!dart_weight} used by the hot paths. *)
val code_weight : t -> int -> Q.t

(** [node_weight y v] is [y[v]]. *)
val node_weight : t -> int -> Q.t

(** All node weights, computed in one pass over the CSR dart view. *)
val node_weights : t -> Q.t array

val is_saturated : t -> int -> bool

(** Sum of all edge and loop weights. *)
val total : t -> Q.t

type violation =
  | Weight_out_of_range of [ `Edge of int | `Loop of int ]
      (** some weight is outside [[0,1]] *)
  | Node_overloaded of int  (** [y[v] > 1] *)
  | Unsaturated_edge of int  (** both endpoints unsaturated *)
  | Unsaturated_loop of int  (** the loop's node is unsaturated *)

(** Violations of the fractional-matching conditions (feasibility). *)
val validity_violations : t -> violation list

(** Violations of maximality, assuming feasibility. *)
val maximality_violations : t -> violation list

(** [feasibility_violations y] is exactly
    [validity_violations y @ maximality_violations y] — same violations
    in the same order, same counter traffic — computed with a single
    shared node-weight pass. The adversary's per-probe check needs both
    families, and the exact-rational [node_weights] sum dominates the
    checker cost, so the fused form is the hot-path entry point. *)
val feasibility_violations : t -> violation list

val is_fm : t -> bool

(** Feasible and maximal. *)
val is_maximal_fm : t -> bool

(** All nodes saturated (the Lemma 2 conclusion on loopy graphs). *)
val is_fully_saturated : t -> bool

val equal : t -> t -> bool

(** [pull_back cov y] transports a fractional matching on the base of a
    covering to its total graph: every total edge gets the weight of the
    base edge or loop it projects to. This is how the output of a
    lift-invariant algorithm on the base determines its output on the
    total graph (condition (2) of the paper).
    @raise Invalid_argument if [graph y] is not the covering's base. *)
val pull_back : Ld_cover.Lift.covering -> t -> t

val pp : Format.formatter -> t -> unit
