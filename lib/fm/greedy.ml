module Ec = Ld_models.Ec
module G = Ld_graph.Graph
module Q = Ld_arith.Q

(* Any total order works here — both sides of the permutation check are
   sorted with the same comparator, so only multiset equality matters. *)
let item_compare a b =
  match (a, b) with
  | `Edge i, `Edge j | `Loop i, `Loop j -> Int.compare i j
  | `Edge _, `Loop _ -> -1
  | `Loop _, `Edge _ -> 1

let item_equal a b = item_compare a b = 0

let maximal_fm_in_order g order =
  let expected =
    List.init (Ec.num_edges g) (fun i -> `Edge i)
    @ List.init (Ec.num_loops g) (fun i -> `Loop i)
  in
  if
    not
      (List.equal item_equal
         (List.sort item_compare order)
         (List.sort item_compare expected))
  then invalid_arg "Greedy.maximal_fm_in_order: order is not a permutation";
  let slack = Array.make (Ec.n g) Q.one in
  let edge_w = Array.make (Ec.num_edges g) Q.zero in
  let loop_w = Array.make (Ec.num_loops g) Q.zero in
  List.iter
    (fun item ->
      match item with
      | `Edge id ->
        let e = Ec.edge g id in
        let w = Q.min slack.(e.u) slack.(e.v) in
        edge_w.(id) <- w;
        slack.(e.u) <- Q.sub slack.(e.u) w;
        slack.(e.v) <- Q.sub slack.(e.v) w
      | `Loop id ->
        let l = Ec.loop g id in
        loop_w.(id) <- slack.(l.node);
        slack.(l.node) <- Q.zero)
    order;
  Fm.create g ~edge_w ~loop_w

let maximal_fm g =
  maximal_fm_in_order g
    (List.init (Ec.num_edges g) (fun i -> `Edge i)
    @ List.init (Ec.num_loops g) (fun i -> `Loop i))

let maximal_matching g =
  let used = Array.make (G.n g) false in
  List.filter
    (fun (u, v) ->
      if used.(u) || used.(v) then false
      else begin
        used.(u) <- true;
        used.(v) <- true;
        true
      end)
    (G.edges g)

let is_maximal_matching g m =
  let used = Array.make (G.n g) false in
  let ok_matching =
    List.for_all
      (fun (u, v) ->
        if used.(u) || used.(v) || not (G.has_edge g u v) then false
        else begin
          used.(u) <- true;
          used.(v) <- true;
          true
        end)
      m
  in
  ok_matching
  && List.for_all (fun (u, v) -> used.(u) || used.(v)) (G.edges g)
