(** Centralised greedy baselines.

    These are the sequential reference algorithms the distributed ones
    are compared against: greedy saturation is exactly what the O(Δ) EC
    algorithm performs, one colour class at a time. *)

(** [maximal_fm g] processes edges, then loops, in id order, assigning
    each edge the minimum residual slack of its endpoints (a loop gets
    its node's full residual slack — its lifted edge joins two equally
    loaded copies). The result is always a maximal FM. *)
val maximal_fm : Ld_models.Ec.t -> Fm.t

(** [maximal_fm_in_order g order] is the same with an explicit
    processing order over [`Edge id | `Loop id] items; items must be a
    permutation of all edges and loops.
    @raise Invalid_argument otherwise. *)
val maximal_fm_in_order :
  Ld_models.Ec.t -> [ `Edge of int | `Loop of int ] list -> Fm.t

(** Greedy maximal (integral) matching of a simple graph, in edge order. *)
val maximal_matching : Ld_graph.Graph.t -> (int * int) list

(** [is_maximal_matching g m] checks that [m] is a matching and no edge
    can be added. *)
val is_maximal_matching : Ld_graph.Graph.t -> (int * int) list -> bool
