let max_matching ~left ~right adj =
  if Array.length adj <> left then invalid_arg "Hopcroft_karp: adj length";
  Array.iter
    (List.iter (fun v ->
         if v < 0 || v >= right then invalid_arg "Hopcroft_karp: range"))
    adj;
  let inf = max_int in
  let mate_l = Array.make left (-1) in
  let mate_r = Array.make right (-1) in
  let dist = Array.make left inf in
  let bfs () =
    let queue = Queue.create () in
    for u = 0 to left - 1 do
      if mate_l.(u) < 0 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- inf
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          match mate_r.(v) with
          | -1 -> found := true
          | u' ->
            if dist.(u') = inf then begin
              dist.(u') <- dist.(u) + 1;
              Queue.add u' queue
            end)
        adj.(u)
    done;
    !found
  in
  let rec dfs u =
    let rec try_neighbours = function
      | [] ->
        dist.(u) <- inf;
        false
      | v :: rest ->
        let advance =
          match mate_r.(v) with
          | -1 -> true
          | u' -> dist.(u') = dist.(u) + 1 && dfs u'
        in
        if advance then begin
          mate_l.(u) <- v;
          mate_r.(v) <- u;
          true
        end
        else try_neighbours rest
    in
    try_neighbours adj.(u)
  in
  while bfs () do
    for u = 0 to left - 1 do
      if mate_l.(u) < 0 then ignore (dfs u)
    done
  done;
  mate_l

let size mate_of_left =
  Array.fold_left (fun acc m -> if m >= 0 then acc + 1 else acc) 0 mate_of_left

let brute_force_size g =
  let module G = Ld_graph.Graph in
  let edges = Array.of_list (G.edges g) in
  let used = Array.make (G.n g) false in
  let rec go i =
    if i = Array.length edges then 0
    else begin
      let u, v = edges.(i) in
      let skip = go (i + 1) in
      if used.(u) || used.(v) then skip
      else begin
        used.(u) <- true;
        used.(v) <- true;
        let take = 1 + go (i + 1) in
        used.(u) <- false;
        used.(v) <- false;
        Stdlib.max skip take
      end
    end
  in
  go 0
