(** Maximum matching in bipartite graphs (Hopcroft–Karp).

    Substrate for {!Maximum}: the maximum-weight fractional matching of
    a general graph is computed via its bipartite double cover, whose
    (integral) maximum matching this module finds in
    [O(E sqrt(V))] time. *)

(** [max_matching ~left ~right adj] where [adj.(u)] lists the right-side
    neighbours of left node [u]. Returns [mate_of_left] with
    [mate_of_left.(u) = -1] for unmatched [u].
    @raise Invalid_argument on out-of-range neighbour indices. *)
val max_matching : left:int -> right:int -> int list array -> int array

(** Matching size given a [mate_of_left] array. *)
val size : int array -> int

(** Brute-force maximum matching on an arbitrary simple graph, by
    branching on edges — exponential, for cross-checking on graphs with
    up to ~12 edges. Returns the matching size. *)
val brute_force_size : Ld_graph.Graph.t -> int
