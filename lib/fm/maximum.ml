module G = Ld_graph.Graph
module Q = Ld_arith.Q

let double_cover_matching g =
  (* Left side = v⁺, right side = v⁻; every edge uv of g contributes
     u⁺v⁻ and v⁺u⁻. *)
  let n = G.n g in
  let adj = Array.init n (fun v -> G.neighbours g v) in
  Hopcroft_karp.max_matching ~left:n ~right:n adj

let value g =
  let mate = double_cover_matching g in
  Q.make (Ld_arith.Z.of_int (Hopcroft_karp.size mate)) (Ld_arith.Z.of_int 2)

let witness g =
  let mate = double_cover_matching g in
  List.map
    (fun (u, v) ->
      let hits =
        (if mate.(u) = v then 1 else 0) + (if mate.(v) = u then 1 else 0)
      in
      (u, v, Q.of_ints hits 2))
    (G.edges g)

let ratio y =
  let g = Fm.graph y in
  if Ld_models.Ec.num_loops g > 0 then invalid_arg "Maximum.ratio: graph has loops";
  let opt = value (Ld_models.Ec.to_simple g) in
  let total = Fm.total y in
  if Q.is_zero opt then
    if Q.is_zero total then Q.one else invalid_arg "Maximum.ratio: zero optimum"
  else Q.div total opt
