(** Maximum-weight fractional matchings (paper §1.2).

    The fractional matching polytope of a simple graph is half-integral,
    and its optimum value equals half the maximum matching of the
    bipartite double cover [B(G)] (nodes [v⁺, v⁻]; edges [u⁺v⁻] and
    [v⁺u⁻] per edge [uv]): any FM on [G] doubles into a fractional — and
    by bipartite integrality, integral — matching of [B(G)], and any
    matching of [B(G)] halves back. Used for the ½-approximation
    experiment: a maximal FM always has total weight at least half the
    maximum (Kuhn et al. context in §1.2). *)

(** Maximum fractional matching value [ν_f] of a simple graph, as an
    exact rational (always an integer multiple of 1/2). *)
val value : Ld_graph.Graph.t -> Ld_arith.Q.t

(** A maximum-weight fractional matching itself, as weights on
    [Graph.edges g] in order. Each weight is 0, ½ or 1. *)
val witness : Ld_graph.Graph.t -> (int * int * Ld_arith.Q.t) list

(** [ratio y] is [total weight of y / ν_f] for a fractional matching on
    a loop-free EC graph. Maximal FMs satisfy [ratio >= 1/2].
    @raise Invalid_argument if the graph has loops or [ν_f = 0] with
    [total y > 0]; if both are zero the ratio is defined as 1. *)
val ratio : Fm.t -> Ld_arith.Q.t
