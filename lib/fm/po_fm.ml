module Po = Ld_models.Po
module Q = Ld_arith.Q

type t = { graph : Po.t; arc_w : Q.t array; loop_w : Q.t array }

let create graph ~arc_w ~loop_w =
  if Array.length arc_w <> Po.num_arcs graph then
    invalid_arg "Po_fm.create: arc weight count mismatch";
  if Array.length loop_w <> Po.num_loops graph then
    invalid_arg "Po_fm.create: loop weight count mismatch";
  { graph; arc_w; loop_w }

let zero graph =
  {
    graph;
    arc_w = Array.make (Po.num_arcs graph) Q.zero;
    loop_w = Array.make (Po.num_loops graph) Q.zero;
  }

let graph y = y.graph
let arc_weight y id = y.arc_w.(id)
let loop_weight y id = y.loop_w.(id)

let dart_weight y = function
  | Po.Out { arc_id; _ } | Po.In { arc_id; _ } -> y.arc_w.(arc_id)
  | Po.Loop_out { loop_id; _ } | Po.Loop_in { loop_id; _ } -> y.loop_w.(loop_id)

let node_weight y v =
  Q.sum (List.map (dart_weight y) (Po.darts y.graph v))

let is_saturated y v = Q.equal (node_weight y v) Q.one

type violation =
  | Weight_out_of_range of [ `Arc of int | `Loop of int ]
  | Node_overloaded of int
  | Unsaturated_arc of int
  | Unsaturated_loop of int

let in_range w = Q.sign w >= 0 && Q.compare w Q.one <= 0

let validity_violations y =
  let acc = ref [] in
  Array.iteri
    (fun id w -> if not (in_range w) then acc := Weight_out_of_range (`Arc id) :: !acc)
    y.arc_w;
  Array.iteri
    (fun id w -> if not (in_range w) then acc := Weight_out_of_range (`Loop id) :: !acc)
    y.loop_w;
  for v = 0 to Po.n y.graph - 1 do
    if Q.compare (node_weight y v) Q.one > 0 then acc := Node_overloaded v :: !acc
  done;
  List.rev !acc

let maximality_violations y =
  let acc = ref [] in
  List.iteri
    (fun id (a : Po.arc) ->
      if not (is_saturated y a.tail || is_saturated y a.head) then
        acc := Unsaturated_arc id :: !acc)
    (Po.arcs y.graph);
  List.iteri
    (fun id (l : Po.loop) ->
      if not (is_saturated y l.node) then acc := Unsaturated_loop id :: !acc)
    (Po.loops y.graph);
  List.rev !acc

let is_fm y = validity_violations y = []
let is_maximal_fm y = is_fm y && maximality_violations y = []

let equal a b =
  Po.equal a.graph b.graph
  && Array.for_all2 Q.equal a.arc_w b.arc_w
  && Array.for_all2 Q.equal a.loop_w b.loop_w

let pp fmt y =
  Format.fprintf fmt "@[<v>po-fm on %d nodes:@," (Po.n y.graph);
  List.iteri
    (fun id (a : Po.arc) ->
      Format.fprintf fmt "  y(%d->%d, colour %d) = %a@," a.tail a.head a.colour
        Q.pp y.arc_w.(id))
    (Po.arcs y.graph);
  List.iteri
    (fun id (l : Po.loop) ->
      Format.fprintf fmt "  y(loop@@%d, colour %d) = %a@," l.node l.colour Q.pp
        y.loop_w.(id))
    (Po.loops y.graph);
  Format.fprintf fmt "@]"
