(** Fractional matchings on PO multigraphs.

    Mirror of {!Fm} for the PO model. The node weight counts every arc
    end separately, and a directed loop counts {e twice} (its two darts:
    in any lift the loop unfolds into a directed cycle through the
    fiber, and each copy is incident to two distinct lifted arcs of the
    loop, each carrying the loop's weight).

    Under the §5.1 interpretation of an EC graph as a PO graph, an EC
    edge of colour [c] splits into two opposite arcs whose weights add
    up to the EC weight; an EC loop corresponds to a directed loop of
    half its EC weight. *)

module Q = Ld_arith.Q

type t

val create : Ld_models.Po.t -> arc_w:Q.t array -> loop_w:Q.t array -> t
val zero : Ld_models.Po.t -> t
val graph : t -> Ld_models.Po.t
val arc_weight : t -> int -> Q.t
val loop_weight : t -> int -> Q.t

(** [y[v]]: sum over out darts, in darts, with loops counted twice. *)
val node_weight : t -> int -> Q.t

val is_saturated : t -> int -> bool

type violation =
  | Weight_out_of_range of [ `Arc of int | `Loop of int ]
  | Node_overloaded of int
  | Unsaturated_arc of int
  | Unsaturated_loop of int

val validity_violations : t -> violation list
val maximality_violations : t -> violation list
val is_fm : t -> bool
val is_maximal_fm : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
