module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Obs = Ld_obs.Obs

let c_walks = Obs.Counter.make "fm.prop.walks"
let c_steps = Obs.Counter.make "fm.prop.steps"
let c_loops_found = Obs.Counter.make "fm.prop.loops_found"

let differing_darts y y' v =
  if not (Ec.equal (Fm.graph y) (Fm.graph y')) then
    invalid_arg "Propagation.differing_darts: matchings on different graphs";
  List.filter
    (fun d -> not (Q.equal (Fm.dart_weight y d) (Fm.dart_weight y' d)))
    (Ec.darts (Fm.graph y) v)

let holds_at ~y ~y' v =
  if Fm.is_saturated y v && Fm.is_saturated y' v then
    match differing_darts y y' v with
    | [] -> true
    | [ _ ] -> false
    | _ :: _ :: _ -> true
  else true

type step = { node : int; via : Ec.dart }

type walk_outcome =
  | Loop_found of { node : int; loop_id : int; trace : step list }
  | Stuck of { node : int; trace : step list }

(* We stand at [node] knowing that y and y' disagree on its dart of
   colour [excluded]; by Fact 3 (both matchings saturate every node on
   the graphs where this walk is used) there must be a second differing
   dart. A differing loop ends the walk; otherwise we cross the
   differing edge and repeat with that edge's colour excluded — never
   backtracking, so on a tree-plus-loops graph the walk terminates.

   The candidate scan iterates the graph's CSR dart view: a differing
   loop (in colour order) wins, else the first differing edge. *)
let walk ~y ~y' ~start ~first =
  Obs.Counter.incr c_walks;
  Obs.with_span "fm.prop.walk" @@ fun () ->
  let graph = Fm.graph y in
  let { Ec.row; colour; code; _ } = Ec.csr graph in
  let code_differs c =
    not (Q.equal (Fm.code_weight y c) (Fm.code_weight y' c))
  in
  let differs d = not (Q.equal (Fm.dart_weight y d) (Fm.dart_weight y' d)) in
  if not (differs first) then
    invalid_arg "Propagation.walk: initial dart does not differ";
  let bound = (2 * Ec.n graph) + 2 in
  let rec go node excluded depth trace =
    if depth > bound then
      failwith "Propagation.walk: no termination (graph is not a tree plus loops?)";
    let hi = row.(node + 1) in
    let best_loop = ref (-1) and best_edge = ref (-1) in
    for d = row.(node) to hi - 1 do
      if colour.(d) <> excluded && code_differs code.(d) then
        if code.(d) < 0 then (if !best_loop < 0 then best_loop := d)
        else if !best_edge < 0 then best_edge := d
    done;
    if !best_loop >= 0 then begin
      let d = Ec.dart_at graph !best_loop in
      let loop_id = -code.(!best_loop) - 1 in
      Obs.Counter.incr c_loops_found;
      Loop_found { node; loop_id; trace = List.rev ({ node; via = d } :: trace) }
    end
    else if !best_edge >= 0 then begin
      let d = Ec.dart_at graph !best_edge in
      match d with
      | Ec.To_neighbour { neighbour; colour; _ } ->
        Obs.Counter.incr c_steps;
        go neighbour colour (depth + 1) ({ node; via = d } :: trace)
      | Ec.Into_loop _ -> assert false
    end
    else Stuck { node; trace = List.rev trace }
  in
  go start (Ec.dart_colour first) 1 [ { node = start; via = first } ]
