module Ec = Ld_models.Ec
module Q = Ld_arith.Q

let differing_darts y y' v =
  if not (Ec.equal (Fm.graph y) (Fm.graph y')) then
    invalid_arg "Propagation.differing_darts: matchings on different graphs";
  List.filter
    (fun d -> not (Q.equal (Fm.dart_weight y d) (Fm.dart_weight y' d)))
    (Ec.darts (Fm.graph y) v)

let holds_at ~y ~y' v =
  if Fm.is_saturated y v && Fm.is_saturated y' v then
    match differing_darts y y' v with
    | [] -> true
    | [ _ ] -> false
    | _ :: _ :: _ -> true
  else true

type step = { node : int; via : Ec.dart }

type walk_outcome =
  | Loop_found of { node : int; loop_id : int; trace : step list }
  | Stuck of { node : int; trace : step list }

(* We stand at [node] knowing that y and y' disagree on its dart of
   colour [excluded]; by Fact 3 (both matchings saturate every node on
   the graphs where this walk is used) there must be a second differing
   dart. A differing loop ends the walk; otherwise we cross the
   differing edge and repeat with that edge's colour excluded — never
   backtracking, so on a tree-plus-loops graph the walk terminates. *)
let walk ~y ~y' ~start ~first =
  let differs d = not (Q.equal (Fm.dart_weight y d) (Fm.dart_weight y' d)) in
  if not (differs first) then
    invalid_arg "Propagation.walk: initial dart does not differ";
  let bound = (2 * Ec.n (Fm.graph y)) + 2 in
  let rec go node excluded trace =
    if List.length trace > bound then
      failwith "Propagation.walk: no termination (graph is not a tree plus loops?)";
    let candidates =
      List.filter
        (fun d -> differs d && Ec.dart_colour d <> excluded)
        (Ec.darts (Fm.graph y) node)
    in
    let loops, edges =
      List.partition (function Ec.Into_loop _ -> true | Ec.To_neighbour _ -> false)
        candidates
    in
    match (loops, edges) with
    | (Ec.Into_loop { loop_id; _ } as d) :: _, _ ->
      Loop_found { node; loop_id; trace = List.rev ({ node; via = d } :: trace) }
    | [], (Ec.To_neighbour { neighbour; colour; _ } as d) :: _ ->
      go neighbour colour ({ node; via = d } :: trace)
    | [], [] -> Stuck { node; trace = List.rev trace }
    | Ec.To_neighbour _ :: _, _ | [], Ec.Into_loop _ :: _ ->
      (* impossible by the partition *)
      assert false
  in
  go start (Ec.dart_colour first) [ { node = start; via = first } ]
