(** The propagation principle (paper Fact 3 / Fact 8) and the
    disagreement walk of §4.3.

    If two fractional matchings both saturate a node [v] and disagree on
    some dart at [v], they must disagree on at least one other dart at
    [v] — disagreements cannot stop at saturated nodes. On a graph that
    is a tree apart from its loops, following disagreements away from a
    starting dart therefore terminates at a loop on which the two
    matchings disagree. *)

(** Darts at [v] on which the two matchings assign different weights.
    @raise Invalid_argument if the matchings live on different graphs. *)
val differing_darts :
  Fm.t -> Fm.t -> int -> Ld_models.Ec.dart list

(** [holds_at ~y ~y' v] checks Fact 3 at [v]: if both saturate [v] and
    some dart differs, at least two darts differ. *)
val holds_at : y:Fm.t -> y':Fm.t -> int -> bool

type step = { node : int; via : Ld_models.Ec.dart }

type walk_outcome =
  | Loop_found of { node : int; loop_id : int; trace : step list }
      (** A loop with differing weights was reached; [trace] lists the
          darts followed, starting with the initial one. *)
  | Stuck of { node : int; trace : step list }
      (** No further differing dart — possible only if the propagation
          principle's premises fail (e.g. an unsaturated node). *)

(** [walk ~y ~y' ~start ~first] runs the disagreement walk of §4.3:
    standing at [start], where dart [first] is known to differ, look for
    a {e second} differing dart (Fact 3). A differing loop ends the walk;
    a differing edge is crossed and the search repeats at the neighbour
    with the crossed colour excluded — the walk never backtracks, so it
    terminates whenever the graph is a tree once loops are ignored
    (property P3).
    @raise Invalid_argument if [first] does not differ at [start].
    @raise Failure if the walk exceeds [2n] steps (non-tree misuse). *)
val walk :
  y:Fm.t -> y':Fm.t -> start:int -> first:Ld_models.Ec.dart ->
  walk_outcome
