module Ec = Ld_models.Ec
module G = Ld_graph.Graph
module Q = Ld_arith.Q

let of_fm y =
  List.filter (Fm.is_saturated y) (List.init (Ec.n (Fm.graph y)) Fun.id)

let is_vertex_cover g nodes =
  let in_cover = Array.make (Ec.n g) false in
  List.iter (fun v -> in_cover.(v) <- true) nodes;
  List.for_all (fun (e : Ec.edge) -> in_cover.(e.u) || in_cover.(e.v)) (Ec.edges g)
  && List.for_all (fun (l : Ec.loop) -> in_cover.(l.node)) (Ec.loops g)

let minimum_size g =
  (* Branch on an uncovered edge: one endpoint must join the cover. *)
  let covered = Array.make (G.n g) false in
  let edges = Array.of_list (G.edges g) in
  let rec go i acc best =
    if acc >= best then best
    else if i = Array.length edges then acc
    else begin
      let u, v = edges.(i) in
      if covered.(u) || covered.(v) then go (i + 1) acc best
      else begin
        covered.(u) <- true;
        let best = go (i + 1) (acc + 1) best in
        covered.(u) <- false;
        covered.(v) <- true;
        let best = go (i + 1) (acc + 1) best in
        covered.(v) <- false;
        best
      end
    end
  in
  go 0 0 max_int

let approximation_ratio y =
  let g = Fm.graph y in
  if Ec.num_loops g > 0 then
    invalid_arg "Vertex_cover.approximation_ratio: graph has loops";
  let cover = of_fm y in
  let opt = minimum_size (Ec.to_simple g) in
  if opt = 0 then
    if cover = [] then Q.one
    else invalid_arg "Vertex_cover.approximation_ratio: zero optimum"
  else Q.of_ints (List.length cover) opt
