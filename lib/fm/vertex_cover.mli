(** Vertex covers from maximal edge packings.

    The original application of the O(Δ) maximal edge packing
    (Åstrand–Suomela 2010 [3], Åstrand et al. 2009 [4]): by LP duality,
    the saturated nodes of a maximal fractional matching form a
    2-approximation of the minimum vertex cover —

    - {e cover}: an edge with no saturated endpoint would contradict
      maximality;
    - {e factor 2}: [|C| = Σ_{v saturated} 1 <= Σ_v y[v] <= 2 Σ_e y(e)
      <= 2 τ*] (each edge weight is counted at its two endpoints, and
      the LP optimum lower-bounds any integral cover).

    So the Ω(Δ) lower bound of this paper is simultaneously a lower
    bound for the canonical distributed 2-approximation of vertex
    cover. *)

(** Saturated nodes of a fractional matching. *)
val of_fm : Fm.t -> int list

(** [is_vertex_cover g nodes] — every edge has an endpoint in [nodes]
    (loops require their node). *)
val is_vertex_cover : Ld_models.Ec.t -> int list -> bool

(** Exact minimum vertex cover size by branching on uncovered edges;
    exponential, for graphs with at most ~20 edges (tests and the
    approximation bench). *)
val minimum_size : Ld_graph.Graph.t -> int

(** [approximation_ratio y] is [|saturated| / τ(G)] for a maximal FM on
    a loop-free graph; always between 1 and 2.
    @raise Invalid_argument on loops, or τ = 0 with a nonempty cover. *)
val approximation_ratio : Fm.t -> Ld_arith.Q.t
