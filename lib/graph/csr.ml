(* Flat CSR representation of a properly edge-coloured simple graph.

   This is the streaming-generation target: mega-scale instances are
   built directly into these arrays (see [Generators.stream_*]) without
   ever materialising adjacency lists, edge lists, or boxed records.
   Dart [d] of node [v] lives at [row.(v) .. row.(v+1) - 1] with the
   far endpoint in [endpoint.(d)] (strictly ascending within a segment,
   mirroring [Graph.neighbours]'s sorted order) and the edge colour in
   [colour.(d)]. The colouring is proper: colours within a segment are
   pairwise distinct (but *not* sorted — segments are endpoint-sorted;
   [Ld_models.Ec.of_csr] performs the colour-sort when lifting into the
   EC model). *)

type t = {
  n : int;
  row : int array;
  endpoint : int array;
  colour : int array;
  m : int;
}

let n g = g.n
let m g = g.m
let degree g v = g.row.(v + 1) - g.row.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := Stdlib.max !best (degree g v)
  done;
  !best

let max_colour g =
  let best = ref 0 in
  Array.iter (fun c -> if c > best.contents then best := c) g.colour;
  !best

(* Port of [w] as seen from [v]: index [q] such that
   [endpoint.(row.(w) + q) = v]. Segments are endpoint-sorted, so a
   binary search per dart suffices; the result is the [back] array the
   port-numbering executors use to route a message from dart (v, p) to
   the receive slot of the far endpoint. *)
let back g =
  let { row; endpoint; _ } = g in
  let nd = row.(g.n) in
  let back = Array.make nd 0 in
  for v = 0 to g.n - 1 do
    for d = row.(v) to row.(v + 1) - 1 do
      let w = endpoint.(d) in
      let lo = ref row.(w) and hi = ref (row.(w + 1) - 1) in
      let found = ref (-1) in
      while !found < 0 && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let e = endpoint.(mid) in
        if e = v then found := mid
        else if e < v then lo := mid + 1
        else hi := mid - 1
      done;
      if !found < 0 then invalid_arg "Csr.back: asymmetric adjacency";
      back.(d) <- !found - row.(w)
    done
  done;
  back

let validate g =
  let { n; row; endpoint; colour; m } = g in
  if Array.length row <> n + 1 then invalid_arg "Csr.validate: row length";
  if row.(0) <> 0 then invalid_arg "Csr.validate: row.(0)";
  for v = 0 to n - 1 do
    if row.(v + 1) < row.(v) then invalid_arg "Csr.validate: row not monotone"
  done;
  let nd = row.(n) in
  if Array.length endpoint <> nd || Array.length colour <> nd then
    invalid_arg "Csr.validate: dart array length";
  if m * 2 <> nd then invalid_arg "Csr.validate: m";
  for v = 0 to n - 1 do
    for d = row.(v) to row.(v + 1) - 1 do
      let w = endpoint.(d) in
      if w < 0 || w >= n || w = v then invalid_arg "Csr.validate: endpoint";
      if d > row.(v) && endpoint.(d - 1) >= w then
        invalid_arg "Csr.validate: segment not strictly ascending";
      if colour.(d) < 1 then invalid_arg "Csr.validate: colour < 1";
      (* properness within the segment *)
      for d' = row.(v) to d - 1 do
        if colour.(d') = colour.(d) then
          invalid_arg "Csr.validate: colouring not proper"
      done
    done
  done;
  (* symmetry with matching colours *)
  let bk = back g in
  for v = 0 to n - 1 do
    for d = row.(v) to row.(v + 1) - 1 do
      let w = endpoint.(d) in
      let d' = row.(w) + bk.(d) in
      if endpoint.(d') <> v || colour.(d') <> colour.(d) then
        invalid_arg "Csr.validate: asymmetric edge"
    done
  done

let int_array_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x <> b.(i) then ok := false) a;
  !ok

let equal a b =
  a.n = b.n && a.m = b.m
  && int_array_equal a.row b.row
  && int_array_equal a.endpoint b.endpoint
  && int_array_equal a.colour b.colour

(* Greedy proper edge colouring over edges sorted ascending by packed
   key [u * n + v] (u < v) — exactly the order [Graph.edges] yields and
   exactly the smallest-free-colour rule of [Edge_colouring.greedy], so
   a streamed CSR carries the same colours as the legacy
   list-of-tuples path (differentially tested in test_graph.ml).
   Colours 1..62 live in a per-node bitmask; the (rare, only when
   Δ > 31 forces colours past 62) overflow goes to a spill list. *)
let greedy_colour_sorted_edges ~n ~ne ~packed ~out_colour =
  let used = Array.make n 0 in
  let spill : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let mem v c =
    if c <= 62 then used.(v) land (1 lsl (c - 1)) <> 0
    else
      match Hashtbl.find_opt spill v with
      | None -> false
      | Some cs -> List.mem c cs
  in
  let mark v c =
    if c <= 62 then used.(v) <- used.(v) lor (1 lsl (c - 1))
    else
      Hashtbl.replace spill v
        (c :: (match Hashtbl.find_opt spill v with None -> [] | Some cs -> cs))
  in
  (* [Edge_colouring.greedy] consumes [Graph.edges], whose
     downto-and-cons construction yields ascending [u] but
     {e descending} [v] within each [u] block — so to produce the very
     same colours we walk each equal-[u] run of the sorted array in
     reverse. *)
  let i = ref 0 in
  while !i < ne do
    let u = packed.(!i) / n in
    let j = ref !i in
    while !j < ne && packed.(!j) / n = u do
      incr j
    done;
    for k = !j - 1 downto !i do
      let v = packed.(k) mod n in
      let c = ref 1 in
      while mem u !c || mem v !c do
        incr c
      done;
      mark u !c;
      mark v !c;
      out_colour.(k) <- !c
    done;
    i := !j
  done

(* Assemble a CSR from [ne] accepted edges packed as [u * n + v]
   (u < v, arbitrary order; sorted in place) and the per-node degree
   array. Single pass: sort, colour greedily in sorted order, scatter
   both darts of each edge through per-node write cursors. Sorted edge
   order fills every segment in ascending-endpoint order. *)
let of_packed_edges ~n ~deg ~packed ~ne =
  let es = Array.sub packed 0 ne in
  Array.sort Int.compare es;
  let ecol = Array.make (Stdlib.max 1 ne) 0 in
  greedy_colour_sorted_edges ~n ~ne ~packed:es ~out_colour:ecol;
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + deg.(v)
  done;
  let nd = row.(n) in
  let endpoint = Array.make (Stdlib.max 1 nd) 0 in
  let colour = Array.make (Stdlib.max 1 nd) 0 in
  let cur = Array.sub row 0 n in
  for i = 0 to ne - 1 do
    let u = es.(i) / n and v = es.(i) mod n in
    let c = ecol.(i) in
    endpoint.(cur.(u)) <- v;
    colour.(cur.(u)) <- c;
    cur.(u) <- cur.(u) + 1;
    endpoint.(cur.(v)) <- u;
    colour.(cur.(v)) <- c;
    cur.(v) <- cur.(v) + 1
  done;
  let endpoint = if nd = 0 then [||] else endpoint in
  let colour = if nd = 0 then [||] else colour in
  { n; row; endpoint; colour; m = ne }

let of_graph g ~colour:col =
  let n = Graph.n g in
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + Graph.degree g v
  done;
  let nd = row.(n) in
  let endpoint = Array.make (Stdlib.max 1 nd) 0 in
  let colour = Array.make (Stdlib.max 1 nd) 0 in
  for v = 0 to n - 1 do
    let d = ref row.(v) in
    List.iter
      (fun w ->
        endpoint.(!d) <- w;
        colour.(!d) <- col (Stdlib.min v w, Stdlib.max v w);
        incr d)
      (Graph.neighbours g v)
  done;
  let endpoint = if nd = 0 then [||] else endpoint in
  let colour = if nd = 0 then [||] else colour in
  { n; row; endpoint; colour; m = Graph.m g }

let to_graph g =
  let es = ref [] in
  for v = g.n - 1 downto 0 do
    for d = g.row.(v + 1) - 1 downto g.row.(v) do
      let w = g.endpoint.(d) in
      if v < w then es := (v, w) :: !es
    done
  done;
  Graph.create g.n !es

let pp fmt g =
  Format.fprintf fmt "@[csr(n=%d, m=%d)@]" g.n g.m
