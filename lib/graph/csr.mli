(** Flat CSR view of a properly edge-coloured simple graph.

    The streaming generators ([Generators.stream_*]) build mega-scale
    instances directly into these arrays with no intermediate lists;
    the packed runtime ([Ld_runtime.Packed]) iterates them. Dart [d]
    of node [v] occupies [row.(v) .. row.(v+1) - 1]; [endpoint.(d)] is
    the far endpoint (strictly ascending within a segment, the same
    order as [Graph.neighbours]) and [colour.(d)] the edge's colour
    under a proper edge colouring (positive; segments are
    endpoint-sorted, not colour-sorted). Treat all arrays as
    read-only. *)

type t = {
  n : int;
  row : int array;  (** length [n + 1] *)
  endpoint : int array;  (** length [row.(n)] *)
  colour : int array;  (** length [row.(n)] *)
  m : int;  (** number of edges, [row.(n) / 2] *)
}

val n : t -> int
val m : t -> int
val degree : t -> int -> int
val max_degree : t -> int

(** Largest colour in use; 0 on an edgeless graph. *)
val max_colour : t -> int

(** [back g] maps every dart to the far end's port for it: with
    [w = endpoint.(d)], [endpoint.(row.(w) + (back g).(d)) = v] for
    dart [d] of node [v]. O(darts · log Δ); computed once per run by
    the port-numbering executors. *)
val back : t -> int array

(** Structural well-formedness check (monotone rows, sorted segments,
    symmetry, proper colouring). @raise Invalid_argument on failure. *)
val validate : t -> unit

(** Exact array-level equality — the byte-identical check the
    differential tests use. *)
val equal : t -> t -> bool

(** [of_packed_edges ~n ~deg ~packed ~ne] assembles a CSR from the
    first [ne] entries of [packed] (edges encoded [u * n + v], u < v),
    sorting in place, colouring greedily in sorted-edge order (the
    [Edge_colouring.greedy] rule) and scattering darts through
    per-node cursors. [deg] must be the final degree array. *)
val of_packed_edges : n:int -> deg:int array -> packed:int array -> ne:int -> t

(** Greedy proper edge colouring of [ne] sorted packed edges; writes
    colour of edge [i] to [out_colour.(i)]. Processes edges in
    [Edge_colouring.greedy]'s order — ascending [u], descending [v]
    within a block (the order [Graph.edges] yields) — so the colours
    are byte-identical to the list path. Exposed for differential
    tests. *)
val greedy_colour_sorted_edges :
  n:int -> ne:int -> packed:int array -> out_colour:int array -> unit

(** Reference conversion from the list-based graph (used by the
    differential tests): segment order follows [Graph.neighbours]. *)
val of_graph : Graph.t -> colour:(int * int -> int) -> t

(** Small-size escape hatch for boxed oracles. *)
val to_graph : t -> Graph.t

val pp : Format.formatter -> t -> unit
