let path n =
  if n < 1 then invalid_arg "Generators.path";
  Graph.create n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle";
  Graph.create n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star k =
  if k < 0 then invalid_arg "Generators.star";
  Graph.create (k + 1) (List.init k (fun i -> (0, i + 1)))

let complete n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.create n !es

let complete_bipartite a b =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = 0 to b - 1 do
      es := (u, a + v) :: !es
    done
  done;
  Graph.create (a + b) !es

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let id r c = (r * cols) + c in
  let es = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then es := (id r c, id r (c + 1)) :: !es;
      if r + 1 < rows then es := (id r c, id (r + 1) c) :: !es
    done
  done;
  Graph.create (rows * cols) !es

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Generators.hypercube";
  let n = 1 lsl d in
  let es = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then es := (v, w) :: !es
    done
  done;
  Graph.create n !es

let binary_tree depth =
  if depth < 0 then invalid_arg "Generators.binary_tree";
  let n = (1 lsl (depth + 1)) - 1 in
  let es = ref [] in
  for v = 1 to n - 1 do
    es := ((v - 1) / 2, v) :: !es
  done;
  Graph.create n !es

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Generators.caterpillar";
  let es = ref [] in
  for i = 0 to spine - 2 do
    es := (i, i + 1) :: !es
  done;
  for i = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      es := (i, spine + (i * legs) + l) :: !es
    done
  done;
  Graph.create (spine + (spine * legs)) !es

let spider ~delta ~tail =
  if delta < 1 || tail < 1 then invalid_arg "Generators.spider";
  (* centre 0; leg i occupies nodes 1 + i*tail .. 1 + i*tail + (tail-1) *)
  let es = ref [] in
  for i = 0 to delta - 1 do
    let base = 1 + (i * tail) in
    es := (0, base) :: !es;
    for j = 0 to tail - 2 do
      es := (base + j, base + j + 1) :: !es
    done
  done;
  Graph.create (1 + (delta * tail)) !es

let random_tree ~seed n =
  if n < 1 then invalid_arg "Generators.random_tree";
  if n = 1 then Graph.create 1 []
  else if n = 2 then Graph.create 2 [ (0, 1) ]
  else begin
    let rng = Random.State.make [| seed; n; 0x7ee |] in
    let pruefer = Array.init (n - 2) (fun _ -> Random.State.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) pruefer;
    (* Standard Prüfer decoding with a pointer-and-leaf scan. *)
    let es = ref [] in
    let ptr = ref 0 in
    while deg.(!ptr) <> 1 do
      incr ptr
    done;
    let leaf = ref !ptr in
    Array.iter
      (fun v ->
        es := (!leaf, v) :: !es;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 && v < !ptr then leaf := v
        else begin
          incr ptr;
          while deg.(!ptr) <> 1 do
            incr ptr
          done;
          leaf := !ptr
        end)
      pruefer;
    es := (!leaf, n - 1) :: !es;
    Graph.create n (List.map (fun (u, v) -> (Stdlib.min u v, Stdlib.max u v)) !es)
  end

let random_gnp ~seed n p =
  if n < 0 || p < 0.0 || p > 1.0 then invalid_arg "Generators.random_gnp";
  let rng = Random.State.make [| seed; n; 0x61f |] in
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then es := (u, v) :: !es
    done
  done;
  Graph.create n !es

let random_regular ~seed n d =
  if d < 0 || d >= n || (n * d) mod 2 <> 0 then
    invalid_arg "Generators.random_regular";
  let rng = Random.State.make [| seed; n; d; 0x2e9 |] in
  let attempt () =
    (* Configuration model: pair up n*d stubs uniformly at random and
       reject on loops/multi-edges. *)
    let stubs = Array.init (n * d) (fun i -> i / d) in
    for i = Array.length stubs - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- tmp
    done;
    let seen = Hashtbl.create (n * d) in
    let ok = ref true in
    let es = ref [] in
    let i = ref 0 in
    while !ok && !i < Array.length stubs do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (Stdlib.min u v, Stdlib.max u v) in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        es := key :: !es
      end;
      i := !i + 2
    done;
    if !ok then Some (Graph.create n !es) else None
  in
  let rec retry k =
    if k = 0 then failwith "Generators.random_regular: too many retries"
    else
      match attempt () with
      | Some g -> g
      | None -> retry (k - 1)
  in
  retry 5000

let random_bounded_degree ~seed n max_deg =
  if n < 0 || max_deg < 0 then invalid_arg "Generators.random_bounded_degree";
  let rng = Random.State.make [| seed; n; max_deg; 0x90d |] in
  let deg = Array.make n 0 in
  (* All n(n-1)/2 candidate edges, packed as [u * n + v] in one flat int
     array — the historic cons-then-[Array.of_list] built the same
     sequence (reverse lexicographic) through ~n²/2 boxed tuples, which
     dominated the whole generator at n in the thousands. Order and
     every RNG draw below are preserved exactly, so generated graphs are
     byte-identical to the old implementation's. *)
  let total = n * (n - 1) / 2 in
  let arr = Array.make (Stdlib.max 1 total) 0 in
  let k = ref (total - 1) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      arr.(!k) <- (u * n) + v;
      decr k
    done
  done;
  (* Shuffle candidate edges, then greedily keep those respecting the
     degree bound with probability favouring a dense-but-bounded graph. *)
  for i = total - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  let es = ref [] in
  for i = 0 to total - 1 do
    let u = arr.(i) / n and v = arr.(i) mod n in
    if deg.(u) < max_deg && deg.(v) < max_deg && Random.State.bool rng then begin
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      es := (u, v) :: !es
    end
  done;
  Graph.create n !es

(* ---------- streaming generators ----------

   Same families, built straight into [Csr.t] arrays: no tuple lists,
   no [Graph.t], no Hashtbl-of-tuples. Each [stream_*] either consumes
   the *identical* RNG stream as its list-based twin (so same seed =>
   byte-identical graph, differentially tested in test_graph.ml) or is
   deterministic. *)

let stream_bounded_degree ~seed n max_deg =
  if n < 0 || max_deg < 0 then invalid_arg "Generators.stream_bounded_degree";
  let rng = Random.State.make [| seed; n; max_deg; 0x90d |] in
  let deg = Array.make (Stdlib.max 1 n) 0 in
  let total = n * (n - 1) / 2 in
  let arr = Array.make (Stdlib.max 1 total) 0 in
  let k = ref (total - 1) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      arr.(!k) <- (u * n) + v;
      decr k
    done
  done;
  for i = total - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  (* Greedy acceptance compacts accepted edges into the prefix of the
     same candidate array — every RNG draw matches the list path. *)
  let ne = ref 0 in
  for i = 0 to total - 1 do
    let u = arr.(i) / n and v = arr.(i) mod n in
    if deg.(u) < max_deg && deg.(v) < max_deg && Random.State.bool rng then begin
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      let e = arr.(i) in
      arr.(!ne) <- e;
      incr ne
    end
  done;
  Csr.of_packed_edges ~n ~deg ~packed:arr ~ne:!ne

let stream_regular ~seed n d =
  if d < 0 || d >= n || n * d mod 2 <> 0 then
    invalid_arg "Generators.stream_regular";
  let rng = Random.State.make [| seed; n; d; 0x2e9 |] in
  let stubs = Array.make (Stdlib.max 1 (n * d)) 0 in
  let es = Array.make (Stdlib.max 1 (n * d / 2)) 0 in
  let deg = Array.make (Stdlib.max 1 n) 0 in
  let attempt () =
    for i = 0 to (n * d) - 1 do
      stubs.(i) <- i / d
    done;
    for i = (n * d) - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- tmp
    done;
    (* Duplicate detection via a packed-int key table — semantically the
       membership test of the list twin, so acceptance (and hence the
       retry count and RNG stream position) is identical. *)
    let seen = Hashtbl.create (n * d) in
    let ok = ref true in
    let ne = ref 0 in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (Stdlib.min u v * n) + Stdlib.max u v in
      if u = v || Hashtbl.mem seen key then ok := false
      else begin
        Hashtbl.add seen key ();
        es.(!ne) <- key;
        incr ne
      end;
      i := !i + 2
    done;
    !ok
  in
  let rec retry k =
    if k = 0 then failwith "Generators.stream_regular: too many retries"
    else if attempt () then begin
      Array.fill deg 0 n d;
      Csr.of_packed_edges ~n ~deg ~packed:es ~ne:(n * d / 2)
    end
    else retry (k - 1)
  in
  retry 5000

let stream_perm_regular ~seed n d =
  if d < 2 || d mod 2 <> 0 || d >= n then
    invalid_arg "Generators.stream_perm_regular";
  let rng = Random.State.make [| seed; n; d; 0x9e4 |] in
  (* Union of d/2 random permutation cycle covers: each permutation
     contributes edges {v, pi v}, giving every node degree <= 2 per
     cover. Unlike the configuration model there is no global
     rejection — fixed points and duplicate edges are simply skipped
     (a vanishing fraction), so generation is O(n d) at any scale.
     The result is a simple graph of max degree <= d, near-d-regular. *)
  let perm = Array.init n (fun i -> i) in
  let packed = Array.make (Stdlib.max 1 (n * d / 2)) 0 in
  let ne = ref 0 in
  for _ = 1 to d / 2 do
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
    for v = 0 to n - 1 do
      let w = perm.(v) in
      if v <> w then begin
        packed.(!ne) <- (Stdlib.min v w * n) + Stdlib.max v w;
        incr ne
      end
    done
  done;
  let packed = Array.sub packed 0 !ne in
  Array.sort Int.compare packed;
  (* compact adjacent duplicates (an edge drawn by two covers) *)
  let m = ref 0 in
  Array.iter
    (fun e ->
      if !m = 0 || packed.(!m - 1) <> e then begin
        packed.(!m) <- e;
        incr m
      end)
    packed;
  let deg = Array.make (Stdlib.max 1 n) 0 in
  for i = 0 to !m - 1 do
    let e = packed.(i) in
    deg.(e / n) <- deg.(e / n) + 1;
    deg.(e mod n) <- deg.(e mod n) + 1
  done;
  Csr.of_packed_edges ~n ~deg ~packed ~ne:!m

let stream_biregular_tree ~d ~delta n =
  if d < 1 || delta < 1 || n < 1 then
    invalid_arg "Generators.stream_biregular_tree";
  (* BFS-ordered (d, delta)-biregular tree truncated at [n] nodes: the
     root (side A) wants [d] children; below it, side-B nodes want
     [delta - 1] and side-A nodes [d - 1]. Children get consecutive
     ids, so every segment is [parent; children...] — ascending. The
     parent edge of the [i]-th child carries the [i+1]-th colour not
     used by the parent's own parent edge, which keeps the colouring
     proper with at most [max d delta] colours. *)
  let parent = Array.make n (-1) in
  let side = Array.make n 0 in
  let pcol = Array.make n 0 in
  let kids = Array.make n 0 in
  let first = Array.make n 0 in
  let next = ref 1 in
  for v = 0 to n - 1 do
    let want =
      if v = 0 then d else if side.(v) = 1 then delta - 1 else d - 1
    in
    let k = Stdlib.min want (n - !next) in
    kids.(v) <- k;
    first.(v) <- !next;
    for i = 0 to k - 1 do
      let c = !next + i in
      parent.(c) <- v;
      side.(c) <- 1 - side.(v);
      let col = i + 1 in
      pcol.(c) <- (if pcol.(v) > 0 && col >= pcol.(v) then col + 1 else col)
    done;
    next := !next + k
  done;
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    let dg = kids.(v) + if v = 0 then 0 else 1 in
    row.(v + 1) <- row.(v) + dg
  done;
  let nd = row.(n) in
  let endpoint = Array.make (Stdlib.max 1 nd) 0 in
  let colour = Array.make (Stdlib.max 1 nd) 0 in
  for v = 0 to n - 1 do
    let base = ref row.(v) in
    if v > 0 then begin
      endpoint.(!base) <- parent.(v);
      colour.(!base) <- pcol.(v);
      incr base
    end;
    for i = 0 to kids.(v) - 1 do
      let c = first.(v) + i in
      endpoint.(!base + i) <- c;
      colour.(!base + i) <- pcol.(c)
    done
  done;
  let endpoint = if nd = 0 then [||] else endpoint in
  let colour = if nd = 0 then [||] else colour in
  { Csr.n; row; endpoint; colour; m = nd / 2 }

let bench_families =
  let clamp lo v = Stdlib.max lo v in
  [
    ( "path",
      fun ~seed:_ ~n ~delta:_ -> path (clamp 2 n) );
    ( "cycle",
      fun ~seed:_ ~n ~delta:_ -> cycle (clamp 3 n) );
    ( "star",
      fun ~seed:_ ~n:_ ~delta -> star (clamp 1 delta) );
    ( "spider",
      fun ~seed:_ ~n:_ ~delta -> spider ~delta:(clamp 2 delta) ~tail:3 );
    ( "caterpillar",
      fun ~seed:_ ~n ~delta ->
        caterpillar ~spine:(clamp 2 (n / clamp 1 delta)) ~legs:(clamp 1 (delta - 2)) );
    ( "random-tree",
      fun ~seed ~n ~delta:_ -> random_tree ~seed (clamp 2 n) );
    ( "random-regular",
      fun ~seed ~n ~delta ->
        let d = clamp 2 delta in
        let n = clamp (d + 1) n in
        let n = if n * d mod 2 = 0 then n else n + 1 in
        random_regular ~seed n d );
    ( "bounded-gnp",
      fun ~seed ~n ~delta -> random_bounded_degree ~seed (clamp 2 n) (clamp 1 delta) );
  ]
