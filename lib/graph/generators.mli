(** Graph family generators.

    All randomised generators take an explicit [seed] so that every
    experiment in the benchmark harness is reproducible. *)

(** Path on [n] nodes ([n >= 1]): edges [i - (i+1)]. *)
val path : int -> Graph.t

(** Cycle on [n >= 3] nodes. *)
val cycle : int -> Graph.t

(** Star with [k] leaves: node 0 is the centre, degree [k]. *)
val star : int -> Graph.t

(** Complete graph on [n] nodes. *)
val complete : int -> Graph.t

(** Complete bipartite graph [K_{a,b}]; left side is [0..a-1]. *)
val complete_bipartite : int -> int -> Graph.t

(** [rows] x [cols] grid. *)
val grid : int -> int -> Graph.t

(** Hypercube of dimension [d] (so [2^d] nodes, [Δ = d]). *)
val hypercube : int -> Graph.t

(** Complete binary tree with [depth] levels of edges
    ([2^(depth+1) - 1] nodes). *)
val binary_tree : int -> Graph.t

(** Caterpillar: a spine path of [spine] nodes, each spine node with
    [legs] pendant leaves; Δ = legs + 2 in the interior. *)
val caterpillar : spine:int -> legs:int -> Graph.t

(** Uniform random labelled tree on [n] nodes (Prüfer sequence). *)
val random_tree : seed:int -> int -> Graph.t

(** Erdős–Rényi [G(n, p)]. *)
val random_gnp : seed:int -> int -> float -> Graph.t

(** Random [d]-regular simple graph on [n] nodes via the configuration
    model with retries; requires [n * d] even and [d < n].
    @raise Invalid_argument if the parameters are infeasible.
    @raise Failure if no simple matching is found after many retries. *)
val random_regular : seed:int -> int -> int -> Graph.t

(** Random graph with maximum degree at most [max_deg]: a random greedy
    subgraph of [G(n, p)] with edges violating the bound dropped. *)
val random_bounded_degree : seed:int -> int -> int -> Graph.t

(** The tree obtained by taking a star of degree [delta] and appending a
    pendant path of length [tail] to each leaf. A standard hard instance
    for matching-style algorithms. *)
val spider : delta:int -> tail:int -> Graph.t

(** A named list of representative families used by the benchmarks:
    [(name, fun ~seed ~n ~delta -> graph)]. Generators clamp their
    parameters to feasible values. *)
val bench_families : (string * (seed:int -> n:int -> delta:int -> Graph.t)) list
