(** Graph family generators.

    All randomised generators take an explicit [seed] so that every
    experiment in the benchmark harness is reproducible. *)

(** Path on [n] nodes ([n >= 1]): edges [i - (i+1)]. *)
val path : int -> Graph.t

(** Cycle on [n >= 3] nodes. *)
val cycle : int -> Graph.t

(** Star with [k] leaves: node 0 is the centre, degree [k]. *)
val star : int -> Graph.t

(** Complete graph on [n] nodes. *)
val complete : int -> Graph.t

(** Complete bipartite graph [K_{a,b}]; left side is [0..a-1]. *)
val complete_bipartite : int -> int -> Graph.t

(** [rows] x [cols] grid. *)
val grid : int -> int -> Graph.t

(** Hypercube of dimension [d] (so [2^d] nodes, [Δ = d]). *)
val hypercube : int -> Graph.t

(** Complete binary tree with [depth] levels of edges
    ([2^(depth+1) - 1] nodes). *)
val binary_tree : int -> Graph.t

(** Caterpillar: a spine path of [spine] nodes, each spine node with
    [legs] pendant leaves; Δ = legs + 2 in the interior. *)
val caterpillar : spine:int -> legs:int -> Graph.t

(** Uniform random labelled tree on [n] nodes (Prüfer sequence). *)
val random_tree : seed:int -> int -> Graph.t

(** Erdős–Rényi [G(n, p)]. *)
val random_gnp : seed:int -> int -> float -> Graph.t

(** Random [d]-regular simple graph on [n] nodes via the configuration
    model with retries; requires [n * d] even and [d < n].
    @raise Invalid_argument if the parameters are infeasible.
    @raise Failure if no simple matching is found after many retries. *)
val random_regular : seed:int -> int -> int -> Graph.t

(** Random graph with maximum degree at most [max_deg]: a random greedy
    subgraph of [G(n, p)] with edges violating the bound dropped. *)
val random_bounded_degree : seed:int -> int -> int -> Graph.t

(** The tree obtained by taking a star of degree [delta] and appending a
    pendant path of length [tail] to each leaf. A standard hard instance
    for matching-style algorithms. *)
val spider : delta:int -> tail:int -> Graph.t

(** Streaming twin of {!random_bounded_degree}: same seed, same RNG
    stream, same graph — but assembled directly into CSR arrays with
    no tuple lists (differentially tested). Still enumerates all
    n(n-1)/2 candidate pairs, like the twin; use {!stream_regular} or
    {!stream_biregular_tree} for mega-scale instances. *)
val stream_bounded_degree : seed:int -> int -> int -> Csr.t

(** Streaming twin of {!random_regular}: identical RNG stream and
    acceptance decisions (so identical retry counts), O(n·d) per
    attempt, no intermediate lists. Like the twin it rejects whole
    configuration-model pairings, whose acceptance probability decays
    as exp(-(d²-1)/4) {e independent of n} but makes large [n·d]
    instances impractical in wall-time terms; use
    {!stream_perm_regular} at mega scale. *)
val stream_regular : seed:int -> int -> int -> Csr.t

(** [stream_perm_regular ~seed n d] — union of d/2 random permutation
    cycle covers: a simple near-d-regular graph of max degree ≤ [d],
    built in O(n·d) with no rejection (fixed points and duplicate
    edges are skipped — a vanishing fraction). [d] must be even,
    [2 <= d < n]. The scalable random family for the runtime bench. *)
val stream_perm_regular : seed:int -> int -> int -> Csr.t

(** Deterministic (d, δ)-biregular tree in BFS layout, truncated at
    [n] nodes, with a proper edge colouring using at most
    [max d delta] colours built in. O(n); the cheap mega-scale
    instance family. *)
val stream_biregular_tree : d:int -> delta:int -> int -> Csr.t

(** A named list of representative families used by the benchmarks:
    [(name, fun ~seed ~n ~delta -> graph)]. Generators clamp their
    parameters to feasible values. *)
val bench_families : (string * (seed:int -> n:int -> delta:int -> Graph.t)) list
