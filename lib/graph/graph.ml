type t = { n : int; adj : int list array; m : int }

let create n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  let adj = Array.make n [] in
  let seen = Hashtbl.create (List.length edge_list) in
  let add_edge (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.create: endpoint out of range";
    if u = v then invalid_arg "Graph.create: self-loop";
    let key = (Stdlib.min u v, Stdlib.max u v) in
    if Hashtbl.mem seen key then invalid_arg "Graph.create: duplicate edge";
    Hashtbl.add seen key ();
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  in
  List.iter add_edge edge_list;
  Array.iteri (fun i l -> adj.(i) <- List.sort Int.compare l) adj;
  { n; adj; m = List.length edge_list }

let n g = g.n
let m g = g.m
let neighbours g v = g.adj.(v)
let degree g v = List.length g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc l -> Stdlib.max acc (List.length l)) 0 g.adj

let has_edge g u v = List.mem v g.adj.(u)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  !acc

let fold_edges f init g = List.fold_left (fun acc e -> f e acc) init (edges g)

let bfs_dist g source =
  let dist = Array.make g.n max_int in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  dist

let components g =
  let comp = Array.make g.n (-1) in
  let count = ref 0 in
  for v = 0 to g.n - 1 do
    if comp.(v) < 0 then begin
      let id = !count in
      incr count;
      let queue = Queue.create () in
      comp.(v) <- id;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun w ->
            if comp.(w) < 0 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
          g.adj.(u)
      done
    end
  done;
  (comp, !count)

let is_connected g = g.n <= 1 || snd (components g) = 1

let disjoint_union g1 g2 =
  let shift = g1.n in
  let edges2 = List.map (fun (u, v) -> (u + shift, v + shift)) (edges g2) in
  create (g1.n + g2.n) (edges g1 @ edges2)

let induced g nodes =
  let nodes = List.sort_uniq Int.compare nodes in
  let old_of_new = Array.of_list nodes in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.add new_of_old v i) old_of_new;
  let keep = fun v -> Hashtbl.mem new_of_old v in
  let es =
    fold_edges
      (fun (u, v) acc ->
        if keep u && keep v then
          (Hashtbl.find new_of_old u, Hashtbl.find new_of_old v) :: acc
        else acc)
      [] g
  in
  (create (Array.length old_of_new) es, old_of_new)

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: bad permutation";
  create g.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let is_isomorphic_small g1 g2 =
  if g1.n <> g2.n || g1.m <> g2.m then false
  else begin
    let n = g1.n in
    let image = Array.make n (-1) in
    let used = Array.make n false in
    (* Map node [v] of g1 to candidates in g2 respecting already-placed
       adjacency, by straightforward backtracking. *)
    let rec place v =
      if v = n then true
      else begin
        let rec try_candidates c =
          if c = n then false
          else if
            (not used.(c))
            && degree g1 v = degree g2 c
            && List.for_all
                 (fun w ->
                   image.(w) < 0 || has_edge g2 image.(w) c)
                 g1.adj.(v)
            && List.for_all
                 (fun w -> image.(w) < 0 || List.mem image.(w) g2.adj.(c))
                 g1.adj.(v)
            &&
            (* non-neighbours must stay non-neighbours *)
            let ok = ref true in
            for w = 0 to v - 1 do
              if image.(w) >= 0 then
                if has_edge g1 v w <> has_edge g2 c image.(w) then ok := false
            done;
            !ok
          then begin
            image.(v) <- c;
            used.(c) <- true;
            if place (v + 1) then true
            else begin
              image.(v) <- -1;
              used.(c) <- false;
              try_candidates (c + 1)
            end
          end
          else try_candidates (c + 1)
        in
        try_candidates 0
      end
    in
    place 0
  end

let pp fmt g =
  Format.fprintf fmt "@[graph(n=%d, m=%d:" g.n g.m;
  List.iter (fun (u, v) -> Format.fprintf fmt " %d-%d" u v) (edges g);
  Format.fprintf fmt ")@]"
