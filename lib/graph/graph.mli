(** Simple undirected graphs.

    Nodes are integers [0 .. n-1]; the structure is immutable after
    construction. Parallel edges and self-loops are rejected — multigraphs
    with loops (the EC/PO objects of the paper) live in [Ld_models]. *)

type t

(** [create n edges] builds a graph on [n] nodes.
    @raise Invalid_argument on out-of-range endpoints, self-loops or
    duplicate edges. *)
val create : int -> (int * int) list -> t

(** Number of nodes. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** All edges, each as [(u, v)] with [u < v], in sorted order. *)
val edges : t -> (int * int) list

(** Sorted neighbour list. *)
val neighbours : t -> int -> int list

val degree : t -> int -> int

(** Maximum degree Δ; 0 for the empty graph. *)
val max_degree : t -> int

val has_edge : t -> int -> int -> bool

(** [fold_edges f init g] folds over edges [(u, v)], [u < v]. *)
val fold_edges : ((int * int) -> 'a -> 'a) -> 'a -> t -> 'a

(** [bfs_dist g v] is the array of hop distances from [v];
    unreachable nodes get [max_int]. *)
val bfs_dist : t -> int -> int array

(** [components g] is [(comp, k)]: component index per node and the
    number of components. *)
val components : t -> int array * int

val is_connected : t -> bool

(** Disjoint union; nodes of the second graph are shifted by [n g1]. *)
val disjoint_union : t -> t -> t

(** [induced g nodes] is the subgraph induced by [nodes] together with
    the mapping from new indices to original nodes. *)
val induced : t -> int list -> t * int array

(** [relabel g perm] renames node [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. n-1]. *)
val relabel : t -> int array -> t

(** [is_isomorphic_small g1 g2] decides isomorphism by backtracking;
    intended for graphs with at most ~10 nodes (tests only). *)
val is_isomorphic_small : t -> t -> bool

val pp : Format.formatter -> t -> unit
