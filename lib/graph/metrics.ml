let check_connected g =
  if not (Graph.is_connected g) then
    invalid_arg "Metrics: graph is disconnected"

let eccentricity g v =
  check_connected g;
  Array.fold_left Stdlib.max 0 (Graph.bfs_dist g v)

let diameter g =
  check_connected g;
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    best := Stdlib.max !best (eccentricity g v)
  done;
  !best

let radius g =
  check_connected g;
  let best = ref max_int in
  for v = 0 to Graph.n g - 1 do
    best := Stdlib.min !best (eccentricity g v)
  done;
  if Graph.n g = 0 then 0 else !best

let girth g =
  (* BFS from every node; the first cross or back edge at depth d gives
     a cycle of length 2d+1 or 2d+2 through the root — minimised over
     roots this is exact. *)
  let best = ref max_int in
  for root = 0 to Graph.n g - 1 do
    let dist = Array.make (Graph.n g) max_int in
    let parent = Array.make (Graph.n g) (-1) in
    let queue = Queue.create () in
    dist.(root) <- 0;
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun w ->
          if dist.(w) = max_int then begin
            dist.(w) <- dist.(u) + 1;
            parent.(w) <- u;
            Queue.add w queue
          end
          else if parent.(u) <> w && w <> u then
            (* non-tree edge: cycle through the BFS tree *)
            best := Stdlib.min !best (dist.(u) + dist.(w) + 1))
        (Graph.neighbours g u)
    done
  done;
  if !best = max_int then None else Some !best

let average_degree g =
  if Graph.n g = 0 then 0.0
  else 2.0 *. float_of_int (Graph.m g) /. float_of_int (Graph.n g)

let degree_sequence g =
  List.sort Int.compare (List.init (Graph.n g) (Graph.degree g))
