(** Structural graph metrics.

    Locality facts live and die by distances: a [t]-round algorithm's
    output at [v] is a function of the radius-[t] ball, so the diameter
    bounds the time of any global computation, while the girth controls
    how long a graph looks like a tree — the regime every lower-bound
    construction in this area (including Section 4's trees-plus-loops)
    exploits. *)

(** Eccentricity of a node (longest shortest path from it).
    @raise Invalid_argument if the graph is disconnected. *)
val eccentricity : Graph.t -> int -> int

(** Diameter; 0 for a single node.
    @raise Invalid_argument if the graph is disconnected. *)
val diameter : Graph.t -> int

(** Radius (minimum eccentricity).
    @raise Invalid_argument if the graph is disconnected. *)
val radius : Graph.t -> int

(** Length of a shortest cycle; [None] for forests. *)
val girth : Graph.t -> int option

(** Average degree as a rational [(2m, n)] pair reduced to a float. *)
val average_degree : Graph.t -> float

(** Sorted degree multiset. *)
val degree_sequence : Graph.t -> int list
