(* Whole-program call graph and the bottom-up effect fixpoint.

   Nodes are the function summaries of every unit, keyed by canonical
   dotted path. Edges are the summaries' call records, resolved
   against the node index — a call whose callee is not a project
   function (stdlib, unresolved locals) simply contributes nothing,
   and calls into Ld_obs are dropped: the observability layer is the
   sanctioned owner of clocks and trace buffers, so its effects must
   not taint every instrumented function.

   The effect sets are computed by Tarjan's SCC algorithm: components
   are emitted children-first (every SCC reachable from a popped
   component has already been popped), so a single pass assigns each
   component the union of its members' direct effects and the
   already-final sets of its external callees. Mutual recursion needs
   no iteration: members of one component share one set by
   definition. *)

type node = {
  fn : Summary.fn;
  edges : (string * Summary.loc) list; (* resolved project callees *)
  mutable eff : Effects.set;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  order : string list; (* all keys, sorted: deterministic iteration *)
}

let is_obs_key key =
  String.length key >= 7 && String.sub key 0 7 = "Ld_obs."

let build (summaries : Summary.t list) =
  let nodes = Hashtbl.create 1024 in
  List.iter
    (fun (u : Summary.t) ->
      List.iter
        (fun (fn : Summary.fn) ->
          if not (Hashtbl.mem nodes fn.f_key) then
            Hashtbl.add nodes fn.f_key { fn; edges = []; eff = Effects.empty })
        u.u_fns)
    summaries;
  (* resolve edges now that the index is complete; dedupe per callee,
     keeping the first (source-order) call site for chain printing *)
  List.iter
    (fun (u : Summary.t) ->
      List.iter
        (fun (fn : Summary.fn) ->
          match Hashtbl.find_opt nodes fn.f_key with
          | Some node when node.fn == fn ->
            let seen = Hashtbl.create 8 in
            let edges =
              List.filter_map
                (fun (c : Summary.call) ->
                  if
                    Hashtbl.mem nodes c.c_callee
                    && (not (is_obs_key c.c_callee))
                    && c.c_callee <> fn.f_key
                    && not (Hashtbl.mem seen c.c_callee)
                  then begin
                    Hashtbl.replace seen c.c_callee ();
                    Some (c.c_callee, c.c_loc)
                  end
                  else None)
                fn.f_calls
            in
            Hashtbl.replace nodes fn.f_key { node with edges }
          | _ -> ())
        u.u_fns)
    summaries;
  let order =
    Hashtbl.fold (fun k _ acc -> k :: acc) nodes []
    |> List.sort String.compare
  in
  { nodes; order }

let direct_set (fn : Summary.fn) =
  List.fold_left
    (fun s (d : Summary.direct) -> Effects.add s d.d_kind)
    Effects.empty fn.f_direct

(* Tarjan, iterative bookkeeping with recursive DFS (call-graph depth
   is bounded by the longest call chain, far below stack limits). *)
let solve t =
  let index = Hashtbl.create 1024 in
  let lowlink = Hashtbl.create 1024 in
  let on_stack = Hashtbl.create 1024 in
  let stack = ref [] in
  let next = ref 0 in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    let node = Hashtbl.find t.nodes v in
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          let lv = Hashtbl.find lowlink v and lw = Hashtbl.find lowlink w in
          if lw < lv then Hashtbl.replace lowlink v lw
        end
        else if Hashtbl.mem on_stack w then begin
          let lv = Hashtbl.find lowlink v and iw = Hashtbl.find index w in
          if iw < lv then Hashtbl.replace lowlink v iw
        end)
      node.edges;
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* pop the component; all its external callees are final *)
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let members = pop [] in
      let in_scc = Hashtbl.create 4 in
      List.iter (fun m -> Hashtbl.replace in_scc m ()) members;
      let set =
        List.fold_left
          (fun s m ->
            let n = Hashtbl.find t.nodes m in
            let s = Effects.union s (direct_set n.fn) in
            List.fold_left
              (fun s (w, _) ->
                if Hashtbl.mem in_scc w then s
                else Effects.union s (Hashtbl.find t.nodes w).eff)
              s n.edges)
          Effects.empty members
      in
      List.iter (fun m -> (Hashtbl.find t.nodes m).eff <- set) members
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) t.order

let find t key = Hashtbl.find_opt t.nodes key
let effect_set t key = match find t key with Some n -> n.eff | None -> Effects.empty

(* Shortest call chain explaining why [start] carries [kind]:
   breadth-first over nodes whose set contains the kind, stopping at
   the first node with a matching direct effect. Deterministic — edge
   lists are in source order and the BFS queue is FIFO. Returns the
   node keys from [start] to the witness plus the witness itself
   (what, where), or None if [start] does not carry [kind]. *)
let chain t start kind =
  match find t start with
  | None -> None
  | Some n0 when not (Effects.mem n0.eff kind) -> None
  | Some _ ->
    let witness (n : node) =
      List.find_opt (fun (d : Summary.direct) -> d.d_kind = kind) n.fn.f_direct
    in
    let parent = Hashtbl.create 16 in
    let visited = Hashtbl.create 16 in
    let q = Queue.create () in
    Hashtbl.replace visited start ();
    Queue.add start q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let v = Queue.pop q in
      let n = Hashtbl.find t.nodes v in
      match witness n with
      | Some d -> found := Some (v, d)
      | None ->
        List.iter
          (fun (w, _) ->
            if not (Hashtbl.mem visited w) then begin
              let nw = Hashtbl.find t.nodes w in
              if Effects.mem nw.eff kind then begin
                Hashtbl.replace visited w ();
                Hashtbl.replace parent w v;
                Queue.add w q
              end
            end)
          n.edges
    done;
    (match !found with
    | None -> None (* unreachable if solve ran: the set is the closure *)
    | Some (w, d) ->
      let rec path v acc =
        match Hashtbl.find_opt parent v with
        | None -> v :: acc
        | Some p -> path p (v :: acc)
      in
      Some (path w [], d))

let chain_text t start kind =
  match chain t start kind with
  | None -> "(no witness)"
  | Some (keys, (d : Summary.direct)) ->
    Printf.sprintf "%s -> %s (%s)"
      (String.concat " -> " keys)
      d.d_what
      (Summary.loc_to_string d.d_loc)
