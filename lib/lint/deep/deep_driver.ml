(* The deep analysis driver: cmt discovery, summary caching, graph
   solving, diagnostic rendering and suppression filtering.

   Caching: a unit's summary depends only on its .cmt (dune rebuilds
   the cmt whenever the source changes, comments included, and the
   extraction reads nothing else except suppression comments — which
   live in the source whose change also rebuilds the cmt). So the
   store key is the cmt's own digest, and a warm run over an unchanged
   repo does zero [read_cmt]/extraction work: every summary is a
   store hit. A corrupt record ([Store.Store_corrupt]) or a stale
   codec version ([Summary.of_string] failure) self-heals exactly like
   lib/core/cache_store.ml: delete, re-extract, re-put. *)

module Diagnostic = Ld_lint.Diagnostic
module Suppress = Ld_lint.Suppress
module Store = Ld_store.Store
module Obs = Ld_obs.Obs

let c_units = Obs.Counter.make "lint.deep.units"
let c_extracted = Obs.Counter.make "lint.deep.extracted"
let c_cached = Obs.Counter.make "lint.deep.cached"

type config = {
  cmt_roots : string list; (* directories walked for .cmt files *)
  source_roots : string list; (* tried in order to open source files *)
  skip : string list; (* path substrings excluded from the walk *)
  store : Store.t option; (* summary cache; None = always extract *)
}

(* The two fixture trees hold deliberately-dirty code. *)
let default_skip = [ "lint_fixtures"; "deep_fixtures" ]

let rules_meta =
  [
    ( "deep-nondet-source",
      Diagnostic.Error,
      "A function transitively reaches unseeded randomness or a clock \
       read through its callees. Direct uses are the shallow rule's \
       job; this fires only on taint inherited through calls, and \
       prints the chain." );
    ( "deep-domain-safety",
      Diagnostic.Error,
      "A closure or function passed to Ld_core.Pool.map / Domain.spawn \
       transitively mutates state shared across domains (possibly \
       several calls down)." );
    ( "deep-machine-purity",
      Diagnostic.Error,
      "A machine transition (step/send) transitively performs I/O, \
       reads clocks, draws randomness, or mutates shared state through \
       its callees." );
  ]

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let norm_slashes p = String.concat "/" (String.split_on_char '\\' p)

let collect_cmts config =
  let skip_path p =
    let p = norm_slashes p in
    List.exists (fun sub -> has_sub p sub) config.skip
  in
  let rec walk acc path =
    if not (Sys.file_exists path) then acc
    else if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             let sub = Filename.concat path entry in
             if skip_path sub then acc else walk acc sub)
           acc
    else if Filename.check_suffix path ".cmt" then path :: acc
    else acc
  in
  List.fold_left walk [] config.cmt_roots |> List.sort_uniq String.compare

let read_source config rel =
  let candidates =
    List.map (fun root -> Filename.concat root rel) config.source_roots @ [ rel ]
  in
  List.find_map
    (fun p ->
      if Sys.file_exists p && not (Sys.is_directory p) then
        Some (In_channel.with_open_bin p In_channel.input_all)
      else None)
    candidates

let extract_summary config path =
  Obs.Counter.incr c_extracted;
  let infos = Cmt_format.read_cmt path in
  let unit_name = infos.Cmt_format.cmt_modname in
  match infos.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
    let source = Option.value infos.Cmt_format.cmt_sourcefile ~default:"" in
    let source_text = if source = "" then None else read_source config source in
    Extract.of_structure ~unit_name ~source ~source_text str
  | _ -> { Summary.u_name = unit_name; u_source = ""; u_fns = []; u_refs = [] }

let store_key path =
  Printf.sprintf "ld-lint-deep/v1 unit=%s cmt=%s" (Filename.basename path)
    (Digest.to_hex (Digest.file path))

let load_summary config path =
  Obs.Counter.incr c_units;
  match config.store with
  | None -> extract_summary config path
  | Some st -> (
    let key = store_key path in
    let recompute () =
      let s = extract_summary config path in
      Store.put st ~key (Summary.to_string s);
      s
    in
    match Store.get st ~key with
    | Some payload -> (
      match Summary.of_string payload with
      | s ->
        Obs.Counter.incr c_cached;
        s
      | exception Failure _ ->
        (* framed record validated but the codec changed underneath:
           treat as stale and rebuild *)
        Store.delete st ~key;
        recompute ())
    | None -> recompute ()
    | exception Store.Store_corrupt _ ->
      Store.delete st ~key;
      recompute ())

(* ---------- diagnostics ---------- *)

let diag ~loc ~rule message =
  {
    Diagnostic.file = loc.Summary.l_file;
    line = loc.Summary.l_line;
    col = loc.Summary.l_col;
    rule;
    severity = Diagnostic.Error;
    message;
  }

let entry_diagnostics graph (fn : Summary.fn) =
  let kinds = Callgraph.effect_set graph fn.f_key in
  let with_chain kind = Callgraph.chain_text graph fn.f_key kind in
  match fn.f_entry with
  | Summary.Transition name ->
    List.filter_map
      (fun kind ->
        if Effects.mem kinds kind then
          Some
            (diag ~loc:fn.f_loc ~rule:"deep-machine-purity"
               (Printf.sprintf
                  "machine transition `%s` transitively %s — transitions \
                   must be pure: %s"
                  name (Effects.describe kind) (with_chain kind)))
        else None)
      Effects.all
  | Summary.Pool_closure context ->
    if Effects.mem kinds Effects.Mutates_shared then
      [
        diag ~loc:fn.f_loc ~rule:"deep-domain-safety"
          (Printf.sprintf
             "closure passed to %s transitively mutates shared state — \
              tasks run on separate domains: %s"
             context
             (with_chain Effects.Mutates_shared));
      ]
    else []
  | Summary.Plain ->
    (* Transitive-only reach of nondeterminism: a *direct* use is the
       shallow rule's finding (or carries a reasoned allow, which
       already stopped it from entering the summary). *)
    List.filter_map
      (fun kind ->
        let direct_here =
          List.exists (fun (d : Summary.direct) -> d.d_kind = kind) fn.f_direct
        in
        if Effects.mem kinds kind && not direct_here then
          Some
            (diag ~loc:fn.f_loc ~rule:"deep-nondet-source"
               (Printf.sprintf "`%s` transitively %s: %s" fn.f_display
                  (Effects.describe kind) (with_chain kind)))
        else None)
      [ Effects.Nondet; Effects.Reads_clock ]

let ref_diagnostics graph (r : Summary.entry_ref) =
  match Callgraph.find graph r.r_callee with
  | None -> []
  | Some _ -> (
    let kinds = Callgraph.effect_set graph r.r_callee in
    let with_chain kind = Callgraph.chain_text graph r.r_callee kind in
    match r.r_entry with
    | Summary.Transition name ->
      List.filter_map
        (fun kind ->
          if Effects.mem kinds kind then
            Some
              (diag ~loc:r.r_loc ~rule:"deep-machine-purity"
                 (Printf.sprintf
                    "machine transition `%s` (= %s) transitively %s — \
                     transitions must be pure: %s"
                    name r.r_callee (Effects.describe kind) (with_chain kind)))
          else None)
        Effects.all
    | Summary.Pool_closure context ->
      if Effects.mem kinds Effects.Mutates_shared then
        [
          diag ~loc:r.r_loc ~rule:"deep-domain-safety"
            (Printf.sprintf
               "`%s` passed to %s transitively mutates shared state — \
                tasks run on separate domains: %s"
               r.r_callee context
               (with_chain Effects.Mutates_shared));
        ]
      else []
    | Summary.Plain -> [])

(* Suppression pass over the final diagnostics, reading each source
   file once. A deep finding is silenced by an `ld-lint: allow
   deep-...` at its anchor (the entry's definition or reference). *)
let filter_suppressed config diags =
  let cache = Hashtbl.create 16 in
  let suppress_for file =
    match Hashtbl.find_opt cache file with
    | Some s -> s
    | None ->
      let s = Option.map Suppress.of_source (read_source config file) in
      Hashtbl.add cache file s;
      s
  in
  List.filter
    (fun (d : Diagnostic.t) ->
      match suppress_for d.file with
      | None -> true
      | Some sup -> not (Suppress.allowed sup ~rule:d.rule ~line:d.line))
    diags

let analyze config =
  let summaries = List.map (load_summary config) (collect_cmts config) in
  let graph = Callgraph.build summaries in
  Callgraph.solve graph;
  let entry_diags =
    List.concat_map
      (fun key ->
        match Callgraph.find graph key with
        | Some node -> entry_diagnostics graph node.Callgraph.fn
        | None -> [])
      graph.Callgraph.order
  in
  let ref_diags =
    List.concat_map
      (fun (u : Summary.t) -> List.concat_map (ref_diagnostics graph) u.u_refs)
      summaries
  in
  entry_diags @ ref_diags
  |> filter_suppressed config
  |> Ld_lint.Driver.dedup_sorted
