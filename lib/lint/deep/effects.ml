(* The effect lattice. A function summary is a subset of the four
   effect kinds; [empty] is the lattice bottom ("pure") and set union
   is the join, so the bottom-up SCC fixpoint in Callgraph is a plain
   monotone closure over a finite height-4 lattice. Represented as an
   int bitmask: summaries are persisted by the thousand and joined in
   the fixpoint inner loop. *)

type kind =
  | Reads_clock (* wall/monotonic clock observation *)
  | Nondet (* unseeded randomness *)
  | Mutates_shared (* write to state visible outside the function *)
  | Performs_io (* console/file/socket traffic *)

let all = [ Reads_clock; Nondet; Mutates_shared; Performs_io ]

let to_string = function
  | Reads_clock -> "reads_clock"
  | Nondet -> "nondet"
  | Mutates_shared -> "mutates_shared"
  | Performs_io -> "performs_io"

let of_string = function
  | "reads_clock" -> Reads_clock
  | "nondet" -> Nondet
  | "mutates_shared" -> Mutates_shared
  | "performs_io" -> Performs_io
  | s -> failwith ("Effects.of_string: " ^ s)

(* Prose used in diagnostics: "transitively <describe k>". *)
let describe = function
  | Reads_clock -> "reads the clock"
  | Nondet -> "draws nondeterministic values"
  | Mutates_shared -> "mutates shared state"
  | Performs_io -> "performs I/O"

type set = int

let empty : set = 0

let bit = function
  | Reads_clock -> 1
  | Nondet -> 2
  | Mutates_shared -> 4
  | Performs_io -> 8

let add s k = s lor bit k
let mem s k = s land bit k <> 0
let union (a : set) (b : set) : set = a lor b
let is_pure s = s = 0
let to_list s = List.filter (mem s) all
let of_list = List.fold_left add empty
