(* Per-unit summary extraction from a typed tree.

   Works on the [Typedtree.structure] stored in a .cmt, so name
   resolution is the compiler's own: a call is attributed to the
   defining unit even through `include`, library wrapper modules and
   local module aliases. The typed paths print with their head module
   unexpanded ("Obs.Counter.make" after `module Obs = Ld_obs.Obs`), so
   the extractor keeps two stamp tables — module aliases and locally
   defined structure modules — and expands heads through them; unit
   names are then normalised ("Ld_core__Pool" -> Ld_core.Pool) into
   the canonical dotted keys the call graph is built over.

   Effect classification mirrors the shallow rules' source lists
   exactly (Rules.io_heads, the Random/clock patterns, the mutation
   table), with two deliberate conventions:

   - a direct effect at a site already suppressed with a reasoned
     `ld-lint: allow` is *sanctioned* and never enters a summary —
     acknowledged sources must not re-taint every caller;
   - lib/obs units contribute no clock/randomness effects (the
     observability layer owns the clock), and calls into Ld_obs are
     later dropped by the graph for the same reason.

   Effects of a closure literal are attributed both to a synthetic
   node (when the closure is a machine transition field or a pool
   task, i.e. an analysis entry) and to the function that creates it.
   The latter is a deliberate over-approximation: machines are records
   of closures, and charging construction time is what lets taint flow
   from `let make () = { step = (fun ...) }` to its callers. *)

module Suppress = Ld_lint.Suppress
module Rules = Ld_lint.Rules

(* ---------- path normalisation ---------- *)

(* "Ld_core__Pool" -> ["Ld_core"; "Pool"]; "Ld_lint__" -> ["Ld_lint"];
   "Dune__exe__Ld" -> ["Dune"; "exe"; "Ld"]. *)
let split_unit name =
  let n = String.length name in
  let out = ref [] and start = ref 0 in
  let flush stop =
    if stop > !start then out := String.sub name !start (stop - !start) :: !out
  in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      flush !i;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  flush n;
  List.rev !out

let normalize segs =
  match List.concat_map split_unit segs with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | l -> l

(* ---------- extraction context ---------- *)

type ctx = {
  unit_prefix : string list;
  source : string;
  suppress : Suppress.t option;
  is_obs : bool;
  (* Ident.unique_name -> expanded segments, for `module M = Path` *)
  aliases : (string, string list) Hashtbl.t;
  (* Ident.unique_name -> segments, for `module M = struct .. end` *)
  locals : (string, string list) Hashtbl.t;
  (* Ident.unique_name of a top-level value -> its node's dotted key *)
  top_values : (string, string) Hashtbl.t;
  (* one synthetic node per source location *)
  synth_seen : (string * int * int, unit) Hashtbl.t;
  mutable fns : Summary.fn list; (* reversed *)
  mutable refs : Summary.entry_ref list; (* reversed *)
}

let loc_of (l : Location.t) =
  let p = l.Location.loc_start in
  {
    Summary.l_file = p.Lexing.pos_fname;
    l_line = p.Lexing.pos_lnum;
    l_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
  }

let rec module_segs ctx (p : Path.t) : string list =
  match p with
  | Path.Pident id -> (
    let u = Ident.unique_name id in
    match Hashtbl.find_opt ctx.aliases u with
    | Some segs -> segs
    | None -> (
      match Hashtbl.find_opt ctx.locals u with
      | Some segs -> segs
      | None -> [ Ident.name id ]))
  | Path.Pdot (m, s) -> module_segs ctx m @ [ s ]
  | Path.Papply (a, _) -> module_segs ctx a
  | _ -> []

type resolved = Global of string list | Local_value

let resolve_value ctx (p : Path.t) =
  match p with
  | Path.Pident id -> (
    match Hashtbl.find_opt ctx.top_values (Ident.unique_name id) with
    | Some key -> Global (String.split_on_char '.' key)
    | None -> Local_value)
  | Path.Pdot (m, s) -> Global (normalize (module_segs ctx m @ [ s ]))
  | _ -> Local_value

(* ---------- effect classification (mirrors lib/lint/rules.ml) ---------- *)

let classify segs : (Effects.kind * string) option =
  let dotted = String.concat "." segs in
  match segs with
  | "Random" :: rest
    when rest <> [] && (match rest with "State" :: _ -> false | _ -> true) ->
    Some (Effects.Nondet, dotted)
  | [ "Sys"; "time" ]
  | [ "Unix"; ("time" | "gettimeofday" | "gmtime" | "localtime") ] ->
    Some (Effects.Reads_clock, dotted)
  | ("Monotonic_clock" | "Mtime_clock") :: _ :: _ ->
    Some (Effects.Reads_clock, dotted)
  | "Unix" :: _ :: _ -> Some (Effects.Performs_io, dotted)
  | ("In_channel" | "Out_channel") :: _ :: _ -> Some (Effects.Performs_io, dotted)
  | _ -> if List.mem segs Rules.io_heads then Some (Effects.Performs_io, dotted) else None

(* If the application of head [segs] to [args] writes mutable state,
   return the written expression and a description. Same table as the
   shallow rule; Atomic.* and Domain.DLS.* are sanctioned and absent. *)
let mutation_of segs args =
  let nolabel =
    List.filter_map
      (fun (l, a) ->
        match (l, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  let arg n what = Option.map (fun a -> (a, what)) (List.nth_opt nolabel n) in
  match segs with
  | [ ":=" ] -> arg 0 "reference assignment"
  | [ ("incr" | "decr") ] -> arg 0 "reference increment"
  | [ ("Array" | "Bytes" | "Float" | "Bigarray"); ("set" | "unsafe_set" | "fill") ]
    ->
    arg 0 "array write"
  | [ ("Array" | "Bytes"); "blit" ] -> arg 2 "array blit"
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
    ->
    arg 0 "hashtable write"
  | [ "Buffer"; f ] when String.length f >= 4 && String.sub f 0 4 = "add_" ->
    arg 0 "buffer write"
  | [ "Buffer"; ("clear" | "reset" | "truncate") ] -> arg 0 "buffer write"
  | [ ("Queue" | "Stack"); ("add" | "push") ] -> arg 1 "queue/stack write"
  | [ ("Queue" | "Stack"); ("pop" | "take" | "clear" | "pop_opt" | "take_opt") ]
    ->
    arg 0 "queue/stack write"
  | _ -> None

let is_pool_map segs =
  match List.rev segs with ("map" | "mapi") :: "Pool" :: _ -> true | _ -> false

let pool_context segs =
  if is_pool_map segs then Some "Pool.map"
  else
    match segs with
    | [ "Domain"; "spawn" ] -> Some "Domain.spawn"
    | _ -> None

let transition_names = [ "step"; "send" ]

(* ---------- bound-variable collection ---------- *)

let bound_stamps body =
  let acc = Hashtbl.create 32 in
  let add id = Hashtbl.replace acc (Ident.unique_name id) () in
  let super = Tast_iterator.default_iterator in
  let pat : 'k. Tast_iterator.iterator -> 'k Typedtree.general_pattern -> unit =
    fun self p ->
     List.iter add (Typedtree.pat_bound_idents p);
     super.pat self p
  in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_function { param; _ } -> add param
    | Typedtree.Texp_for (id, _, _, _, _, _) -> add id
    | _ -> ());
    super.expr self e
  in
  let it = { super with pat; expr } in
  it.Tast_iterator.expr it body;
  acc

let is_fun_literal (e : Typedtree.expression) =
  match e.exp_desc with Typedtree.Texp_function _ -> true | _ -> false

(* ---------- body analysis ---------- *)

let site_rules = function
  | Effects.Nondet | Effects.Reads_clock ->
    [ "nondet-source"; "deep-nondet-source" ]
  | Effects.Mutates_shared ->
    [ "domain-safety"; "machine-purity"; "deep-domain-safety"; "deep-machine-purity" ]
  | Effects.Performs_io -> [ "machine-purity"; "deep-machine-purity" ]

let site_sanctioned ctx kind line =
  match ctx.suppress with
  | None -> false
  | Some sup ->
    List.exists (fun rule -> Suppress.allowed sup ~rule ~line) (site_rules kind)

let rec analyze_body ctx ~key ~display ~entry ~loc body =
  let bound = bound_stamps body in
  let directs = ref [] and calls = ref [] in
  let add_direct kind what l =
    if ctx.is_obs && (kind = Effects.Nondet || kind = Effects.Reads_clock) then ()
    else if site_sanctioned ctx kind l.Summary.l_line then ()
    else directs := { Summary.d_kind = kind; d_what = what; d_loc = l } :: !directs
  in
  let add_call callee l =
    calls := { Summary.c_callee = callee; c_loc = l } :: !calls
  in
  (* Root variable of a mutation target, through field projections and
     array reads; local iff bound within this node's body. *)
  let rec target_root (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) -> `Ident id
    | Typedtree.Texp_ident (_, _, _) -> `Module_level
    | Typedtree.Texp_field (e', _, _) -> target_root e'
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
      -> (
      let head =
        match resolve_value ctx p with Global segs -> segs | Local_value -> []
      in
      match head with
      | [ ("Array" | "Bytes"); ("get" | "unsafe_get") ] -> (
        match
          List.find_map
            (fun (l, a) ->
              match (l, a) with Asttypes.Nolabel, Some a -> Some a | _ -> None)
            args
        with
        | Some a -> target_root a
        | None -> `Unknown)
      | _ -> `Unknown)
    | _ -> `Unknown
  in
  let record_mutation tgt what l =
    match target_root tgt with
    | `Ident id when Hashtbl.mem bound (Ident.unique_name id) -> ()
    | `Ident id ->
      add_direct Effects.Mutates_shared
        (Printf.sprintf "%s to `%s`" what (Ident.name id))
        l
    | `Module_level ->
      add_direct Effects.Mutates_shared (what ^ " to module-level state") l
    | `Unknown -> ()
  in
  let synth_key tag l =
    Printf.sprintf "%s.%s@%d:%d" key tag l.Summary.l_line l.Summary.l_col
  in
  (* A closure literal in entry position gets its own node, once per
     source location (the creating function's walk and an enclosing
     synthetic node's walk may both see it). *)
  let synthesize tag entry' display' (closure : Typedtree.expression) =
    let l = loc_of closure.exp_loc in
    let sk = (l.Summary.l_file, l.Summary.l_line, l.Summary.l_col) in
    if not (Hashtbl.mem ctx.synth_seen sk) then begin
      Hashtbl.replace ctx.synth_seen sk ();
      analyze_body ctx ~key:(synth_key tag l) ~display:display' ~entry:entry'
        ~loc:l closure
    end
  in
  let entry_reference entry' (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
      match resolve_value ctx p with
      | Global segs ->
        ctx.refs <-
          {
            Summary.r_entry = entry';
            r_callee = String.concat "." segs;
            r_loc = loc_of e.exp_loc;
          }
          :: ctx.refs
      | Local_value -> ())
    | _ -> ()
  in
  let super = Tast_iterator.default_iterator in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
      match resolve_value ctx p with
      | Local_value -> ()
      | Global segs -> (
        let l = loc_of e.exp_loc in
        match classify segs with
        | Some (kind, what) -> add_direct kind what l
        | None -> add_call (String.concat "." segs) l))
    | Typedtree.Texp_setfield (tgt, _, _, _) ->
      record_mutation tgt "record-field write" (loc_of e.exp_loc)
    | Typedtree.Texp_letmodule (Some id, _, _, mexpr, _) ->
      register_module_expr ctx ~prefix:[] ~name:None (Some id) mexpr
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
      -> (
      let head =
        match resolve_value ctx p with Global segs -> segs | Local_value -> []
      in
      (match mutation_of head args with
      | Some (tgt, what) -> record_mutation tgt what (loc_of e.exp_loc)
      | None -> ());
      match pool_context head with
      | Some context ->
        List.iter
          (fun (_, a) ->
            match a with
            | Some a ->
              if is_fun_literal a then
                synthesize "pool" (Summary.Pool_closure context) context a
              else entry_reference (Summary.Pool_closure context) a
            | None -> ())
          args
      | None -> ())
    | Typedtree.Texp_record { fields; _ } ->
      Array.iter
        (fun ((lbl : Types.label_description), def) ->
          if List.mem lbl.Types.lbl_name transition_names then
            match def with
            | Typedtree.Overridden (_, value) ->
              if is_fun_literal value then
                synthesize lbl.Types.lbl_name
                  (Summary.Transition lbl.Types.lbl_name)
                  lbl.Types.lbl_name value
              else entry_reference (Summary.Transition lbl.Types.lbl_name) value
            | _ -> ())
        fields
    | _ -> ());
    super.expr self e
  in
  let it = { super with expr } in
  it.Tast_iterator.expr it body;
  ctx.fns <-
    {
      Summary.f_key = key;
      f_display = display;
      f_entry = entry;
      f_loc = loc;
      f_direct = List.rev !directs;
      f_calls = List.rev !calls;
    }
    :: ctx.fns

(* ---------- structure scan ---------- *)

(* Registers module aliases / local structures and the key of every
   top-level value, returning the node worklist. Runs before any body
   analysis so `let rec` and forward references within a unit resolve. *)
and register_module_expr ctx ~prefix ~name id_opt (m : Typedtree.module_expr) =
  let rec peel (m : Typedtree.module_expr) =
    match m.mod_desc with
    | Typedtree.Tmod_constraint (m', _, _, _) -> peel m'
    | _ -> m
  in
  match (peel m).mod_desc with
  | Typedtree.Tmod_ident (p, _) -> (
    match id_opt with
    | Some id ->
      Hashtbl.replace ctx.aliases (Ident.unique_name id) (module_segs ctx p)
    | None -> ())
  | Typedtree.Tmod_structure _ -> (
    (* handled by scan_structure when a worklist is wanted; from
       letmodule sites we only note the name for path resolution *)
    match (id_opt, name) with
    | Some id, Some n ->
      Hashtbl.replace ctx.locals (Ident.unique_name id) (prefix @ [ n ])
    | _ -> ())
  | _ -> ()

type pending = {
  p_key : string;
  p_display : string;
  p_entry : Summary.entry_kind;
  p_loc : Summary.loc;
  p_body : Typedtree.expression;
}

let rec scan_structure ctx prefix (str : Typedtree.structure) acc =
  List.fold_left
    (fun acc (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.fold_left
          (fun acc (vb : Typedtree.value_binding) ->
            let ids = Typedtree.pat_bound_idents vb.vb_pat in
            let loc = loc_of vb.vb_pat.pat_loc in
            let display, key =
              match ids with
              | id :: _ ->
                let n = Ident.name id in
                (n, String.concat "." (prefix @ [ n ]))
              | [] ->
                ( "_",
                  Printf.sprintf "%s._toplevel@%d"
                    (String.concat "." prefix)
                    loc.Summary.l_line )
            in
            List.iter
              (fun id -> Hashtbl.replace ctx.top_values (Ident.unique_name id) key)
              ids;
            let entry =
              match ids with
              | [ id ]
                when List.mem (Ident.name id) transition_names
                     && is_fun_literal vb.vb_expr ->
                Summary.Transition (Ident.name id)
              | _ -> Summary.Plain
            in
            {
              p_key = key;
              p_display = display;
              p_entry = entry;
              p_loc = loc;
              p_body = vb.vb_expr;
            }
            :: acc)
          acc vbs
      | Typedtree.Tstr_eval (e, _) ->
        let loc = loc_of item.str_loc in
        {
          p_key =
            Printf.sprintf "%s._toplevel@%d"
              (String.concat "." prefix)
              loc.Summary.l_line;
          p_display = "_";
          p_entry = Summary.Plain;
          p_loc = loc;
          p_body = e;
        }
        :: acc
      | Typedtree.Tstr_module mb -> scan_module ctx prefix mb acc
      | Typedtree.Tstr_recmodule mbs ->
        List.fold_left (fun acc mb -> scan_module ctx prefix mb acc) acc mbs
      | Typedtree.Tstr_include incl -> (
        let rec peel (m : Typedtree.module_expr) =
          match m.mod_desc with
          | Typedtree.Tmod_constraint (m', _, _, _) -> peel m'
          | _ -> m
        in
        match (peel incl.incl_mod).mod_desc with
        | Typedtree.Tmod_structure s -> scan_structure ctx prefix s acc
        | _ -> acc)
      | _ -> acc)
    acc str.str_items

and scan_module ctx prefix (mb : Typedtree.module_binding) acc =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  let rec peel (m : Typedtree.module_expr) =
    match m.mod_desc with
    | Typedtree.Tmod_constraint (m', _, _, _) -> peel m'
    | _ -> m
  in
  match (peel mb.mb_expr).mod_desc with
  | Typedtree.Tmod_ident (p, _) ->
    (match mb.mb_id with
    | Some id ->
      Hashtbl.replace ctx.aliases (Ident.unique_name id) (module_segs ctx p)
    | None -> ());
    acc
  | Typedtree.Tmod_structure s ->
    (match mb.mb_id with
    | Some id ->
      Hashtbl.replace ctx.locals (Ident.unique_name id) (prefix @ [ name ])
    | None -> ());
    scan_structure ctx (prefix @ [ name ]) s acc
  | _ -> acc

(* ---------- entry point ---------- *)

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let of_structure ~unit_name ~source ~source_text (str : Typedtree.structure) =
  let unit_prefix = normalize [ unit_name ] in
  let norm_src = String.concat "/" (String.split_on_char '\\' source) in
  let ctx =
    {
      unit_prefix;
      source;
      suppress = Option.map Suppress.of_source source_text;
      is_obs =
        has_sub norm_src "lib/obs/"
        || (match unit_prefix with "Ld_obs" :: _ -> true | _ -> false);
      aliases = Hashtbl.create 16;
      locals = Hashtbl.create 16;
      top_values = Hashtbl.create 64;
      synth_seen = Hashtbl.create 16;
      fns = [];
      refs = [];
    }
  in
  let pending = List.rev (scan_structure ctx unit_prefix str []) in
  List.iter
    (fun p ->
      analyze_body ctx ~key:p.p_key ~display:p.p_display ~entry:p.p_entry
        ~loc:p.p_loc p.p_body)
    pending;
  {
    Summary.u_name = unit_name;
    u_source = source;
    u_fns = List.rev ctx.fns;
    u_refs = List.rev ctx.refs;
  }
