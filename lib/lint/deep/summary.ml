(* Per-unit extraction summaries and their persistent codec.

   A summary records, for every function-like node of one compilation
   unit: the effects its body performs *directly* (each with the
   source location and a human-readable witness), and the project
   functions it calls (the call-graph edges). Nothing interprocedural
   lives here — that is Callgraph's job — which is exactly what makes
   a summary cacheable under the cmt digest alone.

   The codec is a line/tab format in the style of the repo's other
   hand-rolled persistence: a version header, then one record per
   line. Keys, paths and witness strings never contain tabs or
   newlines (they are module paths and file names), so no escaping is
   needed; [of_string] validates shape and raises [Failure] on
   anything unexpected, which the driver treats as a cache miss. *)

type loc = { l_file : string; l_line : int; l_col : int }

let loc_to_string l = Printf.sprintf "%s:%d" l.l_file l.l_line

(* Why a node is an analysis entry point (drives which deep rule its
   transitive effects trigger). *)
type entry_kind =
  | Plain (* ordinary function: deep-nondet-source only *)
  | Transition of string (* machine step/send: deep-machine-purity *)
  | Pool_closure of string (* literal closure at a Pool.map/Domain.spawn
                              call site: deep-domain-safety. The string
                              is the calling context ("Pool.map", ...) *)

type direct = {
  d_kind : Effects.kind;
  d_what : string; (* witness, e.g. "Random.int" or "incr `tally`" *)
  d_loc : loc;
}

type call = { c_callee : string; c_loc : loc (* callee = dotted key *) }

type fn = {
  f_key : string; (* canonical dotted key, e.g. "Ld_core.Pool.map" *)
  f_display : string; (* short name used in diagnostic prose *)
  f_entry : entry_kind;
  f_loc : loc;
  f_direct : direct list;
  f_calls : call list;
}

(* A named project function referenced *as* an entry: a step/send
   record field set to an identifier, or a function passed by name to
   Pool.map / Domain.spawn. Resolved against the whole-program graph
   after all units are loaded. *)
type entry_ref = {
  r_entry : entry_kind; (* Transition _ or Pool_closure _ *)
  r_callee : string; (* dotted key of the referenced function *)
  r_loc : loc;
}

type t = {
  u_name : string; (* unit name as in the cmt, e.g. "Ld_core__Pool" *)
  u_source : string; (* source path relative to the repo root, or "" *)
  u_fns : fn list;
  u_refs : entry_ref list;
}

let version_line = "ld-lint-deep-summary 1"

let entry_to_string = function
  | Plain -> "plain"
  | Transition n -> "transition:" ^ n
  | Pool_closure c -> "pool:" ^ c

let entry_of_string s =
  match String.index_opt s ':' with
  | None when s = "plain" -> Plain
  | None -> failwith ("Summary.entry_of_string: " ^ s)
  | Some i -> (
    let head = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match head with
    | "transition" -> Transition arg
    | "pool" -> Pool_closure arg
    | _ -> failwith ("Summary.entry_of_string: " ^ s))

let loc_fields l = Printf.sprintf "%s\t%d\t%d" l.l_file l.l_line l.l_col

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf version_line;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "unit\t%s\t%s\n" t.u_name t.u_source);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "fn\t%s\t%s\t%s\t%s\n" f.f_key f.f_display
           (entry_to_string f.f_entry) (loc_fields f.f_loc));
      List.iter
        (fun d ->
          Buffer.add_string buf
            (Printf.sprintf "d\t%s\t%s\t%s\n"
               (Effects.to_string d.d_kind)
               d.d_what (loc_fields d.d_loc)))
        f.f_direct;
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "c\t%s\t%s\n" c.c_callee (loc_fields c.c_loc)))
        f.f_calls)
    t.u_fns;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "r\t%s\t%s\t%s\n"
           (entry_to_string r.r_entry)
           r.r_callee (loc_fields r.r_loc)))
    t.u_refs;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let loc_of_fields = function
  | [ f; ln; c ] -> (
    match (int_of_string_opt ln, int_of_string_opt c) with
    | Some l_line, Some l_col -> { l_file = f; l_line; l_col }
    | _ -> failwith "Summary.of_string: bad location")
  | _ -> failwith "Summary.of_string: bad location arity"

let of_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | v :: rest when v = version_line ->
    let u_name = ref "" and u_source = ref "" in
    let fns = ref [] and refs = ref [] in
    (* current fn accumulators, in reverse *)
    let cur = ref None in
    let flush () =
      match !cur with
      | None -> ()
      | Some (f, ds, cs) ->
        fns := { f with f_direct = List.rev ds; f_calls = List.rev cs } :: !fns;
        cur := None
    in
    let saw_end = ref false in
    List.iter
      (fun line ->
        if line = "" || !saw_end then ()
        else
          match String.split_on_char '\t' line with
          | [ "end" ] ->
            flush ();
            saw_end := true
          | "unit" :: name :: src :: [] ->
            u_name := name;
            u_source := src
          | "fn" :: key :: display :: entry :: locf ->
            flush ();
            cur :=
              Some
                ( {
                    f_key = key;
                    f_display = display;
                    f_entry = entry_of_string entry;
                    f_loc = loc_of_fields locf;
                    f_direct = [];
                    f_calls = [];
                  },
                  [],
                  [] )
          | "d" :: kind :: what :: locf -> (
            match !cur with
            | None -> failwith "Summary.of_string: direct before fn"
            | Some (f, ds, cs) ->
              let d =
                {
                  d_kind = Effects.of_string kind;
                  d_what = what;
                  d_loc = loc_of_fields locf;
                }
              in
              cur := Some (f, d :: ds, cs))
          | "c" :: callee :: locf -> (
            match !cur with
            | None -> failwith "Summary.of_string: call before fn"
            | Some (f, ds, cs) ->
              let c = { c_callee = callee; c_loc = loc_of_fields locf } in
              cur := Some (f, ds, c :: cs))
          | "r" :: entry :: callee :: locf ->
            flush ();
            refs :=
              {
                r_entry = entry_of_string entry;
                r_callee = callee;
                r_loc = loc_of_fields locf;
              }
              :: !refs
          | _ -> failwith ("Summary.of_string: bad record: " ^ line))
      rest;
    if not !saw_end then failwith "Summary.of_string: truncated";
    {
      u_name = !u_name;
      u_source = !u_source;
      u_fns = List.rev !fns;
      u_refs = List.rev !refs;
    }
  | _ -> failwith "Summary.of_string: bad version header"
