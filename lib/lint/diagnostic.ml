(* A single finding: file/line/col anchor, the rule that fired, and a
   human message. Severity is per-rule; [Error] findings fail the build
   while [Warning] findings are reported but do not affect the exit
   code. *)

type severity = Error | Warning

type t = {
  file : string;
  line : int; (* 1-based *)
  col : int; (* 0-based, as compilers print them *)
  rule : string;
  severity : severity;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let equal a b = compare a b = 0

let pp fmt d =
  Format.fprintf fmt "%s:%d:%d: [%s] %s: %s" d.file d.line d.col
    (severity_to_string d.severity)
    d.rule d.message

(* JSON is hand-rolled (as in Ld_obs.Trace): the repo deliberately
   avoids a JSON dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.file) d.line d.col (json_escape d.rule)
    (severity_to_string d.severity)
    (json_escape d.message)

let list_to_json ds =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n";
      Buffer.add_string buf (to_json d))
    ds;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
