(* File discovery, parsing, rule dispatch, suppression filtering and
   rendering. The library entry point used by both `ld lint` and
   test/test_lint.ml. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Directories never descended into when walking. [lint_fixtures]
   holds deliberately-dirty snippets for test_lint.ml; fixture files
   are still linted when named explicitly. *)
let skip_dirs = [ "_build"; "_opam"; ".git"; "lint_fixtures"; "node_modules" ]

let rec collect acc path =
  if (not (Sys.file_exists path)) || not (Sys.is_directory path) then
    if Filename.check_suffix path ".ml" then path :: acc else acc
  else
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           let sub = Filename.concat path entry in
           if Sys.is_directory sub then
             if List.mem entry skip_dirs then acc else collect acc sub
           else if Filename.check_suffix entry ".ml" then sub :: acc
           else acc)
         acc

let parse_structure ~file content =
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let dedup_sorted ds =
  let rec go = function
    | a :: (b :: _ as rest) ->
      if Diagnostic.equal a b then go rest else a :: go rest
    | l -> l
  in
  go (List.sort Diagnostic.compare ds)

(* Lint one file with [rules], honouring suppression comments. A file
   that fails to parse yields a single parse-error diagnostic — the
   linter never aborts the whole run on one bad file. *)
let lint_file ?(rules = Rules.all) file =
  let content = read_file file in
  match parse_structure ~file content with
  | exception e ->
    let line, msg =
      match e with
      | Syntaxerr.Error err ->
        let loc = Syntaxerr.location_of_error err in
        (loc.Location.loc_start.Lexing.pos_lnum, "syntax error")
      | e -> (1, Printexc.to_string e)
    in
    [
      {
        Diagnostic.file;
        line;
        col = 0;
        rule = "parse-error";
        severity = Diagnostic.Error;
        message = msg;
      };
    ]
  | str ->
    let suppress = Suppress.of_source content in
    List.concat_map (fun (r : Rules.rule) -> r.check ~file str) rules
    |> List.filter (fun (d : Diagnostic.t) ->
           not (Suppress.allowed suppress ~rule:d.rule ~line:d.line))
    |> dedup_sorted

let lint_paths ?rules paths =
  List.fold_left collect [] paths
  |> List.sort_uniq String.compare
  |> List.concat_map (lint_file ?rules)
  |> dedup_sorted

let has_errors ds =
  List.exists (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) ds

(* Render to [fmt]; returns the exit code (0 clean, 1 violations). *)
let report ~json fmt diags =
  if json then Format.fprintf fmt "%s" (Diagnostic.list_to_json diags)
  else begin
    List.iter (fun d -> Format.fprintf fmt "%a@." Diagnostic.pp d) diags;
    let errors =
      List.length
        (List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) diags)
    in
    if errors > 0 then
      Format.fprintf fmt "ld-lint: %d violation%s@." errors
        (if errors = 1 then "" else "s")
    else Format.fprintf fmt "ld-lint: no violations@."
  end;
  if has_errors diags then 1 else 0

let pp_rules fmt () =
  List.iter
    (fun (r : Rules.rule) ->
      Format.fprintf fmt "@[<v 2>%s [%s]@,@[<hov>%a@]@]@.@." r.id
        (Diagnostic.severity_to_string r.severity)
        Format.pp_print_text r.doc)
    Rules.all
