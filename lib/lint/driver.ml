(* File discovery, parsing, rule dispatch, suppression filtering and
   rendering. The library entry point used by both `ld lint` and
   test/test_lint.ml. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Directories never descended into when walking. [lint_fixtures]
   holds deliberately-dirty snippets for test_lint.ml and
   [deep_fixtures] the seeded mini-project for test_lint_deep.ml;
   fixture files are still linted when named explicitly. *)
let skip_dirs =
  [ "_build"; "_opam"; ".git"; "lint_fixtures"; "deep_fixtures"; "node_modules" ]

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec collect acc path =
  if not (Sys.file_exists path) then acc
  else if not (Sys.is_directory path) then
    if is_source path then path :: acc else acc
  else
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           let sub = Filename.concat path entry in
           if Sys.is_directory sub then
             if List.mem entry skip_dirs then acc else collect acc sub
           else if is_source entry then sub :: acc
           else acc)
         acc

(* Explicit CLI inputs that cannot be linted: a missing path or a file
   that is neither .ml nor .mli. Directories are always acceptable
   (they are walked). Returns (path, reason) pairs; the CLI reports
   them and exits 2 so a typo can never masquerade as a clean run. *)
let invalid_inputs paths =
  List.filter_map
    (fun p ->
      if not (Sys.file_exists p) then Some (p, "no such file or directory")
      else if Sys.is_directory p then None
      else if is_source p then None
      else Some (p, "not an OCaml source file (expected .ml or .mli)"))
    paths

type parsed =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

let parse_any ~file content =
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf file;
  if Filename.check_suffix file ".mli" then Intf (Parse.interface lexbuf)
  else Impl (Parse.implementation lexbuf)

let parse_structure ~file content =
  match parse_any ~file content with
  | Impl str -> str
  | Intf _ -> invalid_arg "parse_structure: interface file"

(* Interfaces carry no expressions of their own, but attribute and
   extension payloads may embed structures (default implementations,
   ppx-style payloads) where obj-magic / poly-compare hazards hide.
   Collect every [PStr] payload and run the ordinary rules over it. *)
let payload_structures sg =
  let acc = ref [] in
  let payload self pl =
    (match pl with
    | Parsetree.PStr str -> acc := str :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.payload self pl
  in
  let it = { Ast_iterator.default_iterator with payload } in
  it.signature it sg;
  List.rev !acc

let dedup_sorted ds =
  let rec go = function
    | a :: (b :: _ as rest) ->
      if Diagnostic.equal a b then go rest else a :: go rest
    | l -> l
  in
  go (List.sort Diagnostic.compare ds)

let raw_diagnostics ~rules ~file parsed =
  match parsed with
  | Impl str -> List.concat_map (fun (r : Rules.rule) -> r.check ~file str) rules
  | Intf sg ->
    payload_structures sg
    |> List.concat_map (fun str ->
           List.concat_map (fun (r : Rules.rule) -> r.check ~file str) rules)

(* Suppression hygiene: a directive naming an active rule that
   silences no raw diagnostic is itself reported, anchored at the
   comment line. Directives naming rules outside the active set are
   ignored (a deep-rule allow must not read as stale during a shallow
   run, and a run restricted to one rule must not flag the others'
   allows). [allow stale-suppression] is exempt to keep the check
   well-founded; an [allow all] that silences nothing self-suppresses
   its own stale finding, which we accept as the cost of a line-based
   scanner. *)
let stale_suppressions ~rules ~file ~suppress raw =
  let active r =
    r = "all" || r = "parse-error"
    || List.exists (fun (ru : Rules.rule) -> ru.id = r) rules
  in
  Suppress.directives suppress
  |> List.filter_map (fun (d : Suppress.directive) ->
         if d.d_rule = "stale-suppression" || not (active d.d_rule) then None
         else if
           List.exists
             (fun (x : Diagnostic.t) ->
               Suppress.directive_covers d ~rule:x.rule ~line:x.line)
             raw
         then None
         else
           Some
             {
               Diagnostic.file;
               line = d.d_line;
               col = 0;
               rule = "stale-suppression";
               severity = Diagnostic.Error;
               message =
                 Printf.sprintf
                   "`%s %s` silences no diagnostic — remove the stale \
                    suppression"
                   (match d.d_scope with
                   | Suppress.Line -> "allow"
                   | Suppress.File -> "allow-file")
                   d.d_rule;
             })

(* Lint one file with [rules], honouring suppression comments. A file
   that fails to parse yields a single parse-error diagnostic — the
   linter never aborts the whole run on one bad file (and the stale
   check is skipped: without an AST no directive can be validated). *)
let lint_file ?(rules = Rules.all) file =
  let content = read_file file in
  match parse_any ~file content with
  | exception e ->
    let line, msg =
      match e with
      | Syntaxerr.Error err ->
        let loc = Syntaxerr.location_of_error err in
        (loc.Location.loc_start.Lexing.pos_lnum, "syntax error")
      | e -> (1, Printexc.to_string e)
    in
    [
      {
        Diagnostic.file;
        line;
        col = 0;
        rule = "parse-error";
        severity = Diagnostic.Error;
        message = msg;
      };
    ]
  | parsed ->
    let suppress = Suppress.of_source content in
    let raw = raw_diagnostics ~rules ~file parsed in
    (* Hygiene is only meaningful against the canonical rule set: a
       run restricted to one rule must not read the other rules'
       allows as stale. *)
    let stale =
      if
        List.equal String.equal
          (List.map (fun (r : Rules.rule) -> r.id) rules)
          (List.map (fun (r : Rules.rule) -> r.id) Rules.all)
      then stale_suppressions ~rules ~file ~suppress raw
      else []
    in
    raw @ stale
    |> List.filter (fun (d : Diagnostic.t) ->
           not (Suppress.allowed suppress ~rule:d.rule ~line:d.line))
    |> dedup_sorted

let lint_paths ?rules paths =
  List.fold_left collect [] paths
  |> List.sort_uniq String.compare
  |> List.concat_map (lint_file ?rules)
  |> dedup_sorted

let has_errors ds =
  List.exists (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) ds

(* Render to [fmt]; returns the exit code (0 clean, 1 violations). *)
let report ~json fmt diags =
  if json then Format.fprintf fmt "%s" (Diagnostic.list_to_json diags)
  else begin
    List.iter (fun d -> Format.fprintf fmt "%a@." Diagnostic.pp d) diags;
    let errors =
      List.length
        (List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) diags)
    in
    if errors > 0 then
      Format.fprintf fmt "ld-lint: %d violation%s@." errors
        (if errors = 1 then "" else "s")
    else Format.fprintf fmt "ld-lint: no violations@."
  end;
  if has_errors diags then 1 else 0

let pp_rules fmt () =
  List.iter
    (fun (r : Rules.rule) ->
      Format.fprintf fmt "@[<v 2>%s [%s]@,@[<hov>%a@]@]@.@." r.id
        (Diagnostic.severity_to_string r.severity)
        Format.pp_print_text r.doc)
    Rules.all
