(* The rule registry and the six shipped rules.

   Every rule is a purely syntactic pass over the 5.1 parsetree
   (compiler-libs [Ast_iterator]) — no typing information. Rules that
   need to distinguish "bound here" from "captured"/"Stdlib" thread a
   lexical environment through binders ([scoped_iterator]); the
   heuristics and their known blind spots are documented per rule and
   in DESIGN.md. *)

open Parsetree

type rule = {
  id : string;
  severity : Diagnostic.severity;
  doc : string;
  check : file:string -> Parsetree.structure -> Diagnostic.t list;
}

(* ---------- shared helpers ---------- *)

let diag ~file ~rule ~severity loc message =
  let p = loc.Location.loc_start in
  {
    Diagnostic.file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    severity;
    message;
  }

let flatten lid = Longident.flatten lid

let rec head_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten txt)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> head_path e
  | _ -> None

(* Names bound by a pattern (deep). *)
let rec pat_vars acc p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pat_vars (txt :: acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pat_vars acc ps
  | Ppat_construct (_, Some (_, p)) -> pat_vars acc p
  | Ppat_variant (_, Some p) -> pat_vars acc p
  | Ppat_record (fields, _) ->
    List.fold_left (fun acc (_, p) -> pat_vars acc p) acc fields
  | Ppat_or (a, b) -> pat_vars (pat_vars acc a) b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p
    ->
    pat_vars acc p
  | _ -> acc

module Env = struct
  type t = (string, unit) Hashtbl.t

  let create () : t = Hashtbl.create 64
  let mem (t : t) name = Hashtbl.mem t name

  (* Hashtbl add/remove act as a per-key stack, so shadowing unwinds
     correctly. *)
  let bind (t : t) names f =
    List.iter (fun n -> Hashtbl.add t n ()) names;
    Fun.protect f ~finally:(fun () -> List.iter (Hashtbl.remove t) names)
end

(* An [Ast_iterator] that calls [on_expr] on every expression while
   keeping [env] consistent with the lexical scope: let/fun/for/case
   binders and structure-level values are pushed for exactly the
   subtrees they dominate. [on_open] lets a rule react to local opens
   (e.g. [Q.Infix.( ... )] rebinding comparison operators). *)
let scoped_iterator (env : Env.t) ~on_expr ?(on_open = fun _ -> []) () =
  let super = Ast_iterator.default_iterator in
  let expr self e =
    on_expr e;
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
      let names = List.concat_map (fun vb -> pat_vars [] vb.pvb_pat) vbs in
      let visit () = List.iter (fun vb -> self.Ast_iterator.expr self vb.pvb_expr) vbs in
      (match rf with
      | Asttypes.Recursive ->
        Env.bind env names (fun () ->
            visit ();
            self.Ast_iterator.expr self body)
      | Asttypes.Nonrecursive ->
        visit ();
        Env.bind env names (fun () -> self.Ast_iterator.expr self body))
    | Pexp_fun (_, default, pat, body) ->
      Option.iter (self.Ast_iterator.expr self) default;
      Env.bind env (pat_vars [] pat) (fun () -> self.Ast_iterator.expr self body)
    | Pexp_for (pat, lo, hi, _, body) ->
      self.Ast_iterator.expr self lo;
      self.Ast_iterator.expr self hi;
      Env.bind env (pat_vars [] pat) (fun () -> self.Ast_iterator.expr self body)
    | Pexp_open (od, body) ->
      let extra =
        match od.popen_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> on_open (flatten txt)
        | _ -> []
      in
      Env.bind env extra (fun () -> self.Ast_iterator.expr self body)
    | _ -> super.expr self e
  in
  let case self c =
    self.Ast_iterator.pat self c.pc_lhs;
    Env.bind env (pat_vars [] c.pc_lhs) (fun () ->
        Option.iter (self.Ast_iterator.expr self) c.pc_guard;
        self.Ast_iterator.expr self c.pc_rhs)
  in
  let structure self items =
    (* Structure-level values scope over the remaining items. *)
    let rec go = function
      | [] -> ()
      | it :: rest -> (
        match it.pstr_desc with
        | Pstr_value (rf, vbs) ->
          let names = List.concat_map (fun vb -> pat_vars [] vb.pvb_pat) vbs in
          let visit () =
            List.iter (fun vb -> self.Ast_iterator.expr self vb.pvb_expr) vbs
          in
          (match rf with
          | Asttypes.Recursive -> Env.bind env names (fun () -> visit (); go rest)
          | Asttypes.Nonrecursive ->
            visit ();
            Env.bind env names (fun () -> go rest))
        | _ ->
          super.structure_item self it;
          go rest)
    in
    go items
  in
  { super with expr; case; structure }

(* Peel fun/newtype/constraint wrappers; used to recognise function
   literals. *)
let is_fun_literal e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> go body
    | _ -> false
  in
  go e

(* ---------- mutation detection (shared by domain-safety and
   machine-purity) ---------- *)

(* Resolve the expression being mutated down to its root name. *)
let rec target_head e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> `Name n
  | Pexp_ident _ -> `Global (* qualified path: module-level state *)
  | Pexp_field (e, _) -> target_head e
  | Pexp_apply
      ( {
          pexp_desc =
            Pexp_ident
              { txt = Longident.Ldot (Longident.Lident ("Array" | "Bytes"), ("get" | "unsafe_get")); _ };
          _;
        },
        (_, a) :: _ ) ->
    target_head a
  | Pexp_constraint (e, _) -> target_head e
  | _ -> `Unknown

let nolabel_args args =
  List.filter_map
    (fun (l, a) -> match l with Asttypes.Nolabel -> Some a | _ -> None)
    args

(* If [e] is a write to mutable state, return the written expression
   and a description of the write. Atomic.* and Domain.DLS.* are the
   sanctioned cross-domain primitives and are deliberately absent. *)
let mutation_target e =
  match e.pexp_desc with
  | Pexp_setfield (tgt, _, _) -> Some (tgt, "record-field write")
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    let arg n = List.nth_opt (nolabel_args args) n in
    let with_arg n what = Option.map (fun a -> (a, what)) (arg n) in
    match flatten txt with
    | [ ":=" ] -> with_arg 0 "reference assignment"
    | [ ("incr" | "decr") ] -> with_arg 0 "reference increment"
    | [ ("Array" | "Bytes" | "Float" | "Bigarray"); ("set" | "unsafe_set" | "fill") ] ->
      with_arg 0 "array write"
    | [ ("Array" | "Bytes"); "blit" ] -> with_arg 2 "array blit"
    | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
      ->
      with_arg 0 "hashtable write"
    | [ "Buffer"; f ] when String.length f >= 4 && String.sub f 0 4 = "add_" ->
      with_arg 1 "buffer write"
    | [ "Buffer"; ("clear" | "reset" | "truncate") ] -> with_arg 0 "buffer write"
    | [ ("Queue" | "Stack"); ("add" | "push") ] -> with_arg 1 "queue/stack write"
    | [ ("Queue" | "Stack"); ("pop" | "take" | "clear" | "pop_opt" | "take_opt") ] ->
      with_arg 0 "queue/stack write"
    | _ -> None)
  | _ -> None

(* Walk a function literal with a fresh environment so that anything
   not bound inside the closure is, by construction, captured. Calls
   [on_capture] for writes to captured/global mutable state. *)
let analyze_closure ~on_capture ~extra_check closure =
  let env = Env.create () in
  let on_expr e =
    (match mutation_target e with
    | Some (tgt, what) -> (
      match target_head tgt with
      | `Name n when not (Env.mem env n) -> on_capture e.pexp_loc what (Some n)
      | `Global -> on_capture e.pexp_loc what None
      | `Name _ | `Unknown -> ())
    | None -> ());
    extra_check env e
  in
  let it = scoped_iterator env ~on_expr () in
  it.Ast_iterator.expr it closure

(* ---------- rule: poly-compare ---------- *)

let list_returning =
  [
    "sort"; "sort_uniq"; "stable_sort"; "fast_sort"; "map"; "mapi"; "rev_map";
    "filter"; "filter_map"; "init"; "concat"; "concat_map"; "rev"; "append";
    "of_seq"; "merge"; "flatten"; "cons";
  ]

(* Q./Z. functions that do NOT return a Q/Z value (so comparing their
   result with builtin operators is fine). *)
let qz_scalar_returning =
  [
    "compare"; "equal"; "sign"; "hash"; "to_int"; "to_int_opt"; "to_string";
    "to_float"; "is_zero"; "is_integer"; "is_one"; "num_bits"; "pp";
  ]

(* Syntactic evidence that an operand is structured data (or an exact
   Q/Z scalar), for which builtin polymorphic comparison is a
   determinism/correctness hazard. *)
let rec is_structural e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | Pexp_constraint (e, _) -> is_structural e
  | Pexp_ident { txt; _ } -> (
    match flatten txt with
    | ("Q" | "Z") :: rest -> (
      match List.rev rest with
      | fn :: _ -> not (List.mem fn qz_scalar_returning)
      | [] -> false)
    | _ -> false)
  | Pexp_apply (f, _) -> (
    match head_path f with
    | Some [ "List"; fn ] -> List.mem fn list_returning
    | Some [ "Array"; "to_list" ] -> true
    | Some (("Q" | "Z") :: rest) -> (
      match List.rev rest with
      | fn :: _ -> not (List.mem fn qz_scalar_returning)
      | [] -> false)
    | _ -> false)
  | _ -> false

let comparison_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let poly_compare_rule =
  let id = "poly-compare" in
  let check ~file str =
    let out = ref [] in
    let env = Env.create () in
    let add loc msg =
      out := diag ~file ~rule:id ~severity:Diagnostic.Error loc msg :: !out
    in
    let on_expr e =
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident "compare"; _ }
        when not (Env.mem env "compare") ->
        add e.pexp_loc
          "bare polymorphic `compare` — use Int.compare / String.compare / \
           Q.compare / a typed comparator"
      | Pexp_ident
          { txt = Longident.Ldot (Longident.Lident ("Stdlib" | "Pervasives"), "compare"); _ } ->
        add e.pexp_loc
          "Stdlib.compare is polymorphic — use a typed comparator"
      | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Hashtbl", "hash"); _ } ->
        add e.pexp_loc
          "Hashtbl.hash is polymorphic (and truncates) — use a typed hash \
           (e.g. Q.hash/Z.hash)"
      | Pexp_apply
          ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ])
        when List.mem op comparison_ops
             && (not (Env.mem env op))
             && (is_structural a || is_structural b) ->
        add e.pexp_loc
          (Printf.sprintf
             "polymorphic `%s` on structured/exact data — use List.equal, \
              Option.equal, Q.equal/Q.compare or a typed comparator"
             op)
      | _ -> ()
    in
    (* Local opens of an *.Infix module rebind the comparison
       operators to typed ones. *)
    let on_open path =
      match List.rev path with
      | "Infix" :: _ -> "compare" :: comparison_ops
      | _ -> []
    in
    let it = scoped_iterator env ~on_expr ~on_open () in
    it.Ast_iterator.structure it str;
    !out
  in
  {
    id;
    severity = Diagnostic.Error;
    doc =
      "Bare `compare`, Stdlib.compare, Hashtbl.hash, or builtin =/<>/</> on \
       structured or exact-arithmetic operands. Polymorphic comparison on \
       Q.t/Z.t compares representations, not values, and silently breaks \
       byte-identical result tables.";
    check;
  }

(* ---------- rule: nondet-source ---------- *)

let nondet_rule =
  let id = "nondet-source" in
  let check ~file str =
    (* lib/obs owns the clock: the tracing layer is the sanctioned
       consumer of wall/monotonic time. *)
    let exempt =
      let norm = String.concat "/" (String.split_on_char '\\' file) in
      let rec has_sub s sub i =
        if i + String.length sub > String.length s then false
        else if String.sub s i (String.length sub) = sub then true
        else has_sub s sub (i + 1)
      in
      has_sub norm "lib/obs/" 0
    in
    if exempt then []
    else begin
      let out = ref [] in
      let add loc msg =
        out := diag ~file ~rule:id ~severity:Diagnostic.Error loc msg :: !out
      in
      let super = Ast_iterator.default_iterator in
      let expr self e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          match flatten txt with
          | "Random" :: rest when (match rest with "State" :: _ -> false | _ -> true) ->
            add e.pexp_loc
              "global Random state is nondeterministic across runs — thread \
               an explicitly seeded Random.State.t instead"
          | [ "Sys"; "time" ]
          | [ "Unix"; ("time" | "gettimeofday" | "gmtime" | "localtime") ] ->
            add e.pexp_loc
              "wall-clock reads are nondeterministic — certificate paths \
               must not depend on time"
          | ("Monotonic_clock" | "Mtime_clock") :: _ ->
            add e.pexp_loc
              "clock reads outside lib/obs — route timing through the \
               observability layer"
          | _ -> ())
        | _ -> ());
        super.expr self e
      in
      let it = { super with expr } in
      it.Ast_iterator.structure it str;
      !out
    end
  in
  {
    id;
    severity = Diagnostic.Error;
    doc =
      "Unseeded randomness (global Random.*) or wall-clock reads \
       (Sys.time, Unix.gettimeofday, raw monotonic clocks) outside \
       lib/obs. Randomness must flow through explicitly seeded \
       Random.State values so every table replays byte-identically.";
    check;
  }

(* ---------- rule: domain-safety ---------- *)

let is_pool_map path =
  match List.rev path with
  | ("map" | "mapi") :: "Pool" :: _ -> true
  | _ -> false

let domain_safety_rule =
  let id = "domain-safety" in
  let check ~file str =
    let out = ref [] in
    let add loc what name ctx =
      let who =
        match name with
        | Some n -> Printf.sprintf "`%s`" n
        | None -> "module-level state"
      in
      out :=
        diag ~file ~rule:id ~severity:Diagnostic.Error loc
          (Printf.sprintf
             "%s of captured %s inside a closure passed to %s — tasks run on \
              separate domains; use Atomic, Domain.DLS, or task-local state"
             what who ctx)
        :: !out
    in
    let super = Ast_iterator.default_iterator in
    let expr self e =
      (match e.pexp_desc with
      | Pexp_apply (f, args) -> (
        let is_domain_spawn = function
          | [ "Domain"; "spawn" ] -> true
          | _ -> false
        in
        match head_path f with
        | Some path when is_pool_map path || is_domain_spawn path ->
          let ctx = if is_pool_map path then "Pool.map" else "Domain.spawn" in
          List.iter
            (fun (_, a) ->
              if is_fun_literal a then
                analyze_closure
                  ~on_capture:(fun loc what name -> add loc what name ctx)
                  ~extra_check:(fun _ _ -> ())
                  a)
            args
        | _ -> ())
      | _ -> ());
      super.expr self e
    in
    let it = { super with expr } in
    it.Ast_iterator.structure it str;
    !out
  in
  {
    id;
    severity = Diagnostic.Error;
    doc =
      "A closure passed to Ld_core.Pool.map / Domain.spawn writes to \
       mutable state captured from the enclosing scope (ref, array, \
       Hashtbl, record field) without Atomic/Domain.DLS: a data race \
       under the multicore fan-out. State created inside the task body \
       is fine.";
    check;
  }

(* ---------- rule: machine-purity ---------- *)

let io_heads =
  [
    [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "print_int" ]; [ "print_char" ]; [ "print_float" ]; [ "prerr_string" ];
    [ "prerr_endline" ]; [ "read_line" ]; [ "read_int" ]; [ "open_in" ];
    [ "open_out" ]; [ "output_string" ]; [ "output_char" ]; [ "output_value" ];
    [ "input_line" ]; [ "input_value" ]; [ "exit" ];
    [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ]; [ "Printf"; "fprintf" ];
    [ "Format"; "printf" ]; [ "Format"; "eprintf" ];
  ]

let machine_purity_rule =
  let id = "machine-purity" in
  let check ~file str =
    let out = ref [] in
    let add loc msg =
      out := diag ~file ~rule:id ~severity:Diagnostic.Error loc msg :: !out
    in
    let analyze name fn =
      analyze_closure fn
        ~on_capture:(fun loc what who ->
          let target =
            match who with Some n -> Printf.sprintf " of `%s`" n | None -> ""
          in
          add loc
            (Printf.sprintf
               "%s%s inside machine transition `%s` — transition functions \
                must be pure (state in, state out)"
               what target name))
        ~extra_check:(fun _ e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            let path = flatten txt in
            if List.mem path io_heads || (match path with "Unix" :: _ -> true | _ -> false)
            then
              add e.pexp_loc
                (Printf.sprintf
                   "I/O inside machine transition `%s` — transition \
                    functions must be pure"
                   name)
            else
              match path with
              | "Random" :: rest when (match rest with "State" :: _ -> false | _ -> true) ->
                add e.pexp_loc
                  (Printf.sprintf
                     "global randomness inside machine transition `%s` — \
                      use the rng threaded through the machine state"
                     name)
              | _ -> ())
          | _ -> ())
    in
    let transition_names = [ "step"; "send" ] in
    let super = Ast_iterator.default_iterator in
    let handle_vb vb =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ }
        when List.mem txt transition_names && is_fun_literal vb.pvb_expr ->
        analyze txt vb.pvb_expr
      | _ -> ()
    in
    let expr self e =
      (match e.pexp_desc with
      | Pexp_let (_, vbs, _) -> List.iter handle_vb vbs
      | Pexp_record (fields, _) ->
        List.iter
          (fun (({ txt; _ } : Longident.t Location.loc), value) ->
            match txt with
            | Longident.Lident n when List.mem n transition_names && is_fun_literal value ->
              analyze n value
            | _ -> ())
          fields
      | _ -> ());
      super.expr self e
    in
    let structure_item self it =
      (match it.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter handle_vb vbs
      | _ -> ());
      super.structure_item self it
    in
    let it = { super with expr; structure_item } in
    it.Ast_iterator.structure it str;
    !out
  in
  {
    id;
    severity = Diagnostic.Error;
    doc =
      "A `step`/`send` machine transition function performs I/O, uses \
       global randomness, or writes to captured mutable state. \
       Transitions must be pure functions of the machine state so runs \
       replay identically under every executor.";
    check;
  }

(* ---------- rule: obj-magic ---------- *)

let obj_magic_rule =
  let id = "obj-magic" in
  let check ~file str =
    let out = ref [] in
    let super = Ast_iterator.default_iterator in
    let expr self e =
      (match e.pexp_desc with
      | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Obj", ("magic" | "repr" | "obj")); _ } ->
        out :=
          diag ~file ~rule:id ~severity:Diagnostic.Error e.pexp_loc
            "Obj.magic/Obj.repr defeats the type system — no unchecked \
             casts in certificate-bearing code"
          :: !out
      | _ -> ());
      super.expr self e
    in
    let it = { super with expr } in
    it.Ast_iterator.structure it str;
    !out
  in
  {
    id;
    severity = Diagnostic.Error;
    doc = "Any use of Obj.magic / Obj.repr / Obj.obj.";
    check;
  }

(* ---------- rule: exn-swallow ---------- *)

let exn_swallow_rule =
  let id = "exn-swallow" in
  let check ~file str =
    let out = ref [] in
    let add loc =
      out :=
        diag ~file ~rule:id ~severity:Diagnostic.Error loc
          "catch-all `with _ ->` swallows every exception (including \
           Stack_overflow and assertion failures) — match specific \
           exceptions, or name and re-raise"
        :: !out
    in
    let catch_all c =
      match (c.pc_lhs.ppat_desc, c.pc_guard) with
      | Ppat_any, None -> Some c.pc_lhs.ppat_loc
      | Ppat_exception { ppat_desc = Ppat_any; ppat_loc; _ }, None -> Some ppat_loc
      | _ -> None
    in
    let super = Ast_iterator.default_iterator in
    let expr self e =
      (match e.pexp_desc with
      | Pexp_try (_, cases) ->
        List.iter (fun c -> Option.iter add (catch_all c)) cases
      | Pexp_match (_, cases) ->
        List.iter
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception _ -> Option.iter add (catch_all c)
            | _ -> ())
          cases
      | _ -> ());
      super.expr self e
    in
    let it = { super with expr } in
    it.Ast_iterator.structure it str;
    !out
  in
  {
    id;
    severity = Diagnostic.Error;
    doc =
      "try ... with _ -> (or `exception _` match cases) without a guard: \
       swallowing every exception hides adversary bugs and turns \
       infrastructure failures into wrong tables.";
    check;
  }

let all =
  [
    poly_compare_rule;
    nondet_rule;
    domain_safety_rule;
    machine_purity_rule;
    obj_magic_rule;
    exn_swallow_rule;
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all
