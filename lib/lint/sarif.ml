(* SARIF 2.1.0 emission (hand-rolled JSON, matching the repo's
   no-json-dependency policy). One run, one driver ("ld-lint"), the
   rule catalogue under tool.driver.rules, and one result per
   diagnostic with a physical location. Only the schema's required
   properties plus the fields CI code-scanning consumes are emitted;
   columns are converted from the repo's 0-based convention to
   SARIF's 1-based one. *)

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

type rule_meta = {
  rm_id : string;
  rm_severity : Diagnostic.severity;
  rm_doc : string;
}

let meta ~id ~severity ~doc = { rm_id = id; rm_severity = severity; rm_doc = doc }

let level_of_severity = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"

let esc = Diagnostic.json_escape

(* Forward slashes regardless of platform: SARIF artifact URIs. *)
let uri_of_file file =
  String.map (fun c -> if c = '\\' then '/' else c) file

let rule_json r =
  Printf.sprintf
    "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"defaultConfiguration\":{\"level\":\"%s\"}}"
    (esc r.rm_id) (esc r.rm_doc)
    (level_of_severity r.rm_severity)

let result_json ~index_of (d : Diagnostic.t) =
  let rule_index =
    match index_of d.rule with Some i -> i | None -> -1
  in
  let rule_index_field =
    if rule_index >= 0 then Printf.sprintf ",\"ruleIndex\":%d" rule_index
    else ""
  in
  Printf.sprintf
    "{\"ruleId\":\"%s\"%s,\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
    (esc d.rule) rule_index_field
    (level_of_severity d.severity)
    (esc d.message)
    (esc (uri_of_file d.file))
    d.line (d.col + 1)

(* Render a complete SARIF log. [rules] is the catalogue; diagnostics
   whose rule id is missing from it (defensive — should not happen)
   are emitted without a ruleIndex, which the schema permits. *)
let render ~rules diags =
  let rules =
    (* The catalogue must cover synthetic driver rules too. *)
    let extra =
      [
        meta ~id:"parse-error" ~severity:Diagnostic.Error
          ~doc:"The file failed to parse; nothing else can be checked.";
        meta ~id:"stale-suppression" ~severity:Diagnostic.Error
          ~doc:
            "A suppression comment that silences no diagnostic; stale \
             allows accumulate as rules tighten.";
      ]
    in
    rules @ List.filter (fun e -> not (List.exists (fun r -> r.rm_id = e.rm_id) rules)) extra
  in
  let index_of id =
    let rec go i = function
      | [] -> None
      | r :: rest -> if r.rm_id = id then Some i else go (i + 1) rest
    in
    go 0 rules
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"$schema\":\"";
  Buffer.add_string buf schema_uri;
  Buffer.add_string buf "\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"ld-lint\",\"informationUri\":\"https://example.invalid/ld-lint\",\"rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (rule_json r))
    rules;
  Buffer.add_string buf "]}},\"results\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (result_json ~index_of d))
    diags;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf

let of_shallow_rules () =
  List.map
    (fun (r : Rules.rule) -> meta ~id:r.id ~severity:r.severity ~doc:r.doc)
    Rules.all
