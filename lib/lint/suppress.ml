(* Suppression comments.

   A diagnostic can be silenced at the offending site with a comment
   of the form [(* ld-lint: allow <rule...> *)], which silences the
   named rules on that line and the next, or
   [(* ld-lint: allow-file <rule...> *)], which silences them for the
   whole file. The pseudo-rule id [all] silences every rule in the
   chosen scope.

   The scanner is line-based and purely textual — the OCaml parser
   discards comments, so suppressions are recovered from the source
   text before the AST pass runs. Several rule ids may follow a single
   [allow]. A directive that silences nothing is itself a finding
   (stale-suppression, enforced by the driver), so the examples above
   deliberately use the [<rule...>] placeholder rather than a real
   rule id. *)

type scope = Line | File

type directive = {
  d_rule : string; (* rule id or "all" *)
  d_scope : scope;
  d_line : int; (* 1-based line of the comment itself *)
}

type t = {
  file_allows : (string, unit) Hashtbl.t; (* rule id (or "all") *)
  line_allows : (int * string, unit) Hashtbl.t; (* (line, rule id or "all") *)
  mutable directives : directive list; (* file order *)
}

let marker = "ld-lint:"

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* Tokens after the marker, stopping at the comment closer. *)
let directive_tokens rest =
  let rest =
    match String.index_opt rest '*' with
    | Some i when i + 1 < String.length rest && rest.[i + 1] = ')' ->
      String.sub rest 0 i
    | _ -> rest
  in
  String.split_on_char ' ' rest
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else if String.for_all is_rule_char tok then Some tok
         else None)

let of_source content =
  let t =
    {
      file_allows = Hashtbl.create 4;
      line_allows = Hashtbl.create 8;
      directives = [];
    }
  in
  let lines = String.split_on_char '\n' content in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match
        (* find the marker anywhere on the line *)
        let mlen = String.length marker in
        let llen = String.length line in
        let rec find j =
          if j + mlen > llen then None
          else if String.sub line j mlen = marker then Some (j + mlen)
          else find (j + 1)
        in
        find 0
      with
      | None -> ()
      | Some start -> (
        let rest = String.sub line start (String.length line - start) in
        match directive_tokens rest with
        | "allow" :: rules ->
          List.iter
            (fun r ->
              Hashtbl.replace t.line_allows (lineno, r) ();
              t.directives <-
                { d_rule = r; d_scope = Line; d_line = lineno } :: t.directives)
            rules
        | "allow-file" :: rules ->
          List.iter
            (fun r ->
              Hashtbl.replace t.file_allows r ();
              t.directives <-
                { d_rule = r; d_scope = File; d_line = lineno } :: t.directives)
            rules
        | _ -> ()))
    lines;
  t.directives <- List.rev t.directives;
  t

let directives t = t.directives

(* An [allow] on line L covers findings on L (trailing comment) and
   L+1 (comment on its own line above the offender). *)
let allowed t ~rule ~line =
  let hit tbl k = Hashtbl.mem tbl k in
  hit t.file_allows rule || hit t.file_allows "all"
  || hit t.line_allows (line, rule)
  || hit t.line_allows (line, "all")
  || (line > 1 && (hit t.line_allows (line - 1, rule) || hit t.line_allows (line - 1, "all")))

(* Would this single directive, considered in isolation, silence a
   diagnostic of rule [rule] at [line]? Used by the driver's
   stale-suppression check to decide whether each directive pulls its
   weight. *)
let directive_covers d ~rule ~line =
  (d.d_rule = rule || d.d_rule = "all")
  && (match d.d_scope with
     | File -> true
     | Line -> line = d.d_line || line = d.d_line + 1)
