(* Suppression comments.

   A diagnostic can be silenced at the offending site:

     (* ld-lint: allow poly-compare *)          silences that rule on
                                                this line and the next
     (* ld-lint: allow-file domain-safety *)    silences the rule for
                                                the whole file
     (* ld-lint: allow all *)                   silences every rule on
                                                this line and the next

   The scanner is line-based and purely textual — the OCaml parser
   discards comments, so suppressions are recovered from the source
   text before the AST pass runs. Several rule ids may follow a single
   [allow]. *)

type t = {
  file_allows : (string, unit) Hashtbl.t; (* rule id (or "all") *)
  line_allows : (int * string, unit) Hashtbl.t; (* (line, rule id or "all") *)
}

let marker = "ld-lint:"

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* Tokens after the marker, stopping at the comment closer. *)
let directive_tokens rest =
  let rest =
    match String.index_opt rest '*' with
    | Some i when i + 1 < String.length rest && rest.[i + 1] = ')' ->
      String.sub rest 0 i
    | _ -> rest
  in
  String.split_on_char ' ' rest
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else if String.for_all is_rule_char tok then Some tok
         else None)

let of_source content =
  let t = { file_allows = Hashtbl.create 4; line_allows = Hashtbl.create 8 } in
  let lines = String.split_on_char '\n' content in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match
        (* find the marker anywhere on the line *)
        let mlen = String.length marker in
        let llen = String.length line in
        let rec find j =
          if j + mlen > llen then None
          else if String.sub line j mlen = marker then Some (j + mlen)
          else find (j + 1)
        in
        find 0
      with
      | None -> ()
      | Some start -> (
        let rest = String.sub line start (String.length line - start) in
        match directive_tokens rest with
        | "allow" :: rules ->
          List.iter
            (fun r -> Hashtbl.replace t.line_allows (lineno, r) ())
            rules
        | "allow-file" :: rules ->
          List.iter (fun r -> Hashtbl.replace t.file_allows r ()) rules
        | _ -> ()))
    lines;
  t

(* An [allow] on line L covers findings on L (trailing comment) and
   L+1 (comment on its own line above the offender). *)
let allowed t ~rule ~line =
  let hit tbl k = Hashtbl.mem tbl k in
  hit t.file_allows rule || hit t.file_allows "all"
  || hit t.line_allows (line, rule)
  || hit t.line_allows (line, "all")
  || (line > 1 && (hit t.line_allows (line - 1, rule) || hit t.line_allows (line - 1, "all")))
