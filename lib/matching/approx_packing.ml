module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Fm = Ld_fm.Fm
module Anon = Ld_runtime.Anon_ec

let approximation_bound = Q.of_ints 1 4

type state = {
  frozen : bool; (* y[v] >= 1/2: my edges stop doubling *)
  dart_w : (int * Q.t) list; (* final weight per dart colour *)
  colours : int list;
  rounds_left : int;
}

let node_weight s =
  Q.sum (List.map snd s.dart_w)

let machine ~k : (state, bool) Anon.machine =
  {
    init =
      (fun ~degree ~colours ->
        let w = Q.div Q.one (Q.of_int (1 lsl k)) in
        {
          (* already half-saturated by the uniform start? *)
          frozen = Q.compare (Q.mul (Q.of_int degree) w) Q.half >= 0;
          dart_w = List.map (fun c -> (c, w)) colours;
          colours;
          rounds_left = k + 1;
        });
    (* Announce whether I am frozen. *)
    send = (fun s -> s.frozen);
    recv =
      (fun s inbox ->
        (* A dart doubles iff neither endpoint was frozen at round start. *)
        let dart_w =
          List.map
            (fun (c, w) ->
              let their_frozen =
                Option.value ~default:false (Anon.Inbox.find inbox ~colour:c)
              in
              if s.frozen || their_frozen then (c, w) else (c, Q.add w w))
            s.dart_w
        in
        let s = { s with dart_w; rounds_left = s.rounds_left - 1 } in
        { s with frozen = s.frozen || Q.compare (node_weight s) Q.half >= 0 });
    halted = (fun s -> s.rounds_left <= 0);
  }

let run ~delta g =
  if delta < 1 || delta < Ec.max_degree g then
    invalid_arg "Approx_packing.run: delta below the maximum degree";
  let rec log2_ceil k = if 1 lsl k >= delta then k else log2_ceil (k + 1) in
  let k = log2_ceil 0 in
  let rounds = k + 1 in
  let states = Anon.run (machine ~k) ~rounds g in
  let weight_at v c =
    Option.value ~default:Q.zero (List.assoc_opt c states.(v).dart_w)
  in
  let edge_w =
    Array.of_list
      (List.map
         (fun (e : Ec.edge) ->
           let wu = weight_at e.u e.colour and wv = weight_at e.v e.colour in
           assert (Q.equal wu wv);
           wu)
         (Ec.edges g))
  in
  let loop_w =
    Array.of_list
      (List.map (fun (l : Ec.loop) -> weight_at l.node l.colour) (Ec.loops g))
  in
  (Fm.create g ~edge_w ~loop_w, rounds)
