(** Constant-factor approximate fractional matching in [O(log Δ)]
    rounds — the contrast class of §1.2.

    Kuhn–Moscibroda–Wattenhofer [16–18] show that constant-factor
    approximations of the {e maximum-weight} fractional matching take
    [Θ(log Δ)] rounds. This module implements the classic doubling
    scheme on that side of the gap:

    every edge starts at weight [2^-K] (with [2^K >= Δ], so the start
    is feasible), and in each round doubles unless an endpoint is
    {e half-saturated} ([y[v] >= 1/2]). After [K + 1] rounds every edge
    has a half-saturated endpoint: the half-saturated nodes form a
    vertex cover [C] with [|C| <= 4 Σ y], and weak LP duality gives
    [Σ y >= ν_f / 4] — a ¼-approximation in logarithmically many
    rounds, against the [Θ(Δ)] needed for {e maximality}. The gap
    between these two is exactly what Theorem 1 establishes. *)

(** [run ~delta g] — [delta] is the global maximum degree the
    algorithm is told (must be [>= max_degree g]). Returns the packing
    and the number of rounds, [ceil(log2 delta) + 1].
    @raise Invalid_argument if [delta < 1] or smaller than a degree. *)
val run : delta:int -> Ld_models.Ec.t -> Ld_fm.Fm.t * int

(** Lower bound on the quality: [total >= ν_f / 4] (checked exactly in
    the tests via {!Ld_fm.Maximum}). *)
val approximation_bound : Ld_arith.Q.t
