let bits_needed x =
  if x < 0 then invalid_arg "Cole_vishkin.bits_needed: negative";
  let rec go n acc = if n = 0 then Stdlib.max acc 1 else go (n lsr 1) (acc + 1) in
  go x 0

let step ~mine ~parent =
  if mine = parent then invalid_arg "Cole_vishkin.step: equal colours";
  let diff = mine lxor parent in
  let rec lowest i = if (diff lsr i) land 1 = 1 then i else lowest (i + 1) in
  let i = lowest 0 in
  (2 * i) + ((mine lsr i) land 1)

let virtual_parent mine = if mine <> 0 then 0 else 1

let iterations_for_bits bits =
  (* One step maps values below 2^m to values below 2m. *)
  let rec go bound acc =
    if bound <= 6 then acc else go (2 * bits_needed (bound - 1)) (acc + 1)
  in
  go (1 lsl Stdlib.min bits 62) 0

let reduce_forest ~parent ~init =
  let n = Array.length parent in
  if Array.length init <> n then invalid_arg "Cole_vishkin.reduce_forest: lengths";
  Array.iteri
    (fun v p ->
      if p >= 0 && init.(v) = init.(p) then
        invalid_arg "Cole_vishkin.reduce_forest: initial clash")
    parent;
  let colours = ref (Array.copy init) in
  let iterations = ref 0 in
  let all_small () = Array.for_all (fun c -> c < 6) !colours in
  while not (all_small ()) do
    incr iterations;
    let prev = !colours in
    colours :=
      Array.mapi
        (fun v _ ->
          let p =
            if parent.(v) >= 0 then prev.(parent.(v)) else virtual_parent prev.(v)
          in
          step ~mine:prev.(v) ~parent:p)
        prev
  done;
  (!colours, !iterations)
