(** Cole–Vishkin colour reduction on rooted forests.

    The [log* n] engine inside Panconesi–Rizzi: starting from distinct
    identifiers, one synchronous step rewrites a node's colour as
    [2 i + b], where [i] is the lowest bit position at which its colour
    differs from its parent's and [b] the node's bit there. Child and
    parent colours stay distinct, and [m]-bit colours shrink to
    [O(log m)] bits, reaching the 6-colour fixpoint after [log* + O(1)]
    iterations. Roots measure against a virtual parent. *)

(** Bits needed to represent [x >= 0] ([bits_needed 0 = 1]). *)
val bits_needed : int -> int

(** One reduction step. @raise Invalid_argument if [mine = parent]. *)
val step : mine:int -> parent:int -> int

(** The virtual parent colour a root compares against (differs from its
    own colour). *)
val virtual_parent : int -> int

(** Iterations guaranteed to bring [bits]-bit colours below 6. *)
val iterations_for_bits : int -> int

(** [reduce_forest ~parent ~init] runs the synchronous reduction until
    all colours are below 6 — a sequential reference implementation for
    testing the distributed one. [parent.(v) = -1] marks roots. Returns
    final colours and the iteration count.
    @raise Invalid_argument if [init] clashes along an edge. *)
val reduce_forest : parent:int array -> init:int array -> int array * int
