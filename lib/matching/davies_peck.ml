module G = Ld_graph.Graph
module Csr = Ld_graph.Csr
module Id = Ld_models.Labelled.Id
module Sync = Ld_runtime.Sync
module Packed = Ld_runtime.Packed
module Coin = Ld_runtime.Packed.Coin

(* Davies–Peck-style degree-class decomposition schedule over the
   Israeli–Itai propose/respond dynamics, for approximate maximum
   matching / 2-approximate vertex cover at mega scale.

   The round schedule splits nodes into degree classes: in phase [j]
   (lasting [iters_per_class] propose/respond iterations) only nodes
   whose *live* degree lies in (Δ/2^{j+1}, Δ/2^j] draw proposals —
   the densest residual nodes are matched off first, halving the
   relevant degree scale each phase, which is the decomposition
   strategy behind Davies–Peck-style matching/cover rounds. Everyone
   always responds, so progress is never blocked. After the [log Δ]
   classes an unrestricted Israeli–Itai cleanup runs until the
   matching is maximal; matched endpoints then form a 2-approximate
   vertex cover.

   Eligibility is a function of purely local state (live-port count
   and the iteration counter), so the packed machine and its boxed
   [Sync] twin — drawing from the same {!Packed.Coin} stream — remain
   exactly comparable: identical mates and rounds at any
   [LD_DOMAINS].

   State slice (7 words): the 6 of [Packed_ii] (coin, live mask,
   matched, phase, proposal, accept) plus the iteration counter. *)

type schedule = { delta : int; iters_per_class : int }

(* Number of degree classes: bit length of delta, so the classes
   (Δ/2, Δ], (Δ/4, Δ/2], ... cover 1..Δ. *)
let classes delta =
  let c = ref 0 in
  let d = ref delta in
  while !d > 0 do
    incr c;
    d := !d lsr 1
  done;
  !c

let sw = 7
let off_coin = 0
let off_live = 1
let off_matched = 2
let off_phase = 3
let off_proposal = 4
let off_accept = 5
let off_iter = 6
let bit_matched = 1
let bit_propose = 2
let bit_accept = 4

type result = { mate : int array; rounds : int }

let nth_set_bit mask k =
  let m = ref mask and left = ref k and p = ref 0 in
  while !left > 0 || !m land 1 = 0 do
    if !m land 1 = 1 then decr left;
    m := !m lsr 1;
    incr p
  done;
  !p

let popcount x =
  let c = ref 0 in
  let y = ref x in
  while !y <> 0 do
    y := !y land (!y - 1);
    incr c
  done;
  !c

let eligible sched ~iter ~live_count =
  let j = iter / sched.iters_per_class in
  if j >= classes sched.delta then true
  else
    live_count > sched.delta lsr (j + 1)
    && live_count <= sched.delta lsr j

(* Shared transition core over a 7-word state array; see Packed_ii
   for the propose/respond semantics, which are unchanged — only the
   proposal draw is gated by [eligible]. *)

let draw_proposal sched state =
  let live = state.(off_live) in
  if live = 0 then state.(off_proposal) <- -1
  else if
    not (eligible sched ~iter:state.(off_iter) ~live_count:(popcount live))
  then state.(off_proposal) <- -1
  else begin
    let c = Coin.next state.(off_coin) in
    state.(off_coin) <- c;
    if Coin.bool c then begin
      let c = Coin.next state.(off_coin) in
      state.(off_coin) <- c;
      let k = Coin.int c (popcount live) in
      state.(off_proposal) <- nth_set_bit live k
    end
    else state.(off_proposal) <- -1
  end

let init_state sched state ~seed ~node ~degree =
  if degree > 62 then invalid_arg "Davies_peck: degree > 62";
  state.(off_coin) <- Coin.seed ~seed ~node;
  state.(off_live) <- (if degree = 0 then 0 else (1 lsl degree) - 1);
  state.(off_matched) <- -1;
  state.(off_phase) <- 0;
  state.(off_proposal) <- -1;
  state.(off_accept) <- -1;
  state.(off_iter) <- 0;
  draw_proposal sched state

let msg_of state ~port =
  (if state.(off_matched) >= 0 then bit_matched else 0)
  lor
  (if state.(off_phase) = 0 && state.(off_proposal) = port then bit_propose
   else 0)
  lor
  (if state.(off_phase) = 1 && state.(off_accept) = port then bit_accept
   else 0)

let step_state sched state ~degree ~msg =
  let live = ref state.(off_live) in
  for p = 0 to degree - 1 do
    if !live land (1 lsl p) <> 0 && msg p land bit_matched <> 0 then
      live := !live land lnot (1 lsl p)
  done;
  if state.(off_phase) = 0 then begin
    let accept = ref (-1) in
    if state.(off_matched) < 0 && state.(off_proposal) < 0 then begin
      let p = ref 0 in
      while !accept < 0 && !p < degree do
        if
          !live land (1 lsl !p) <> 0
          && msg !p land bit_propose <> 0
          && msg !p land bit_matched = 0
        then accept := !p;
        incr p
      done
    end;
    state.(off_live) <- !live;
    state.(off_phase) <- 1;
    state.(off_accept) <- !accept
  end
  else begin
    let matched =
      if state.(off_matched) >= 0 then state.(off_matched)
      else if state.(off_accept) >= 0 then state.(off_accept)
      else if
        state.(off_proposal) >= 0
        && msg state.(off_proposal) land bit_accept <> 0
      then state.(off_proposal)
      else -1
    in
    if matched >= 0 then live := 0;
    state.(off_live) <- !live;
    state.(off_matched) <- matched;
    state.(off_phase) <- 0;
    state.(off_accept) <- -1;
    state.(off_iter) <- state.(off_iter) + 1;
    draw_proposal sched state
  end

let halted_state state =
  state.(off_matched) >= 0
  || (state.(off_live) = 0 && state.(off_phase) = 0)

(* ---------- packed machine ---------- *)

let machine ~seed ~sched : Packed.Port.machine =
  {
    state_words = sw;
    msg_words = 1;
    init =
      (fun ~g ~st ~node ->
        let scratch = Array.make sw 0 in
        init_state sched scratch ~seed ~node
          ~degree:(g.Csr.row.(node + 1) - g.Csr.row.(node));
        Array.blit scratch 0 st (node * sw) sw);
    send =
      (fun ~g ~st ~out ~node ->
        let b = node * sw in
        let scratch = Array.sub st b sw in
        let lo = g.Csr.row.(node) and hi = g.Csr.row.(node + 1) in
        for d = lo to hi - 1 do
          out.(d) <- msg_of scratch ~port:(d - lo)
        done);
    recv =
      (fun ~g ~back ~st ~out ~node ->
        let b = node * sw in
        let scratch = Array.sub st b sw in
        let lo = g.Csr.row.(node) in
        let degree = g.Csr.row.(node + 1) - lo in
        let msg p =
          let d = lo + p in
          out.(g.Csr.row.(g.Csr.endpoint.(d)) + back.(d))
        in
        step_state sched scratch ~degree ~msg;
        Array.blit scratch 0 st b sw);
    halted =
      (fun ~st ~node ->
        let b = node * sw in
        st.(b + off_matched) >= 0
        || (st.(b + off_live) = 0 && st.(b + off_phase) = 0));
  }

let default_schedule g =
  { delta = Stdlib.max 1 (Csr.max_degree g); iters_per_class = 2 }

let run ?par_threshold ?domains ?sched ~seed ~max_rounds g =
  let sched = match sched with Some s -> s | None -> default_schedule g in
  let st, stats, all_halted =
    Packed.Port.run_until ?par_threshold ?domains (machine ~seed ~sched)
      ~max_rounds g
  in
  if not all_halted then
    failwith
      (Printf.sprintf
         "Davies_peck.run: not all nodes halted within %d rounds" max_rounds);
  let n = g.Csr.n in
  let mate =
    Array.init n (fun v ->
        let p = st.((v * sw) + off_matched) in
        if p < 0 then -1 else g.Csr.endpoint.(g.Csr.row.(v) + p))
  in
  Array.iteri
    (fun v w ->
      if w >= 0 && mate.(w) <> v then
        failwith "Davies_peck: asymmetric matching (protocol bug)")
    mate;
  ({ mate; rounds = stats.Packed.rounds }, stats)

(* ---------- boxed twin (differential oracle) ---------- *)

let reference_machine ~seed ~sched : (int array, int, int) Sync.machine =
  {
    init =
      (fun ~id ~degree ~rng:_ ->
        let state = Array.make sw 0 in
        init_state sched state ~seed ~node:id ~degree;
        state);
    send = (fun state ~port -> Some (msg_of state ~port));
    recv =
      (fun state inbox ->
        let state = Array.copy state in
        let msgs = Array.make 64 0 in
        List.iter (fun (p, m) -> msgs.(p) <- m) inbox;
        step_state sched state ~degree:(List.length inbox)
          ~msg:(fun p -> msgs.(p));
        state);
    output =
      (fun state ->
        if halted_state state then Some state.(off_matched) else None);
  }

let reference_run ?sched ~seed ~max_rounds g ~delta =
  let sched =
    match sched with Some s -> s | None -> { delta; iters_per_class = 2 }
  in
  let idg = Id.trivial g in
  let res = Sync.run (reference_machine ~seed ~sched) ~seed ~max_rounds idg in
  let mate =
    Array.mapi
      (fun v out ->
        if out < 0 then -1 else List.nth (G.neighbours g v) out)
      res.Sync.outputs
  in
  { mate; rounds = res.Sync.rounds }

(* ---------- vertex cover view ---------- *)

let cover r = Array.map (fun w -> w >= 0) r.mate

let is_vertex_cover g r =
  let ok = ref true in
  let { Csr.row; endpoint; _ } = g in
  for v = 0 to g.Csr.n - 1 do
    for d = row.(v) to row.(v + 1) - 1 do
      if r.mate.(v) < 0 && r.mate.(endpoint.(d)) < 0 then ok := false
    done
  done;
  !ok
