(** Davies–Peck-style degree-class decomposition schedule over
    Israeli–Itai propose/respond dynamics: phase [j] lets only nodes
    of live degree in (Δ/2^{j+1}, Δ/2^j] propose, then an
    unrestricted cleanup runs to maximality. Matched endpoints form a
    2-approximate vertex cover. Packed and boxed twins draw from the
    same {!Ld_runtime.Packed.Coin} stream, so the comparison is exact
    (mates and rounds) at any [LD_DOMAINS]. Degrees must be <= 62. *)

type schedule = {
  delta : int;  (** max degree the class boundaries are derived from *)
  iters_per_class : int;  (** propose/respond iterations per class *)
}

(** Bit length of [delta] — the number of degree classes before the
    unrestricted cleanup. *)
val classes : int -> int

type result = {
  mate : int array;  (** matched far endpoint, or -1 if unmatched *)
  rounds : int;
}

val machine : seed:int -> sched:schedule -> Ld_runtime.Packed.Port.machine

(** [run ?sched ~seed ~max_rounds g] — [sched] defaults to
    [{delta = max_degree g; iters_per_class = 2}].
    @raise Failure if some node has not halted after [max_rounds]. *)
val run :
  ?par_threshold:int ->
  ?domains:int ->
  ?sched:schedule ->
  seed:int ->
  max_rounds:int ->
  Ld_graph.Csr.t ->
  result * Ld_runtime.Packed.stats

(** Boxed twin on the [Sync] engine — the differential oracle. *)
val reference_run :
  ?sched:schedule ->
  seed:int ->
  max_rounds:int ->
  Ld_graph.Graph.t ->
  delta:int ->
  result

(** [cover r] — node is in the cover iff matched. *)
val cover : result -> bool array

(** Every edge has a matched endpoint (true once the cleanup ran to
    maximality). *)
val is_vertex_cover : Ld_graph.Csr.t -> result -> bool
