module G = Ld_graph.Graph
module Id = Ld_models.Labelled.Id
module Sync = Ld_runtime.Sync

type phase = Propose | Respond

type st = {
  rng : Random.State.t;
  deg : int;
  live : int list; (* ports whose far endpoint is believed unmatched *)
  matched_port : int option;
  phase : phase;
  proposal_port : int option; (* where I proposed this iteration *)
  accept_port : int option; (* whose proposal I am accepting *)
}

type msg = { m_matched : bool; m_propose : bool; m_accept : bool }

type result = { mate : int option array; rounds : int }

let pick_random rng = function
  | [] -> None
  | ports -> Some (List.nth ports (Random.State.int rng (List.length ports)))

let port_is opt port = match opt with Some p -> p = port | None -> false

let machine : (st, msg, int option) Sync.machine =
  {
    init =
      (fun ~id:_ ~degree ~rng ->
        let live = List.init degree Fun.id in
        let proposer = degree > 0 && Random.State.bool rng in
        {
          rng;
          deg = degree;
          live;
          matched_port = None;
          phase = Propose;
          proposal_port = (if proposer then pick_random rng live else None);
          accept_port = None;
        });
    send =
      (fun s ~port ->
        Some
          {
            m_matched = s.matched_port <> None;
            m_propose = s.phase = Propose && port_is s.proposal_port port;
            m_accept = s.phase = Respond && port_is s.accept_port port;
          });
    recv =
      (fun s inbox ->
        (* Port-indexed inbox: O(1) lookups instead of assoc scans per
           live port. *)
        let msgs = Array.make s.deg None in
        List.iter (fun (p, m) -> msgs.(p) <- Some m) inbox;
        let live =
          List.filter
            (fun p ->
              match msgs.(p) with
              | Some m -> not m.m_matched
              | None -> true)
            s.live
        in
        match s.phase with
        | Propose ->
          (* Responders (nodes that did not propose) pick the lowest
             incoming proposal from a still-unmatched proposer. *)
          let accept_port =
            if s.matched_port <> None || s.proposal_port <> None then None
            else
              List.find_opt
                (fun p ->
                  match msgs.(p) with
                  | Some m -> m.m_propose && not m.m_matched
                  | None -> false)
                (List.sort Int.compare live)
          in
          { s with live; phase = Respond; accept_port }
        | Respond ->
          let matched_port =
            match s.matched_port with
            | Some _ as m -> m
            | None -> begin
              match s.accept_port with
              | Some p -> Some p (* my acceptance is binding *)
              | None -> begin
                match s.proposal_port with
                | Some p -> begin
                  match msgs.(p) with
                  | Some m when m.m_accept -> Some p
                  | _ -> None
                end
                | None -> None
              end
            end
          in
          let live =
            match matched_port with Some _ -> [] | None -> live
          in
          let proposer = live <> [] && Random.State.bool s.rng in
          {
            s with
            live;
            matched_port;
            phase = Propose;
            accept_port = None;
            proposal_port = (if proposer then pick_random s.rng live else None);
          });
    output =
      (fun s ->
        match s.matched_port with
        | Some p -> Some (Some p)
        | None ->
          (* Safe to stop only at an iteration boundary, once every
             neighbour is known to be matched. *)
          if s.live = [] && s.phase = Propose then Some None else None);
  }

let run ~seed ~max_rounds idg =
  let res = Sync.run machine ~seed ~max_rounds idg in
  let g = Id.graph idg in
  let mate =
    Array.mapi
      (fun v out ->
        Option.map (fun port -> List.nth (G.neighbours g v) port) out)
      res.outputs
  in
  (* Cross-check symmetry of the matching. *)
  Array.iteri
    (fun v m ->
      match m with
      | None -> ()
      | Some w ->
        if not (port_is mate.(w) v) then
          failwith "Israeli_itai: asymmetric matching (protocol bug)")
    mate;
  { mate; rounds = res.rounds }

let is_maximal g r =
  Array.for_all Fun.id
    (Array.mapi
       (fun v m -> match m with None -> true | Some w -> port_is r.mate.(w) v)
       r.mate)
  && List.for_all
       (fun (u, v) -> r.mate.(u) <> None || r.mate.(v) <> None)
       (G.edges g)
