(** Randomised maximal matching in [O(log n)] rounds (paper §1.1;
    Israeli–Itai 1986 [14]).

    The classic proposal scheme: in each iteration every unmatched node
    flips a coin to become a proposer or a responder; proposers send a
    proposal along one uniformly random live edge; responders accept
    the lowest-port proposal, forming a matched pair. Matched nodes
    announce themselves, and a node halts once it is matched or has no
    live neighbours left — at which point every one of its edges has a
    matched endpoint, so the union of pairs is a maximal matching.

    A constant fraction of live edges disappears per iteration in
    expectation, so the algorithm halts in [O(log n)] rounds with high
    probability — the randomised baseline the paper contrasts with the
    deterministic [Δ]-dependent world. *)

type result = {
  mate : int option array;  (** per node: matched partner (node index) *)
  rounds : int;
}

(** [run ~seed ~max_rounds idg].
    @raise Failure if some node has not halted after [max_rounds]
    (probability vanishing in [max_rounds]). *)
val run :
  seed:int -> max_rounds:int -> Ld_models.Labelled.Id.t -> result

(** The matched pairs are disjoint and every edge is covered. *)
val is_maximal : Ld_graph.Graph.t -> result -> bool
