module Ec = Ld_models.Ec
module Anon = Ld_runtime.Anon_ec

type state = {
  phase : int;
  matched : int option; (* colour matched through *)
  last : int;
}

type result = {
  matched_edges : int list;
  matched_loops : int list;
  matched_colour : int option array;
  rounds : int;
}

let machine : (state, bool) Anon.machine =
  {
    init =
      (fun ~degree:_ ~colours ->
        { phase = 1; matched = None; last = List.fold_left Stdlib.max 0 colours });
    (* A node announces whether it is still unmatched. *)
    send = (fun s -> s.matched = None);
    recv =
      (fun s inbox ->
        let s =
          match (s.matched, Anon.Inbox.find inbox ~colour:s.phase) with
          | None, Some true -> { s with matched = Some s.phase }
          | _ -> s
        in
        { s with phase = s.phase + 1 });
    halted = (fun s -> s.phase > s.last);
  }

let greedy ?truncate g =
  let rounds =
    match truncate with
    | None -> Ec.max_colour g
    | Some r ->
      if r < 0 then invalid_arg "Mm_ec.greedy: negative truncation";
      Stdlib.min r (Ec.max_colour g)
  in
  let states = Anon.run machine ~rounds g in
  let matched_colour = Array.map (fun s -> s.matched) states in
  let matched_with v c =
    match matched_colour.(v) with Some c' -> c' = c | None -> false
  in
  let matched_edges =
    List.concat
      (List.mapi
         (fun id (e : Ec.edge) ->
           if matched_with e.u e.colour && matched_with e.v e.colour then [ id ]
           else [])
         (Ec.edges g))
  in
  let matched_loops =
    List.concat
      (List.mapi
         (fun id (l : Ec.loop) ->
           if matched_with l.node l.colour then [ id ] else [])
         (Ec.loops g))
  in
  { matched_edges; matched_loops; matched_colour; rounds }

let to_fm g r =
  let module Q = Ld_arith.Q in
  let edge_w = Array.make (Ec.num_edges g) Q.zero in
  let loop_w = Array.make (Ec.num_loops g) Q.zero in
  List.iter (fun id -> edge_w.(id) <- Q.one) r.matched_edges;
  List.iter (fun id -> loop_w.(id) <- Q.one) r.matched_loops;
  Ld_fm.Fm.create g ~edge_w ~loop_w

let as_packing_algorithm ?truncate () : Packing.algorithm =
  {
    name =
      (match truncate with
      | None -> "greedy-maximal-matching"
      | Some r -> Printf.sprintf "greedy-maximal-matching[%d rounds]" r);
    run = (fun g -> to_fm g (greedy ?truncate g));
  }

let is_maximal g r =
  (* Each matched node is matched through exactly one dart, and the dart
     colours pair up along edges. *)
  let claims = Array.make (Ec.n g) 0 in
  List.iter
    (fun id ->
      let e = Ec.edge g id in
      claims.(e.u) <- claims.(e.u) + 1;
      claims.(e.v) <- claims.(e.v) + 1)
    r.matched_edges;
  List.iter
    (fun id ->
      let l = Ec.loop g id in
      claims.(l.node) <- claims.(l.node) + 1)
    r.matched_loops;
  let is_matching =
    Array.for_all (fun c -> c <= 1) claims
    && Array.for_all2
         (fun c m -> (c = 1) = (m <> None))
         claims r.matched_colour
  in
  let covered =
    List.for_all
      (fun (e : Ec.edge) ->
        r.matched_colour.(e.u) <> None || r.matched_colour.(e.v) <> None)
      (Ec.edges g)
    && List.for_all
         (fun (l : Ec.loop) -> r.matched_colour.(l.node) <> None)
         (Ec.loops g)
  in
  is_matching && covered
