(** Greedy maximal (integral) matching in the EC model (paper §2.1,
    [13] "greedy is optimal").

    Phase [c = 1 … k]: every colour-[c] edge whose endpoints are both
    unmatched joins the matching. A proper colouring makes the phases
    conflict-free, so the greedy runs in [k = O(Δ)] rounds — maximal
    matching is {e trivial} in EC while impossible for a deterministic
    local algorithm in ID/OI/PO (the asymmetry the paper highlights in
    §2.1). On a multigraph, a node matched through a loop is matched
    with its own fiber copy in any lift. *)

type result = {
  matched_edges : int list;  (** edge ids in the matching *)
  matched_loops : int list;  (** loops whose node matched its fiber copy *)
  matched_colour : int option array;  (** per node: colour it matched through *)
  rounds : int;
}

(** [greedy ?truncate g] — one round per colour. Untruncated, the result
    is maximal: every edge and loop ends with a matched endpoint. *)
val greedy : ?truncate:int -> Ld_models.Ec.t -> result

(** [is_maximal g r] checks the matching property and maximality on the
    multigraph ([r]'s matched pairs are disjoint; every edge or loop has
    a matched endpoint). *)
val is_maximal : Ld_models.Ec.t -> result -> bool

(** [to_fm g r] reads the matching as a 0/1 fractional matching — a
    maximal matching {e is} a maximal FM, so the Section 4 adversary
    applies verbatim to this algorithm. Running it reproduces the
    companion result of Hirvonen–Suomela 2012 [13] ("greedy is
    optimal"): the greedy maximal matching needs Ω(Δ) rounds too. *)
val to_fm : Ld_models.Ec.t -> result -> Ld_fm.Fm.t

(** The greedy matching packaged for the lower-bound engine
    (optionally truncated to [r] rounds). *)
val as_packing_algorithm : ?truncate:int -> unit -> Packing.algorithm
