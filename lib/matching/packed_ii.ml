module G = Ld_graph.Graph
module Csr = Ld_graph.Csr
module Id = Ld_models.Labelled.Id
module Sync = Ld_runtime.Sync
module Packed = Ld_runtime.Packed
module Coin = Ld_runtime.Packed.Coin

(* Packed Israeli–Itai-style randomized maximal matching on the
   {!Packed.Port} executor — the flagship mega-scale workload.

   The protocol is exactly [Israeli_itai]'s propose/respond dynamics;
   the one necessary difference is the coin source: a [Random.State]
   cannot live in an int slice, so nodes draw from the one-word
   {!Packed.Coin} stream seeded from [(seed, node)]. To keep the
   differential story exact rather than distributional, this module
   also provides [reference_run] — a boxed twin on the [Sync] engine
   drawing from the *same* coin stream — and the classic
   [Israeli_itai] stays untouched as the baseline. Packed vs boxed
   must agree on mates and rounds at any [LD_DOMAINS].

   State slice (6 words): coin, live-port bitmask (degree <= 62),
   matched port (-1), phase (0 = propose, 1 = respond), proposal port
   (-1), accept port (-1). Message (1 word): matched / propose /
   accept bits. *)

let sw = 6
let off_coin = 0
let off_live = 1
let off_matched = 2
let off_phase = 3
let off_proposal = 4
let off_accept = 5
let bit_matched = 1
let bit_propose = 2
let bit_accept = 4

type result = { mate : int array; rounds : int }

(* k-th set bit (0-based) of a nonempty mask — the packed analogue of
   [List.nth live k] on the ascending live-port list. *)
let nth_set_bit mask k =
  let m = ref mask and left = ref k and p = ref 0 in
  while !left > 0 || !m land 1 = 0 do
    if !m land 1 = 1 then decr left;
    m := !m lsr 1;
    incr p
  done;
  !p

(* Shared transition core, written over an abstract 6-word state so
   the packed machine and the boxed twin cannot drift: [state] is the
   packed slice (st, base) or the twin's plain int array. *)

let popcount_live x =
  let c = ref 0 in
  let y = ref x in
  while !y <> 0 do
    y := !y land (!y - 1);
    incr c
  done;
  !c

let draw_proposal state =
  (* Mirrors the boxed machine's draw order: a bool draw only if any
     live port remains, then an int draw only for proposers. *)
  let live = state.(off_live) in
  if live = 0 then state.(off_proposal) <- -1
  else begin
    let c = Coin.next state.(off_coin) in
    state.(off_coin) <- c;
    if Coin.bool c then begin
      let c = Coin.next state.(off_coin) in
      state.(off_coin) <- c;
      let k = Coin.int c (popcount_live live) in
      state.(off_proposal) <- nth_set_bit live k
    end
    else state.(off_proposal) <- -1
  end

let init_state state ~seed ~node ~degree =
  if degree > 62 then invalid_arg "Packed_ii: degree > 62";
  state.(off_coin) <- Coin.seed ~seed ~node;
  state.(off_live) <- (if degree = 0 then 0 else (1 lsl degree) - 1);
  state.(off_matched) <- -1;
  state.(off_phase) <- 0;
  state.(off_proposal) <- -1;
  state.(off_accept) <- -1;
  draw_proposal state

let msg_of state ~port =
  (if state.(off_matched) >= 0 then bit_matched else 0)
  lor
  (if state.(off_phase) = 0 && state.(off_proposal) = port then bit_propose
   else 0)
  lor
  (if state.(off_phase) = 1 && state.(off_accept) = port then bit_accept
   else 0)

(* One recv step; [msg port] yields the incoming message word. *)
let step_state state ~degree ~msg =
  let live = ref state.(off_live) in
  for p = 0 to degree - 1 do
    if !live land (1 lsl p) <> 0 && msg p land bit_matched <> 0 then
      live := !live land lnot (1 lsl p)
  done;
  if state.(off_phase) = 0 then begin
    (* Propose phase: responders accept the lowest live proposal from
       a still-unmatched proposer. *)
    let accept = ref (-1) in
    if state.(off_matched) < 0 && state.(off_proposal) < 0 then begin
      let p = ref 0 in
      while !accept < 0 && !p < degree do
        if
          !live land (1 lsl !p) <> 0
          && msg !p land bit_propose <> 0
          && msg !p land bit_matched = 0
        then accept := !p;
        incr p
      done
    end;
    state.(off_live) <- !live;
    state.(off_phase) <- 1;
    state.(off_accept) <- !accept
  end
  else begin
    let matched =
      if state.(off_matched) >= 0 then state.(off_matched)
      else if state.(off_accept) >= 0 then state.(off_accept)
      else if
        state.(off_proposal) >= 0
        && msg state.(off_proposal) land bit_accept <> 0
      then state.(off_proposal)
      else -1
    in
    if matched >= 0 then live := 0;
    state.(off_live) <- !live;
    state.(off_matched) <- matched;
    state.(off_phase) <- 0;
    state.(off_accept) <- -1;
    draw_proposal state
  end

let halted_state state =
  state.(off_matched) >= 0
  || (state.(off_live) = 0 && state.(off_phase) = 0)

(* ---------- packed machine ---------- *)

(* A [Slice] view lets the shared core above address the node's slice
   of the flat state array with no copying: OCaml arrays are the
   abstraction already, so the packed machine materialises the slice
   as base-offset arithmetic inlined in wrappers below. To keep one
   source of truth, the wrappers copy the 6-word slice into a scratch,
   run the shared core, and copy back — 12 word moves per transition,
   noise next to the message traffic. *)

let machine ~seed : Packed.Port.machine =
  {
    state_words = sw;
    msg_words = 1;
    init =
      (fun ~g ~st ~node ->
        let scratch = Array.make sw 0 in
        init_state scratch ~seed ~node
          ~degree:(g.Csr.row.(node + 1) - g.Csr.row.(node));
        Array.blit scratch 0 st (node * sw) sw);
    send =
      (fun ~g ~st ~out ~node ->
        let b = node * sw in
        let scratch = Array.sub st b sw in
        let lo = g.Csr.row.(node) and hi = g.Csr.row.(node + 1) in
        for d = lo to hi - 1 do
          out.(d) <- msg_of scratch ~port:(d - lo)
        done);
    recv =
      (fun ~g ~back ~st ~out ~node ->
        let b = node * sw in
        let scratch = Array.sub st b sw in
        let lo = g.Csr.row.(node) in
        let degree = g.Csr.row.(node + 1) - lo in
        let msg p =
          let d = lo + p in
          out.(g.Csr.row.(g.Csr.endpoint.(d)) + back.(d))
        in
        step_state scratch ~degree ~msg;
        Array.blit scratch 0 st b sw);
    halted =
      (fun ~st ~node ->
        let b = node * sw in
        st.(b + off_matched) >= 0
        || (st.(b + off_live) = 0 && st.(b + off_phase) = 0));
  }

let extract_result g st (stats : Packed.stats) =
  let n = g.Csr.n in
  let mate =
    Array.init n (fun v ->
        let p = st.((v * sw) + off_matched) in
        if p < 0 then -1 else g.Csr.endpoint.(g.Csr.row.(v) + p))
  in
  Array.iteri
    (fun v w ->
      if w >= 0 && mate.(w) <> v then
        failwith "Packed_ii: asymmetric matching (protocol bug)")
    mate;
  ({ mate; rounds = stats.Packed.rounds }, stats)

let run ?par_threshold ?domains ~seed ~max_rounds g =
  let st, stats, all_halted =
    Packed.Port.run_until ?par_threshold ?domains (machine ~seed) ~max_rounds
      g
  in
  if not all_halted then
    failwith
      (Printf.sprintf "Packed_ii.run: not all nodes halted within %d rounds"
         max_rounds);
  extract_result g st stats

(* ---------- boxed twin (differential oracle) ---------- *)

let reference_machine ~seed : (int array, int, int) Sync.machine =
  {
    init =
      (fun ~id ~degree ~rng:_ ->
        let state = Array.make sw 0 in
        init_state state ~seed ~node:id ~degree;
        state);
    send = (fun state ~port -> Some (msg_of state ~port));
    recv =
      (fun state inbox ->
        let state = Array.copy state in
        (* Every neighbour sends on every round (frozen ones via the
           cache), so the inbox has exactly one entry per port. *)
        let msgs = Array.make 64 0 in
        List.iter (fun (p, m) -> msgs.(p) <- m) inbox;
        step_state state ~degree:(List.length inbox) ~msg:(fun p -> msgs.(p));
        state);
    output =
      (fun state ->
        if halted_state state then Some state.(off_matched) else None);
  }

let reference_run ~seed ~max_rounds g =
  let idg = Id.trivial g in
  let res = Sync.run (reference_machine ~seed) ~seed ~max_rounds idg in
  let mate =
    Array.mapi
      (fun v out ->
        if out < 0 then -1 else List.nth (G.neighbours g v) out)
      res.Sync.outputs
  in
  { mate; rounds = res.Sync.rounds }

let is_maximal g r =
  let ok = ref true in
  Array.iteri
    (fun v w -> if w >= 0 && r.mate.(w) <> v then ok := false)
    r.mate;
  let { Csr.row; endpoint; _ } = g in
  for v = 0 to g.Csr.n - 1 do
    for d = row.(v) to row.(v + 1) - 1 do
      if r.mate.(v) < 0 && r.mate.(endpoint.(d)) < 0 then ok := false
    done
  done;
  !ok
