(** Packed Israeli–Itai-style randomized maximal matching on the
    {!Ld_runtime.Packed.Port} executor — the mega-scale bench
    workload. Coins come from the one-word {!Ld_runtime.Packed.Coin}
    stream (a [Random.State] cannot live in an int slice), and
    {!reference_run} is a boxed twin on [Sync] drawing from the same
    stream, so packed vs boxed comparison is exact: identical mates
    and rounds at any [LD_DOMAINS]. Degrees must be <= 62 (live ports
    are a bitmask in one state word). *)

type result = {
  mate : int array;  (** matched far endpoint, or -1 if unmatched *)
  rounds : int;
}

val machine : seed:int -> Ld_runtime.Packed.Port.machine

(** @raise Failure if some node has not halted after [max_rounds]
    rounds, or if the matching comes out asymmetric (a protocol bug,
    checked on extraction). *)
val run :
  ?par_threshold:int ->
  ?domains:int ->
  seed:int ->
  max_rounds:int ->
  Ld_graph.Csr.t ->
  result * Ld_runtime.Packed.stats

(** Boxed twin on the [Sync] engine over [Id.trivial] ids — the
    differential oracle for {!run}. *)
val reference_run :
  seed:int -> max_rounds:int -> Ld_graph.Graph.t -> result

(** Sanity check: the mate array is a symmetric matching with no edge
    joining two unmatched nodes. *)
val is_maximal : Ld_graph.Csr.t -> result -> bool
