module Ec = Ld_models.Ec
module Packed = Ld_runtime.Packed

(* Packed port of the greedy-by-colour maximal matching ([Mm_ec]):
   phase c matches through the colour-c edge iff both endpoints are
   still unmatched. State is three words — current phase, largest own
   colour, matched colour (-1) — and the broadcast is the single
   "still unmatched" bit. [Mm_ec.greedy] on the boxed engine is the
   differential oracle (see test_packed.ml). *)

let sw = 3
let off_phase = 0
let off_last = 1
let off_matched = 2

type result = { matched_colour : int array; rounds : int }

let machine : Packed.Broadcast.machine =
  {
    state_words = sw;
    msg_words = 1;
    init =
      (fun ~csr ~st ~node ->
        let b = node * sw in
        let lo = csr.Ec.row.(node) and hi = csr.Ec.row.(node + 1) in
        (* Colour-sorted segment: the largest own colour is the last. *)
        let last = if hi > lo then csr.Ec.colour.(hi - 1) else 0 in
        st.(b + off_phase) <- 1;
        st.(b + off_last) <- last;
        st.(b + off_matched) <- -1);
    send =
      (fun ~st ~out ~node ->
        out.(node) <- (if st.((node * sw) + off_matched) < 0 then 1 else 0));
    recv =
      (fun ~csr ~st ~out ~node ->
        let b = node * sw in
        let phase = st.(b + off_phase) in
        if st.(b + off_matched) < 0 then begin
          (* Binary search the colour-sorted segment for the phase
             colour, as [Anon_ec.Inbox.find] does. *)
          let lo = ref csr.Ec.row.(node) and hi = ref csr.Ec.row.(node + 1) in
          let found = ref (-1) in
          while !found < 0 && !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            let c = csr.Ec.colour.(mid) in
            if c = phase then found := mid
            else if c < phase then lo := mid + 1
            else hi := mid
          done;
          if !found >= 0 && out.(csr.Ec.other.(!found)) = 1 then
            st.(b + off_matched) <- phase
        end;
        st.(b + off_phase) <- phase + 1);
    halted = (fun ~st ~node -> st.((node * sw) + off_phase) > st.((node * sw) + off_last));
  }

let greedy ?par_threshold ?domains g =
  let st, stats, _all_halted =
    Packed.Broadcast.run_until ?par_threshold ?domains machine
      ~max_rounds:(Ec.max_colour g) g
  in
  let matched_colour =
    Array.init (Ec.n g) (fun v -> st.((v * sw) + off_matched))
  in
  ({ matched_colour; rounds = stats.Packed.rounds }, stats)
