(** Packed-state port of the greedy-by-colour maximal matching
    ([Mm_ec]) on the {!Ld_runtime.Packed.Broadcast} executor. The
    boxed [Mm_ec.greedy] is the differential oracle: on any graph,
    [matched_colour] must equal its result (with [-1] for [None]) and
    [rounds] must agree, at any domain count. *)

type result = {
  matched_colour : int array;  (** colour matched through, or -1 *)
  rounds : int;
}

val machine : Ld_runtime.Packed.Broadcast.machine

val greedy :
  ?par_threshold:int ->
  ?domains:int ->
  Ld_models.Ec.t ->
  result * Ld_runtime.Packed.stats
