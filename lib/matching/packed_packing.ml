module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Fm = Ld_fm.Fm
module Packed = Ld_runtime.Packed

(* Packed ports of the two fractional-matching packing machines
   ([Packing.greedy_machine], [Packing.proposal_machine]). Weights,
   slacks and offers are exact rationals stored as reduced (num, den)
   int pairs inside the state slice; all operations are
   overflow-checked and raise rather than silently wrap, so a packed
   run either agrees exactly with the boxed [Ld_arith.Q] oracle or
   fails loudly. With unit initial slack the greedy machine only ever
   produces 0/1 weights, and the proposal machine's denominators are
   bounded by products of live-colour counts — well within 62 bits for
   the truncated mega-scale runs the bench performs. *)

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Reduced nonnegative rationals packed in two int words. The
   canonical zero is (0, 1); a (_, 0) pair is "absent" (a colour this
   node does not carry). *)
module Rat = struct
  let check_mul a b =
    if a = 0 || b = 0 then 0
    else begin
      let r = a * b in
      if r / a <> b || r < 0 then raise Overflow;
      r
    end

  let check_add a b =
    let s = a + b in
    if s < 0 then raise Overflow;
    s

  let reduce n d =
    if n = 0 then (0, 1)
    else begin
      let g = gcd n d in
      (n / g, d / g)
    end

  let add (an, ad) (bn, bd) =
    reduce (check_add (check_mul an bd) (check_mul bn ad)) (check_mul ad bd)

  (* [sub a b] requires [a >= b] (slack never goes negative). *)
  let sub (an, ad) (bn, bd) =
    let n = check_mul an bd - check_mul bn ad in
    if n < 0 then invalid_arg "Packed_packing.Rat.sub: negative";
    reduce n (check_mul ad bd)

  let min (an, ad) (bn, bd) =
    if check_mul an bd <= check_mul bn ad then (an, ad) else (bn, bd)

  let div_int (an, ad) k = reduce an (check_mul ad k)
  let is_zero (n, _) = n = 0
end

let popcount x =
  let c = ref 0 in
  let y = ref x in
  while !y <> 0 do
    y := !y land (!y - 1);
    incr c
  done;
  !c

(* ---------- greedy by colour ---------- *)

(* State slice: [phase; last; slackN; slackD; (wN, wD) per colour
   1..cmax]. Broadcast: the node's current slack. *)

let g_stride cmax = 4 + (2 * cmax)

let greedy_machine ~cmax : Packed.Broadcast.machine =
  let sw = g_stride cmax in
  {
    state_words = sw;
    msg_words = 2;
    init =
      (fun ~csr ~st ~node ->
        let b = node * sw in
        let lo = csr.Ec.row.(node) and hi = csr.Ec.row.(node + 1) in
        st.(b) <- 1;
        st.(b + 1) <- (if hi > lo then csr.Ec.colour.(hi - 1) else 0);
        st.(b + 2) <- 1;
        st.(b + 3) <- 1;
        for d = lo to hi - 1 do
          let c = csr.Ec.colour.(d) in
          st.(b + 4 + (2 * (c - 1))) <- 0;
          st.(b + 5 + (2 * (c - 1))) <- 1
        done);
    send =
      (fun ~st ~out ~node ->
        let b = node * sw in
        out.(2 * node) <- st.(b + 2);
        out.((2 * node) + 1) <- st.(b + 3));
    recv =
      (fun ~csr ~st ~out ~node ->
        let b = node * sw in
        let phase = st.(b) in
        let lo = ref csr.Ec.row.(node) and hi = ref csr.Ec.row.(node + 1) in
        let found = ref (-1) in
        while !found < 0 && !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          let c = csr.Ec.colour.(mid) in
          if c = phase then found := mid
          else if c < phase then lo := mid + 1
          else hi := mid
        done;
        (if !found >= 0 then begin
           let far = csr.Ec.other.(!found) in
           let slack = (st.(b + 2), st.(b + 3)) in
           let their = (out.(2 * far), out.((2 * far) + 1)) in
           let wn, wd = Rat.min slack their in
           st.(b + 4 + (2 * (phase - 1))) <- wn;
           st.(b + 5 + (2 * (phase - 1))) <- wd;
           let sn, sd = Rat.sub slack (wn, wd) in
           st.(b + 2) <- sn;
           st.(b + 3) <- sd
         end);
        st.(b) <- phase + 1);
    halted = (fun ~st ~node -> st.(node * sw) > st.((node * sw) + 1));
  }

(* ---------- simultaneous proposal ---------- *)

(* State slice: [slackN; slackD; offerN; offerD; dead mask; own mask;
   (wN, wD) per colour 1..cmax]. Colour c occupies mask bit (c - 1),
   so cmax must be <= 62 — true for every greedy-coloured family
   (cmax <= 2 max_deg - 1). Message: [offerN; offerD; sat]. *)

let p_stride cmax = 6 + (2 * cmax)

let set_offer ~st ~b =
  let live = st.(b + 5) land lnot st.(b + 4) in
  let count = popcount live in
  if count = 0 || st.(b) = 0 then begin
    st.(b + 2) <- 0;
    st.(b + 3) <- 1
  end
  else begin
    let on, od = Rat.div_int (st.(b), st.(b + 1)) count in
    st.(b + 2) <- on;
    st.(b + 3) <- od
  end

let proposal_machine ~cmax : Packed.Broadcast.machine =
  if cmax > 62 then invalid_arg "Packed_packing.proposal_machine: cmax > 62";
  let sw = p_stride cmax in
  {
    state_words = sw;
    msg_words = 3;
    init =
      (fun ~csr ~st ~node ->
        let b = node * sw in
        st.(b) <- 1;
        st.(b + 1) <- 1;
        st.(b + 4) <- 0;
        let own = ref 0 in
        for d = csr.Ec.row.(node) to csr.Ec.row.(node + 1) - 1 do
          let c = csr.Ec.colour.(d) in
          own := !own lor (1 lsl (c - 1));
          st.(b + 6 + (2 * (c - 1))) <- 0;
          st.(b + 7 + (2 * (c - 1))) <- 1
        done;
        st.(b + 5) <- !own;
        set_offer ~st ~b);
    send =
      (fun ~st ~out ~node ->
        let b = node * sw in
        out.(3 * node) <- st.(b + 2);
        out.((3 * node) + 1) <- st.(b + 3);
        out.((3 * node) + 2) <- (if st.(b) = 0 then 1 else 0));
    recv =
      (fun ~csr ~st ~out ~node ->
        let b = node * sw in
        let offer = (st.(b + 2), st.(b + 3)) in
        let i_am_sat = st.(b) = 0 in
        let dead = st.(b + 4) in
        let lo = csr.Ec.row.(node) and hi = csr.Ec.row.(node + 1) in
        let gained = ref (0, 1) in
        for d = lo to hi - 1 do
          let c = csr.Ec.colour.(d) in
          if dead land (1 lsl (c - 1)) = 0 then begin
            let far = csr.Ec.other.(d) in
            let inc =
              Rat.min offer (out.(3 * far), out.((3 * far) + 1))
            in
            if not (Rat.is_zero inc) then begin
              let w = b + 6 + (2 * (c - 1)) in
              let n', d' = Rat.add (st.(w), st.(w + 1)) inc in
              st.(w) <- n';
              st.(w + 1) <- d'
            end;
            gained := Rat.add !gained inc
          end
        done;
        let sn, sd = Rat.sub (st.(b), st.(b + 1)) !gained in
        st.(b) <- sn;
        st.(b + 1) <- sd;
        let now_sat = sn = 0 in
        let dead' = ref dead in
        for d = lo to hi - 1 do
          let c = csr.Ec.colour.(d) in
          let bit = 1 lsl (c - 1) in
          if
            !dead' land bit = 0
            && (i_am_sat || now_sat || out.((3 * csr.Ec.other.(d)) + 2) = 1)
          then dead' := !dead' lor bit
        done;
        st.(b + 4) <- !dead';
        set_offer ~st ~b);
    halted =
      (fun ~st ~node ->
        let b = node * sw in
        st.(b + 5) land lnot st.(b + 4) = 0);
  }

(* ---------- extraction (small graphs / differential tests) ---------- *)

let weight_at ~stride ~base_off st v c =
  let w = (v * stride) + base_off + (2 * (c - 1)) in
  if st.(w + 1) = 0 then Q.zero
  else Q.div (Q.of_int st.(w)) (Q.of_int st.(w + 1))

let fm_of_packed g ~stride ~base_off st =
  let edge_w =
    Array.of_list
      (List.map
         (fun (e : Ec.edge) ->
           let wu = weight_at ~stride ~base_off st e.u e.colour in
           let wv = weight_at ~stride ~base_off st e.v e.colour in
           assert (Q.equal wu wv);
           wu)
         (Ec.edges g))
  in
  let loop_w =
    Array.of_list
      (List.map
         (fun (l : Ec.loop) -> weight_at ~stride ~base_off st l.node l.colour)
         (Ec.loops g))
  in
  Fm.create g ~edge_w ~loop_w

let greedy ?truncate ?par_threshold ?domains g =
  let cmax = Ec.max_colour g in
  let rounds =
    match truncate with
    | None -> cmax
    | Some r ->
      if r < 0 then invalid_arg "Packed_packing.greedy";
      Stdlib.min r cmax
  in
  let st, stats, _ =
    Packed.Broadcast.run_until ?par_threshold ?domains (greedy_machine ~cmax)
      ~max_rounds:rounds g
  in
  (fm_of_packed g ~stride:(g_stride cmax) ~base_off:4 st, stats)

let proposal ?truncate ?par_threshold ?domains g =
  let cmax = Ec.max_colour g in
  let max_rounds =
    match truncate with
    | None -> Ec.n g + 2
    | Some r ->
      if r < 0 then invalid_arg "Packed_packing.proposal";
      r
  in
  let st, stats, _ =
    Packed.Broadcast.run_until ?par_threshold ?domains
      (proposal_machine ~cmax) ~max_rounds g
  in
  (fm_of_packed g ~stride:(p_stride cmax) ~base_off:6 st, stats)
