(** Packed-state ports of the packing machines ([Packing]):
    greedy-by-colour and simultaneous proposal, with exact rationals
    stored as reduced (num, den) int pairs in the state slice. All
    rational arithmetic is overflow-checked: a packed run either
    agrees exactly with the boxed [Ld_arith.Q] oracle (differential
    tests compare the resulting fractional matchings with [Fm.equal])
    or raises {!Overflow}. *)

exception Overflow

(** [greedy_machine ~cmax] — [cmax] is [Ec.max_colour] of the target
    graph (the stride of the per-colour weight table). *)
val greedy_machine : cmax:int -> Ld_runtime.Packed.Broadcast.machine

(** [proposal_machine ~cmax] — dead/own colour sets are bitmasks, so
    [cmax <= 62] is required (every greedy-coloured family satisfies
    this for Δ <= 31). @raise Invalid_argument otherwise. *)
val proposal_machine : cmax:int -> Ld_runtime.Packed.Broadcast.machine

(** Run greedy-by-colour packing and extract the fractional matching
    (forces the edge view — small graphs / tests; the bench drives
    the machine directly). *)
val greedy :
  ?truncate:int ->
  ?par_threshold:int ->
  ?domains:int ->
  Ld_models.Ec.t ->
  Ld_fm.Fm.t * Ld_runtime.Packed.stats

(** Run simultaneous proposal (untruncated: [n + 2] round cap, as the
    boxed path). *)
val proposal :
  ?truncate:int ->
  ?par_threshold:int ->
  ?domains:int ->
  Ld_models.Ec.t ->
  Ld_fm.Fm.t * Ld_runtime.Packed.stats
