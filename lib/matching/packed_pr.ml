module Csr = Ld_graph.Csr
module Packed = Ld_runtime.Packed
module Pr = Panconesi_rizzi
module Cv = Cole_vishkin

(* Packed port of the Panconesi–Rizzi maximal matching. The round
   schedule is [Pr.schedule] verbatim — the boxed [Pr.run] over
   [Id.trivial] ids is the differential oracle, and because the
   algorithm is deterministic the two must agree exactly on mates and
   rounds. Identifiers are the node indices, so they need no storage.

   State slice (5 + 5 Δ words):
     [0]              round
     [1]              matched port, or -1
     [2]              accept port, or -1
     [3        .. +Δ) nbr_ids        (port -> far id)
     [3 +  Δ   .. +Δ) forest_of_out  (port -> forest, 1-based, or 0)
     [3 + 2Δ   .. +Δ) forest_of_in   (port -> forest or 0)
     [3 + 3Δ .. +Δ+1) parent_port    (forest -> port or -1; 0 unused)
     [4 + 4Δ .. +Δ+1) colours        (forest -> colour; 0 unused)

   Message slice (Δ + 3 words): [mi; flags; colours]. Every round's
   send rewrites the whole slice (blanks included), so a recv never
   reads a stale field from an earlier round kind. *)

let flag_matched = 1
let flag_propose = 2
let flag_accept = 4

type layout = {
  delta : int;
  sw : int;  (* 5 + 5 delta *)
  mw : int;  (* delta + 3 *)
  o_nbr : int;
  o_fout : int;
  o_fin : int;
  o_parent : int;
  o_col : int;
}

let layout delta =
  {
    delta;
    sw = 5 + (5 * delta);
    mw = delta + 3;
    o_nbr = 3;
    o_fout = 3 + delta;
    o_fin = 3 + (2 * delta);
    o_parent = 3 + (3 * delta);
    o_col = 4 + (4 * delta);
  }

let proposes l st b f c =
  st.(b + 1) < 0 && st.(b + l.o_parent + f) >= 0 && st.(b + l.o_col + f) = c

let machine ~(sched : Pr.round_kind array) ~delta : Packed.Port.machine =
  let l = layout delta in
  let n_rounds = Array.length sched in
  {
    state_words = l.sw;
    msg_words = l.mw;
    init =
      (fun ~g:_ ~st ~node ->
        let b = node * l.sw in
        st.(b) <- 0;
        st.(b + 1) <- -1;
        st.(b + 2) <- -1;
        for i = 0 to delta - 1 do
          st.(b + l.o_nbr + i) <- -1;
          st.(b + l.o_fout + i) <- 0;
          st.(b + l.o_fin + i) <- 0
        done;
        for f = 0 to delta do
          st.(b + l.o_parent + f) <- -1;
          st.(b + l.o_col + f) <- node
        done);
    send =
      (fun ~g ~st ~out ~node ->
        let b = node * l.sw in
        let round = st.(b) in
        let lo = g.Csr.row.(node) and hi = g.Csr.row.(node + 1) in
        for d = lo to hi - 1 do
          let port = d - lo in
          let m = d * l.mw in
          (* blank slice *)
          out.(m) <- -1;
          out.(m + 1) <- 0;
          for f = 0 to delta do
            out.(m + 2 + f) <- 0
          done;
          if round < n_rounds then begin
            match sched.(round) with
            | Pr.R_learn_ids -> out.(m) <- node
            | Pr.R_learn_forests -> out.(m) <- st.(b + l.o_fout + port)
            | Pr.R_cv | Pr.R_shift | Pr.R_eliminate _ ->
              for f = 0 to delta do
                out.(m + 2 + f) <- st.(b + l.o_col + f)
              done
            | Pr.R_propose (f, c) ->
              out.(m + 1) <-
                (if st.(b + 1) >= 0 then flag_matched else 0)
                lor
                (if proposes l st b f c && st.(b + l.o_parent + f) = port then
                   flag_propose
                 else 0)
            | Pr.R_respond _ ->
              out.(m + 1) <-
                (if st.(b + 1) >= 0 then flag_matched else 0)
                lor (if st.(b + 2) = port then flag_accept else 0)
          end
        done);
    recv =
      (fun ~g ~back ~st ~out ~node ->
        let b = node * l.sw in
        let round = st.(b) in
        let lo = g.Csr.row.(node) in
        let deg = g.Csr.row.(node + 1) - lo in
        (* base of the message arriving on port [p] *)
        let inbox p =
          let d = lo + p in
          (g.Csr.row.(g.Csr.endpoint.(d)) + back.(d)) * l.mw
        in
        (match sched.(round) with
        | Pr.R_learn_ids ->
          let next = ref 0 in
          for p = 0 to deg - 1 do
            let mi = out.(inbox p) in
            st.(b + l.o_nbr + p) <- mi;
            if mi > node then begin
              incr next;
              st.(b + l.o_fout + p) <- !next;
              st.(b + l.o_parent + !next) <- p
            end
          done
        | Pr.R_learn_forests ->
          for p = 0 to deg - 1 do
            if st.(b + l.o_nbr + p) < node then
              st.(b + l.o_fin + p) <- out.(inbox p)
          done
        | Pr.R_cv ->
          (* Per-forest updates read only forest [f] data, so in-place
             writes are safe. *)
          for f = 1 to delta do
            let mine = st.(b + l.o_col + f) in
            let parent =
              match st.(b + l.o_parent + f) with
              | -1 -> Cv.virtual_parent mine
              | p -> out.(inbox p + 2 + f)
            in
            st.(b + l.o_col + f) <- Cv.step ~mine ~parent
          done
        | Pr.R_shift ->
          for f = 1 to delta do
            let mine = st.(b + l.o_col + f) in
            st.(b + l.o_col + f) <-
              (match st.(b + l.o_parent + f) with
              | -1 -> if mine >= 3 then 0 else (mine + 1) mod 3
              | p -> out.(inbox p + 2 + f))
          done
        | Pr.R_eliminate c ->
          for f = 1 to delta do
            if st.(b + l.o_col + f) = c then begin
              (* Colours here are < 6; collect the neighbourhood's as
                 a bitmask and take the lowest clear bit, which equals
                 the boxed machine's smallest-not-in-avoid-list pick. *)
              let avoid = ref 0 in
              (match st.(b + l.o_parent + f) with
              | -1 -> ()
              | p -> avoid := !avoid lor (1 lsl out.(inbox p + 2 + f)));
              for p = 0 to deg - 1 do
                if st.(b + l.o_fin + p) = f then
                  avoid := !avoid lor (1 lsl out.(inbox p + 2 + f))
              done;
              let x = ref 0 in
              while !avoid land (1 lsl !x) <> 0 do
                incr x
              done;
              st.(b + l.o_col + f) <- !x
            end
          done
        | Pr.R_propose (f, c) ->
          if not (st.(b + 1) >= 0 || proposes l st b f c) then begin
            let accept = ref (-1) in
            let p = ref 0 in
            while !accept < 0 && !p < deg do
              let m = inbox !p in
              if
                out.(m + 1) land flag_propose <> 0
                && out.(m + 1) land flag_matched = 0
              then accept := !p;
              incr p
            done;
            st.(b + 2) <- !accept
          end
        | Pr.R_respond (f, c) ->
          let matched =
            if st.(b + 1) >= 0 then st.(b + 1)
            else if st.(b + 2) >= 0 then st.(b + 2)
            else if proposes l st b f c then begin
              let pp = st.(b + l.o_parent + f) in
              if out.(inbox pp + 1) land flag_accept <> 0 then pp else -1
            end
            else -1
          in
          st.(b + 1) <- matched;
          st.(b + 2) <- -1);
        st.(b) <- round + 1);
    halted = (fun ~st ~node -> st.(node * l.sw) >= n_rounds);
  }

type result = { mate : int array; rounds : int; cv_iterations : int }

let run ?par_threshold ?domains g =
  let n = g.Csr.n in
  let delta = Stdlib.max 1 (Csr.max_degree g) in
  let id_bits = Cv.bits_needed (Stdlib.max 0 (n - 1)) in
  let sched = Pr.schedule ~delta ~id_bits in
  let st, stats, all_halted =
    Packed.Port.run_until ?par_threshold ?domains (machine ~sched ~delta)
      ~max_rounds:(Array.length sched) g
  in
  if not all_halted then failwith "Packed_pr.run: nodes failed to halt";
  let sw = 5 + (5 * delta) in
  let mate =
    Array.init n (fun v ->
        let p = st.((v * sw) + 1) in
        if p < 0 then -1 else g.Csr.endpoint.(g.Csr.row.(v) + p))
  in
  Array.iteri
    (fun v w ->
      if w >= 0 && mate.(w) <> v then
        failwith "Packed_pr: asymmetric matching (protocol bug)")
    mate;
  ( { mate; rounds = stats.Packed.rounds;
      cv_iterations = Cv.iterations_for_bits id_bits },
    stats )
