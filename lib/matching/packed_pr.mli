(** Packed-state port of the Panconesi–Rizzi maximal matching
    ([Panconesi_rizzi]) on the {!Ld_runtime.Packed.Port} executor,
    replaying [Panconesi_rizzi.schedule] verbatim with node indices as
    identifiers. Deterministic, so the boxed [Panconesi_rizzi.run]
    over [Id.trivial] ids is an exact differential oracle: mates and
    rounds must agree at any [LD_DOMAINS]. *)

val machine :
  sched:Panconesi_rizzi.round_kind array ->
  delta:int ->
  Ld_runtime.Packed.Port.machine

type result = {
  mate : int array;  (** matched far endpoint, or -1 if unmatched *)
  rounds : int;
  cv_iterations : int;
}

val run :
  ?par_threshold:int ->
  ?domains:int ->
  Ld_graph.Csr.t ->
  result * Ld_runtime.Packed.stats
