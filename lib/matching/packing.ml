module Ec = Ld_models.Ec
module Q = Ld_arith.Q
module Fm = Ld_fm.Fm
module Anon = Ld_runtime.Anon_ec
module Obs = Ld_obs.Obs

(* Shared extraction: both machines accumulate, per node, the weight
   assigned to each dart colour. The weight of an edge is read at either
   endpoint (they agree — asserted); a loop's weight is read at its node. *)
let fm_of_weights g weight_at =
  let edge_w =
    Array.of_list
      (List.map
         (fun (e : Ec.edge) ->
           let wu = weight_at e.u e.colour and wv = weight_at e.v e.colour in
           assert (Q.equal wu wv);
           wu)
         (Ec.edges g))
  in
  let loop_w =
    Array.of_list
      (List.map (fun (l : Ec.loop) -> weight_at l.node l.colour) (Ec.loops g))
  in
  Fm.create g ~edge_w ~loop_w

(* ------------------------------------------------------------------ *)
(* Greedy by colour: phase c handles exactly the colour-c edges.       *)

type greedy_state = {
  g_phase : int; (* colour processed in the next round *)
  g_slack : Q.t;
  g_weights : (int * Q.t) list;
  g_last : int; (* largest own colour; halted once phase exceeds it *)
}

let greedy_machine : (greedy_state, Q.t) Anon.machine =
  {
    init =
      (fun ~degree:_ ~colours ->
        {
          g_phase = 1;
          g_slack = Q.one;
          g_weights = [];
          g_last = List.fold_left Stdlib.max 0 colours;
        });
    send = (fun s -> s.g_slack);
    recv =
      (fun s inbox ->
        let s =
          (* Phase c reads exactly the colour-c dart: one lazy-inbox
             lookup, not a degree-length scan. *)
          match Anon.Inbox.find inbox ~colour:s.g_phase with
          | None -> s
          | Some their_slack ->
            let w = Q.min s.g_slack their_slack in
            {
              s with
              g_weights = (s.g_phase, w) :: s.g_weights;
              g_slack = Q.sub s.g_slack w;
            }
        in
        { s with g_phase = s.g_phase + 1 });
    halted = (fun s -> s.g_phase > s.g_last);
  }

let greedy_rounds g = Ec.max_colour g

let greedy_by_colour ?truncate g =
  Obs.with_span "matching.packing.greedy" @@ fun () ->
  let rounds =
    match truncate with
    | None -> greedy_rounds g
    | Some r ->
      if r < 0 then invalid_arg "Packing.greedy_by_colour: negative truncation";
      Stdlib.min r (greedy_rounds g)
  in
  let states = Anon.run greedy_machine ~rounds g in
  fm_of_weights g (fun v c ->
      match List.assoc_opt c states.(v).g_weights with
      | Some w -> w
      | None -> Q.zero)

(* ------------------------------------------------------------------ *)
(* Simultaneous proposal.                                              *)

type proposal_msg = { p_offer : Q.t; p_sat : bool }

type proposal_state = {
  p_slack : Q.t;
  p_offer : Q.t; (* cached [my_offer] of this state — see [with_offer] *)
  p_dead : int list; (* dart colours known dead *)
  p_weights : (int * Q.t) list;
  p_colours : int list;
}

let live_colours s = List.filter (fun c -> not (List.mem c s.p_dead)) s.p_colours

let my_offer s =
  let live = live_colours s in
  if live = [] || Q.is_zero s.p_slack then Q.zero
  else Q.div s.p_slack (Q.of_int (List.length live))

(* The offer is an exact-rational division over the live-colour count —
   by far the costliest part of a proposal round — so it is computed
   once per state transition and carried in the state, rather than per
   send. *)
let with_offer s = { s with p_offer = my_offer s }

let proposal_machine : (proposal_state, proposal_msg) Anon.machine =
  {
    init =
      (fun ~degree:_ ~colours ->
        with_offer
          {
            p_slack = Q.one;
            p_offer = Q.zero;
            p_dead = [];
            p_weights = [];
            p_colours = colours;
          });
    send = (fun s -> { p_offer = s.p_offer; p_sat = Q.is_zero s.p_slack });
    recv =
      (fun s inbox ->
        let offer = s.p_offer in
        let i_am_sat = Q.is_zero s.p_slack in
        let increments =
          (* Walk dart indices so dead colours cost a colour peek, not a
             message read. *)
          let d = Anon.Inbox.degree inbox in
          let rec go i acc =
            if i >= d then List.rev acc
            else begin
              let c = Anon.Inbox.colour inbox i in
              if List.mem c s.p_dead then go (i + 1) acc
              else
                go (i + 1)
                  ((c, Q.min offer (Anon.Inbox.msg inbox i).p_offer) :: acc)
            end
          in
          go 0 []
        in
        let gained = Q.sum (List.map snd increments) in
        let weights =
          List.fold_left
            (fun acc (c, inc) ->
              if Q.is_zero inc then acc
              else begin
                let prev = Option.value ~default:Q.zero (List.assoc_opt c acc) in
                (c, Q.add prev inc) :: List.remove_assoc c acc
              end)
            s.p_weights increments
        in
        let slack = Q.sub s.p_slack gained in
        let now_sat = Q.is_zero slack in
        let dead =
          List.filter
            (fun c ->
              (not (List.mem c s.p_dead))
              && (i_am_sat || now_sat
                 ||
                 match Anon.Inbox.find inbox ~colour:c with
                 | Some m -> m.p_sat
                 | None -> false))
            s.p_colours
          @ s.p_dead
        in
        with_offer { s with p_slack = slack; p_dead = dead; p_weights = weights });
    halted =
      (fun s -> List.for_all (fun c -> List.mem c s.p_dead) s.p_colours);
  }

let proposal ?truncate g =
  Obs.with_span "matching.packing.proposal" @@ fun () ->
  let states, rounds =
    match truncate with
    | None ->
      (* The globally minimal offerer saturates every round, so n + 2
         rounds always suffice; the +2 covers the death-notification lag. *)
      Anon.run_until proposal_machine ~max_rounds:(Ec.n g + 2) g
    | Some r ->
      if r < 0 then invalid_arg "Packing.proposal: negative truncation";
      (Anon.run proposal_machine ~rounds:r g, r)
  in
  let fm =
    fm_of_weights g (fun v c ->
        match List.assoc_opt c states.(v).p_weights with
        | Some w -> w
        | None -> Q.zero)
  in
  (fm, rounds)

(* ------------------------------------------------------------------ *)

type algorithm = { name : string; run : Ec.t -> Fm.t }

let greedy_algorithm = { name = "greedy-by-colour"; run = greedy_by_colour ?truncate:None }

let proposal_algorithm =
  { name = "proposal"; run = (fun g -> fst (proposal g)) }

let truncated base r =
  match base with
  | `Greedy ->
    {
      name = Printf.sprintf "greedy-by-colour[%d rounds]" r;
      run = (fun g -> greedy_by_colour ~truncate:r g);
    }
  | `Proposal ->
    {
      name = Printf.sprintf "proposal[%d rounds]" r;
      run = (fun g -> fst (proposal ~truncate:r g));
    }
