(** Distributed maximal edge packing (maximal fractional matching) in the
    EC model — the [O(Δ)] upper bound that Theorem 1 proves optimal
    (Åstrand–Suomela 2010 [3]; "greedy is optimal",
    Hirvonen–Suomela 2012 [13]).

    Two algorithms:

    {b Greedy by colour.} In phase [c = 1, 2, …, k] every edge of colour
    [c] takes the minimum residual slack of its endpoints. After phase
    [c] one endpoint of every colour-[c] edge is saturated (or was
    saturated before), so after [k = O(Δ)] single-round phases the
    packing is maximal. This is the canonical adversary target.

    {b Simultaneous proposal.} Every node splits its slack evenly among
    its live darts (darts whose endpoints are both unsaturated); each
    live edge grows by the minimum of its two offers. The node with the
    globally minimal offer saturates, so at most [n] iterations are
    needed; empirically the round count tracks [O(Δ)] on bounded-degree
    families — the benchmark compares both.

    Both run on arbitrary EC multigraphs through the loop-reflecting
    runner, hence both are lift-invariant by construction, as the EC
    model demands. *)

(** [greedy_by_colour ?truncate g] runs [min truncate k] phases, where
    [k] is the number of colours of [g] (one communication round per
    phase). Without [truncate], the result is always a maximal FM.
    The communication-round count is exactly [min truncate k]. *)
val greedy_by_colour : ?truncate:int -> Ld_models.Ec.t -> Ld_fm.Fm.t

(** Rounds the full greedy algorithm uses on [g] (= number of colours). *)
val greedy_rounds : Ld_models.Ec.t -> int

(** [proposal ?truncate g] iterates the offer dynamics until no live
    dart remains (or for [truncate] rounds); returns the packing and the
    number of rounds executed. Untruncated, the result is always a
    maximal FM after at most [n] rounds. *)
val proposal : ?truncate:int -> Ld_models.Ec.t -> Ld_fm.Fm.t * int

(** A named black-box algorithm, as consumed by the lower-bound engine:
    [run] must be deterministic and lift-invariant. *)
type algorithm = { name : string; run : Ld_models.Ec.t -> Ld_fm.Fm.t }

val greedy_algorithm : algorithm

val proposal_algorithm : algorithm

(** [truncated base r] caps either algorithm at [r] communication
    rounds — a genuinely [r]-round algorithm, used to exhibit failure
    witnesses. *)
val truncated : [ `Greedy | `Proposal ] -> int -> algorithm
