module G = Ld_graph.Graph
module Id = Ld_models.Labelled.Id
module Sync = Ld_runtime.Sync
module Cv = Cole_vishkin

type round_kind =
  | R_learn_ids
  | R_learn_forests
  | R_cv
  | R_shift
  | R_eliminate of int
  | R_propose of int * int (* forest, colour *)
  | R_respond of int * int

let schedule ~delta ~id_bits =
  let cv = List.init (Cv.iterations_for_bits id_bits) (fun _ -> R_cv) in
  let reduce =
    List.concat_map (fun c -> [ R_shift; R_eliminate c ]) [ 5; 4; 3 ]
  in
  let phases =
    List.concat_map
      (fun f ->
        List.concat_map (fun c -> [ R_propose (f, c); R_respond (f, c) ])
          [ 0; 1; 2 ])
      (List.init delta (fun i -> i + 1))
  in
  Array.of_list ([ R_learn_ids; R_learn_forests ] @ cv @ reduce @ phases)

type msg = {
  mi : int;
  mcols : int array;
  mmatched : bool;
  mpropose : bool;
  maccept : bool;
}

type st = {
  id : int;
  deg : int;
  sched : round_kind array;
  round : int;
  nbr_ids : int array; (* port -> id *)
  forest_of_out_port : int array; (* port -> forest (1-based) or 0 *)
  parent_port : int array; (* forest -> port or -1; index 0 unused *)
  forest_of_in_port : int array; (* port -> forest or 0 *)
  colours : int array; (* forest -> colour; index 0 unused *)
  matched : int option;
  accept_port : int option;
}

let blank_msg =
  { mi = -1; mcols = [||]; mmatched = false; mpropose = false; maccept = false }

(* Does this node propose in phase (f, c)? Deterministic from state, so
   send and recv agree. *)
let proposes s f c =
  s.matched = None && s.parent_port.(f) >= 0 && s.colours.(f) = c

let machine ~delta ~sched : (st, msg, int option) Sync.machine =
  {
    init =
      (fun ~id ~degree ~rng:_ ->
        {
          id;
          deg = degree;
          sched;
          round = 0;
          nbr_ids = Array.make degree (-1);
          forest_of_out_port = Array.make degree 0;
          parent_port = Array.make (delta + 1) (-1);
          forest_of_in_port = Array.make degree 0;
          colours = Array.make (delta + 1) id;
          matched = None;
          accept_port = None;
        });
    send =
      (fun s ~port ->
        if s.round >= Array.length s.sched then None
        else
          Some
            (match s.sched.(s.round) with
            | R_learn_ids -> { blank_msg with mi = s.id }
            | R_learn_forests -> { blank_msg with mi = s.forest_of_out_port.(port) }
            | R_cv | R_shift | R_eliminate _ -> { blank_msg with mcols = s.colours }
            | R_propose (f, c) ->
              {
                blank_msg with
                mmatched = s.matched <> None;
                mpropose = (proposes s f c && s.parent_port.(f) = port);
              }
            | R_respond _ ->
              {
                blank_msg with
                mmatched = s.matched <> None;
                maccept =
                  (match s.accept_port with
                  | Some p -> p = port
                  | None -> false);
              }));
    recv =
      (fun s inbox ->
        (* Port-indexed inbox: O(1) lookups instead of assoc scans in
           the per-forest loops below. *)
        let msgs = Array.make s.deg None in
        List.iter (fun (p, m) -> msgs.(p) <- Some m) inbox;
        let from p = msgs.(p) in
        let s =
          match s.sched.(s.round) with
          | R_learn_ids ->
            let nbr_ids = Array.make s.deg (-1) in
            List.iter (fun (p, m) -> nbr_ids.(p) <- m.mi) inbox;
            let forest_of_out_port = Array.make s.deg 0 in
            let parent_port = Array.copy s.parent_port in
            let next = ref 0 in
            for p = 0 to s.deg - 1 do
              if nbr_ids.(p) > s.id then begin
                incr next;
                forest_of_out_port.(p) <- !next;
                parent_port.(!next) <- p
              end
            done;
            { s with nbr_ids; forest_of_out_port; parent_port }
          | R_learn_forests ->
            let forest_of_in_port = Array.make s.deg 0 in
            List.iter
              (fun (p, m) ->
                if s.nbr_ids.(p) < s.id then forest_of_in_port.(p) <- m.mi)
              inbox;
            { s with forest_of_in_port }
          | R_cv ->
            let colours =
              Array.mapi
                (fun f mine ->
                  if f = 0 then mine
                  else begin
                    let parent =
                      match s.parent_port.(f) with
                      | -1 -> Cv.virtual_parent mine
                      | p -> (Option.get (from p)).mcols.(f)
                    in
                    Cv.step ~mine ~parent
                  end)
                s.colours
            in
            { s with colours }
          | R_shift ->
            let colours =
              Array.mapi
                (fun f mine ->
                  if f = 0 then mine
                  else
                    match s.parent_port.(f) with
                    | -1 ->
                      (* A root must differ from its children's new colour
                         (its own old one) and must not reintroduce an
                         already-eliminated colour, so it stays in {0,1,2}. *)
                      if mine >= 3 then 0 else (mine + 1) mod 3
                    | p -> (Option.get (from p)).mcols.(f))
                s.colours
            in
            { s with colours }
          | R_eliminate c ->
            let colours =
              Array.mapi
                (fun f mine ->
                  if f = 0 || mine <> c then mine
                  else begin
                    let avoid = ref [] in
                    (match s.parent_port.(f) with
                    | -1 -> ()
                    | p -> avoid := (Option.get (from p)).mcols.(f) :: !avoid);
                    for p = 0 to s.deg - 1 do
                      if s.forest_of_in_port.(p) = f then
                        match from p with
                        | Some m -> avoid := m.mcols.(f) :: !avoid
                        | None -> ()
                    done;
                    let rec pick x = if List.mem x !avoid then pick (x + 1) else x in
                    pick 0
                  end)
                s.colours
            in
            { s with colours }
          | R_propose (f, c) ->
            if s.matched <> None || proposes s f c then s
            else begin
              (* Collect proposals from unmatched children, accept the
                 lowest port. *)
              let accept_port =
                List.find_map
                  (fun p ->
                    match from p with
                    | Some m when m.mpropose && not m.mmatched -> Some p
                    | _ -> None)
                  (List.init s.deg Fun.id)
              in
              { s with accept_port }
            end
          | R_respond (f, c) ->
            let matched =
              match s.matched with
              | Some _ as m -> m
              | None -> begin
                match s.accept_port with
                | Some p -> Some p
                | None ->
                  if proposes s f c then begin
                    match from s.parent_port.(f) with
                    | Some m when m.maccept -> Some s.parent_port.(f)
                    | _ -> None
                  end
                  else None
              end
            in
            { s with matched; accept_port = None }
        in
        { s with round = s.round + 1 });
    output =
      (fun s ->
        if s.round >= Array.length s.sched then Some s.matched else None);
  }

type result = { mate : int option array; rounds : int; cv_iterations : int }

let run idg =
  let g = Id.graph idg in
  let delta = Stdlib.max 1 (G.max_degree g) in
  let max_id = Array.fold_left Stdlib.max 0 (Id.ids idg) in
  let id_bits = Cv.bits_needed max_id in
  let sched = schedule ~delta ~id_bits in
  let res =
    Sync.run (machine ~delta ~sched) ~seed:0
      ~max_rounds:(Array.length sched + 1)
      idg
  in
  let mate =
    Array.mapi
      (fun v out ->
        Option.map (fun port -> List.nth (G.neighbours g v) port) out)
      res.outputs
  in
  Array.iteri
    (fun v m ->
      match m with
      | None -> ()
      | Some w ->
        if not (match mate.(w) with Some x -> x = v | None -> false) then
          failwith "Panconesi_rizzi: asymmetric matching (protocol bug)")
    mate;
  { mate; rounds = res.rounds; cv_iterations = Cv.iterations_for_bits id_bits }

let is_maximal g r =
  Array.for_all Fun.id
    (Array.mapi
       (fun v m ->
         match m with
         | None -> true
         | Some w -> ( match r.mate.(w) with Some x -> x = v | None -> false))
       r.mate)
  && List.for_all
       (fun (u, v) -> r.mate.(u) <> None || r.mate.(v) <> None)
       (G.edges g)
