(** Panconesi–Rizzi maximal matching in [O(Δ + log* n)] rounds (paper
    §1.1, [25]) — the deterministic upper bound whose optimality in the
    [Δ] term is the paper's open question.

    Structure:
    + {b Forest decomposition} (2 rounds): orient every edge toward its
      higher identifier; the [i]-th outgoing edge of a node (in port
      order) joins forest [i]. Every node has at most one parent per
      forest, so each forest is a rooted pseudoforest; children tell
      parents which forest their shared edge landed in.
    + {b Cole–Vishkin} ([log* n + O(1)] rounds): reduce colours to
      [{0..5}] in all forests simultaneously, starting from identifiers.
    + {b Shift-down + eliminate} (6 rounds): standard 6 → 3 colour
      reduction per forest.
    + {b Matching phases} ([6 Δ] rounds): for each forest and each
      colour, unmatched nodes of that colour propose along their parent
      edge; parents accept one proposal. Within a phase a parent never
      proposes in the same forest (its colour differs from its child's),
      so after phase [(f, c)] every forest-[f] edge whose child has
      colour [c] has a matched endpoint — maximality follows. *)

type result = {
  mate : int option array;
  rounds : int;
  cv_iterations : int;
}

(** [run idg] — [Δ] and the identifier bit-length are read off the
    input (they are the global knowledge the algorithm is allowed). *)
val run : Ld_models.Labelled.Id.t -> result

val is_maximal : Ld_graph.Graph.t -> result -> bool
