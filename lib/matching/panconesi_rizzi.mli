(** Panconesi–Rizzi maximal matching in [O(Δ + log* n)] rounds (paper
    §1.1, [25]) — the deterministic upper bound whose optimality in the
    [Δ] term is the paper's open question.

    Structure:
    + {b Forest decomposition} (2 rounds): orient every edge toward its
      higher identifier; the [i]-th outgoing edge of a node (in port
      order) joins forest [i]. Every node has at most one parent per
      forest, so each forest is a rooted pseudoforest; children tell
      parents which forest their shared edge landed in.
    + {b Cole–Vishkin} ([log* n + O(1)] rounds): reduce colours to
      [{0..5}] in all forests simultaneously, starting from identifiers.
    + {b Shift-down + eliminate} (6 rounds): standard 6 → 3 colour
      reduction per forest.
    + {b Matching phases} ([6 Δ] rounds): for each forest and each
      colour, unmatched nodes of that colour propose along their parent
      edge; parents accept one proposal. Within a phase a parent never
      proposes in the same forest (its colour differs from its child's),
      so after phase [(f, c)] every forest-[f] edge whose child has
      colour [c] has a matched endpoint — maximality follows. *)

(** One entry of the deterministic round schedule. Exposed so the
    packed port ([Packed_pr]) replays exactly the same schedule as the
    boxed machine instead of re-deriving it. *)
type round_kind =
  | R_learn_ids
  | R_learn_forests
  | R_cv
  | R_shift
  | R_eliminate of int
  | R_propose of int * int  (** forest, colour *)
  | R_respond of int * int

(** [schedule ~delta ~id_bits] — the full round schedule: forest
    decomposition, Cole–Vishkin to 6 colours, shift-down/eliminate to
    3, then the [6 Δ] propose/respond phases. Every node halts at
    round [Array.length (schedule ~delta ~id_bits)]. *)
val schedule : delta:int -> id_bits:int -> round_kind array

type result = {
  mate : int option array;
  rounds : int;
  cv_iterations : int;
}

(** [run idg] — [Δ] and the identifier bit-length are read off the
    input (they are the global knowledge the algorithm is allowed). *)
val run : Ld_models.Labelled.Id.t -> result

val is_maximal : Ld_graph.Graph.t -> result -> bool
