module Po = Ld_models.Po
module Q = Ld_arith.Q
module Po_fm = Ld_fm.Po_fm
module Anon = Ld_runtime.Anon_po

type msg = { m_offer : Q.t; m_sat : bool }

type state = {
  slack : Q.t;
  offer : Q.t; (* cached [my_offer] of this state — see [with_offer] *)
  dead : Anon.dart_key list;
  weights : (Anon.dart_key * Q.t) list; (* cumulative, per dart *)
  keys : Anon.dart_key list;
}

let live_keys s = List.filter (fun k -> not (List.mem k s.dead)) s.keys

let my_offer s =
  let live = live_keys s in
  if live = [] || Q.is_zero s.slack then Q.zero
  else Q.div s.slack (Q.of_int (List.length live))

(* Exact-rational division per state transition, not per send — the
   same send-side collapse as Packing.proposal_machine. *)
let with_offer s = { s with offer = my_offer s }

let machine : (state, msg) Anon.machine =
  {
    init =
      (fun ~darts ->
        with_offer
          { slack = Q.one; offer = Q.zero; dead = []; weights = []; keys = darts });
    send = (fun s -> { m_offer = s.offer; m_sat = Q.is_zero s.slack });
    recv =
      (fun s inbox ->
        let offer = s.offer in
        let i_am_sat = Q.is_zero s.slack in
        let increments =
          (* Walk dart indices so dead keys cost a key peek, not a
             message read. *)
          let d = Anon.Inbox.degree inbox in
          let rec go i acc =
            if i >= d then List.rev acc
            else begin
              let k = Anon.Inbox.key inbox i in
              if List.mem k s.dead then go (i + 1) acc
              else
                go (i + 1)
                  ((k, Q.min offer (Anon.Inbox.msg inbox i).m_offer) :: acc)
            end
          in
          go 0 []
        in
        let gained = Q.sum (List.map snd increments) in
        let weights =
          List.fold_left
            (fun acc (k, inc) ->
              if Q.is_zero inc then acc
              else begin
                let prev = Option.value ~default:Q.zero (List.assoc_opt k acc) in
                (k, Q.add prev inc) :: List.remove_assoc k acc
              end)
            s.weights increments
        in
        let slack = Q.sub s.slack gained in
        let now_sat = Q.is_zero slack in
        let dead =
          List.filter
            (fun k ->
              (not (List.mem k s.dead))
              && (i_am_sat || now_sat
                 ||
                 match Anon.Inbox.find inbox ~key:k with
                 | Some m -> m.m_sat
                 | None -> false))
            s.keys
          @ s.dead
        in
        with_offer { s with slack; dead; weights });
    halted = (fun s -> List.for_all (fun k -> List.mem k s.dead) s.keys);
  }

let proposal ?truncate g =
  let states, rounds =
    match truncate with
    | None -> Anon.run_until machine ~max_rounds:(Po.n g + 2) g
    | Some r ->
      if r < 0 then invalid_arg "Po_packing.proposal: negative truncation";
      (Anon.run machine ~rounds:r g, r)
  in
  let weight_at v (key : Anon.dart_key) =
    Option.value ~default:Q.zero (List.assoc_opt key states.(v).weights)
  in
  let arc_w =
    Array.of_list
      (List.map
         (fun (a : Po.arc) ->
           let wt = weight_at a.tail { out = true; colour = a.colour } in
           let wh = weight_at a.head { out = false; colour = a.colour } in
           assert (Q.equal wt wh);
           wt)
         (Po.arcs g))
  in
  let loop_w =
    Array.of_list
      (List.map
         (fun (l : Po.loop) ->
           let wo = weight_at l.node { out = true; colour = l.colour } in
           let wi = weight_at l.node { out = false; colour = l.colour } in
           assert (Q.equal wo wi);
           wo)
         (Po.loops g))
  in
  (Po_fm.create g ~arc_w ~loop_w, rounds)

type algorithm = { name : string; run : Po.t -> Po_fm.t }

let proposal_algorithm =
  { name = "po-proposal"; run = (fun g -> fst (proposal g)) }

let truncated_proposal r =
  {
    name = Printf.sprintf "po-proposal[%d rounds]" r;
    run = (fun g -> fst (proposal ~truncate:r g));
  }
