(** Maximal edge packing in the PO model.

    The proposal dynamics of {!Packing} restated over PO darts: every
    node splits its residual slack evenly over its live darts (a
    directed loop owns two darts and therefore receives two shares —
    matching its double contribution to the node weight). Unlike the
    colour-phased greedy, this needs no global colour schedule, so it
    runs in the bare PO model; it is the algorithm we push through the
    EC ⇐ PO simulation (paper §5.1, Fig. 8). *)

(** [proposal ?truncate g] returns the packing and the rounds executed.
    Untruncated, the output is a maximal FM within [n + 2] rounds. *)
val proposal : ?truncate:int -> Ld_models.Po.t -> Ld_fm.Po_fm.t * int

type algorithm = { name : string; run : Ld_models.Po.t -> Ld_fm.Po_fm.t }

val proposal_algorithm : algorithm
val truncated_proposal : int -> algorithm
