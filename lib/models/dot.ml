let palette =
  [| "black"; "red3"; "blue3"; "forestgreen"; "darkorange"; "purple3";
     "deeppink3"; "steelblue"; "brown"; "darkcyan" |]

let colour_of c = palette.(c mod Array.length palette)

let ec ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  for v = 0 to Ec.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  v%d;\n" v)
  done;
  List.iter
    (fun (e : Ec.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d -- v%d [label=\"%d\", color=%s];\n" e.u e.v
           e.colour (colour_of e.colour)))
    (Ec.edges g);
  (* An EC loop is a semi-edge: draw it as a stub to an invisible point. *)
  List.iteri
    (fun i (l : Ec.loop) ->
      Buffer.add_string buf
        (Printf.sprintf "  stub%d [shape=point, width=0.05];\n" i);
      Buffer.add_string buf
        (Printf.sprintf "  v%d -- stub%d [label=\"%d\", color=%s, style=dashed];\n"
           l.node i l.colour (colour_of l.colour)))
    (Ec.loops g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let po ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  node [shape=circle];\n" name);
  for v = 0 to Po.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  v%d;\n" v)
  done;
  List.iter
    (fun (a : Po.arc) ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d -> v%d [label=\"%d\", color=%s];\n" a.tail a.head
           a.colour (colour_of a.colour)))
    (Po.arcs g);
  List.iter
    (fun (l : Po.loop) ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d -> v%d [label=\"%d\", color=%s];\n" l.node l.node
           l.colour (colour_of l.colour)))
    (Po.loops g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let simple ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  v%d -- v%d;\n" u v))
    (Ld_graph.Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
