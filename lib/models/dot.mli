(** Graphviz (DOT) export for the model graphs.

    Edge colours are rendered both as labels and as a rotating colour
    palette; EC loops (semi-edges) are drawn as half-edges to a small
    point, PO loops as directed self-arcs — matching the visual
    conventions of the paper's Figure 3. *)

(** DOT source for an EC multigraph. *)
val ec : ?name:string -> Ec.t -> string

(** DOT source for a PO multigraph (a digraph). *)
val po : ?name:string -> Po.t -> string

(** DOT source for a plain simple graph. *)
val simple : ?name:string -> Ld_graph.Graph.t -> string
