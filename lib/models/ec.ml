type edge = { u : int; v : int; colour : int }
type loop = { node : int; colour : int }

type dart =
  | To_neighbour of { neighbour : int; edge_id : int; colour : int }
  | Into_loop of { loop_id : int; colour : int }

(* Flat CSR dart view, built once per graph (in [build]) and cached in
   the value. Dart [d] of node [v] lives at indices [row.(v) .. row.(v+1)-1],
   in ascending colour order (the same order as the [darts] lists):
   [colour.(d)] is its colour, [other.(d)] the node at the far end (the
   node itself for a loop — the loop-reflection convention), and
   [code.(d)] is the edge id, or [-loop_id - 1] for a loop. The arrays
   must never be mutated by consumers. *)
type csr = {
  row : int array;
  colour : int array;
  other : int array;
  code : int array;
}

(* The CSR is the primary representation: it is what every hot path
   iterates, and at mega-scale (10^6..10^7 nodes, built by
   [of_csr] from a streamed [Ld_graph.Csr.t]) it is the only part we
   can afford to materialise eagerly. The record/list views — [edges],
   [loops], [darts] — are derived lazily; graphs built through the
   classic constructors wrap their eager arrays in [Lazy.from_val], so
   nothing changes for the adversary paths. *)
type t = {
  n : int;
  n_edges : int;
  n_loops : int;
  edges : edge array Lazy.t;
  loops : loop array Lazy.t;
  darts : dart list array Lazy.t; (* per node, sorted by colour *)
  csr : csr;
}

let dart_colour = function
  | To_neighbour { colour; _ } -> colour
  | Into_loop { colour; _ } -> colour

let csr_of_darts n (darts : dart list array) =
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + List.length darts.(v)
  done;
  let m = row.(n) in
  let colour = Array.make m 0 in
  let other = Array.make m 0 in
  let code = Array.make m 0 in
  for v = 0 to n - 1 do
    let d = ref row.(v) in
    List.iter
      (fun dart ->
        (match dart with
        | To_neighbour { neighbour; edge_id; colour = c } ->
          colour.(!d) <- c;
          other.(!d) <- neighbour;
          code.(!d) <- edge_id
        | Into_loop { loop_id; colour = c } ->
          colour.(!d) <- c;
          other.(!d) <- v;
          code.(!d) <- -loop_id - 1);
        incr d)
      darts.(v)
  done;
  { row; colour; other; code }

let build n edges loops =
  let darts = Array.make n [] in
  Array.iteri
    (fun id e ->
      darts.(e.u) <-
        To_neighbour { neighbour = e.v; edge_id = id; colour = e.colour }
        :: darts.(e.u);
      darts.(e.v) <-
        To_neighbour { neighbour = e.u; edge_id = id; colour = e.colour }
        :: darts.(e.v))
    edges;
  Array.iteri
    (fun id l ->
      darts.(l.node) <- Into_loop { loop_id = id; colour = l.colour } :: darts.(l.node))
    loops;
  Array.iteri
    (fun v ds ->
      let sorted = List.sort (fun a b -> Int.compare (dart_colour a) (dart_colour b)) ds in
      let rec check = function
        | a :: (b :: _ as rest) ->
          if dart_colour a = dart_colour b then
            invalid_arg
              (Printf.sprintf
                 "Ec.create: node %d has two darts of colour %d (colouring not proper)"
                 v (dart_colour a));
          check rest
        | _ -> ()
      in
      check sorted;
      darts.(v) <- sorted)
    darts;
  {
    n;
    n_edges = Array.length edges;
    n_loops = Array.length loops;
    edges = Lazy.from_val edges;
    loops = Lazy.from_val loops;
    darts = Lazy.from_val darts;
    csr = csr_of_darts n darts;
  }

let validated n edges loops =
  if n < 0 then invalid_arg "Ec.create: negative n";
  let check_node v = if v < 0 || v >= n then invalid_arg "Ec.create: node out of range" in
  let check_colour c = if c < 1 then invalid_arg "Ec.create: colours must be >= 1" in
  Array.iter
    (fun e ->
      check_node e.u;
      check_node e.v;
      check_colour e.colour;
      if e.u = e.v then invalid_arg "Ec.create: self-edge; use ~loops")
    edges;
  Array.iter
    (fun l ->
      check_node l.node;
      check_colour l.colour)
    loops;
  build n edges loops

let create ~n ~edges ~loops =
  validated n
    (Array.of_list (List.map (fun (u, v, colour) -> { u; v; colour }) edges))
    (Array.of_list (List.map (fun (node, colour) -> { node; colour }) loops))

let create_arrays ~n ~edges ~loops =
  (* Defensive copies: [build] keeps the arrays in the value. *)
  validated n (Array.copy edges) (Array.copy loops)

let n g = g.n
let num_edges g = g.n_edges
let num_loops g = g.n_loops
let edge g id = (Lazy.force g.edges).(id)
let loop g id = (Lazy.force g.loops).(id)
let edges g = Array.to_list (Lazy.force g.edges)
let loops g = Array.to_list (Lazy.force g.loops)
let darts g v = (Lazy.force g.darts).(v)
let csr g = g.csr

(* Reconstruct the dart at CSR index [d]. *)
let dart_at g d =
  let { colour; other; code; _ } = g.csr in
  if code.(d) >= 0 then
    To_neighbour { neighbour = other.(d); edge_id = code.(d); colour = colour.(d) }
  else Into_loop { loop_id = -code.(d) - 1; colour = colour.(d) }
  [@@inline]

let dart_by_colour g v c =
  (* Darts of a node are sorted by colour: binary search the segment. *)
  let { row; colour; _ } = g.csr in
  let lo = ref row.(v) and hi = ref (row.(v + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let cm = colour.(mid) in
    if cm = c then found := mid
    else if cm < c then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then None else Some (dart_at g !found)

let degree g v = g.csr.row.(v + 1) - g.csr.row.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := Stdlib.max !best (degree g v)
  done;
  !best

let max_colour g =
  (* Every edge and loop contributes at least one dart, so the CSR
     colour array covers all colours in use — no need to force the
     record views. *)
  let c = ref 0 in
  Array.iter (fun dc -> c := Stdlib.max !c dc) g.csr.colour;
  !c

let loops_at g v =
  List.filter_map
    (function Into_loop { loop_id; _ } -> Some loop_id | To_neighbour _ -> None)
    (Lazy.force g.darts).(v)

let min_loops g =
  if g.n = 0 then 0
  else begin
    let { row; code; _ } = g.csr in
    let best = ref max_int in
    for v = 0 to g.n - 1 do
      let count = ref 0 in
      for d = row.(v) to row.(v + 1) - 1 do
        if code.(d) < 0 then incr count
      done;
      best := Stdlib.min !best !count
    done;
    !best
  end

let remove_loop g id =
  if id < 0 || id >= g.n_loops then invalid_arg "Ec.remove_loop";
  let gl = Lazy.force g.loops in
  let loops =
    Array.init (g.n_loops - 1) (fun i -> if i < id then gl.(i) else gl.(i + 1))
  in
  build g.n (Lazy.force g.edges) loops

let disjoint_union a b =
  let shift = a.n in
  let edges =
    Array.append (Lazy.force a.edges)
      (Array.map
         (fun e -> { e with u = e.u + shift; v = e.v + shift })
         (Lazy.force b.edges))
  in
  let loops =
    Array.append (Lazy.force a.loops)
      (Array.map (fun l -> { l with node = l.node + shift }) (Lazy.force b.loops))
  in
  build (a.n + b.n) edges loops

let add_edge g (u, v, colour) =
  if u = v then invalid_arg "Ec.add_edge: self-edge";
  build g.n
    (Array.append (Lazy.force g.edges) [| { u; v; colour } |])
    (Lazy.force g.loops)

let of_simple sg ~colour =
  let module G = Ld_graph.Graph in
  let edges =
    List.map (fun (u, v) -> (u, v, colour (u, v))) (G.edges sg)
  in
  create ~n:(G.n sg) ~edges ~loops:[]

let to_simple g =
  if g.n_loops > 0 then invalid_arg "Ec.to_simple: graph has loops";
  Ld_graph.Graph.create g.n
    (Array.to_list
       (Array.map
          (fun e -> (Stdlib.min e.u e.v, Stdlib.max e.u e.v))
          (Lazy.force g.edges)))

let canonical_edge e =
  (Stdlib.min e.u e.v, Stdlib.max e.u e.v, e.colour)

(* Lexicographic on int triples/pairs: same order as polymorphic compare. *)
let triple_compare (a1, a2, a3) (b1, b2, b3) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c else Int.compare a3 b3

let pair_compare (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let equal a b =
  a == b
  || a.n = b.n
  && List.equal
       (fun x y -> triple_compare x y = 0)
       (List.sort triple_compare (List.map canonical_edge (edges a)))
       (List.sort triple_compare (List.map canonical_edge (edges b)))
  && List.equal
       (fun x y -> pair_compare x y = 0)
       (List.sort pair_compare (List.map (fun l -> (l.node, l.colour)) (loops a)))
       (List.sort pair_compare (List.map (fun l -> (l.node, l.colour)) (loops b)))

let pp fmt g =
  Format.fprintf fmt "@[<v>ec-graph n=%d@," g.n;
  Array.iter
    (fun e -> Format.fprintf fmt "  edge %d-%d colour %d@," e.u e.v e.colour)
    (Lazy.force g.edges);
  Array.iter
    (fun l -> Format.fprintf fmt "  loop @@%d colour %d@," l.node l.colour)
    (Lazy.force g.loops);
  Format.fprintf fmt "@]"

(* ---------- streaming constructor ----------

   Lift a streamed simple-graph CSR ([Ld_graph.Csr.t], endpoint-sorted
   segments, proper colouring) into the EC model without building any
   edge records, tuple lists, or dart lists: only the four CSR arrays
   are materialised. Edge ids are assigned in sorted-(u, v) order —
   the same ids [of_simple] would produce via [Graph.edges] — and each
   segment is permuted to ascending colour order, which is the
   invariant every runner and the refinement core relies on. The
   record/list views stay lazy; forcing them on a 10^7-node graph is a
   programming error the memory profile will surface quickly. *)
let of_csr (c : Ld_graph.Csr.t) =
  let n = c.Ld_graph.Csr.n in
  let srow = c.Ld_graph.Csr.row in
  let send = c.Ld_graph.Csr.endpoint in
  let scol = c.Ld_graph.Csr.colour in
  let nd = srow.(n) in
  let back = Ld_graph.Csr.back c in
  (* Pass 1: edge ids in [Graph.edges] order — ascending [u] but
     {e descending} [v] within each block (its downto-and-cons
     construction), which is the id order [of_simple] assigns. Hence
     the inner walk runs each segment in reverse, taking the darts
     with [v < w] (each edge's first occurrence). *)
  let code = Array.make (Stdlib.max 1 nd) 0 in
  let next_id = ref 0 in
  for v = 0 to n - 1 do
    for d = srow.(v + 1) - 1 downto srow.(v) do
      let w = send.(d) in
      if v < w then begin
        code.(d) <- !next_id;
        code.(srow.(w) + back.(d)) <- !next_id;
        incr next_id
      end
    done
  done;
  (* Pass 2: permute every segment to ascending colour order
     (insertion sort on <= Δ entries), checking properness. *)
  let colour = Array.make (Stdlib.max 1 nd) 0 in
  let other = Array.make (Stdlib.max 1 nd) 0 in
  for v = 0 to n - 1 do
    let lo = srow.(v) and hi = srow.(v + 1) in
    for d = lo to hi - 1 do
      let cd = scol.(d) and od = send.(d) and ed = code.(d) in
      if cd < 1 then invalid_arg "Ec.of_csr: colours must be >= 1";
      let j = ref d in
      while !j > lo && colour.(!j - 1) > cd do
        colour.(!j) <- colour.(!j - 1);
        other.(!j) <- other.(!j - 1);
        code.(!j) <- code.(!j - 1);
        decr j
      done;
      colour.(!j) <- cd;
      other.(!j) <- od;
      code.(!j) <- ed
    done;
    for d = lo + 1 to hi - 1 do
      if colour.(d - 1) = colour.(d) then
        invalid_arg
          (Printf.sprintf
             "Ec.of_csr: node %d has two darts of colour %d (colouring not \
              proper)"
             v colour.(d))
    done
  done;
  let n_edges = c.Ld_graph.Csr.m in
  (* Edgeless graphs carry empty dart arrays (matching [of_simple]),
     not the length-1 scratch allocation. *)
  let colour = if nd = 0 then [||] else colour in
  let other = if nd = 0 then [||] else other in
  let code = if nd = 0 then [||] else code in
  let csr = { row = srow; colour; other; code } in
  let edges =
    lazy
      (let es = Array.make n_edges { u = 0; v = 0; colour = 0 } in
       for v = 0 to n - 1 do
         for d = srow.(v) to srow.(v + 1) - 1 do
           if v < other.(d) then
             es.(code.(d)) <- { u = v; v = other.(d); colour = colour.(d) }
         done
       done;
       es)
  in
  let darts =
    lazy
      (Array.init n (fun v ->
           List.init
             (srow.(v + 1) - srow.(v))
             (fun i ->
               let d = srow.(v) + i in
               To_neighbour
                 {
                   neighbour = other.(d);
                   edge_id = code.(d);
                   colour = colour.(d);
                 })))
  in
  { n; n_edges; n_loops = 0; edges; loops = Lazy.from_val [||]; darts; csr }
