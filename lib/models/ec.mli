(** Edge-coloured multigraphs with loops — the EC model (paper §3.3, §3.5).

    An EC-graph carries a proper edge colouring: any two darts incident to
    the same node have distinct colours. Following the paper's convention
    (Fig. 3), an undirected loop counts as a {e single} incident edge
    (degree +1): it is a semi-edge, and in any simple lift a colour-[c]
    loop on [v] becomes a colour-[c] perfect matching inside the fiber
    of [v].

    Nodes are [0 .. n-1]; edges and loops are identified by dense ids. *)

type edge = { u : int; v : int; colour : int }
type loop = { node : int; colour : int }

(** A dart is one of the at most [Δ] "edge ends" at a node. A loop
    contributes exactly one dart (EC convention). *)
type dart =
  | To_neighbour of { neighbour : int; edge_id : int; colour : int }
  | Into_loop of { loop_id : int; colour : int }

type t

(** [create ~n ~edges ~loops] with [edges] as [(u, v, colour)] triples and
    [loops] as [(node, colour)] pairs.
    @raise Invalid_argument on range errors, or if the colouring is not
    proper (two darts of equal colour at a node), or on a self-edge
    [(v, v, _)] (use [loops] for those). *)
val create : n:int -> edges:(int * int * int) list -> loops:(int * int) list -> t

(** [create_arrays ~n ~edges ~loops] is [create] on prebuilt records —
    the allocation-light constructor used by the hot construction paths
    (unfold, mix, lifts). The arrays are copied. *)
val create_arrays : n:int -> edges:edge array -> loops:loop array -> t

val n : t -> int
val num_edges : t -> int
val num_loops : t -> int

val edge : t -> int -> edge
val loop : t -> int -> loop
val edges : t -> edge list
val loops : t -> loop list

(** Darts at a node, sorted by colour. *)
val darts : t -> int -> dart list

(** Flat CSR view of all darts, computed once at construction and cached
    in the value: dart [d] of node [v] occupies indices
    [row.(v) .. row.(v+1) - 1] in ascending colour order (mirroring
    {!darts}); [colour.(d)] is its colour, [other.(d)] the node at the
    far end ([v] itself for a loop — loop reflection built in), and
    [code.(d)] the edge id, or [-loop_id - 1] for a loop. This is the
    representation the hot paths (refinement, runners, propagation)
    iterate; treat the arrays as read-only. *)
type csr = {
  row : int array;
  colour : int array;
  other : int array;
  code : int array;
}

val csr : t -> csr

(** [dart_at g d] reconstructs the dart at CSR index [d]. *)
val dart_at : t -> int -> dart

val dart_colour : dart -> int

(** [dart_by_colour g v c] is the colour-[c] dart at [v], if any. *)
val dart_by_colour : t -> int -> int -> dart option

(** Degree with the EC loop convention (a loop counts once). *)
val degree : t -> int -> int

val max_degree : t -> int

(** Largest colour in use (colours are positive ints); 0 if none. *)
val max_colour : t -> int

(** [loops_at g v] are the ids of loops on [v]. *)
val loops_at : t -> int -> int list

(** [min_loops g] is the minimum, over nodes, of the number of loops —
    [k]-loopiness of [g] itself (not of its factor graph; see
    [Ld_cover.Loopy] for the Definition 1 notion). *)
val min_loops : t -> int

(** [remove_loop g id] deletes one loop (used by the base case, Fig. 5). *)
val remove_loop : t -> int -> t

(** [disjoint_union a b] shifts [b]'s nodes by [n a] (edge and loop ids
    of [b] shift by [num_edges a] / [num_loops a]). *)
val disjoint_union : t -> t -> t

(** [add_edge g (u, v, c)] — [u <> v]; properness is re-checked. *)
val add_edge : t -> int * int * int -> t

(** [of_simple g ~colour] wraps a loop-free simple graph, colouring edge
    [(u, v)] (with [u < v]) by [colour (u, v)]. *)
val of_simple : Ld_graph.Graph.t -> colour:(int * int -> int) -> t

(** [of_csr c] lifts a streamed coloured CSR ([Generators.stream_*])
    into the EC model without materialising edge records, tuple lists,
    or dart lists — only the colour-sorted CSR arrays are built
    eagerly (the [edges]/[loops]/[darts] views are lazy). Edge ids
    follow sorted-(u, v) order, identical to
    [of_simple g ~colour] on the same graph; [c.row] is shared, not
    copied. @raise Invalid_argument if the colouring is not proper. *)
val of_csr : Ld_graph.Csr.t -> t

(** [to_simple g] forgets colours. @raise Invalid_argument if [g] has
    loops. *)
val to_simple : t -> Ld_graph.Graph.t

(** Structural equality (same n, same edge/loop sets — ids ignored). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
