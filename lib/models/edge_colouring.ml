module G = Ld_graph.Graph

let greedy g =
  let table : (int * int, int) Hashtbl.t = Hashtbl.create (G.m g) in
  let node_used = Array.make (G.n g) [] in
  List.iter
    (fun (u, v) ->
      let rec smallest c =
        if List.mem c node_used.(u) || List.mem c node_used.(v) then smallest (c + 1)
        else c
      in
      let c = smallest 1 in
      node_used.(u) <- c :: node_used.(u);
      node_used.(v) <- c :: node_used.(v);
      Hashtbl.add table (u, v) c)
    (G.edges g);
  fun (u, v) ->
    let key = (Stdlib.min u v, Stdlib.max u v) in
    match Hashtbl.find_opt table key with
    | Some c -> c
    | None -> invalid_arg "Edge_colouring.greedy: not an edge"

let num_colours g colour =
  List.sort_uniq Int.compare (List.map colour (G.edges g)) |> List.length

let is_proper g colour =
  let ok = ref true in
  for v = 0 to G.n g - 1 do
    let cs =
      List.map (fun w -> colour (Stdlib.min v w, Stdlib.max v w)) (G.neighbours g v)
    in
    if List.length (List.sort_uniq Int.compare cs) <> List.length cs then ok := false
  done;
  !ok

let ec_of_simple g = Ec.of_simple g ~colour:(greedy g)
