(** Proper edge colourings of simple graphs.

    The EC model assumes a proper edge colouring with [O(Δ)] colours is
    given with the input (paper §2.1). These helpers manufacture such
    colourings so that simple graphs can be fed to EC algorithms. *)

(** [greedy g] properly colours the edges of [g] with at most [2Δ - 1]
    colours (colours are [1..2Δ-1]): each edge takes the smallest colour
    free at both endpoints. Returns the colour per edge [(u, v)], [u < v]. *)
val greedy : Ld_graph.Graph.t -> (int * int) -> int

(** [num_colours g colour] is the number of distinct colours used. *)
val num_colours : Ld_graph.Graph.t -> ((int * int) -> int) -> int

(** [is_proper g colour] checks that adjacent edges get distinct colours. *)
val is_proper : Ld_graph.Graph.t -> ((int * int) -> int) -> bool

(** [ec_of_simple g] is [Ec.of_simple g ~colour:(greedy g)]. *)
val ec_of_simple : Ld_graph.Graph.t -> Ec.t
