module G = Ld_graph.Graph

module Id = struct
  type t = { graph : G.t; ids : int array }

  let create graph ids =
    if Array.length ids <> G.n graph then invalid_arg "Id.create: wrong length";
    Array.iter (fun i -> if i < 0 then invalid_arg "Id.create: negative id") ids;
    let sorted = Array.copy ids in
    Array.sort Int.compare sorted;
    for i = 1 to Array.length sorted - 1 do
      if sorted.(i) = sorted.(i - 1) then invalid_arg "Id.create: duplicate id"
    done;
    { graph; ids }

  let graph t = t.graph
  let id t v = t.ids.(v)
  let ids t = Array.copy t.ids
  let trivial graph = { graph; ids = Array.init (G.n graph) Fun.id }
end

module Oi = struct
  type t = { graph : G.t; rank : int array }

  let create graph rank =
    if Array.length rank <> G.n graph then invalid_arg "Oi.create: wrong length";
    let seen = Array.make (G.n graph) false in
    Array.iter
      (fun r ->
        if r < 0 || r >= G.n graph || seen.(r) then
          invalid_arg "Oi.create: not a permutation";
        seen.(r) <- true)
      rank;
    { graph; rank }

  let graph t = t.graph
  let rank t v = t.rank.(v)
  let precedes t u v = t.rank.(u) < t.rank.(v)

  let of_id (id : Id.t) =
    let g = Id.graph id in
    let order = Array.init (G.n g) Fun.id in
    Array.sort (fun u v -> Int.compare (Id.id id u) (Id.id id v)) order;
    let rank = Array.make (G.n g) 0 in
    Array.iteri (fun pos v -> rank.(v) <- pos) order;
    { graph = g; rank }

  let assign t ids =
    if Array.length ids <> G.n t.graph then invalid_arg "Oi.assign: wrong length";
    let sorted = Array.copy ids in
    Array.sort Int.compare sorted;
    for i = 1 to Array.length sorted - 1 do
      if sorted.(i) = sorted.(i - 1) then invalid_arg "Oi.assign: duplicate id"
    done;
    Id.create t.graph (Array.init (Array.length ids) (fun v -> sorted.(t.rank.(v))))
  end
