(** ID-graphs and OI-graphs (paper §3.2).

    An ID-graph is a simple graph whose nodes carry distinct natural-number
    identifiers; an OI-graph carries only a linear order on the nodes.
    Every ID-graph is an OI-graph under [<=] on identifiers; conversely an
    OI-graph becomes an ID-graph through any order-respecting assignment
    [phi] (the paper's [phi(G)]). *)

module Id : sig
  type t

  (** [create g ids] — [ids.(v)] is the identifier of node [v]; all
      identifiers must be distinct and non-negative.
      @raise Invalid_argument otherwise. *)
  val create : Ld_graph.Graph.t -> int array -> t

  val graph : t -> Ld_graph.Graph.t
  val id : t -> int -> int
  val ids : t -> int array

  (** Identity assignment: node [v] gets identifier [v]. *)
  val trivial : Ld_graph.Graph.t -> t
end

module Oi : sig
  type t

  (** [create g rank] — [rank] is a permutation of [0 .. n-1]; node [u]
      precedes [v] in the linear order iff [rank.(u) < rank.(v)]. *)
  val create : Ld_graph.Graph.t -> int array -> t

  val graph : t -> Ld_graph.Graph.t
  val rank : t -> int -> int

  (** [precedes t u v] is the linear order. *)
  val precedes : t -> int -> int -> bool

  (** The order induced by identifiers (ID-graphs are OI-graphs). *)
  val of_id : Id.t -> t

  (** [assign t ids] re-identifies: sorts [ids], gives the rank-[k] node
      the [k]-th smallest identifier — an order-respecting [phi].
      @raise Invalid_argument if [ids] has duplicates or wrong length. *)
  val assign : t -> int array -> Id.t
end
