type arc = { tail : int; head : int; colour : int }
type loop = { node : int; colour : int }

type dart =
  | Out of { neighbour : int; arc_id : int; colour : int }
  | In of { neighbour : int; arc_id : int; colour : int }
  | Loop_out of { loop_id : int; colour : int }
  | Loop_in of { loop_id : int; colour : int }

(* Flat CSR dart view, built once per graph and cached in the value.
   Dart [d] of node [v] lives at [row.(v) .. row.(v+1)-1] in the same
   order as the [darts] lists (out darts by colour, then in darts by
   colour): [colour.(d)] is its colour, [dir.(d)] is 0 for an out dart
   and 1 for an in dart, [other.(d)] the node at the far end (the node
   itself for loops), and [code.(d)] the arc id, or [-loop_id - 1] for
   a loop dart. Consumers must not mutate the arrays. *)
type csr = {
  row : int array;
  colour : int array;
  dir : int array;
  other : int array;
  code : int array;
}

type t = {
  n : int;
  arcs : arc array;
  loops : loop array;
  darts : dart list array; (* out darts by colour, then in darts by colour *)
  csr : csr;
}

let dart_colour = function
  | Out { colour; _ } | In { colour; _ } -> colour
  | Loop_out { colour; _ } | Loop_in { colour; _ } -> colour

let dart_is_out = function
  | Out _ | Loop_out _ -> true
  | In _ | Loop_in _ -> false

let csr_of_darts n (darts : dart list array) =
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + List.length darts.(v)
  done;
  let m = row.(n) in
  let colour = Array.make m 0 in
  let dir = Array.make m 0 in
  let other = Array.make m 0 in
  let code = Array.make m 0 in
  for v = 0 to n - 1 do
    let d = ref row.(v) in
    List.iter
      (fun dart ->
        (match dart with
        | Out { neighbour; arc_id; colour = c } ->
          colour.(!d) <- c;
          dir.(!d) <- 0;
          other.(!d) <- neighbour;
          code.(!d) <- arc_id
        | In { neighbour; arc_id; colour = c } ->
          colour.(!d) <- c;
          dir.(!d) <- 1;
          other.(!d) <- neighbour;
          code.(!d) <- arc_id
        | Loop_out { loop_id; colour = c } ->
          colour.(!d) <- c;
          dir.(!d) <- 0;
          other.(!d) <- v;
          code.(!d) <- -loop_id - 1
        | Loop_in { loop_id; colour = c } ->
          colour.(!d) <- c;
          dir.(!d) <- 1;
          other.(!d) <- v;
          code.(!d) <- -loop_id - 1);
        incr d)
      darts.(v)
  done;
  { row; colour; dir; other; code }

let build n arcs loops =
  let outs = Array.make n [] and ins = Array.make n [] in
  Array.iteri
    (fun id a ->
      outs.(a.tail) <-
        Out { neighbour = a.head; arc_id = id; colour = a.colour } :: outs.(a.tail);
      ins.(a.head) <-
        In { neighbour = a.tail; arc_id = id; colour = a.colour } :: ins.(a.head))
    arcs;
  Array.iteri
    (fun id l ->
      outs.(l.node) <- Loop_out { loop_id = id; colour = l.colour } :: outs.(l.node);
      ins.(l.node) <- Loop_in { loop_id = id; colour = l.colour } :: ins.(l.node))
    loops;
  let darts = Array.make n [] in
  let by_colour side v ds =
    let sorted = List.sort (fun a b -> Int.compare (dart_colour a) (dart_colour b)) ds in
    let rec check = function
      | a :: (b :: _ as rest) ->
        if dart_colour a = dart_colour b then
          invalid_arg
            (Printf.sprintf "Po.create: node %d has two %s darts of colour %d" v side
               (dart_colour a));
        check rest
      | _ -> ()
    in
    check sorted;
    sorted
  in
  for v = 0 to n - 1 do
    darts.(v) <- by_colour "outgoing" v outs.(v) @ by_colour "incoming" v ins.(v)
  done;
  { n; arcs; loops; darts; csr = csr_of_darts n darts }

let create ~n ~arcs ~loops =
  if n < 0 then invalid_arg "Po.create: negative n";
  let check_node v = if v < 0 || v >= n then invalid_arg "Po.create: node out of range" in
  let check_colour c = if c < 1 then invalid_arg "Po.create: colours must be >= 1" in
  let arcs =
    Array.of_list
      (List.map
         (fun (tail, head, colour) ->
           check_node tail;
           check_node head;
           check_colour colour;
           if tail = head then invalid_arg "Po.create: self-arc; use ~loops";
           { tail; head; colour })
         arcs)
  in
  let loops =
    Array.of_list
      (List.map
         (fun (node, colour) ->
           check_node node;
           check_colour colour;
           { node; colour })
         loops)
  in
  build n arcs loops

let n g = g.n
let num_arcs g = Array.length g.arcs
let num_loops g = Array.length g.loops
let arc g id = g.arcs.(id)
let loop g id = g.loops.(id)
let arcs g = Array.to_list g.arcs
let loops g = Array.to_list g.loops
let darts g v = g.darts.(v)
let csr g = g.csr
let degree g v = g.csr.row.(v + 1) - g.csr.row.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := Stdlib.max !best (degree g v)
  done;
  !best

let max_colour g =
  let c = ref 0 in
  Array.iter (fun (a : arc) -> c := Stdlib.max !c a.colour) g.arcs;
  Array.iter (fun (l : loop) -> c := Stdlib.max !c l.colour) g.loops;
  !c

let ports g v = Array.of_list g.darts.(v)

let of_ports ~n ~connections =
  let max_port =
    List.fold_left
      (fun acc (_, i, _, j) -> Stdlib.max acc (Stdlib.max i j))
      0 connections
  in
  let encode i j = ((i - 1) * max_port) + j in
  let used : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let claim v p =
    if p < 1 then invalid_arg "Po.of_ports: ports are 1-based";
    if Hashtbl.mem used (v, p) then
      invalid_arg (Printf.sprintf "Po.of_ports: port %d of node %d used twice" p v);
    Hashtbl.add used (v, p) ()
  in
  let arcs = ref [] and loops = ref [] in
  List.iter
    (fun (u, i, v, j) ->
      claim u i;
      claim v j;
      if u = v then loops := (u, encode i j) :: !loops
      else arcs := (u, v, encode i j) :: !arcs)
    connections;
  create ~n ~arcs:(List.rev !arcs) ~loops:(List.rev !loops)

let of_ec ec =
  let arcs =
    List.concat_map
      (fun (e : Ec.edge) -> [ (e.u, e.v, e.colour); (e.v, e.u, e.colour) ])
      (Ec.edges ec)
  in
  let loops = List.map (fun (l : Ec.loop) -> (l.node, l.colour)) (Ec.loops ec) in
  create ~n:(Ec.n ec) ~arcs ~loops

(* Lexicographic on int triples/pairs: same order as polymorphic compare. *)
let triple_compare (a1, a2, a3) (b1, b2, b3) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c else Int.compare a3 b3

let pair_compare (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let equal a b =
  a.n = b.n
  && List.equal
       (fun x y -> triple_compare x y = 0)
       (List.sort triple_compare (List.map (fun x -> (x.tail, x.head, x.colour)) (arcs a)))
       (List.sort triple_compare (List.map (fun x -> (x.tail, x.head, x.colour)) (arcs b)))
  && List.equal
       (fun x y -> pair_compare x y = 0)
       (List.sort pair_compare (List.map (fun (l : loop) -> (l.node, l.colour)) (loops a)))
       (List.sort pair_compare (List.map (fun (l : loop) -> (l.node, l.colour)) (loops b)))

let pp fmt g =
  Format.fprintf fmt "@[<v>po-graph n=%d@," g.n;
  Array.iter
    (fun a -> Format.fprintf fmt "  arc %d->%d colour %d@," a.tail a.head a.colour)
    g.arcs;
  Array.iter
    (fun l -> Format.fprintf fmt "  loop @@%d colour %d@," l.node l.colour)
    g.loops;
  Format.fprintf fmt "@]"
