(** Port-numbered, oriented multigraphs — the PO model (paper §3.3, Fig. 2).

    We use the paper's edge-coloured-digraph presentation (PO2): arcs are
    directed and coloured so that the outgoing arcs at each node carry
    distinct colours and the incoming arcs at each node carry distinct
    colours (an outgoing and an incoming arc may share a colour).

    A directed loop contributes {e two} darts to its node — one outgoing
    and one incoming (paper Fig. 3).

    The equivalent port-numbering presentation (PO1) is available through
    {!ports} / {!of_ports}: ports at a node are all outgoing darts ordered
    by colour followed by all incoming darts ordered by colour. *)

type arc = { tail : int; head : int; colour : int }
type loop = { node : int; colour : int }

type dart =
  | Out of { neighbour : int; arc_id : int; colour : int }
  | In of { neighbour : int; arc_id : int; colour : int }
  | Loop_out of { loop_id : int; colour : int }
  | Loop_in of { loop_id : int; colour : int }

type t

(** [create ~n ~arcs ~loops] with arcs as [(tail, head, colour)] and loops
    as [(node, colour)].
    @raise Invalid_argument on range errors or if out-colours (or
    in-colours) collide at a node. *)
val create : n:int -> arcs:(int * int * int) list -> loops:(int * int) list -> t

val n : t -> int
val num_arcs : t -> int
val num_loops : t -> int
val arc : t -> int -> arc
val loop : t -> int -> loop
val arcs : t -> arc list
val loops : t -> loop list

(** All darts at a node: outgoing sorted by colour, then incoming sorted
    by colour (the PO2 → PO1 convention). *)
val darts : t -> int -> dart list

(** Flat CSR view of all darts, computed once at construction and cached
    in the value: dart [d] of node [v] occupies
    [row.(v) .. row.(v+1) - 1] in {!darts} order; [colour.(d)] is its
    colour, [dir.(d)] is 0 for out / 1 for in, [other.(d)] the node at
    the far end ([v] itself for loops — loop reflection built in), and
    [code.(d)] the arc id, or [-loop_id - 1] for a loop dart. Treat the
    arrays as read-only. *)
type csr = {
  row : int array;
  colour : int array;
  dir : int array;
  other : int array;
  code : int array;
}

val csr : t -> csr

(** Degree with the PO loop convention (a loop counts twice). *)
val degree : t -> int -> int

val max_degree : t -> int
val max_colour : t -> int
val dart_colour : dart -> int
val dart_is_out : dart -> bool

(** Port view (PO1): [ports g v] lists darts in port order [1..deg]. *)
val ports : t -> int -> dart array

(** [of_ports ~n ~connections] builds a PO-graph from a port numbering
    with orientation (the PO1 presentation). Each connection
    [(u, i, v, j)] is an oriented edge [u → v] attached to port [i] of
    [u] and port [j] of [v]; [u = v] yields a directed loop. Following
    the paper's Fig. 2(a), the arc gets colour [encode (i, j)] (with
    [encode] injective on the port pairs in use), so distinct out-ports
    (resp. in-ports) yield distinct out-colours (resp. in-colours).
    @raise Invalid_argument if a port is used twice at a node. *)
val of_ports : n:int -> connections:(int * int * int * int) list -> t

(** [of_ec ec] is the §5.1 interpretation: every EC edge [{u,v}] of
    colour [c] becomes the two arcs [(u,v,c)] and [(v,u,c)]; every EC
    loop becomes a directed loop of the same colour. Degrees double. *)
val of_ec : Ec.t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
