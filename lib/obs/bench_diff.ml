(* Bench-regression sentinel: join the rows of two BENCH_*.json
   artefacts on their key columns and compare per-row wall time.

   Both artefact kinds carry a `rows` array. THM1 rows key on `delta`;
   runtime rows key on (workload, algo, n, domains); anything else
   falls back to every non-measure field. Rows present in only one
   file are reported but never gate — a `--quick` pass is expected to
   cover a subset of the committed full-pass baseline.

   Gating: a row regresses when `new_wall / old_wall` exceeds the
   tolerance AND the old wall is at least [min_wall_ms] (sub-
   millisecond rows are pure noise). With [normalize] each ratio is
   divided by the median ratio across all joined rows first, which
   cancels a uniform machine-speed difference (CI runner vs the dev
   box that produced the baseline) while leaving a *selective*
   slowdown — one row regressing while its siblings hold — fully
   visible. An injected uniform slowdown is only caught without
   normalization, which is why the CI self-check injects into a single
   row. *)

type comparison = {
  c_key : string;
  c_old_ms : float;
  c_new_ms : float;
  c_ratio : float; (* new / old *)
  c_norm_ratio : float; (* ratio / median ratio (= ratio when not normalizing) *)
  c_gated : bool; (* old wall >= min_wall_ms *)
  c_regressed : bool;
  c_improved : bool;
}

type report = {
  r_old_path : string;
  r_new_path : string;
  r_tolerance : float;
  r_normalized : bool;
  r_median_ratio : float;
  r_compared : comparison list;
  r_only_old : string list;
  r_only_new : string list;
}

(* "1.5x" or "1.5" *)
let tolerance_of_string s =
  let s = String.trim s in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = 'x' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  match float_of_string_opt s with
  | Some t when t > 1.0 -> Some t
  | _ -> None

let num_field row k = Option.bind (Json.member k row) Json.to_float
let str_field row k = Option.bind (Json.member k row) Json.to_string

(* The join key: named columns when the known ones are present, else
   every field that is not a measurement. *)
let measure_fields =
  [
    "wall_ms"; "sends_per_sec"; "rounds_per_sec"; "peak_rss_kb"; "rounds";
    "sends"; "certified_levels"; "frontier"; "refine_rounds"; "descriptors";
    "round_p50_ms"; "round_p99_ms";
  ]

let key_of_row row =
  match num_field row "delta" with
  | Some d
    when str_field row "workload" = None ->
    Printf.sprintf "delta=%g" d
  | _ -> (
    match (str_field row "workload", str_field row "algo") with
    | Some w, Some a ->
      Printf.sprintf "%s/%s n=%g domains=%g" w a
        (Option.value ~default:0. (num_field row "n"))
        (Option.value ~default:0. (num_field row "domains"))
    | _ -> (
      match row with
      | Json.Obj kvs ->
        String.concat ","
          (List.filter_map
             (fun (k, v) ->
               if List.mem k measure_fields then None
               else
                 match v with
                 | Json.Num f -> Some (Printf.sprintf "%s=%g" k f)
                 | Json.Str s -> Some (Printf.sprintf "%s=%s" k s)
                 | _ -> None)
             kvs)
      | _ -> "?"))

let rows_of path =
  match Json.parse_file path with
  | exception Sys_error e -> Error e
  | exception Json.Parse_error (msg, pos) ->
    Error (Printf.sprintf "%s: JSON parse error: %s at byte %d" path msg pos)
  | doc -> (
    match Option.bind (Json.member "rows" doc) Json.to_list with
    | None -> Error (Printf.sprintf "%s: no \"rows\" array" path)
    | Some rows ->
      Ok
        (List.filter_map
           (fun row ->
             match num_field row "wall_ms" with
             | Some w -> Some (key_of_row row, w)
             | None -> None)
           rows))

let median xs =
  match List.sort Float.compare xs with
  | [] -> 1.0
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let compare_files ?(tolerance = 1.5) ?(normalize = false) ?(min_wall_ms = 1.0)
    ~old_path ~new_path () =
  match (rows_of old_path, rows_of new_path) with
  | Error e, _ | _, Error e -> Error e
  | Ok old_rows, Ok new_rows ->
    let joined =
      List.filter_map
        (fun (k, old_ms) ->
          match List.assoc_opt k new_rows with
          | Some new_ms -> Some (k, old_ms, new_ms)
          | None -> None)
        old_rows
    in
    if joined = [] then
      Error
        (Printf.sprintf
           "no rows of %s match rows of %s — nothing to compare" old_path
           new_path)
    else begin
      let ratio old_ms new_ms =
        if old_ms <= 0. then 1.0 else new_ms /. old_ms
      in
      let med =
        if normalize then
          median (List.map (fun (_, o, n) -> ratio o n) joined)
        else 1.0
      in
      let med = if med <= 0. then 1.0 else med in
      let compared =
        List.map
          (fun (k, old_ms, new_ms) ->
            let r = ratio old_ms new_ms in
            let nr = r /. med in
            let gated = old_ms >= min_wall_ms in
            {
              c_key = k;
              c_old_ms = old_ms;
              c_new_ms = new_ms;
              c_ratio = r;
              c_norm_ratio = nr;
              c_gated = gated;
              c_regressed = gated && nr > tolerance;
              c_improved = gated && nr < 1.0 /. tolerance;
            })
          joined
      in
      let joined_keys = List.map (fun (k, _, _) -> k) joined in
      Ok
        {
          r_old_path = old_path;
          r_new_path = new_path;
          r_tolerance = tolerance;
          r_normalized = normalize;
          r_median_ratio = med;
          r_compared = compared;
          r_only_old =
            List.filter_map
              (fun (k, _) ->
                if List.mem k joined_keys then None else Some k)
              old_rows;
          r_only_new =
            List.filter_map
              (fun (k, _) ->
                if List.mem k joined_keys then None else Some k)
              new_rows;
        }
    end

let regressions r = List.filter (fun c -> c.c_regressed) r.r_compared

(* 0 clean, 1 regression beyond tolerance; shape errors are the
   caller's to map (the CLI uses 2). *)
let exit_code r = if regressions r = [] then 0 else 1

let render r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "bench-diff: %s -> %s\n" r.r_old_path r.r_new_path;
  add "tolerance %.2fx%s; rows compared: %d (old-only %d, new-only %d)\n"
    r.r_tolerance
    (if r.r_normalized then
       Printf.sprintf ", normalized by median ratio %.3f" r.r_median_ratio
     else "")
    (List.length r.r_compared)
    (List.length r.r_only_old)
    (List.length r.r_only_new);
  add "  %-36s %12s %12s %8s %8s  %s\n" "row" "old ms" "new ms" "ratio"
    "norm" "verdict";
  List.iter
    (fun c ->
      add "  %-36s %12.3f %12.3f %7.2fx %7.2fx  %s\n" c.c_key c.c_old_ms
        c.c_new_ms c.c_ratio c.c_norm_ratio
        (if c.c_regressed then "REGRESSED"
         else if not c.c_gated then "ignored (below min wall)"
         else if c.c_improved then "improved"
         else "ok"))
    r.r_compared;
  (match regressions r with
  | [] -> add "OK: no row beyond %.2fx\n" r.r_tolerance
  | rs ->
    add "FAIL: %d row(s) regressed beyond %.2fx: %s\n" (List.length rs)
      r.r_tolerance
      (String.concat ", " (List.map (fun c -> c.c_key) rs)));
  Buffer.contents buf
