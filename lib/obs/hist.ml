(* Log-linear (HDR-style) latency histograms.

   Bucketing scheme (DESIGN.md § Metrics & exposition): values are
   non-negative integers (nanoseconds for every built-in instrumentation
   site). Values below [sub_count = 32] get one exact bucket each; above
   that, every octave [32·2^j, 64·2^j) is subdivided into 32 equal
   buckets of width 2^j. Bucket width over bucket lower bound is
   therefore at most 1/32, which bounds the relative error of any
   quantile read from the merged counts: a reported quantile q satisfies
   |q - true| / true <= [rel_error_bound] (= 2^-5, about 3.1%).
   Values are clamped to [0, 2^42 - 1] (~73 minutes in ns), capping the
   bucket index at a small constant, so a shard is one flat int array.

   Sharding: recording goes to a per-domain shard reached through
   domain-local storage — appends never synchronise, exactly like the
   span buffers in [Obs]. A shard registers itself (under a mutex) the
   first time its domain records; [snapshot] merges all shards at read
   time. Merging concurrent with recording yields a momentarily stale
   but never corrupt view (single-writer arrays, monotone counts);
   quiesce writers for an exact cut, as the bench sections do.

   Every record is gated on the global [Obs.enabled] sink switch, so a
   disabled sink costs one atomic read and no clock access. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits
let rel_error_bound = 1.0 /. float_of_int sub_count

(* ~73 minutes in nanoseconds; larger observations saturate. *)
let clamp_max = (1 lsl 42) - 1

let msb v =
  (* index of the highest set bit; [v > 0] *)
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin
    r := !r + 32;
    v := !v lsr 32
  end;
  if !v lsr 16 <> 0 then begin
    r := !r + 16;
    v := !v lsr 16
  end;
  if !v lsr 8 <> 0 then begin
    r := !r + 8;
    v := !v lsr 8
  end;
  if !v lsr 4 <> 0 then begin
    r := !r + 4;
    v := !v lsr 4
  end;
  if !v lsr 2 <> 0 then begin
    r := !r + 2;
    v := !v lsr 2
  end;
  if !v lsr 1 <> 0 then r := !r + 1;
  !r

let clamp v = if v < 0 then 0 else if v > clamp_max then clamp_max else v

let index_of v =
  let v = clamp v in
  if v < sub_count then v
  else begin
    let j = msb v - sub_bits in
    (sub_count * (j + 1)) + ((v lsr j) - sub_count)
  end

(* [lo, up) covered by the bucket at [idx]. *)
let bucket_bounds idx =
  if idx < sub_count then (idx, idx + 1)
  else begin
    let j = (idx / sub_count) - 1 in
    let sub = idx mod sub_count in
    ((sub_count + sub) lsl j, (sub_count + sub + 1) lsl j)
  end

let max_index = index_of clamp_max

(* smallest power of two that covers every reachable index *)
let bucket_cap =
  let c = ref 64 in
  while !c <= max_index do
    c := !c * 2
  done;
  !c

type shard = {
  mutable counts : int array; (* grows by doubling up to [bucket_cap] *)
  mutable s_count : int;
  mutable s_sum : int;
  mutable s_max : int;
}

type t = {
  hname : string;
  shards : shard list ref;
  shards_lock : Mutex.t;
  key : shard Domain.DLS.key;
}

let table : (string, t) Hashtbl.t = Hashtbl.create 16
let table_lock = Mutex.create ()

let make hname =
  Mutex.lock table_lock;
  let h =
    match Hashtbl.find_opt table hname with
    | Some h -> h
    | None ->
      let shards = ref [] in
      let shards_lock = Mutex.create () in
      let key =
        Domain.DLS.new_key (fun () ->
            let s =
              { counts = Array.make 64 0; s_count = 0; s_sum = 0; s_max = 0 }
            in
            Mutex.lock shards_lock;
            shards := s :: !shards;
            Mutex.unlock shards_lock;
            s)
      in
      let h = { hname; shards; shards_lock; key } in
      Hashtbl.add table hname h;
      h
  in
  Mutex.unlock table_lock;
  h

let name t = t.hname

(* Record one observation (nanoseconds). No-op while the sink is off. *)
let observe t v =
  if Obs.enabled () then begin
    let v = clamp v in
    let idx = index_of v in
    let s = Domain.DLS.get t.key in
    if idx >= Array.length s.counts then begin
      let cap = ref (Array.length s.counts) in
      while idx >= !cap do
        cap := !cap * 2
      done;
      let bigger = Array.make !cap 0 in
      Array.blit s.counts 0 bigger 0 (Array.length s.counts);
      s.counts <- bigger
    end;
    s.counts.(idx) <- s.counts.(idx) + 1;
    s.s_count <- s.s_count + 1;
    s.s_sum <- s.s_sum + v;
    if v > s.s_max then s.s_max <- v
  end

(* Time [f] and record its wall duration. Reads the clock only when the
   sink is on; the disabled path is a direct call. *)
let timed t f =
  if not (Obs.enabled ()) then f ()
  else begin
    let t0 = Obs.now_ns () in
    match f () with
    | v ->
      observe t (Int64.to_int (Int64.sub (Obs.now_ns ()) t0));
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      observe t (Int64.to_int (Int64.sub (Obs.now_ns ()) t0));
      Printexc.raise_with_backtrace e bt
  end

(* The [Span.timed_hist] hook: one span named after the histogram plus
   one observation of the same duration, so existing trace consumers
   see the exact event stream they saw before histograms existed. *)
let timed_span ?args t f =
  if not (Obs.enabled ()) then f ()
  else begin
    Obs.span_begin ?args t.hname;
    let t0 = Obs.now_ns () in
    match f () with
    | v ->
      observe t (Int64.to_int (Int64.sub (Obs.now_ns ()) t0));
      Obs.span_end t.hname;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      observe t (Int64.to_int (Int64.sub (Obs.now_ns ()) t0));
      Obs.span_end t.hname;
      Printexc.raise_with_backtrace e bt
  end

(* ------------------------------------------------------------------ *)
(* Read side: merge the shards into one cumulative view. *)

type snapshot = {
  sn_name : string;
  sn_count : int;
  sn_sum : int; (* ns *)
  sn_max : int; (* ns, exact (not a bucket bound) *)
  sn_buckets : (int * int) array;
      (* (bucket index, cumulative count) over non-empty buckets, in
         ascending bucket order; the last cumulative count equals
         [sn_count]. *)
}

let snapshot t =
  Mutex.lock t.shards_lock;
  let shards = !(t.shards) in
  Mutex.unlock t.shards_lock;
  let merged = Array.make bucket_cap 0 in
  let count = ref 0 and sum = ref 0 and mx = ref 0 in
  List.iter
    (fun s ->
      let a = s.counts in
      for i = 0 to Array.length a - 1 do
        merged.(i) <- merged.(i) + a.(i)
      done;
      count := !count + s.s_count;
      sum := !sum + s.s_sum;
      if s.s_max > !mx then mx := s.s_max)
    shards;
  let buckets = ref [] in
  let cum = ref 0 in
  for i = 0 to bucket_cap - 1 do
    if merged.(i) > 0 then begin
      cum := !cum + merged.(i);
      buckets := (i, !cum) :: !buckets
    end
  done;
  {
    sn_name = t.hname;
    sn_count = !count;
    sn_sum = !sum;
    sn_max = !mx;
    sn_buckets = Array.of_list (List.rev !buckets);
  }

(* All registered histograms, name-sorted; [all] additionally keeps
   empty ones (the exposition wants a stable metric set). *)
let snapshots_all () =
  Mutex.lock table_lock;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) table [] in
  Mutex.unlock table_lock;
  List.map snapshot
    (List.sort (fun a b -> String.compare a.hname b.hname) hs)

let snapshots () =
  List.filter (fun sn -> sn.sn_count > 0) (snapshots_all ())

(* Quantile estimate in nanoseconds (0 on an empty histogram). Uses the
   bucket midpoint, clamped to the exact maximum; the log-linear scheme
   bounds the relative error by [rel_error_bound]. *)
let quantile sn q =
  if sn.sn_count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int sn.sn_count)) in
      Stdlib.max 1 (Stdlib.min r sn.sn_count)
    in
    if rank = sn.sn_count then float_of_int sn.sn_max
    else begin
      let est = ref (float_of_int sn.sn_max) in
      (try
         Array.iter
           (fun (idx, cum) ->
             if cum >= rank then begin
               let lo, up = bucket_bounds idx in
               est := float_of_int (lo + up - 1) /. 2.;
               raise Exit
             end)
           sn.sn_buckets
       with Exit -> ());
      Stdlib.min !est (float_of_int sn.sn_max)
    end
  end

let quantile_ms sn q = quantile sn q /. 1e6
let sum_ms sn = float_of_int sn.sn_sum /. 1e6
let max_ms sn = float_of_int sn.sn_max /. 1e6

(* Zero a histogram (all shards). Meant for quiesced points — between
   bench sections, around a measured leg — not for concurrent use. *)
let reset t =
  Mutex.lock t.shards_lock;
  let shards = !(t.shards) in
  Mutex.unlock t.shards_lock;
  List.iter
    (fun s ->
      Array.fill s.counts 0 (Array.length s.counts) 0;
      s.s_count <- 0;
      s.s_sum <- 0;
      s.s_max <- 0)
    shards

let reset_all () =
  Mutex.lock table_lock;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) table [] in
  Mutex.unlock table_lock;
  List.iter reset hs
