(* Minimal JSON support shared by the observability emitters and the
   bench artefact tooling — the repo takes no JSON dependency.

   [escape] hardens string emission against arbitrary bytes: quotes,
   backslashes, control characters AND every byte >= 0x7f are emitted
   as escapes, so the output is pure printable ASCII and therefore
   valid JSON (and valid UTF-8) regardless of what bytes a
   user-supplied span or counter name contains.

   [parse] is a strict recursive-descent reader for the subset the
   BENCH_*.json artefacts use (all of standard JSON, numbers as
   floats). It exists so `ld bench-diff` can join artefacts without a
   dependency; it is not a streaming parser and is not meant for huge
   documents. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let peek_is c = !pos < n && Char.equal s.[!pos] c in
  let advance () = incr pos in
  let rec ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      ws ()
    | _ -> ()
  in
  let expect c =
    if peek_is c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal l v =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
    then begin
      pos := !pos + String.length l;
      v
    end
    else fail ("expected " ^ l)
  in
  let hex4 () =
    let d c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape"
    in
    let v = ref 0 in
    for _ = 1 to 4 do
      match peek () with
      | Some c ->
        v := (!v * 16) + d c;
        advance ()
      | None -> fail "bad \\u escape"
    done;
    !v
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' ->
          Buffer.add_char buf '"';
          advance ()
        | Some '\\' ->
          Buffer.add_char buf '\\';
          advance ()
        | Some '/' ->
          Buffer.add_char buf '/';
          advance ()
        | Some 'b' ->
          Buffer.add_char buf '\b';
          advance ()
        | Some 'f' ->
          Buffer.add_char buf '\012';
          advance ()
        | Some 'n' ->
          Buffer.add_char buf '\n';
          advance ()
        | Some 'r' ->
          Buffer.add_char buf '\r';
          advance ()
        | Some 't' ->
          Buffer.add_char buf '\t';
          advance ()
        | Some 'u' ->
          advance ();
          let v = hex4 () in
          (* UTF-8 encode the code point; surrogate pairs are not
             recombined — the artefacts never emit them. *)
          if v < 0x80 then Buffer.add_char buf (Char.chr v)
          else if v < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
          end
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek_is '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    if peek_is '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    ws ();
    match peek () with
    | Some '{' ->
      advance ();
      ws ();
      if peek_is '}' then begin
        advance ();
        Obj []
      end
      else begin
        let members = ref [] in
        let rec go () =
          ws ();
          let k = string_lit () in
          ws ();
          expect ':';
          let v = value () in
          members := (k, v) :: !members;
          ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        go ();
        Obj (List.rev !members)
      end
    | Some '[' ->
      advance ();
      ws ();
      if peek_is ']' then begin
        advance ();
        Arr []
      end
      else begin
        let elems = ref [] in
        let rec go () =
          elems := value () :: !elems;
          ws ();
          match peek () with
          | Some ',' ->
            advance ();
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        go ();
        Arr (List.rev !elems)
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | _ -> fail "expected value"
  in
  let v = value () in
  ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse contents

(* Accessors used by the artefact tooling; [None] on shape mismatch. *)
let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function Arr vs -> Some vs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
