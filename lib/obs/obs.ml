(* The sink switch is a plain atomic read on every instrumented call;
   everything else only runs once it is flipped on. *)

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

(* Long-running samplers (`ld top`, `ld metrics --serve --loop`) want
   counters, gauges and histograms but would grow the span buffers
   without bound; this second switch turns span events off while the
   numeric side keeps recording. Only consulted when the sink is on. *)
let spans_on = Atomic.make true
let set_span_recording b = Atomic.set spans_on b
let spans_enabled () = Atomic.get on && Atomic.get spans_on

let now_ns () = Monotonic_clock.now ()
let now_ms () = Int64.to_float (now_ns ()) /. 1e6

type phase = B | E

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : int64;
  ev_tid : int;
  ev_args : (string * string) list;
}

(* One growable event buffer per domain, reached through domain-local
   storage: appends never synchronise. The registry of buffers (for
   export) takes a mutex only when a domain records its first event. *)
type buffer = { tid : int; mutable evs : event array; mutable len : int }

let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let dummy_event = { ev_name = ""; ev_phase = B; ev_ts = 0L; ev_tid = 0; ev_args = [] }

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int); evs = Array.make 256 dummy_event; len = 0 }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let push ev =
  let b = Domain.DLS.get buffer_key in
  if b.len = Array.length b.evs then begin
    let bigger = Array.make (2 * b.len) dummy_event in
    Array.blit b.evs 0 bigger 0 b.len;
    b.evs <- bigger
  end;
  b.evs.(b.len) <- ev;
  b.len <- b.len + 1

let span_begin ?(args = []) name =
  if spans_enabled () then
    push
      {
        ev_name = name;
        ev_phase = B;
        ev_ts = now_ns ();
        ev_tid = (Domain.self () :> int);
        ev_args = args;
      }

let span_end name =
  if spans_enabled () then
    push
      {
        ev_name = name;
        ev_phase = E;
        ev_ts = now_ns ();
        ev_tid = (Domain.self () :> int);
        ev_args = [];
      }

let with_span ?args name f =
  if not (spans_enabled ()) then f ()
  else begin
    span_begin ?args name;
    match f () with
    | v ->
      span_end name;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      span_end name;
      Printexc.raise_with_backtrace e bt
  end

module Counter = struct
  type t = { cname : string; cell : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 64
  let table_lock = Mutex.create ()

  let make cname =
    Mutex.lock table_lock;
    let c =
      match Hashtbl.find_opt table cname with
      | Some c -> c
      | None ->
        let c = { cname; cell = Atomic.make 0 } in
        Hashtbl.add table cname c;
        c
    in
    Mutex.unlock table_lock;
    c

  let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell n)
  let incr c = add c 1
  let value c = Atomic.get c.cell
  let name c = c.cname

  (* Every registered counter (zeros included), name-sorted: a stable
     basis for differencing around a section of work. *)
  let snapshot_all () =
    Mutex.lock table_lock;
    let all =
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) table []
    in
    Mutex.unlock table_lock;
    List.sort (fun (a, _) (b, _) -> String.compare a b) all

  (* [diff before after]: per-counter increments between two snapshots,
     dropping zero deltas and counters absent from [after]. Counters
     born between the snapshots count from zero. *)
  let diff before after =
    List.filter_map
      (fun (name, v1) ->
        let v0 =
          match List.assoc_opt name before with Some v -> v | None -> 0
        in
        if v1 - v0 <> 0 then Some (name, v1 - v0) else None)
      after
end

module Gauge = struct
  type t = { gname : string; cell : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 16
  let table_lock = Mutex.create ()

  let make gname =
    Mutex.lock table_lock;
    let g =
      match Hashtbl.find_opt table gname with
      | Some g -> g
      | None ->
        let g = { gname; cell = Atomic.make 0 } in
        Hashtbl.add table gname g;
        g
    in
    Mutex.unlock table_lock;
    g

  (* Max-accumulate with a CAS loop: concurrent recorders can only
     push the value up, so a lost race is retried against the larger
     value and the final result is the true maximum. *)
  let record g v =
    if Atomic.get on then begin
      let rec loop () =
        let cur = Atomic.get g.cell in
        if v > cur && not (Atomic.compare_and_set g.cell cur v) then loop ()
      in
      loop ()
    end

  let value g = Atomic.get g.cell
  let name g = g.gname
end

let gauges () =
  Mutex.lock Gauge.table_lock;
  let all =
    Hashtbl.fold (fun name g acc -> (name, Gauge.value g) :: acc) Gauge.table []
  in
  Mutex.unlock Gauge.table_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

(* Peak resident set size (VmHWM) from /proc/self/status — a monotone
   high-water mark over the whole process lifetime. [None] off Linux
   or if the field is missing. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  (* ld-lint: allow exn-swallow — best-effort probe, absence of procfs is fine *)
  | exception _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
          let rest = String.trim (String.sub line 6 (String.length line - 6)) in
          match String.split_on_char ' ' rest with
          | kb :: _ -> int_of_string_opt kb
          | [] -> None
        end
        else scan ()
    in
    let r = scan () in
    close_in ic;
    r

let counters () =
  Mutex.lock Counter.table_lock;
  let all =
    Hashtbl.fold (fun name c acc -> (name, Counter.value c) :: acc) Counter.table []
  in
  Mutex.unlock Counter.table_lock;
  (* Names are unique Hashtbl keys, so ordering by name is total. *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let buffers_snapshot () =
  Mutex.lock registry_lock;
  let bufs = List.rev !registry in
  Mutex.unlock registry_lock;
  bufs

let events () =
  List.concat_map
    (fun b -> List.init b.len (fun i -> b.evs.(i)))
    (buffers_snapshot ())

(* Drop recorded span events only, keeping counter and gauge values:
   what a long-lived sampler calls to bound memory. Quiesce recording
   domains first — truncating a buffer its owner is appending to loses
   the in-flight event. *)
let reset_events () =
  Mutex.lock registry_lock;
  List.iter (fun b -> b.len <- 0) !registry;
  Mutex.unlock registry_lock

let reset () =
  reset_events ();
  Mutex.lock Counter.table_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.Counter.cell 0) Counter.table;
  Mutex.unlock Counter.table_lock;
  Mutex.lock Gauge.table_lock;
  Hashtbl.iter (fun _ g -> Atomic.set g.Gauge.cell 0) Gauge.table;
  Mutex.unlock Gauge.table_lock

(* Fold each buffer through a span stack: a begin pushes, the matching
   end pops and charges the span's wall time to its name, subtracting
   the child's time from the parent's self time. Aggregation keys are
   ordered by first occurrence so summaries read in execution order. *)
let span_totals () =
  let order : string list ref = ref [] in
  let totals : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let slot name =
    match Hashtbl.find_opt totals name with
    | Some s -> s
    | None ->
      let s = (ref 0, ref 0., ref 0.) in
      Hashtbl.add totals name s;
      order := name :: !order;
      s
  in
  List.iter
    (fun b ->
      (* stack of (name, begin ts, child wall ns) *)
      let stack = ref [] in
      for i = 0 to b.len - 1 do
        let ev = b.evs.(i) in
        match ev.ev_phase with
        | B -> stack := (ev.ev_name, ev.ev_ts, ref 0L) :: !stack
        | E -> (
          match !stack with
          | [] -> () (* unbalanced end: ignore *)
          | (name, t0, children) :: rest ->
            stack := rest;
            let wall = Int64.sub ev.ev_ts t0 in
            (match rest with
            | (_, _, parent_children) :: _ ->
              parent_children := Int64.add !parent_children wall
            | [] -> ());
            let count, total, self = slot name in
            incr count;
            let wall_ms = Int64.to_float wall /. 1e6 in
            total := !total +. wall_ms;
            self := !self +. wall_ms -. (Int64.to_float !children /. 1e6))
      done)
    (buffers_snapshot ());
  List.rev_map
    (fun name ->
      let count, total, self = Hashtbl.find totals name in
      (name, (!count, !total, !self)))
    !order
