(** Observability primitives for the adversary pipeline: spans on a
    monotonic clock with per-domain event buffers, and [Atomic]-backed
    named counters with a registry.

    The default sink is a no-op: until {!enable} is called, {!with_span}
    runs its body directly, counter increments are dropped, and
    {!Trace.write} writes nothing — instrumentation left in hot paths
    costs one branch. All naming follows [<lib>.<area>.<what>]
    (e.g. [cover.refine.intern_misses], [core.pool.task]); see
    DESIGN.md § Observability.

    Events are appended to a lock-free per-domain buffer (domain-local
    storage; no synchronisation on the hot path, registration of a new
    domain's buffer takes a mutex once). The buffer's [tid] is the
    OCaml domain id, so a Chrome trace renders one row per domain. *)

(** {1 Global sink switch} *)

val enable : unit -> unit
(** Turn the sink on: spans are recorded, counters accumulate. *)

val disable : unit -> unit
(** Turn the sink back off. Recorded events and counter values are
    kept; use {!reset} to drop them. *)

val enabled : unit -> bool

val set_span_recording : bool -> unit
(** Secondary switch for span events only. Long-running samplers
    ([ld top], [ld metrics --serve]) set it to [false] so counters,
    gauges and histograms keep recording while the per-domain span
    buffers stop growing. Only consulted while the sink is enabled;
    defaults to [true]. *)

val spans_enabled : unit -> bool
(** [enabled () && span recording on] — the gate {!with_span} uses. *)

val reset : unit -> unit
(** Empty every domain's event buffer and zero every counter. Buffers
    stay registered, so domains that already touched the sink keep
    recording after a reset. *)

val reset_events : unit -> unit
(** Empty the span event buffers only, keeping counter and gauge
    values — what a long-lived sampler calls to bound memory. Quiesce
    recording domains first. *)

(** {1 Clock} *)

val now_ns : unit -> int64
(** Monotonic clock ([CLOCK_MONOTONIC]), nanoseconds. *)

val now_ms : unit -> float
(** {!now_ns} in milliseconds. *)

(** {1 Spans} *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a [name] span on the calling
    domain's buffer. The span is closed even if [f] raises. When the
    sink is disabled this is exactly [f ()]. *)

val span_begin : ?args:(string * string) list -> string -> unit
val span_end : string -> unit
(** Manual begin/end for spans that cannot wrap a closure. Ends must
    nest properly within the same domain. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val make : string -> t
  (** Interned by name: two [make "x"] return the same counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** Atomic; dropped while the sink is disabled. *)

  val value : t -> int
  val name : t -> string

  val snapshot_all : unit -> (string * int) list
  (** Every registered counter — zeros included — sorted by name: a
      stable basis for differencing around a section of work. *)

  val diff : (string * int) list -> (string * int) list -> (string * int) list
  (** [diff before after]: per-counter increments between two
      {!snapshot_all} snapshots, dropping zero deltas. Counters born
      between the snapshots count from zero. *)
end

val counters : unit -> (string * int) list
(** Snapshot of every registered counter, sorted by name. *)

(** {1 Gauges}

    Max-accumulating instruments for high-water marks (peak RSS, peak
    active set): {!Gauge.record} keeps the largest value seen. Same
    registry and sink discipline as counters. *)

module Gauge : sig
  type t

  val make : string -> t
  (** Interned by name: two [make "x"] return the same gauge. *)

  val record : t -> int -> unit
  (** Keep [max] of the recorded values. Atomic; dropped while the
      sink is disabled. *)

  val value : t -> int
  val name : t -> string
end

val gauges : unit -> (string * int) list
(** Snapshot of every registered gauge, sorted by name. *)

val peak_rss_kb : unit -> int option
(** Peak resident set size of this process in kB ([VmHWM] from
    [/proc/self/status]) — a monotone high-water mark over the whole
    process lifetime, not a per-phase figure. [None] when procfs is
    unavailable. *)

(** {1 Raw events (export and tests)} *)

type phase = B | E

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : int64; (* ns on the monotonic clock *)
  ev_tid : int; (* domain id *)
  ev_args : (string * string) list;
}

val events : unit -> event list
(** All recorded events, grouped by buffer (buffers in registration
    order); within one buffer events are in chronological order. *)

val span_totals : unit -> (string * (int * float * float)) list
(** Aggregate spans by name, in order of first occurrence:
    [(name, (count, total_ms, self_ms))]. [self_ms] excludes time spent
    in nested spans on the same domain. Unbalanced trailing begins are
    ignored. *)
