(* Prometheus / OpenMetrics text exposition of the whole registry:
   counters as `<name>_total`, gauges plain, histograms as cumulative
   `_bucket{le=...}` / `_sum` / `_count` families with durations
   converted from the internal nanoseconds to seconds (the Prometheus
   base unit). Metric names are `ld_` + the registry name with every
   byte outside [a-zA-Z0-9_:] mapped to '_', so dotted registry names
   like `core.lb.probe` expose as `ld_core_lb_probe`.

   This module is the health endpoint the certificate service mounts
   (ROADMAP § certificate service): `ld metrics` dumps one scrape,
   `ld metrics --serve PORT` answers GET /metrics over a minimal
   HTTP/1.1 loop on plain Unix sockets — no dependencies. *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let metric_name name = "ld_" ^ sanitize name

let render () =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      add "# TYPE %s counter\n" m;
      add "%s_total %d\n" m v)
    (Obs.counters ());
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      add "# TYPE %s gauge\n" m;
      add "%s %d\n" m v)
    (Obs.gauges ());
  (match Obs.peak_rss_kb () with
  | Some kb ->
    add "# TYPE ld_process_peak_rss_kilobytes gauge\n";
    add "ld_process_peak_rss_kilobytes %d\n" kb
  | None -> ());
  List.iter
    (fun (sn : Hist.snapshot) ->
      let m = metric_name sn.Hist.sn_name ^ "_seconds" in
      add "# TYPE %s histogram\n" m;
      Array.iter
        (fun (idx, cum) ->
          let _, up = Hist.bucket_bounds idx in
          add "%s_bucket{le=\"%.9g\"} %d\n" m (float_of_int up /. 1e9) cum)
        sn.Hist.sn_buckets;
      add "%s_bucket{le=\"+Inf\"} %d\n" m sn.Hist.sn_count;
      add "%s_sum %.9g\n" m (float_of_int sn.Hist.sn_sum /. 1e9);
      add "%s_count %d\n" m sn.Hist.sn_count)
    (Hist.snapshots_all ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Minimal HTTP GET loop. One request per connection, Connection:
   close; [body] is re-rendered per scrape so the figures are live.
   [max_requests] bounds the loop for tests; the default serves until
   the process dies. *)

let http_response ~status ~body =
  Printf.sprintf
    "HTTP/1.1 %s\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status (String.length body) body

let handle_client fd body =
  (try
     let buf = Bytes.create 4096 in
     let n = Unix.read fd buf 0 4096 in
     let req = if n > 0 then Bytes.sub_string buf 0 n else "" in
     let first_line =
       match String.index_opt req '\r' with
       | Some i -> String.sub req 0 i
       | None -> req
     in
     let resp =
       match String.split_on_char ' ' first_line with
       | "GET" :: path :: _ when path = "/metrics" || path = "/" ->
         http_response ~status:"200 OK" ~body:(body ())
       | _ -> http_response ~status:"404 Not Found" ~body:"not found\n"
     in
     ignore (Unix.write_substring fd resp 0 (String.length resp))
   with
   (* ld-lint: allow exn-swallow — torn-down client must not kill the loop *)
   | _ -> ());
  (* ld-lint: allow exn-swallow — double-close on a dead fd is fine *)
  try Unix.close fd with _ -> ()

let serve ?(max_requests = -1) ~port body =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_any, port));
  Unix.listen sock 16;
  let served = ref 0 in
  while max_requests < 0 || !served < max_requests do
    let fd, _ = Unix.accept sock in
    handle_client fd body;
    incr served
  done;
  Unix.close sock
