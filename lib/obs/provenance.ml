(* Run provenance for JSON bench artefacts: which commit the binary
   was produced from, whether the tree was dirty, and when the run
   happened. A stored BENCH_*.json must identify the code it measured
   — recording HEAD alone is not enough, since an uncommitted tree
   measures code no commit contains (that is exactly the staleness
   this module exists to prevent; see DESIGN.md § Benchmarks). All
   probes are best-effort: absence of git yields [None], never a
   failure. *)

let run_line cmd =
  match Unix.open_process_in cmd with
  (* ld-lint: allow exn-swallow — best-effort probe, absence of git is fine *)
  | exception _ -> None
  | ic -> (
    let line = try input_line ic with End_of_file -> "" in
    (* drain so close_process_in does not race a writing child *)
    (try
       while true do
         ignore (input_line ic)
       done
     with End_of_file -> ());
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> Some (String.trim line)
    | _ -> None
    (* ld-lint: allow exn-swallow — best-effort probe, absence of git is fine *)
    | exception _ -> None)

let git_head () =
  match run_line "git rev-parse --short HEAD 2>/dev/null" with
  | Some "" | None -> None
  | Some line -> Some line

(* "Dirty" means the *measured code* differs from HEAD. The bench
   artefacts themselves (BENCH_*.json) are outputs of the measurement,
   not inputs to it, so a freshly regenerated sibling artefact must
   not flip the flag — and neither may untracked scratch files like
   trace.json (a best-effort probe accepts missing brand-new sources
   here rather than reporting every artefact run as dirty). *)
let git_dirty () =
  match
    run_line
      "git status --porcelain --untracked-files=no -- \
       ':(exclude)BENCH_*.json' 2>/dev/null"
  with
  | None -> None
  | Some line -> Some (line <> "")

let iso8601 t =
  (* Wall-clock metadata for the artefact — sanctioned here: lib/obs
     owns the clock, so no lint allow is needed (or permitted; a
     redundant one reads as stale). *)
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

type t = { commit : string; dirty : bool option; timestamp : string }

let capture () =
  {
    commit = Option.value ~default:"unknown" (git_head ());
    dirty = git_dirty ();
    (* wall-clock metadata; sanctioned inside lib/obs *)
    timestamp = iso8601 (Unix.time ());
  }

(* The meta fields shared by every bench artefact, pre-rendered as
   JSON lines (without surrounding braces) so emitters stay in sync. *)
let json_meta_fields p =
  [
    Printf.sprintf "\"git_commit\": \"%s\"" p.commit;
    (match p.dirty with
    | None -> "\"git_dirty\": null"
    | Some d -> Printf.sprintf "\"git_dirty\": %b" d);
    Printf.sprintf "\"timestamp\": \"%s\"" p.timestamp;
  ]
