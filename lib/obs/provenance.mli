(** Run provenance for JSON bench artefacts. BENCH_THM1.json once
    recorded a commit two PRs behind the tree that produced it; this
    module is the single shared probe so every artefact records the
    actual HEAD {e and} whether the working tree was dirty when the
    numbers were taken. All probes are best-effort ([None] without
    git), never a failure. *)

val git_head : unit -> string option
(** Short commit hash of HEAD, if inside a git work tree. *)

val git_dirty : unit -> bool option
(** Whether the work tree has uncommitted changes ([git status
    --porcelain] nonempty). [None] if git is unavailable. *)

val iso8601 : float -> string
(** Render a Unix timestamp as [YYYY-MM-DDThh:mm:ssZ] (UTC). *)

type t = {
  commit : string;  (** short HEAD, or ["unknown"] *)
  dirty : bool option;
  timestamp : string;  (** capture time, ISO 8601 UTC *)
}

val capture : unit -> t

val json_meta_fields : t -> string list
(** The shared meta fields as rendered JSON [key: value] strings
    (no braces, no trailing commas) — every bench emitter folds these
    into its ["meta"] object so the provenance schema stays uniform. *)
