(* Counting per-tid events and `core.pool.task` spans gives the
   utilisation picture (tasks per domain) without opening the trace. *)
let per_domain () =
  let by_tid : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.event) ->
      let evs, tasks =
        match Hashtbl.find_opt by_tid e.ev_tid with
        | Some s -> s
        | None ->
          let s = (ref 0, ref 0) in
          Hashtbl.add by_tid e.ev_tid s;
          s
      in
      incr evs;
      if e.ev_phase = Obs.B && e.ev_name = "core.pool.task" then incr tasks)
    (Obs.events ());
  Hashtbl.fold (fun tid (evs, tasks) acc -> (tid, !evs, !tasks) :: acc) by_tid []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let pp fmt () =
  let spans = Obs.span_totals () in
  if spans <> [] then begin
    Format.fprintf fmt "@[<v>spans (execution order):@,";
    Format.fprintf fmt "  %-34s %8s %12s %12s %10s@," "name" "count" "total ms"
      "self ms" "mean us";
    List.iter
      (fun (name, (count, total, self)) ->
        Format.fprintf fmt "  %-34s %8d %12.3f %12.3f %10.1f@," name count total
          self
          (1000. *. total /. float_of_int count))
      spans;
    Format.fprintf fmt "@]"
  end;
  (match per_domain () with
  | [] | [ _ ] -> ()
  | domains ->
    Format.fprintf fmt "@[<v>domains:@,";
    List.iter
      (fun (tid, evs, tasks) ->
        Format.fprintf fmt "  domain-%-3d %6d events %6d pool tasks@," tid evs
          tasks)
      domains;
    Format.fprintf fmt "@]");
  let nonzero = List.filter (fun (_, v) -> v <> 0) (Obs.counters ()) in
  if nonzero <> [] then begin
    Format.fprintf fmt "@[<v>counters:@,";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  %-42s %12d@," name v)
      nonzero;
    Format.fprintf fmt "@]"
  end

(* Merge the main buffer's spans by path: one tree line per distinct
   stack of names, in first-occurrence order. *)
let pp_tree fmt () =
  let events = Obs.events () in
  match events with
  | [] -> ()
  | first :: _ ->
    let main_tid = first.Obs.ev_tid in
    let order : string list list ref = ref [] in
    let totals : (string list, int ref * float ref) Hashtbl.t =
      Hashtbl.create 32
    in
    (* Paths are registered at span {e begin} so parents precede their
       children in the printed order; durations accumulate at end. *)
    let stack = ref [] in
    List.iter
      (fun (e : Obs.event) ->
        if e.ev_tid = main_tid then
          match e.ev_phase with
          | Obs.B ->
            let path =
              List.rev (e.ev_name :: List.map (fun (n, _, _) -> n) !stack)
            in
            if not (Hashtbl.mem totals path) then begin
              Hashtbl.add totals path (ref 0, ref 0.);
              order := path :: !order
            end;
            stack := (e.ev_name, e.ev_ts, path) :: !stack
          | Obs.E -> (
            match !stack with
            | [] -> ()
            | (_, t0, path) :: rest ->
              stack := rest;
              let count, total = Hashtbl.find totals path in
              incr count;
              total := !total +. (Int64.to_float (Int64.sub e.ev_ts t0) /. 1e6)))
      events;
    Format.fprintf fmt "@[<v>span tree (domain-%d):@," main_tid;
    List.iter
      (fun path ->
        let count, total = Hashtbl.find totals path in
        let depth = List.length path - 1 in
        Format.fprintf fmt "  %s%s  x%d  %.3f ms@,"
          (String.concat "" (List.init depth (fun _ -> "  ")))
          (List.nth path depth) !count !total)
      (List.rev !order);
    Format.fprintf fmt "@]"

(* Span table restricted to one [core.lb.level] subtree, selected by the
   ("level", i) arg the engine stamps on the span. The engine processes
   levels sequentially, so a matching level span's [t0, t1] window
   delimits its work exactly — including probe tasks fanned out to other
   pool domains, which begin and end inside the window. Scoping by
   window therefore captures the whole subtree across domains while
   excluding sibling levels. *)
let pp_level ~level fmt () =
  let want = string_of_int level in
  let events = Obs.events () in
  (* Pass 1: the [t0, t1] windows of matching level spans (one per
     engine run in the buffer), via per-domain stacks. *)
  let windows = ref [] in
  let stacks : (int, (string * int64 * bool) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  List.iter
    (fun (e : Obs.event) ->
      let stack = stack_of e.ev_tid in
      match e.ev_phase with
      | Obs.B ->
        let matches =
          e.ev_name = "core.lb.level"
          && List.exists (fun (k, v) -> k = "level" && v = want) e.ev_args
        in
        stack := (e.ev_name, e.ev_ts, matches) :: !stack
      | Obs.E -> (
        match !stack with
        | [] -> ()
        | (_, t0, matches) :: rest ->
          stack := rest;
          if matches then windows := (t0, e.ev_ts) :: !windows))
    events;
  let in_window ts =
    List.exists (fun (t0, t1) -> ts >= t0 && ts <= t1) !windows
  in
  (* Pass 2: accumulate every span beginning inside a window. *)
  let order : string list ref = ref [] in
  let totals : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  Hashtbl.reset stacks;
  let stacks2 : (int, (string * int64 * bool * float ref) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack2_of tid =
    match Hashtbl.find_opt stacks2 tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks2 tid s;
      s
  in
  List.iter
    (fun (e : Obs.event) ->
      let stack = stack2_of e.ev_tid in
      match e.ev_phase with
      | Obs.B -> stack := (e.ev_name, e.ev_ts, in_window e.ev_ts, ref 0.) :: !stack
      | Obs.E -> (
        match !stack with
        | [] -> ()
        | (name, t0, in_scope, child) :: rest ->
          stack := rest;
          let dur = Int64.to_float (Int64.sub e.ev_ts t0) /. 1e6 in
          (match rest with
          | (_, _, _, pchild) :: _ -> pchild := !pchild +. dur
          | [] -> ());
          if in_scope then begin
            let count, total, self =
              match Hashtbl.find_opt totals name with
              | Some s -> s
              | None ->
                let s = (ref 0, ref 0., ref 0.) in
                Hashtbl.add totals name s;
                order := name :: !order;
                s
            in
            incr count;
            total := !total +. dur;
            self := !self +. (dur -. !child)
          end))
    events;
  match List.rev !order with
  | [] ->
    Format.fprintf fmt "no spans recorded for level %d (enable the sink and \
                        pick a level below the outcome's)@."
      level
  | names ->
    Format.fprintf fmt "@[<v>spans within core.lb.level level=%d:@," level;
    Format.fprintf fmt "  %-34s %8s %12s %12s %10s@," "name" "count" "total ms"
      "self ms" "mean us";
    List.iter
      (fun name ->
        let count, total, self = Hashtbl.find totals name in
        Format.fprintf fmt "  %-34s %8d %12.3f %12.3f %10.1f@," name !count
          !total !self
          (1000. *. !total /. float_of_int !count))
      names;
    Format.fprintf fmt "@]"

(* Machine-readable form of the [pp] tables plus histogram quantiles:
   one JSON object so scripts can consume `ld stats --json` without
   scraping the aligned text. Quantiles are reported in milliseconds
   to match the text tables; the exposition endpoint is the place for
   base-unit seconds. *)
let to_json () =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"spans\": [";
  List.iteri
    (fun i (name, (count, total, self)) ->
      if i > 0 then add ",";
      add "\n    {\"name\": \"%s\", \"count\": %d, \"total_ms\": %.6f, \
           \"self_ms\": %.6f}"
        (Json.escape name) count total self)
    (Obs.span_totals ());
  add "\n  ],\n  \"counters\": {";
  let nonzero = List.filter (fun (_, v) -> v <> 0) (Obs.counters ()) in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then add ",";
      add "\n    \"%s\": %d" (Json.escape name) v)
    nonzero;
  add "\n  },\n  \"gauges\": {";
  let gauges = List.filter (fun (_, v) -> v <> 0) (Obs.gauges ()) in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then add ",";
      add "\n    \"%s\": %d" (Json.escape name) v)
    gauges;
  add "\n  },\n  \"histograms\": [";
  List.iteri
    (fun i (sn : Hist.snapshot) ->
      if i > 0 then add ",";
      add
        "\n    {\"name\": \"%s\", \"count\": %d, \"p50_ms\": %.6f, \
         \"p90_ms\": %.6f, \"p99_ms\": %.6f, \"p999_ms\": %.6f, \
         \"max_ms\": %.6f, \"sum_ms\": %.6f}"
        (Json.escape sn.Hist.sn_name)
        sn.Hist.sn_count
        (Hist.quantile_ms sn 0.5) (Hist.quantile_ms sn 0.9)
        (Hist.quantile_ms sn 0.99)
        (Hist.quantile_ms sn 0.999)
        (Hist.max_ms sn) (Hist.sum_ms sn))
    (Hist.snapshots ());
  add "\n  ],\n  \"domains\": [";
  List.iteri
    (fun i (tid, evs, tasks) ->
      if i > 0 then add ",";
      add "\n    {\"tid\": %d, \"events\": %d, \"pool_tasks\": %d}" tid evs
        tasks)
    (per_domain ());
  add "\n  ]";
  (match Obs.peak_rss_kb () with
  | Some kb -> add ",\n  \"peak_rss_kb\": %d" kb
  | None -> ());
  add "\n}\n";
  Buffer.contents buf

let section_ms ~prefix =
  List.filter_map
    (fun (name, (_, total, _)) ->
      if String.starts_with ~prefix name then
        Some
          ( String.sub name (String.length prefix)
              (String.length name - String.length prefix),
            total )
      else None)
    (Obs.span_totals ())
