(** Human-readable rendering of the recorded spans and counters. *)

val pp : Format.formatter -> unit -> unit
(** Span table (count, total ms, self ms, mean µs — execution order),
    per-domain event/task utilisation, and every non-zero counter. *)

val pp_tree : Format.formatter -> unit -> unit
(** Span tree of the first (main) domain's buffer: nesting as recorded,
    merged by path, one line per distinct path with count and total. *)

val pp_level : level:int -> Format.formatter -> unit -> unit
(** Span table restricted to the [core.lb.level] span carrying arg
    [("level", i)] and everything nested inside it (across domains —
    the level's probe fan-out is included, sibling levels are not). *)

val to_json : unit -> string
(** Machine-readable form of the {!pp} tables plus histogram quantiles:
    one JSON object with [spans], [counters], [gauges], [histograms]
    (p50/p90/p99/p999/max/sum in milliseconds), [domains] and, when
    available, [peak_rss_kb]. Backs [ld stats --json]. *)

val section_ms : prefix:string -> (string * float) list
(** Total wall-clock per span whose name starts with [prefix], prefix
    stripped, in execution order — the bench uses this to fold section
    timings into its JSON artefact from the same clock as the trace. *)
