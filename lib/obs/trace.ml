(* Span/counter names and arg strings are caller-supplied and may hold
   arbitrary bytes; [Json.escape] renders them as pure-ASCII JSON
   string contents (quotes, backslashes, control chars and bytes
   >= 0x7f all escaped), so a hostile name can never produce an
   invalid trace.json. *)
let escape = Json.escape

let add_args buf = function
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
      args;
    Buffer.add_char buf '}'

(* Timestamps are microseconds in the trace-event spec; we keep
   nanosecond precision with a fractional part. *)
let us_of_ns ns = Int64.to_float ns /. 1e3

let to_string () =
  let events = Obs.events () in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n";
    Buffer.add_string buf s
  in
  let tids = List.sort_uniq Int.compare (List.map (fun e -> e.Obs.ev_tid) events) in
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"domain-%d\"}}"
           tid tid))
    tids;
  List.iter
    (fun (e : Obs.event) ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"ld\",\"ph\":\"%s\",\"ts\":%.3f,\
            \"pid\":1,\"tid\":%d"
           (escape e.ev_name)
           (match e.ev_phase with Obs.B -> "B" | Obs.E -> "E")
           (us_of_ns e.ev_ts) e.ev_tid);
      add_args b e.ev_args;
      Buffer.add_char b '}';
      emit (Buffer.contents b))
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\",\"ld_metrics\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n\"%s\":%d" (escape name) v))
    (Obs.counters ());
  Buffer.add_string buf "\n}}\n";
  Buffer.contents buf

let write ~path =
  if Obs.enabled () then begin
    let oc = open_out path in
    output_string oc (to_string ());
    close_out oc
  end
