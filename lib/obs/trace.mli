(** Chrome trace-event export of the recorded spans.

    The output is the JSON object format of the Trace Event spec
    (loadable in Perfetto / [chrome://tracing]): a ["traceEvents"]
    array of [B]/[E] duration events with [pid] 1 and [tid] = OCaml
    domain id, thread-name metadata per domain, and the final counter
    values under an ["ld_metrics"] key. *)

val to_string : unit -> string
(** Render the current event buffers and counters. *)

val write : path:string -> unit
(** [write ~path] writes {!to_string} to [path]. A no-op while the sink
    is disabled: no file is created or truncated. *)
