type step = { fwd : bool; colour : int }
type address = step list

let inverse s = { s with fwd = not s.fwd }

let normalize steps =
  (* One left-to-right pass with a stack cancels all inverse pairs. *)
  let push acc s =
    match acc with
    | top :: rest when top = inverse s -> rest
    | _ -> s :: acc
  in
  List.rev (List.fold_left push [] steps)

let concat a b = normalize (a @ b)

(* Rank of a dart at a node, PO1 convention: outgoing darts by colour
   first, then incoming darts by colour. *)
let dart_rank ~out ~colour = ((if out then 0 else 1), colour)

(* The dart by which a step [s] leaves its source node, and the dart by
   which it enters its target node. *)
let departure_dart s = dart_rank ~out:s.fwd ~colour:s.colour
let arrival_dart s = dart_rank ~out:(not s.fwd) ~colour:s.colour

let bracket x y =
  (* Strip the common prefix; the path x⇝y is reverse(a) then b. *)
  let rec strip a b =
    match (a, b) with
    | sa :: ra, sb :: rb when sa = sb -> strip ra rb
    | _ -> (a, b)
  in
  let a, b = strip x y in
  let path = List.rev_map inverse a @ b in
  let edge_term = List.fold_left (fun acc s -> acc + if s.fwd then 1 else -1) 0 path in
  let rec node_terms acc = function
    | s_in :: (s_out :: _ as rest) ->
      let t = if arrival_dart s_in < departure_dart s_out then 1 else -1 in
      node_terms (acc + t) rest
    | _ -> acc
  in
  edge_term + node_terms 0 path

let compare x y =
  if x = y then 0 else begin
    let b = bracket x y in
    (* The bracket is odd for distinct reduced addresses, hence nonzero. *)
    assert (b <> 0);
    if b > 0 then -1 else 1
  end

let sort_nodes addrs = List.sort compare addrs

let pp_step fmt s =
  Format.fprintf fmt "%s%d" (if s.fwd then "+" else "-") s.colour

let pp fmt a =
  if a = [] then Format.pp_print_string fmt "o"
  else List.iter (pp_step fmt) a
