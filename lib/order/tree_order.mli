(** The canonical homogeneous linear order on the infinite [2d]-regular
    [d]-edge-coloured PO-tree [T] (paper Lemma 4, Appendix A.2).

    Nodes of [T] are represented by their {e address}: the reduced
    sequence of steps from a fixed origin, each step following either an
    outgoing arc ([fwd = true]) or an incoming arc ([fwd = false]) of a
    given colour. Reduced means non-backtracking — a step is never
    followed by its inverse, mirroring simple paths in the tree.

    The order compares two nodes through the combinatorial bracket

    [⟦x⇝y⟧ = Σ_{e ∈ E(x⇝y)} [x ≺_e y] + Σ_{v ∈ V_in(x⇝y)} [x ≺_v y]]

    with [x ≺ y ⟺ ⟦x⇝y⟧ > 0], where [≺_e] orders an arc's endpoints
    tail-first and [≺_v] orders the darts at a node outgoing-by-colour
    first, then incoming-by-colour (the paper's PO2 → PO1 convention,
    Fig. 2). [⟦x⇝y⟧] is always odd for [x ≠ y] (totality), antisymmetric,
    and transitive — and it depends only on the reduced step word from
    [x] to [y], which makes the order {e homogeneous}: every translation
    of [T] preserves it, so ordered neighbourhoods look the same from
    every node. *)

type step = { fwd : bool; colour : int }

(** A reduced address (steps from the origin). The empty list is the
    origin itself. *)
type address = step list

val inverse : step -> step

(** Cancel adjacent inverse pairs until reduced. *)
val normalize : step list -> step list

(** [concat a b] is the reduced concatenation — node [b] as seen after
    translating the origin to [a]. *)
val concat : address -> address -> address

(** The bracket [⟦x⇝y⟧]; antisymmetric, odd whenever [x <> y].
    Addresses must be reduced (as produced by {!normalize}/{!concat}). *)
val bracket : address -> address -> int

(** Total order: negative iff [x ≺ y]. *)
val compare : address -> address -> int

(** [sort_nodes addrs] sorts addresses by the canonical order. *)
val sort_nodes : address list -> address list

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> address -> unit
