(* A minimal fork-join pool over OCaml 5 domains for the benchmark's
   outer fan-out (per-Δ theorem rows, per-r frontier probes). Tasks are
   pulled from a shared atomic index; results land in a slot per task,
   so the output order is the submission order no matter which domain
   ran what — callers see deterministic results. *)

module Obs = Ld_obs.Obs

let c_maps = Obs.Counter.make "core.pool.maps"
let c_tasks = Obs.Counter.make "core.pool.tasks"
let c_workers = Obs.Counter.make "core.pool.workers_spawned"

(* The backtrace travels with the exception so a worker failure
   re-raised on the main domain still points into the task body. *)
type 'b slot = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

let default_domains () =
  match Sys.getenv_opt "LD_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d -> Stdlib.max 1 d
    | None ->
      Printf.eprintf
        "ld: warning: ignoring malformed LD_DOMAINS=%S (expected an integer); \
         using 1 domain\n\
         %!"
        s;
      1)
  | None -> Stdlib.max 1 (Stdlib.min 8 (Domain.recommended_domain_count ()))

(* Largest worker crew any [map] of this process actually ran with —
   what "domains" in emitted metadata should say, as opposed to the
   [default_domains] recommendation (a map never uses more workers than
   it has tasks). *)
let effective_workers = Atomic.make 1

let rec record_workers w =
  let seen = Atomic.get effective_workers in
  if w > seen && not (Atomic.compare_and_set effective_workers seen w) then
    record_workers w

let max_workers_used () = Atomic.get effective_workers

(* [timed_span] emits the same "core.pool.task" span events as the
   [with_span] it replaces, and additionally feeds the task's wall time
   into the latency histogram of the same name. *)
let h_task = Ld_obs.Hist.make "core.pool.task"
let run_task f x = Ld_obs.Hist.timed_span h_task (fun () -> f x)

let map ?domains f items =
  let input = Array.of_list items in
  let n = Array.length input in
  let requested =
    match domains with Some d -> Stdlib.max 1 d | None -> default_domains ()
  in
  let workers = Stdlib.min requested n in
  Obs.Counter.incr c_maps;
  Obs.Counter.add c_tasks n;
  if n > 0 then record_workers workers;
  if workers <= 1 then List.map (run_task f) items
  else
    Obs.with_span
      ~args:
        [ ("tasks", string_of_int n); ("workers", string_of_int workers) ]
      "core.pool.map"
    @@ fun () ->
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          (match run_task f input.(i) with
          | v -> Done v
          | exception e -> Failed (e, Printexc.get_raw_backtrace ()));
        work ()
      end
    in
    let worker () = Obs.with_span "core.pool.worker" work in
    Obs.Counter.add c_workers (workers - 1);
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    (* The join is the pool's idle tail: the main domain ran dry while
       some worker still holds the longest task. *)
    Obs.with_span "core.pool.join" (fun () -> Array.iter Domain.join spawned);
    (* Surface the first failure in submission order, as sequential
       [List.map] would — with the worker domain's backtrace. *)
    Array.to_list results
    |> List.map (function
         | Done v -> v
         | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
         | Pending -> assert false)

let mapi ?domains f items =
  map ?domains (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) items)
