(** Fork-join fan-out over OCaml 5 domains.

    The lower-bound engine's outer loops — one theorem row per [Δ], one
    frontier probe per truncation round [r] — are embarrassingly
    parallel: the engine has no global mutable state and the arithmetic
    layer is purely functional, so each task can run in its own domain.
    This pool maps a function over a task list with a small crew of
    domains and joins the results {e in submission order}, so output is
    bit-for-bit identical to the sequential run. *)

(** [map ?domains f tasks] is [List.map f tasks], computed by up to
    [domains] domains pulling tasks from a shared queue.

    - [domains] defaults to the [LD_DOMAINS] environment variable if
      set, else [min 8 (Domain.recommended_domain_count ())]. A
      malformed [LD_DOMAINS] value is reported on stderr (and falls
      back to 1 domain) rather than silently ignored.
    - With one worker (or fewer tasks than two) no domain is spawned:
      the call degrades to plain [List.map f tasks].
    - If any task raises, the exception of the {e earliest} failed task
      (submission order) is re-raised after all domains joined — again
      matching the sequential behaviour. The re-raise preserves the
      worker domain's backtrace ([Printexc.raise_with_backtrace]).
    - When the {!Ld_obs} sink is enabled, every task runs inside a
      [core.pool.task] span and each worker domain a [core.pool.worker]
      span, so a trace shows per-domain utilisation and the idle tail
      ([core.pool.join]) directly. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** The worker-count [map] uses when [?domains] is omitted ([LD_DOMAINS]
    or the hardware default) — exposed so callers can report it. *)
val default_domains : unit -> int

(** Largest worker crew any {!map} of this process has actually run with
    ([1] if none ran yet) — unlike {!default_domains} this reflects the
    task-count clamp, so metadata emitted from it describes the fan-out
    that really happened. *)
val max_workers_used : unit -> int

(** [mapi] is {!map} with the task's submission index. *)
val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
