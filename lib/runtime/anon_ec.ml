module Ec = Ld_models.Ec
module Obs = Ld_obs.Obs
module Pool = Ld_pool.Pool

(* Per-run traffic of the EC executor. [darts_scanned] counts inbox
   reads actually performed by machines (the lazy inbox only pays for
   what [recv] touches); [send_cache_hits] counts reads served from a
   halted sender's frozen broadcast; [active_nodes] sums the worklist
   size over rounds, so active_nodes/rounds is the mean frontier. *)
let c_rounds = Obs.Counter.make "runtime.ec.rounds"
let c_darts = Obs.Counter.make "runtime.ec.darts_scanned"
let c_reflected = Obs.Counter.make "runtime.ec.loop_reflected"
let c_sends = Obs.Counter.make "runtime.ec.sends"
let c_cache_hits = Obs.Counter.make "runtime.ec.send_cache_hits"
let c_active = Obs.Counter.make "runtime.ec.active_nodes"
let h_round = Ld_obs.Hist.make "runtime.ec.round"

module Inbox = struct
  (* A cursor over one node's dart segment [lo, hi) of the CSR arrays.
     [out.(u)] is node [u]'s current broadcast; [frozen.(u)] means that
     broadcast was cached at halt time. Tallies accumulate across
     rounds and are flushed to the counters once per run. *)
  type 'msg t = {
    colours : int array;
    others : int array;
    out : 'msg array;
    frozen : bool array;
    mutable node : int;
    mutable lo : int;
    mutable hi : int;
    mutable darts : int;
    mutable reflected : int;
    mutable hits : int;
  }

  let make ~colours ~others ~out ~frozen =
    {
      colours;
      others;
      out;
      frozen;
      node = 0;
      lo = 0;
      hi = 0;
      darts = 0;
      reflected = 0;
      hits = 0;
    }

  let at ib row v =
    ib.node <- v;
    ib.lo <- row.(v);
    ib.hi <- row.(v + 1)

  let degree ib = ib.hi - ib.lo
  let colour ib i = ib.colours.(ib.lo + i)

  let read ib d =
    let u = ib.others.(d) in
    ib.darts <- ib.darts + 1;
    if u = ib.node then ib.reflected <- ib.reflected + 1
    else if ib.frozen.(u) then ib.hits <- ib.hits + 1;
    ib.out.(u)

  let msg ib i = read ib (ib.lo + i)

  let find ib ~colour =
    let rec go lo hi =
      if lo >= hi then None
      else begin
        let mid = (lo + hi) / 2 in
        let c = ib.colours.(mid) in
        if c = colour then Some (read ib mid)
        else if c < colour then go (mid + 1) hi
        else go lo mid
      end
    in
    go ib.lo ib.hi

  let fold f acc ib =
    let r = ref acc in
    for d = ib.lo to ib.hi - 1 do
      r := f !r ~colour:ib.colours.(d) (read ib d)
    done;
    !r

  let to_list ib =
    List.rev (fold (fun acc ~colour m -> (colour, m) :: acc) [] ib)
end

type ('state, 'msg) machine = {
  init : degree:int -> colours:int list -> 'state;
  send : 'state -> 'msg;
  recv : 'state -> 'msg Inbox.t -> 'state;
  halted : 'state -> bool;
}

let initial machine g =
  let { Ec.row; colour; _ } = Ec.csr g in
  Array.init (Ec.n g) (fun v ->
      let lo = row.(v) and hi = row.(v + 1) in
      let colours = List.init (hi - lo) (fun i -> colour.(lo + i)) in
      machine.init ~degree:(hi - lo) ~colours)

(* Dense differential oracle: recompute every broadcast each round, walk
   every non-halted inbox, [Array.for_all] halting scan — the executor
   the active-set engine must agree with, state for state and round for
   round. *)
let exec_reference machine ~limit g =
  let n = Ec.n g in
  let csr = Ec.csr g in
  let row = csr.Ec.row in
  let frozen = Array.make (Stdlib.max 1 n) false in
  let states = ref (initial machine g) in
  let rounds = ref 0 in
  let darts = ref 0 and reflected = ref 0 and sends = ref 0 in
  while !rounds < limit && not (Array.for_all machine.halted !states) do
    let prev = !states in
    let out = Array.map machine.send prev in
    sends := !sends + n;
    let ib =
      Inbox.make ~colours:csr.Ec.colour ~others:csr.Ec.other ~out ~frozen
    in
    states :=
      Array.mapi
        (fun v s ->
          if machine.halted s then s
          else begin
            Inbox.at ib row v;
            machine.recv s ib
          end)
        prev;
    darts := !darts + ib.Inbox.darts;
    reflected := !reflected + ib.Inbox.reflected;
    incr rounds
  done;
  Obs.Counter.add c_rounds !rounds;
  Obs.Counter.add c_darts !darts;
  Obs.Counter.add c_reflected !reflected;
  Obs.Counter.add c_sends !sends;
  (!states, !rounds)

(* Deterministic unit of parallel work — shared with the other
   executors so every engine splits (and merges) identically. *)
let chunk_ranges = Chunk.ranges

let exec_active machine ~limit ~par_threshold ~domains g =
  let n = Ec.n g in
  let states = initial machine g in
  if n = 0 then (states, 0)
  else begin
    let csr = Ec.csr g in
    let row = csr.Ec.row in
    let frozen = Array.make n false in
    (* Broadcasts, computed once per (node, round); a halted node's slot
       is written one last time when it freezes and then reused. *)
    let out = Array.make n (machine.send states.(0)) in
    for v = 1 to n - 1 do
      out.(v) <- machine.send states.(v)
    done;
    let sends = ref n in
    let active = Array.make n 0 in
    let n_active = ref 0 in
    for v = 0 to n - 1 do
      if machine.halted states.(v) then frozen.(v) <- true
      else begin
        active.(!n_active) <- v;
        incr n_active
      end
    done;
    let mk_inbox () =
      Inbox.make ~colours:csr.Ec.colour ~others:csr.Ec.other ~out ~frozen
    in
    let seq_ib = mk_inbox () in
    let darts = ref 0 and reflected = ref 0 and hits = ref 0 in
    let drain (ib : _ Inbox.t) =
      darts := !darts + ib.Inbox.darts;
      reflected := !reflected + ib.Inbox.reflected;
      hits := !hits + ib.Inbox.hits
    in
    (* Phase 1 of a round: every active node consumes its inbox. Reads
       only [out]/[frozen] (stable during the phase) and writes its own
       state slot, so ranges are race-free. *)
    let recv_range ib lo hi =
      for k = lo to hi - 1 do
        let v = active.(k) in
        Inbox.at ib row v;
        states.(v) <- machine.recv states.(v) ib
      done
    in
    (* Phase 2: refresh broadcasts from the post-recv states and mark
       freshly-halted nodes. Writes only [out]/[frozen] slots of its own
       range. *)
    let refresh_range lo hi =
      for k = lo to hi - 1 do
        let v = active.(k) in
        out.(v) <- machine.send states.(v);
        if machine.halted states.(v) then frozen.(v) <- true
      done
    in
    let rounds = ref 0 in
    let total_active = ref 0 in
    while !n_active > 0 && !rounds < limit do
      Ld_obs.Hist.timed h_round (fun () ->
          let m = !n_active in
          total_active := !total_active + m;
          if domains > 1 && m >= par_threshold then begin
            let ranges = chunk_ranges m domains in
            Pool.map ~domains
              (fun (lo, hi) ->
                let ib = mk_inbox () in
                recv_range ib lo hi;
                ib)
              ranges
            |> List.iter drain;
            ignore
              (Pool.map ~domains (fun (lo, hi) -> refresh_range lo hi) ranges
                : unit list)
          end
          else begin
            recv_range seq_ib 0 m;
            refresh_range 0 m
          end;
          sends := !sends + m;
          (* Compact the worklist in place, preserving node order. *)
          let w = ref 0 in
          for k = 0 to m - 1 do
            let v = active.(k) in
            if not frozen.(v) then begin
              active.(!w) <- v;
              incr w
            end
          done;
          n_active := !w);
      incr rounds
    done;
    drain seq_ib;
    Obs.Counter.add c_rounds !rounds;
    Obs.Counter.add c_darts !darts;
    Obs.Counter.add c_reflected !reflected;
    Obs.Counter.add c_sends !sends;
    Obs.Counter.add c_cache_hits !hits;
    Obs.Counter.add c_active !total_active;
    (states, !rounds)
  end

let default_par_threshold = 4096

let exec ~reference ~par_threshold ~domains machine ~limit g =
  let domains =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Pool.default_domains ()
  in
  Obs.with_span "runtime.ec.run" (fun () ->
      if reference then exec_reference machine ~limit g
      else exec_active machine ~limit ~par_threshold ~domains g)

let run ?(reference = false) ?(par_threshold = default_par_threshold) ?domains
    machine ~rounds g =
  if rounds < 0 then invalid_arg "Anon_ec.run: negative rounds";
  fst (exec ~reference ~par_threshold ~domains machine ~limit:rounds g)

let run_until ?(reference = false) ?(par_threshold = default_par_threshold)
    ?domains machine ~max_rounds g =
  exec ~reference ~par_threshold ~domains machine ~limit:max_rounds g
