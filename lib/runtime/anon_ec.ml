module Ec = Ld_models.Ec

type ('state, 'msg) machine = {
  init : degree:int -> colours:int list -> 'state;
  send : 'state -> colour:int -> 'msg;
  recv : 'state -> (int * 'msg) list -> 'state;
  halted : 'state -> bool;
}

let initial machine g =
  Array.init (Ec.n g) (fun v ->
      let colours = List.map Ec.dart_colour (Ec.darts g v) in
      machine.init ~degree:(List.length colours) ~colours)

let step machine g states =
  let inbox v =
    List.map
      (fun dart ->
        match dart with
        | Ec.To_neighbour { neighbour; colour; _ } ->
          (colour, machine.send states.(neighbour) ~colour)
        | Ec.Into_loop { colour; _ } ->
          (* Loop reflection: the fiber neighbour is a copy of [v]. *)
          (colour, machine.send states.(v) ~colour))
      (Ec.darts g v)
  in
  Array.mapi
    (fun v s -> if machine.halted s then s else machine.recv s (inbox v))
    states

let run machine ~rounds g =
  if rounds < 0 then invalid_arg "Anon_ec.run: negative rounds";
  let states = ref (initial machine g) in
  for _ = 1 to rounds do
    states := step machine g !states
  done;
  !states

let run_until machine ~max_rounds g =
  let all_halted states = Array.for_all machine.halted states in
  let rec go states r =
    if all_halted states || r >= max_rounds then (states, r)
    else go (step machine g states) (r + 1)
  in
  go (initial machine g) 0
