module Ec = Ld_models.Ec

type ('state, 'msg) machine = {
  init : degree:int -> colours:int list -> 'state;
  send : 'state -> colour:int -> 'msg;
  recv : 'state -> (int * 'msg) list -> 'state;
  halted : 'state -> bool;
}

(* Both the initial scan and the round loop iterate the graph's flat CSR
   dart view instead of the dart lists; [other.(d)] is the node itself
   for loop darts, so loop reflection (the fiber neighbour is a copy of
   [v]) falls out of the representation. *)

let initial machine g =
  let { Ec.row; colour; _ } = Ec.csr g in
  Array.init (Ec.n g) (fun v ->
      let lo = row.(v) and hi = row.(v + 1) in
      let colours = List.init (hi - lo) (fun i -> colour.(lo + i)) in
      machine.init ~degree:(hi - lo) ~colours)

let step machine g states =
  let { Ec.row; colour; other; _ } = Ec.csr g in
  let inbox v =
    let hi = row.(v + 1) in
    let rec build d =
      if d >= hi then []
      else
        let c = colour.(d) in
        (c, machine.send states.(other.(d)) ~colour:c) :: build (d + 1)
    in
    build row.(v)
  in
  Array.mapi
    (fun v s -> if machine.halted s then s else machine.recv s (inbox v))
    states

let run machine ~rounds g =
  if rounds < 0 then invalid_arg "Anon_ec.run: negative rounds";
  let states = ref (initial machine g) in
  for _ = 1 to rounds do
    states := step machine g !states
  done;
  !states

let run_until machine ~max_rounds g =
  let all_halted states = Array.for_all machine.halted states in
  let rec go states r =
    if all_halted states || r >= max_rounds then (states, r)
    else go (step machine g states) (r + 1)
  in
  go (initial machine g) 0
