module Ec = Ld_models.Ec
module Obs = Ld_obs.Obs

(* Per-round traffic of the EC executor: how many rounds ran, how many
   darts each round's inbox construction scanned, and how many of those
   were loop darts whose message reflects off the node itself. *)
let c_rounds = Obs.Counter.make "runtime.ec.rounds"
let c_darts = Obs.Counter.make "runtime.ec.darts_scanned"
let c_reflected = Obs.Counter.make "runtime.ec.loop_reflected"

type ('state, 'msg) machine = {
  init : degree:int -> colours:int list -> 'state;
  send : 'state -> colour:int -> 'msg;
  recv : 'state -> (int * 'msg) list -> 'state;
  halted : 'state -> bool;
}

(* Both the initial scan and the round loop iterate the graph's flat CSR
   dart view instead of the dart lists; [other.(d)] is the node itself
   for loop darts, so loop reflection (the fiber neighbour is a copy of
   [v]) falls out of the representation. *)

let initial machine g =
  let { Ec.row; colour; _ } = Ec.csr g in
  Array.init (Ec.n g) (fun v ->
      let lo = row.(v) and hi = row.(v + 1) in
      let colours = List.init (hi - lo) (fun i -> colour.(lo + i)) in
      machine.init ~degree:(hi - lo) ~colours)

let step machine g states =
  let { Ec.row; colour; other; _ } = Ec.csr g in
  (* Traffic tallies are per-round locals, flushed to the shared
     counters once per step — no atomics inside the dart loop. *)
  let darts = ref 0 and reflected = ref 0 in
  let inbox v =
    let hi = row.(v + 1) in
    let rec build d =
      if d >= hi then []
      else begin
        let c = colour.(d) in
        let u = other.(d) in
        incr darts;
        if u = v then incr reflected;
        (c, machine.send states.(u) ~colour:c) :: build (d + 1)
      end
    in
    build row.(v)
  in
  let next =
    Array.mapi
      (fun v s -> if machine.halted s then s else machine.recv s (inbox v))
      states
  in
  Obs.Counter.incr c_rounds;
  Obs.Counter.add c_darts !darts;
  Obs.Counter.add c_reflected !reflected;
  next

let run machine ~rounds g =
  if rounds < 0 then invalid_arg "Anon_ec.run: negative rounds";
  Obs.with_span "runtime.ec.run" (fun () ->
      let states = ref (initial machine g) in
      for _ = 1 to rounds do
        states := step machine g !states
      done;
      !states)

let run_until machine ~max_rounds g =
  Obs.with_span "runtime.ec.run" (fun () ->
      let all_halted states = Array.for_all machine.halted states in
      let rec go states r =
        if all_halted states || r >= max_rounds then (states, r)
        else go (step machine g states) (r + 1)
      in
      go (initial machine g) 0)
