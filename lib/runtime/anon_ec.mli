(** Synchronous execution of anonymous algorithms on EC multigraphs.

    A machine is a deterministic synchronous state machine: at every
    round each node produces one message per incident dart (indexed by
    its colour — the only name a node has for a dart in the EC model),
    then consumes the messages arriving on its darts.

    {b Loop reflection.} On a dart that is a loop (semi-edge), the node
    receives the very message it sent on that dart. This makes execution
    on a multigraph [G] agree exactly, fiber by fiber, with execution on
    any lift of [G]: all members of a fiber carry identical states by
    induction on rounds, so the neighbour across a lifted loop edge sends
    precisely what the node itself sent. Consequently every machine run
    through this module satisfies the lift-invariance condition (2) of
    the paper by construction — this is how we "run algorithms on
    factor graphs" without materialising infinite universal covers. *)

type ('state, 'msg) machine = {
  init : degree:int -> colours:int list -> 'state;
      (** Initial state; [colours] are the node's dart colours, sorted. *)
  send : 'state -> colour:int -> 'msg;
      (** Message for the dart of the given colour. *)
  recv : 'state -> (int * 'msg) list -> 'state;
      (** Consume one round's inbox, sorted by dart colour. *)
  halted : 'state -> bool;
      (** Once true, the node's state is frozen (its messages continue to
          be delivered, computed from the frozen state). *)
}

(** [run machine ~rounds g] executes exactly [rounds] rounds (halted
    nodes frozen) and returns the final states. *)
val run : ('s, 'm) machine -> rounds:int -> Ld_models.Ec.t -> 's array

(** [run_until machine ~max_rounds g] stops as soon as every node has
    halted (or after [max_rounds]); returns final states and the number
    of rounds executed. *)
val run_until :
  ('s, 'm) machine -> max_rounds:int -> Ld_models.Ec.t -> 's array * int
