(** Synchronous execution of anonymous algorithms on EC multigraphs.

    A machine is a deterministic synchronous state machine: at every
    round each node broadcasts one message (the same on every incident
    dart — WLOG in the EC model, because the receiver already knows the
    shared edge colour and can project whatever colour-dependent content
    it needs out of its own dart name), then consumes the messages
    arriving on its darts and steps its state.

    {b Loop reflection.} On a dart that is a loop (semi-edge), the node
    receives the very message it sent on that dart. This makes execution
    on a multigraph [G] agree exactly, fiber by fiber, with execution on
    any lift of [G]: all members of a fiber carry identical states by
    induction on rounds, so the neighbour across a lifted loop edge sends
    precisely what the node itself sent. Consequently every machine run
    through this module satisfies the lift-invariance condition (2) of
    the paper by construction — this is how we "run algorithms on
    factor graphs" without materialising infinite universal covers.

    {b Scheduling.} The default executor is an {e active-set} engine:
    each node's broadcast is computed once per round into a flat buffer
    (send-once caching; a halted node's message is computed once at halt
    time and reused forever), rounds walk a worklist of non-halted nodes
    (halted-frontier scheduling), and inboxes are lazy views over the
    graph's CSR arrays — a [recv] that reads one dart costs one read,
    not degree allocations. [~reference:true] selects the dense
    per-round full-scan executor instead (every send recomputed, every
    inbox walked, [Array.for_all] halting scan), which is the
    differential oracle the qcheck suite compares against. Above
    [par_threshold] active nodes the active-set engine fans each round
    out across domains in contiguous node ranges with a deterministic
    submission-order merge, so results are byte-identical to the
    sequential run. *)

(** One round's incoming messages at a node: a zero-allocation view over
    the graph's CSR dart arrays and the executor's send buffer. Entries
    are indexed [0 .. degree-1] in ascending colour order and are only
    materialised when read — reads are tallied into the
    [runtime.ec.darts_scanned] counter. The view is only valid inside
    the [recv] call it is passed to; do not store it. *)
module Inbox : sig
  type 'msg t

  val degree : 'msg t -> int

  (** Colour of the [i]-th dart (ascending in [i]). Does not count as a
      dart read. *)
  val colour : 'msg t -> int -> int

  (** Message arriving on the [i]-th dart. *)
  val msg : 'msg t -> int -> 'msg

  (** Message arriving on the dart of the given colour, if any — a
      binary search over the node's colour-sorted dart segment. *)
  val find : 'msg t -> colour:int -> 'msg option

  val fold : ('a -> colour:int -> 'msg -> 'a) -> 'a -> 'msg t -> 'a

  (** The whole inbox as an assoc list sorted by colour — the historic
      dense representation; allocates, intended for tests/debugging. *)
  val to_list : 'msg t -> (int * 'msg) list
end

type ('state, 'msg) machine = {
  init : degree:int -> colours:int list -> 'state;
      (** Initial state; [colours] are the node's dart colours, sorted. *)
  send : 'state -> 'msg;
      (** The node's broadcast message for the coming round. Must be a
          pure function of the state: the executor calls it once per
          round per active node (and once, ever, per halted state). *)
  recv : 'state -> 'msg Inbox.t -> 'state;
      (** Consume one round's inbox. *)
  halted : 'state -> bool;
      (** Once true, the node's state is frozen (its broadcast continues
          to be delivered, computed once from the frozen state). *)
}

(** Active-node count above which a round is fanned out across domains
    (when the effective domain count exceeds 1). *)
val default_par_threshold : int

(** [run machine ~rounds g] executes exactly [rounds] rounds (halted
    nodes frozen; rounds in which every node has halted are skipped — a
    no-op by the frozen-state contract) and returns the final states.

    @param reference use the dense full-scan executor (default false).
    @param par_threshold see {!default_par_threshold}.
    @param domains domain budget for parallel rounds; defaults to
      [Ld_pool.Pool.default_domains ()]. *)
val run :
  ?reference:bool ->
  ?par_threshold:int ->
  ?domains:int ->
  ('s, 'm) machine ->
  rounds:int ->
  Ld_models.Ec.t ->
  's array

(** [run_until machine ~max_rounds g] stops as soon as every node has
    halted (or after [max_rounds]); returns final states and the number
    of rounds executed. Parameters as in {!run}. *)
val run_until :
  ?reference:bool ->
  ?par_threshold:int ->
  ?domains:int ->
  ('s, 'm) machine ->
  max_rounds:int ->
  Ld_models.Ec.t ->
  's array * int
