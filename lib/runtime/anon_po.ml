module Po = Ld_models.Po
module Obs = Ld_obs.Obs

(* Mirrors the Anon_ec tallies for the port-ordered executor. *)
let c_rounds = Obs.Counter.make "runtime.po.rounds"
let c_darts = Obs.Counter.make "runtime.po.darts_scanned"
let c_reflected = Obs.Counter.make "runtime.po.loop_reflected"

type dart_key = { out : bool; colour : int }

type ('state, 'msg) machine = {
  init : darts:dart_key list -> 'state;
  send : 'state -> dart_key -> 'msg;
  recv : 'state -> (dart_key * 'msg) list -> 'state;
  halted : 'state -> bool;
}

(* Both the initial scan and the round loop iterate the graph's flat CSR
   dart view. [other.(d)] is the node itself for loop darts, so
   reflection across a directed loop (an Out message received on the
   node's own In dart and vice versa) is just "peer replies on the
   opposite direction". *)

let initial machine g =
  let { Po.row; colour; dir; _ } = Po.csr g in
  Array.init (Po.n g) (fun v ->
      let lo = row.(v) and hi = row.(v + 1) in
      let darts =
        List.init (hi - lo) (fun i ->
            { out = dir.(lo + i) = 0; colour = colour.(lo + i) })
      in
      machine.init ~darts)

let step machine g states =
  let { Po.row; colour; dir; other; _ } = Po.csr g in
  (* Per-round locals flushed to the shared counters once per step. *)
  let darts = ref 0 and reflected = ref 0 in
  let inbox v =
    let hi = row.(v + 1) in
    let rec build d =
      if d >= hi then []
      else begin
        let c = colour.(d) in
        let out = dir.(d) = 0 in
        let u = other.(d) in
        incr darts;
        if u = v then incr reflected;
        (* The peer sends on its dart of the opposite direction. *)
        ({ out; colour = c }, machine.send states.(u) { out = not out; colour = c })
        :: build (d + 1)
      end
    in
    build row.(v)
  in
  let next =
    Array.mapi
      (fun v s -> if machine.halted s then s else machine.recv s (inbox v))
      states
  in
  Obs.Counter.incr c_rounds;
  Obs.Counter.add c_darts !darts;
  Obs.Counter.add c_reflected !reflected;
  next

let run machine ~rounds g =
  if rounds < 0 then invalid_arg "Anon_po.run: negative rounds";
  Obs.with_span "runtime.po.run" (fun () ->
      let states = ref (initial machine g) in
      for _ = 1 to rounds do
        states := step machine g !states
      done;
      !states)

let run_until machine ~max_rounds g =
  Obs.with_span "runtime.po.run" (fun () ->
      let all_halted states = Array.for_all machine.halted states in
      let rec go states r =
        if all_halted states || r >= max_rounds then (states, r)
        else go (step machine g states) (r + 1)
      in
      go (initial machine g) 0)
