module Po = Ld_models.Po

type dart_key = { out : bool; colour : int }

type ('state, 'msg) machine = {
  init : darts:dart_key list -> 'state;
  send : 'state -> dart_key -> 'msg;
  recv : 'state -> (dart_key * 'msg) list -> 'state;
  halted : 'state -> bool;
}

let key_of_dart = function
  | Po.Out { colour; _ } | Po.Loop_out { colour; _ } -> { out = true; colour }
  | Po.In { colour; _ } | Po.Loop_in { colour; _ } -> { out = false; colour }

let initial machine g =
  Array.init (Po.n g) (fun v ->
      machine.init ~darts:(List.map key_of_dart (Po.darts g v)))

let step machine g states =
  let inbox v =
    List.map
      (fun dart ->
        let key = key_of_dart dart in
        match dart with
        | Po.Out { neighbour; colour; _ } ->
          (* The head sends toward the tail on its In dart. *)
          (key, machine.send states.(neighbour) { out = false; colour })
        | Po.In { neighbour; colour; _ } ->
          (key, machine.send states.(neighbour) { out = true; colour })
        | Po.Loop_out { colour; _ } ->
          (* Reflection across the directed loop: our In-side message. *)
          (key, machine.send states.(v) { out = false; colour })
        | Po.Loop_in { colour; _ } ->
          (key, machine.send states.(v) { out = true; colour }))
      (Po.darts g v)
  in
  Array.mapi
    (fun v s -> if machine.halted s then s else machine.recv s (inbox v))
    states

let run machine ~rounds g =
  if rounds < 0 then invalid_arg "Anon_po.run: negative rounds";
  let states = ref (initial machine g) in
  for _ = 1 to rounds do
    states := step machine g !states
  done;
  !states

let run_until machine ~max_rounds g =
  let all_halted states = Array.for_all machine.halted states in
  let rec go states r =
    if all_halted states || r >= max_rounds then (states, r)
    else go (step machine g states) (r + 1)
  in
  go (initial machine g) 0
