(** Synchronous execution of anonymous algorithms on PO multigraphs.

    Every arc is a bidirectional communication link (the orientation is
    symmetry-breaking information, not a restriction on messages), so a
    node holds one dart per incident arc end: an [Out] dart at the tail
    and an [In] dart at the head. A node names its darts by direction and
    colour — legal because out-colours are distinct and in-colours are
    distinct in a PO graph. Like {!Anon_ec}, machines broadcast: one
    message per node per round, delivered on every incident dart (WLOG —
    the receiver knows each dart's direction and colour and can project).

    {b Loop reflection.} A directed loop contributes an [Out] dart and an
    [In] dart. In any lift, the loop unfolds into a directed cycle
    through the fiber, so the message sent on the [Out] dart arrives on
    the node's own [In] dart of the same colour, and vice versa.

    {b Scheduling.} Same engine as {!Anon_ec}: active-set executor with
    send-once caching, lazy CSR-backed inboxes and optional
    domain-parallel rounds; [~reference:true] is the dense differential
    oracle. *)

type dart_key = { out : bool; colour : int }

(** One round's incoming messages at a node: a zero-allocation view over
    the CSR dart arrays, indexed [0 .. degree-1] with out-darts first
    (ascending colour) then in-darts (ascending colour). Valid only
    inside the [recv] call it is passed to. *)
module Inbox : sig
  type 'msg t

  val degree : 'msg t -> int

  (** Key of the [i]-th dart. Does not count as a dart read. *)
  val key : 'msg t -> int -> dart_key

  (** Message arriving on the [i]-th dart. *)
  val msg : 'msg t -> int -> 'msg

  (** Message arriving on the dart with the given key, if any — a binary
      search over the node's (direction, colour)-sorted dart segment. *)
  val find : 'msg t -> key:dart_key -> 'msg option

  val fold : ('a -> key:dart_key -> 'msg -> 'a) -> 'a -> 'msg t -> 'a

  (** The whole inbox as an assoc list in dart order — the historic
      dense representation; allocates, intended for tests/debugging. *)
  val to_list : 'msg t -> (dart_key * 'msg) list
end

type ('state, 'msg) machine = {
  init : darts:dart_key list -> 'state;
  send : 'state -> 'msg;
      (** Broadcast for the coming round; must be pure in the state. *)
  recv : 'state -> 'msg Inbox.t -> 'state;
  halted : 'state -> bool;
}

(** Active-node count above which a round is fanned out across domains. *)
val default_par_threshold : int

val run :
  ?reference:bool ->
  ?par_threshold:int ->
  ?domains:int ->
  ('s, 'm) machine ->
  rounds:int ->
  Ld_models.Po.t ->
  's array

val run_until :
  ?reference:bool ->
  ?par_threshold:int ->
  ?domains:int ->
  ('s, 'm) machine ->
  max_rounds:int ->
  Ld_models.Po.t ->
  's array * int
