(** Synchronous execution of anonymous algorithms on PO multigraphs.

    Every arc is a bidirectional communication link (the orientation is
    symmetry-breaking information, not a restriction on messages), so a
    node holds one dart per incident arc end: an [Out] dart at the tail
    and an [In] dart at the head. A node names its darts by direction and
    colour — legal because out-colours are distinct and in-colours are
    distinct in a PO graph.

    {b Loop reflection.} A directed loop contributes an [Out] dart and an
    [In] dart. In any lift, the loop unfolds into a directed cycle
    through the fiber, so the message sent on the [Out] dart arrives on
    the node's own [In] dart of the same colour, and vice versa. *)

type dart_key = { out : bool; colour : int }

type ('state, 'msg) machine = {
  init : darts:dart_key list -> 'state;
  send : 'state -> dart_key -> 'msg;
  recv : 'state -> (dart_key * 'msg) list -> 'state;
  halted : 'state -> bool;
}

val run : ('s, 'm) machine -> rounds:int -> Ld_models.Po.t -> 's array

val run_until :
  ('s, 'm) machine -> max_rounds:int -> Ld_models.Po.t -> 's array * int
