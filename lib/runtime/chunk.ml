(* Deterministic contiguous partitioning of [0, len) — the unit of
   parallel work every executor hands to [Pool.map]. Shared by the
   boxed active-set engines (Anon_ec, Anon_po) and the packed engine
   (Packed); keeping one implementation is what makes "byte-identical
   at any LD_DOMAINS" a single proof obligation instead of three. *)

(* Split [0, len) into at most [k] contiguous ranges of near-equal
   size, in order. *)
let ranges len k =
  let k = Stdlib.max 1 (Stdlib.min k len) in
  let base = len / k and extra = len mod k in
  List.init k (fun i ->
      let lo = (i * base) + Stdlib.min i extra in
      (lo, lo + base + if i < extra then 1 else 0))
