(** Deterministic contiguous partitioning of [0, len) into at most [k]
    near-equal ranges [(lo, hi)], in ascending order. The single
    source of the parallel work split used by every executor, so the
    merge order (submission order = range order) is identical across
    the boxed and packed engines. *)
val ranges : int -> int -> (int * int) list
