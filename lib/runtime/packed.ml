module Ec = Ld_models.Ec
module Csr = Ld_graph.Csr
module Obs = Ld_obs.Obs
module Pool = Ld_pool.Pool

(* Packed-state executors: per-node state is [state_words] consecutive
   ints in one flat array, messages are [msg_words] ints in another,
   halting flags live in a Bytes blob — no boxed records, no lists, no
   per-round allocation. This is what lets a round over 10^6 nodes
   stay bandwidth-bound instead of GC-bound. Machines address their
   own slices ([node * state_words] ...) and read peers' message
   slices directly from the CSR arrays.

   The execution discipline is the same two-phase active-set design as
   [Anon_ec]/[Sync], and deliberately so, because the boxed engines
   remain the differential oracles: phase 1 (recv) reads only the
   frozen-or-refreshed [out] array and writes only the node's own
   state slice; phase 2 (send/refresh) writes only the node's own
   [out] slice and its frozen byte. Ranges from [Chunk.ranges] touch
   disjoint slices, so fan-out over [Pool.map] is race-free and the
   result is byte-identical at any [LD_DOMAINS]. A node that halts has
   its final broadcast written in the same phase, after which the slot
   is never touched again — the frozen-sender cache semantics of the
   boxed engines. *)

let c_rounds = Obs.Counter.make "runtime.packed.rounds"
let c_sends = Obs.Counter.make "runtime.packed.sends"
let c_darts = Obs.Counter.make "runtime.packed.darts_scanned"
let c_active = Obs.Counter.make "runtime.packed.active_nodes"

(* Both executors feed one per-round latency histogram: the bench
   resets it around each measured run and reads p50/p99 off the merge. *)
let h_round = Ld_obs.Hist.make "runtime.packed.round"

type stats = { rounds : int; sends : int; darts_scanned : int }

let default_par_threshold = 4096

let flush_counters (s : stats) ~total_active =
  Obs.Counter.add c_rounds s.rounds;
  Obs.Counter.add c_sends s.sends;
  Obs.Counter.add c_darts s.darts_scanned;
  Obs.Counter.add c_active total_active

(* ---------- broadcast executor (anonymous EC model) ---------- *)

module Broadcast = struct
  type machine = {
    state_words : int;
    msg_words : int;
    init : csr:Ec.csr -> st:int array -> node:int -> unit;
    send : st:int array -> out:int array -> node:int -> unit;
    recv : csr:Ec.csr -> st:int array -> out:int array -> node:int -> unit;
    halted : st:int array -> node:int -> bool;
  }

  let run_until ?(par_threshold = default_par_threshold) ?domains m
      ~max_rounds g =
    if max_rounds < 0 then invalid_arg "Packed.Broadcast.run_until";
    let domains =
      match domains with
      | Some d -> Stdlib.max 1 d
      | None -> Pool.default_domains ()
    in
    Obs.with_span "runtime.packed.broadcast" @@ fun () ->
    let n = Ec.n g in
    let csr = Ec.csr g in
    let row = csr.Ec.row in
    let sw = m.state_words and mw = m.msg_words in
    let st = Array.make (Stdlib.max 1 (n * sw)) 0 in
    let out = Array.make (Stdlib.max 1 (n * mw)) 0 in
    let frozen = Bytes.make (Stdlib.max 1 n) '\000' in
    let active = Array.make (Stdlib.max 1 n) 0 in
    (* Initial states and broadcasts: disjoint slices, parallel. *)
    let init_range lo hi =
      for v = lo to hi - 1 do
        m.init ~csr ~st ~node:v;
        m.send ~st ~out ~node:v
      done
    in
    if domains > 1 && n >= par_threshold then
      ignore
        (Pool.map ~domains
           (fun (lo, hi) -> init_range lo hi)
           (Chunk.ranges n domains)
          : unit list)
    else init_range 0 n;
    let n_active = ref 0 in
    let deg_sum = ref 0 in
    for v = 0 to n - 1 do
      if m.halted ~st ~node:v then Bytes.set frozen v '\001'
      else begin
        active.(!n_active) <- v;
        incr n_active;
        deg_sum := !deg_sum + row.(v + 1) - row.(v)
      end
    done;
    let recv_active lo hi =
      for k = lo to hi - 1 do
        m.recv ~csr ~st ~out ~node:active.(k)
      done
    in
    let refresh_active lo hi =
      for k = lo to hi - 1 do
        let v = active.(k) in
        m.send ~st ~out ~node:v;
        if m.halted ~st ~node:v then Bytes.set frozen v '\001'
      done
    in
    let rounds = ref 0 in
    let sends = ref n in
    let darts = ref 0 in
    let total_active = ref 0 in
    while !n_active > 0 && !rounds < max_rounds do
      Ld_obs.Hist.timed h_round (fun () ->
          let mact = !n_active in
          total_active := !total_active + mact;
          darts := !darts + !deg_sum;
          if domains > 1 && mact >= par_threshold then begin
            let ranges = Chunk.ranges mact domains in
            ignore (Pool.map ~domains (fun (lo, hi) -> recv_active lo hi) ranges
                     : unit list);
            ignore
              (Pool.map ~domains (fun (lo, hi) -> refresh_active lo hi) ranges
                : unit list)
          end
          else begin
            recv_active 0 mact;
            refresh_active 0 mact
          end;
          sends := !sends + mact;
          let w = ref 0 in
          deg_sum := 0;
          for k = 0 to mact - 1 do
            let v = active.(k) in
            if Bytes.get frozen v = '\000' then begin
              active.(!w) <- v;
              incr w;
              deg_sum := !deg_sum + row.(v + 1) - row.(v)
            end
          done;
          n_active := !w);
      incr rounds
    done;
    let stats =
      { rounds = !rounds; sends = !sends; darts_scanned = !darts }
    in
    flush_counters stats ~total_active:!total_active;
    if !n_active > 0 then (st, stats, false) else (st, stats, true)
end

(* ---------- port executor (ID model over a simple-graph CSR) ---------- *)

module Port = struct
  type machine = {
    state_words : int;
    msg_words : int;
    init : g:Csr.t -> st:int array -> node:int -> unit;
    send : g:Csr.t -> st:int array -> out:int array -> node:int -> unit;
    recv :
      g:Csr.t -> back:int array -> st:int array -> out:int array ->
      node:int -> unit;
    halted : st:int array -> node:int -> bool;
  }

  let run_until ?(par_threshold = default_par_threshold) ?domains m
      ~max_rounds (g : Csr.t) =
    if max_rounds < 0 then invalid_arg "Packed.Port.run_until";
    let domains =
      match domains with
      | Some d -> Stdlib.max 1 d
      | None -> Pool.default_domains ()
    in
    Obs.with_span "runtime.packed.port" @@ fun () ->
    let n = g.Csr.n in
    let row = g.Csr.row in
    let nd = row.(n) in
    let back = Csr.back g in
    let sw = m.state_words and mw = m.msg_words in
    let st = Array.make (Stdlib.max 1 (n * sw)) 0 in
    (* Per-dart message slots: the message node [v] sends on port [p]
       lives at [(row.(v) + p) * msg_words]. The far end reads it back
       through [back] — the packed analogue of [Sync]'s dart-indexed
       frozen cache, except every sender's current messages live there
       too. *)
    let out = Array.make (Stdlib.max 1 (nd * mw)) 0 in
    let frozen = Bytes.make (Stdlib.max 1 n) '\000' in
    let active = Array.make (Stdlib.max 1 n) 0 in
    let init_range lo hi =
      for v = lo to hi - 1 do
        m.init ~g ~st ~node:v;
        m.send ~g ~st ~out ~node:v
      done
    in
    if domains > 1 && n >= par_threshold then
      ignore
        (Pool.map ~domains
           (fun (lo, hi) -> init_range lo hi)
           (Chunk.ranges n domains)
          : unit list)
    else init_range 0 n;
    let n_active = ref 0 in
    let deg_sum = ref 0 in
    for v = 0 to n - 1 do
      if m.halted ~st ~node:v then Bytes.set frozen v '\001'
      else begin
        active.(!n_active) <- v;
        incr n_active;
        deg_sum := !deg_sum + row.(v + 1) - row.(v)
      end
    done;
    let recv_active lo hi =
      for k = lo to hi - 1 do
        m.recv ~g ~back ~st ~out ~node:active.(k)
      done
    in
    let refresh_active lo hi =
      for k = lo to hi - 1 do
        let v = active.(k) in
        m.send ~g ~st ~out ~node:v;
        if m.halted ~st ~node:v then Bytes.set frozen v '\001'
      done
    in
    let rounds = ref 0 in
    let sends = ref nd in
    let darts = ref 0 in
    let total_active = ref 0 in
    while !n_active > 0 && !rounds < max_rounds do
      Ld_obs.Hist.timed h_round (fun () ->
          let mact = !n_active in
          total_active := !total_active + mact;
          darts := !darts + !deg_sum;
          if domains > 1 && mact >= par_threshold then begin
            let ranges = Chunk.ranges mact domains in
            ignore (Pool.map ~domains (fun (lo, hi) -> recv_active lo hi) ranges
                     : unit list);
            ignore
              (Pool.map ~domains (fun (lo, hi) -> refresh_active lo hi) ranges
                : unit list)
          end
          else begin
            recv_active 0 mact;
            refresh_active 0 mact
          end;
          sends := !sends + !deg_sum;
          let w = ref 0 in
          deg_sum := 0;
          for k = 0 to mact - 1 do
            let v = active.(k) in
            if Bytes.get frozen v = '\000' then begin
              active.(!w) <- v;
              incr w;
              deg_sum := !deg_sum + row.(v + 1) - row.(v)
            end
          done;
          n_active := !w);
      incr rounds
    done;
    let stats =
      { rounds = !rounds; sends = !sends; darts_scanned = !darts }
    in
    flush_counters stats ~total_active:!total_active;
    if !n_active > 0 then (st, stats, false) else (st, stats, true)
end

(* Deterministic per-node coin stream for packed randomized machines:
   [Random.State] cannot live in an int slice, so packed machines draw
   from a splitmix-style hash whose one-word state is part of the
   node's slice. The boxed differential twins draw from the *same*
   stream (they store the same word), which is what makes
   packed-vs-boxed comparison exact rather than distributional. *)
module Coin = struct
  let mask = (1 lsl 62) - 1

  (* splitmix64-flavoured mixer on 62-bit words (the constants are the
     splitmix64 ones truncated to fit OCaml's boxed-free int range —
     we only need a well-scrambled deterministic stream, not the
     reference output). *)
  let mix z =
    let z = (z + 0x1E3779B97F4A7C15) land mask in
    let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land mask in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land mask in
    (z lxor (z lsr 31)) land mask

  let seed ~seed ~node = mix (mix (seed land mask) + node)

  (* Advance the stream: returns the next state; extract bits from the
     returned word with [bool]/[int]. *)
  let next s = mix (s + 1)
  let bool s = s land 1 = 1

  let int s bound =
    if bound <= 0 then invalid_arg "Packed.Coin.int";
    (s lsr 1) mod bound
end
