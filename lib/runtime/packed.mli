(** Packed-state synchronous executors.

    Per-node state lives in [state_words] consecutive ints of one flat
    array, messages in [msg_words] ints of another, halting flags in a
    [Bytes] blob — no boxed records and no per-round allocation, which
    is what keeps a round over 10^6 nodes bandwidth-bound instead of
    GC-bound. Machines address slice [node * state_words ..] of [st]
    and read peers' message slices directly.

    Both executors follow the two-phase active-set discipline of the
    boxed engines ([Anon_ec], [Sync]), which remain the differential
    oracles: a packed machine paired with its boxed twin must produce
    identical observables, states and halting rounds (see
    test_packed.ml). Parallel ranges come from {!Chunk.ranges} and
    touch disjoint slices, so results are byte-identical at any
    [LD_DOMAINS]. *)

type stats = {
  rounds : int;  (** synchronous rounds executed *)
  sends : int;  (** message slots written (including the initial broadcast) *)
  darts_scanned : int;  (** inbox slots visible to recv phases *)
}

val default_par_threshold : int

(** Broadcast executor for the anonymous EC model: one [msg_words]
    message per node and round, delivered along every incident dart
    (loop reflection included — a machine reading across a loop dart
    sees its own broadcast, as in [Anon_ec]). *)
module Broadcast : sig
  type machine = {
    state_words : int;
    msg_words : int;
    init : csr:Ld_models.Ec.csr -> st:int array -> node:int -> unit;
        (** fill the node's state slice; the CSR segment
            [row.(node) .. row.(node+1)) carries its colours *)
    send : st:int array -> out:int array -> node:int -> unit;
        (** write the node's [msg_words] broadcast slice *)
    recv : csr:Ld_models.Ec.csr -> st:int array -> out:int array -> node:int -> unit;
        (** step the node's state from its neighbours' broadcast
            slices ([out.(other * msg_words) ..]) *)
    halted : st:int array -> node:int -> bool;
  }

  (** Runs until every node halts or [max_rounds] is reached. Returns
      the flat state array, per-run traffic, and whether all nodes
      halted. *)
  val run_until :
    ?par_threshold:int ->
    ?domains:int ->
    machine ->
    max_rounds:int ->
    Ld_models.Ec.t ->
    int array * stats * bool
end

(** Port executor for the ID model over a simple-graph CSR: one
    [msg_words] message per dart and round; the message node [v] sends
    on port [p] lives at [(row.(v) + p) * msg_words] and is read back
    by the far endpoint through the precomputed {!Ld_graph.Csr.back}
    array — the packed analogue of [Sync]'s receiver-driven pull with
    a frozen-sender dart cache. *)
module Port : sig
  type machine = {
    state_words : int;
    msg_words : int;
    init : g:Ld_graph.Csr.t -> st:int array -> node:int -> unit;
    send : g:Ld_graph.Csr.t -> st:int array -> out:int array -> node:int -> unit;
        (** write all of the node's per-port message slices *)
    recv :
      g:Ld_graph.Csr.t -> back:int array -> st:int array -> out:int array ->
      node:int -> unit;
        (** the message arriving on port [p] is at
            [(row.(endpoint.(row.(node)+p)) + back.(row.(node)+p)) * msg_words] *)
    halted : st:int array -> node:int -> bool;
  }

  val run_until :
    ?par_threshold:int ->
    ?domains:int ->
    machine ->
    max_rounds:int ->
    Ld_graph.Csr.t ->
    int array * stats * bool
end

(** Deterministic per-node coin stream for packed randomized machines
    (a [Random.State] cannot live in an int slice). One word of state,
    splitmix-style mixing; boxed differential twins draw from the same
    stream, making packed-vs-boxed comparison exact. *)
module Coin : sig
  (** Initial stream state for a node. *)
  val seed : seed:int -> node:int -> int

  (** Advance the stream one draw. *)
  val next : int -> int

  (** Extract a bool from a stream state. *)
  val bool : int -> bool

  (** Extract a uniform-ish int in [0, bound) from a stream state.
      @raise Invalid_argument if [bound <= 0]. *)
  val int : int -> int -> int
end
