module G = Ld_graph.Graph
module Id = Ld_models.Labelled.Id

type ('state, 'msg, 'out) machine = {
  init : id:int -> degree:int -> rng:Random.State.t -> 'state;
  send : 'state -> port:int -> 'msg option;
  recv : 'state -> (int * 'msg) list -> 'state;
  output : 'state -> 'out option;
}

type 'out result = { outputs : 'out array; rounds : int }

let run machine ~seed ~max_rounds idg =
  let g = Id.graph idg in
  let n = G.n g in
  (* Port p of node v leads to its p-th smallest neighbour. *)
  let ports = Array.init n (fun v -> Array.of_list (G.neighbours g v)) in
  (* port_back.(v).(p) is the port of the far endpoint that leads back. *)
  let port_of = Array.make n [||] in
  for v = 0 to n - 1 do
    port_of.(v) <- Array.map
      (fun w ->
        let back = ref (-1) in
        Array.iteri (fun q x -> if x = v then back := q) ports.(w);
        !back)
      ports.(v)
  done;
  let states =
    Array.init n (fun v ->
        let rng = Random.State.make [| seed; Id.id idg v; 0x5ca1e |] in
        machine.init ~id:(Id.id idg v) ~degree:(Array.length ports.(v)) ~rng)
  in
  let halted v = machine.output states.(v) <> None in
  let round = ref 0 in
  while Array.exists (fun v -> not (halted v)) (Array.init n Fun.id)
        && !round < max_rounds do
    incr round;
    let inboxes = Array.make n [] in
    for v = n - 1 downto 0 do
      Array.iteri
        (fun p w ->
          match machine.send states.(v) ~port:p with
          | None -> ()
          | Some m -> inboxes.(w) <- (port_of.(v).(p), m) :: inboxes.(w))
        ports.(v)
    done;
    for v = 0 to n - 1 do
      if not (halted v) then
        states.(v) <- machine.recv states.(v) (List.sort compare inboxes.(v))
    done
  done;
  let outputs =
    Array.init n (fun v ->
        match machine.output states.(v) with
        | Some o -> o
        | None ->
          failwith
            (Printf.sprintf "Sync.run: node %d (id %d) did not halt within %d rounds"
               v (Id.id idg v) max_rounds))
  in
  { outputs; rounds = !round }
