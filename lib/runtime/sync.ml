module G = Ld_graph.Graph
module Id = Ld_models.Labelled.Id
module Obs = Ld_obs.Obs

(* Active-frontier tallies for the ID-model simulator. [sends] counts
   live [machine.send] calls; [send_cache_hits] counts messages served
   from a halted sender's per-port cache instead. *)
let c_rounds = Obs.Counter.make "runtime.sync.rounds"
let c_sends = Obs.Counter.make "runtime.sync.sends"
let c_cache_hits = Obs.Counter.make "runtime.sync.send_cache_hits"
let c_active = Obs.Counter.make "runtime.sync.active_nodes"

type ('state, 'msg, 'out) machine = {
  init : id:int -> degree:int -> rng:Random.State.t -> 'state;
  send : 'state -> port:int -> 'msg option;
  recv : 'state -> (int * 'msg) list -> 'state;
  output : 'state -> 'out option;
}

type 'out result = { outputs : 'out array; rounds : int }

(* Receiver-driven execution: instead of pushing every node's sends
   into per-receiver lists and sorting them, each active node pulls the
   message for its own port [r] straight from the sender across that
   port. Ports are distinct per receiver (the graph is simple), so
   walking own ports in ascending order reproduces exactly the
   port-sorted inbox the push-and-sort loop built. A halted sender's
   state is frozen, so its per-port messages are computed once at halt
   time and served from a flat dart-indexed cache ever after. *)
let run machine ~seed ~max_rounds idg =
  Obs.with_span "runtime.sync.run" @@ fun () ->
  let g = Id.graph idg in
  let n = G.n g in
  (* Port p of node v leads to its p-th smallest neighbour. *)
  let ports = Array.init n (fun v -> Array.of_list (G.neighbours g v)) in
  (* port_of.(v).(p) is the port of the far endpoint that leads back. *)
  let port_of = Array.make n [||] in
  for v = 0 to n - 1 do
    port_of.(v) <-
      Array.map
        (fun w ->
          let back = ref (-1) in
          Array.iteri (fun q x -> if x = v then back := q) ports.(w);
          !back)
        ports.(v)
  done;
  (* Dart row offsets for the frozen-sender cache: the message a halted
     node v sends on port p lives at cache.(rowf.(v) + p). *)
  let rowf = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    rowf.(v + 1) <- rowf.(v) + Array.length ports.(v)
  done;
  let states =
    Array.init n (fun v ->
        let rng = Random.State.make [| seed; Id.id idg v; 0x5ca1e |] in
        machine.init ~id:(Id.id idg v) ~degree:(Array.length ports.(v)) ~rng)
  in
  let halted = Array.make n false in
  let cache = Array.make (Stdlib.max 1 rowf.(n)) None in
  let freeze v =
    halted.(v) <- true;
    let base = rowf.(v) in
    for p = 0 to Array.length ports.(v) - 1 do
      cache.(base + p) <- machine.send states.(v) ~port:p
    done
  in
  let active = Array.make (Stdlib.max 1 n) 0 in
  let n_active = ref 0 in
  for v = 0 to n - 1 do
    if machine.output states.(v) <> None then freeze v
    else begin
      active.(!n_active) <- v;
      incr n_active
    end
  done;
  let inboxes = Array.make (Stdlib.max 1 n) [] in
  let round = ref 0 in
  let sends = ref 0 and hits = ref 0 and total_active = ref 0 in
  while !n_active > 0 && !round < max_rounds do
    incr round;
    total_active := !total_active + !n_active;
    (* Pass 1: assemble every active node's inbox from the pre-round
       states, so synchrony is preserved when pass 2 mutates them. *)
    for k = 0 to !n_active - 1 do
      let v = active.(k) in
      let pv = ports.(v) and bv = port_of.(v) in
      let acc = ref [] in
      for r = Array.length pv - 1 downto 0 do
        let w = pv.(r) in
        let q = bv.(r) in
        let m =
          if halted.(w) then begin
            incr hits;
            cache.(rowf.(w) + q)
          end
          else begin
            incr sends;
            machine.send states.(w) ~port:q
          end
        in
        match m with None -> () | Some m -> acc := (r, m) :: !acc
      done;
      inboxes.(v) <- !acc
    done;
    (* Pass 2: step the active states, freeze the freshly halted and
       compact the worklist in place, preserving node order. *)
    let w = ref 0 in
    for k = 0 to !n_active - 1 do
      let v = active.(k) in
      states.(v) <- machine.recv states.(v) inboxes.(v);
      if machine.output states.(v) <> None then freeze v
      else begin
        active.(!w) <- v;
        incr w
      end
    done;
    n_active := !w
  done;
  Obs.Counter.add c_rounds !round;
  Obs.Counter.add c_sends !sends;
  Obs.Counter.add c_cache_hits !hits;
  Obs.Counter.add c_active !total_active;
  let outputs =
    Array.init n (fun v ->
        match machine.output states.(v) with
        | Some o -> o
        | None ->
          failwith
            (Printf.sprintf
               "Sync.run: node %d (id %d) did not halt within %d rounds" v
               (Id.id idg v) max_rounds))
  in
  { outputs; rounds = !round }
