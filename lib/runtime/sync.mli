(** Synchronous LOCAL simulator for identifier-based networks (§1.4).

    Nodes are state machines over an ID-graph: in each round every
    non-halted node sends one (optional) message per port, receives the
    messages of its neighbours, and updates its state. A node halts by
    announcing an output; its state then freezes (frozen nodes keep
    "sending" whatever their frozen state prescribes, which is how the
    standard model treats stopped processors).

    Ports are [0 .. deg-1], in sorted-neighbour order. Randomised
    algorithms draw from the per-node generator supplied to [init],
    seeded deterministically from [(seed, id)] for reproducibility.

    {b Scheduling.} The simulator runs receiver-driven over an active
    worklist: each round costs O(active nodes and their ports), halted
    nodes drop off the worklist, and a halted sender's per-port messages
    are computed once at halt time and cached ([send] must therefore be
    a pure function of the state — randomised machines keep their draws
    in [init]/[recv], which both Israeli–Itai and Panconesi–Rizzi do). *)

type ('state, 'msg, 'out) machine = {
  init : id:int -> degree:int -> rng:Random.State.t -> 'state;
  send : 'state -> port:int -> 'msg option;
  recv : 'state -> (int * 'msg) list -> 'state;
      (** Inbox holds [(port, message)] pairs, sorted by port. *)
  output : 'state -> 'out option;
      (** [Some o] means the node has halted with local output [o]. *)
}

type 'out result = {
  outputs : 'out array;
  rounds : int;  (** Rounds until the last node halted. *)
}

(** [run machine ~seed ~max_rounds g] executes until every node halts.
    @raise Failure if some node has not halted after [max_rounds]. *)
val run :
  ('s, 'm, 'o) machine -> seed:int -> max_rounds:int ->
  Ld_models.Labelled.Id.t -> 'o result
