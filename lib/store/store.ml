(* Content-addressed persistent record store — see store.mli for the
   layout and guarantees. No dependencies beyond the stdlib Digest
   (MD5) and Unix (pid for staging names, rename).

   Record frame:
     bytes 0..3    magic "LDS1"
     bytes 4..11   payload length, 64-bit little-endian
     bytes 12..27  MD5 of the payload (raw 16 bytes)
     bytes 28..    payload
   A reader that validated the header once can mmap the file and use
   the payload in place (fixed [payload_offset], no trailer). *)

module Obs = Ld_obs.Obs

let c_hits = Obs.Counter.make "store.hits"
let c_misses = Obs.Counter.make "store.misses"
let c_puts = Obs.Counter.make "store.puts"
let c_corrupt = Obs.Counter.make "store.corrupt"
let c_bytes_read = Obs.Counter.make "store.bytes_read"
let c_bytes_written = Obs.Counter.make "store.bytes_written"

exception Store_corrupt of string

let magic = "LDS1"
let payload_offset = 4 + 8 + 16

type t = { root : string }

let dir t = t.root

let default_dir () =
  match Sys.getenv_opt "LD_STORE" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "ld"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "ld"
      | _ -> ".ld-store"))

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    match Sys.mkdir path 0o755 with
    | () -> ()
    | exception Sys_error _ ->
      (* A racing process may have created it between the check and the
         mkdir; only a directory that still does not exist is an error. *)
      if not (Sys.file_exists path) then
        failwith ("Store: cannot create directory " ^ path)
  end

let open_store ?dir () =
  let root = match dir with Some d -> d | None -> default_dir () in
  mkdir_p root;
  mkdir_p (Filename.concat root "objects");
  mkdir_p (Filename.concat root "tmp");
  { root }

let digest_hex key = Digest.to_hex (Digest.string key)

let object_path t digest =
  Filename.concat
    (Filename.concat (Filename.concat t.root "objects") (String.sub digest 0 2))
    digest

let index_path t = Filename.concat t.root "index"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Validate a raw record file image; the payload on success. *)
let validate ~path raw =
  let fail what =
    Obs.Counter.incr c_corrupt;
    raise (Store_corrupt (Printf.sprintf "%s: %s" path what))
  in
  if String.length raw < payload_offset then fail "record shorter than header";
  if String.sub raw 0 4 <> magic then fail "bad magic";
  let len = Int64.to_int (String.get_int64_le raw 4) in
  if len < 0 || String.length raw <> payload_offset + len then
    fail
      (Printf.sprintf "length mismatch (header says %d, file carries %d)" len
         (String.length raw - payload_offset));
  let payload = String.sub raw payload_offset len in
  let sum = String.sub raw 12 16 in
  if not (Digest.equal sum (Digest.string payload)) then
    fail "checksum mismatch";
  payload

let get t ~key =
  let path = object_path t (digest_hex key) in
  if not (Sys.file_exists path) then begin
    Obs.Counter.incr c_misses;
    None
  end
  else begin
    let raw = read_file path in
    let payload = validate ~path raw in
    Obs.Counter.incr c_hits;
    Obs.Counter.add c_bytes_read (String.length raw);
    Some payload
  end

let mem t ~key = Sys.file_exists (object_path t (digest_hex key))

let delete t ~key =
  let path = object_path t (digest_hex key) in
  if Sys.file_exists path then Sys.remove path

let append_index t ~digest ~size ~key =
  (* One short O_APPEND write per put; the index is advisory. Keys are
     single-line by construction (Cache_store builds them); a newline
     smuggled into a key would only garble the advisory index. *)
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (index_path t)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Printf.fprintf oc "%s %d %s\n" digest size key)

let frame payload =
  let buf = Buffer.create (payload_offset + String.length payload) in
  Buffer.add_string buf magic;
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_string buf (Digest.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let put t ~key payload =
  let digest = digest_hex key in
  let path = object_path t digest in
  let already_valid =
    Sys.file_exists path
    &&
    match validate ~path (read_file path) with
    | stored ->
      (* Content addressing: an existing valid record for this key is
         necessarily the same bytes; re-writing it would be pure churn.
         A payload that differs anyway means the caller broke the
         content-addressing contract — refuse to paper over it. *)
      if not (String.equal stored payload) then
        raise
          (Store_corrupt
             (path ^ ": existing valid record differs from re-put payload \
                      (key is not content-addressed)"));
      true
    | exception Store_corrupt _ -> false
  in
  if not already_valid then begin
    mkdir_p (Filename.dirname path);
    let staged =
      Filename.concat
        (Filename.concat t.root "tmp")
        (Printf.sprintf "%s.%d.%Ld" digest (Unix.getpid ()) (Obs.now_ns ()))
    in
    let raw = frame payload in
    let oc = open_out_bin staged in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc raw);
    (* Atomic publish: readers see either no record or a whole record,
       and concurrent putters of the same key rename byte-identical
       files over each other — exactly one valid record remains. *)
    Sys.rename staged path;
    Obs.Counter.incr c_puts;
    Obs.Counter.add c_bytes_written (String.length raw);
    append_index t ~digest ~size:(String.length payload) ~key
  end

let entries t =
  if not (Sys.file_exists (index_path t)) then []
  else begin
    let text = read_file (index_path t) in
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun line ->
        match String.index_opt line ' ' with
        | None -> None
        | Some i -> (
          let digest = String.sub line 0 i in
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          match String.index_opt rest ' ' with
          | None -> None
          | Some j ->
            let size = int_of_string_opt (String.sub rest 0 j) in
            let key = String.sub rest (j + 1) (String.length rest - j - 1) in
            (match size with
            | Some size when not (Hashtbl.mem seen digest) ->
              Hashtbl.add seen digest ();
              Some (digest, size, key)
            | _ -> None)))
      (String.split_on_char '\n' text)
  end
