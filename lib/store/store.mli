(** Content-addressed, persistent on-disk record store.

    The adversary's (G_i, H_i) constructions are immutable,
    content-addressable data: the record for a cache key is fully
    determined by (delta, level, algorithm, code version), so a record
    written once is valid forever and two writers racing on the same
    key write byte-identical payloads. The store exploits exactly that:

    - {b Addressing.} A record is stored under the hex digest (MD5) of
      its key string; the key never needs to be enumerable, only
      recomputable. [objects/<d0d1>/<digest>] keeps directories small.
    - {b Atomicity.} [put] writes to a staging file under [tmp/] and
      [Unix.rename]s it into place — a crashed or racing writer can
      never leave a half-record visible under the final name; the last
      rename wins and all candidates are byte-identical by construction.
    - {b Corruption detection.} Every record is framed: a 4-byte magic,
      the payload length and the payload's MD5 precede the payload. A
      short file, a bad magic, a length mismatch or a checksum mismatch
      surfaces as {!Store_corrupt} — never a crash, and never silently
      treated as a hit {e or} a miss.
    - {b Flat layout.} The payload starts at the fixed offset
      {!payload_offset}, so a reader that has validated the header once
      can [mmap] the file and use the payload bytes in place.
    - {b Index.} [index] is an append-only advisory file (one
      [<digest> <size> <key>] line per put) for humans and tooling;
      lookups never read it.

    Counters ([store.hits] / [store.misses] / [store.puts] /
    [store.corrupt] / [store.bytes_read] / [store.bytes_written]) feed
    the usual {!Ld_obs} registry, so warm-restart guards can assert
    [store.hits > 0] from bench artefacts. *)

type t

(** A record failed validation: short file, bad magic, length or
    checksum mismatch. The string names the offending path and check. *)
exception Store_corrupt of string

(** Byte offset at which every record's payload starts. *)
val payload_offset : int

(** Resolution order for the root directory: [LD_STORE], then
    [$XDG_CACHE_HOME/ld], then [$HOME/.cache/ld], then [./.ld-store]. *)
val default_dir : unit -> string

(** [open_store ?dir ()] creates the layout under the root (default
    {!default_dir}) if needed and returns a handle. Safe to call from
    several processes at once. *)
val open_store : ?dir:string -> unit -> t

val dir : t -> string

(** Hex digest a key is stored under. *)
val digest_hex : string -> string

(** [put t ~key payload] writes the record atomically (stage + rename)
    and appends an index line. Re-putting an existing key is a cheap
    no-op when the stored record already validates — content
    addressing makes overwriting pointless. *)
val put : t -> key:string -> string -> unit

(** [get t ~key] is the stored payload, [None] on a miss.
    @raise Store_corrupt if a record exists but fails validation. *)
val get : t -> key:string -> string option

(** [mem t ~key] — a record file exists (it is {e not} validated). *)
val mem : t -> key:string -> bool

(** [delete t ~key] removes the record if present. The index keeps its
    historical line (it is advisory). *)
val delete : t -> key:string -> unit

(** Parsed index lines, oldest first: [(digest, size, key)].
    Duplicate digests (re-puts, racing writers) are deduplicated,
    keeping the first occurrence. *)
val entries : t -> (string * int * string) list
