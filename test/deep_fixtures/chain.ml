(* A machine whose [step] sits three calls above [Random.int]. *)
type state = { bound : int; acc : int }

let step s = { s with acc = Helpers.stage_one s.bound }
let send s = s.acc
