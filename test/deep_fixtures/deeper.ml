(* Bottom of the fixture chain: the only direct effect in the tree. *)
let stage_two bound = Random.int bound
