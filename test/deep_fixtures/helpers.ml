(* Middle link: pure itself, taint arrives from [Deeper]. *)
let stage_one x = Deeper.stage_two (x + 1)
