(* Closures crossing the Pool boundary: a literal and a named helper.
   Neither mutates anything itself — the write hides in
   [Shared_tally.bump], one (or two) calls down. *)
module Pool = Ld_pool.Pool

let run xs =
  Pool.map
    (fun x ->
      Shared_tally.bump ();
      x + 1)
    xs

let run_named xss = Pool.map Shared_tally.bump_all xss
