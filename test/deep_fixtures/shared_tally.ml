(* Module-level mutable state reached only through a helper. *)
let tally = ref 0
let bump () = incr tally
let bump_all xs = List.iter (fun _ -> bump ()) xs
