(* Fixture: idiomatic code, zero diagnostics expected. *)

let sorted xs = List.sort Int.compare xs
let rng = Random.State.make [| 42; 7 |]
let roll () = Random.State.int rng 6
let total xs = List.fold_left ( + ) 0 xs
let step s = s + 1

let careful f =
  match f () with v -> Some v | exception Invalid_argument _ -> None
