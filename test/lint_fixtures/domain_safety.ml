(* Fixture: every diagnostic in this file must be domain-safety. *)

let hits = ref 0

let tally xs =
  Pool.map
    (fun x ->
      incr hits;
      x + !hits)
    xs

let scatter arr jobs =
  Pool.mapi
    (fun i job ->
      arr.(i) <- job;
      job)
    jobs

let spawned table =
  Domain.spawn (fun () -> Hashtbl.replace table "k" 1)

(* State created inside the task body is fine: no diagnostic here. *)
let local_state xs =
  Pool.map
    (fun x ->
      let acc = ref 0 in
      acc := x;
      !acc)
    xs
