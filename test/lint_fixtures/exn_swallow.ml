(* Fixture: every diagnostic in this file must be exn-swallow. *)

let safe f = try f () with _ -> 0

let guarded g = match g () with v -> v | exception _ -> -1

(* Matching a specific exception is fine: no diagnostic here. *)
let specific h = try h () with Not_found -> 0
