(* Interface fixture: interfaces carry no expressions, but attribute
   payloads can embed structures — and an [Obj.magic] hiding in one
   must still be caught. *)

val double : int -> int

[@@@fixture
  let coerce (x : int) : string = Obj.magic x]
