(* Fixture: every diagnostic in this file must be machine-purity. *)

let trace = ref []

let step s =
  print_endline "tick";
  trace := s :: !trace;
  s + 1

type machine = { step : int -> int; send : int -> int }

let m =
  {
    step =
      (fun s ->
        Printf.printf "%d" s;
        s);
    send =
      (fun s ->
        trace := s :: !trace;
        s);
  }

(* A pure transition is fine: no diagnostic here. *)
let pure_send s = s + 1
