(* Fixture: every diagnostic in this file must be nondet-source. *)

let roll () = Random.int 6
let reseed () = Random.self_init ()
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
