(* Fixture: every diagnostic in this file must be obj-magic. *)

let cast (x : int) : string = Obj.magic x
let boxed v = Obj.repr v
