(* Fixture: a metrics sampler living outside lib/obs. The scrape
   timestamp reads are acknowledged (samplers may label frames with
   wall time); the unsuppressed clock reads and global Random use
   must each surface as nondet-source. *)

(* ld-lint: allow nondet-source — frame label only, never in a certificate *)
let frame_stamp () = Unix.gettimeofday ()

(* ld-lint: allow nondet-source — scrape jitter is cosmetic *)
let scrape_jitter () = Random.float 0.1

let sample_interval () = Sys.time ()
let shuffle_targets xs = List.map (fun x -> (Random.bits (), x)) xs
