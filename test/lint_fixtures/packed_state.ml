(* Fixture: the packed-state runtime's chunked-mutation idiom. Every
   diagnostic in this file must be domain-safety; the sanctioned
   pattern (closure calls a pre-bound chunk helper that owns the
   writes) must stay silent. *)

(* Sanctioned: [Packed.run_until] fans out over node ranges, and the
   task body only *calls* a helper bound before the fan-out. The
   helper's writes land in disjoint slices, so there is nothing for
   the rule to flag on the closure itself. *)
let step_chunk state out lo hi =
  for v = lo to hi - 1 do
    out.(v) <- state.(v) + 1
  done

let sanctioned state out ranges =
  Pool.map (fun (lo, hi) -> step_chunk state out lo hi) ranges

(* Flagged: writing captured packed state directly from the task body.
   The lint cannot see the range partition, so the raw mutation inside
   the closure is a cross-domain hazard. *)
let raw_write state ranges =
  Pool.map
    (fun (lo, hi) ->
      for v = lo to hi - 1 do
        state.(v) <- state.(v) + 1
      done;
      lo)
    ranges

(* Flagged: mutating a captured boxed accumulator from the task body
   (the shape the packed refactor replaces). *)
let boxed_accumulate totals jobs =
  Pool.mapi
    (fun i job ->
      totals := (i, job) :: !totals;
      job)
    jobs

(* Flagged: blitting into a captured scratch buffer from the closure. *)
let scratch_blit slab jobs =
  Pool.map
    (fun job ->
      Bytes.blit job 0 slab 0 8;
      job)
    jobs
