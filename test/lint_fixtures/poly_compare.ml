(* Fixture: every diagnostic in this file must be poly-compare. *)

let sorted xs = List.sort compare xs
let as_pairs a b = (a, 0) = (b, 1)
let hashed v = Hashtbl.hash v
let explicit = Stdlib.compare
let lists_differ xs ys = List.map succ xs <> List.map succ ys
