(* Fixture: poly-compare hazards typical of partition-refinement code
   (sorting blocks, grouping descriptors, snapshot diffing). Every
   diagnostic in this file must be poly-compare. *)

type block = { id : int; members : int list }

(* sorting blocks with the builtin compare orders by field layout *)
let order_blocks bs = List.sort compare bs

(* descriptor rows are tuples; builtin (=) walks them structurally *)
let same_descriptor a b = (a.id, a.members) = (b.id, b.members)

(* bucketing splitter keys with the polymorphic hash *)
let bucket_of key = Hashtbl.hash key mod 64

(* label snapshots are arrays; ordering their list images is luck *)
let ids_advanced before after = Array.to_list before < Array.to_list after

(* explicit Stdlib.compare on block records is the same trap *)
let compare_blocks (a : block) (b : block) = Stdlib.compare a b
