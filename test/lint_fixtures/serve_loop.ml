(* Fixture: a socket accept loop in the `ld serve` style. Swallowing
   every exception around accept/handle hides real failures (a bind
   race, a protocol bug) behind "client went away" — each catch-all
   must surface as exn-swallow. The connection stamp is acknowledged:
   labelling a connection with wall time is cosmetic and never enters
   a certificate or a stored record. *)

(* ld-lint: allow nondet-source — connection label only, never in a record *)
let conn_stamp () = Unix.gettimeofday ()

let accept_loop sock handle =
  while true do
    try
      let fd, _ = Unix.accept sock in
      handle ~stamp:(conn_stamp ()) fd
    with _ -> ()
  done

let close_quietly fd = try Unix.close fd with _ -> ()

(* Matching the specific exception is the sanctioned shape: a torn-down
   peer is expected, anything else propagates. No diagnostic here. *)
let close_specific fd =
  try Unix.close fd with Unix.Unix_error (Unix.EBADF, _, _) -> ()
