(* Deliberately-stale suppressions for the hygiene check: neither
   directive below silences any diagnostic, so each must be reported
   as stale-suppression. *)
(* ld-lint: allow-file nondet-source *)

let double x = x + x

(* ld-lint: allow poly-compare *)
let shout s = s ^ "!"
