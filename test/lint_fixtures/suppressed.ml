(* Fixture: real violations, all acknowledged — zero diagnostics expected. *)

(* ld-lint: allow poly-compare *)
let sorted xs = List.sort compare xs

(* ld-lint: allow nondet-source — timestamp used as a log label only *)
let now () = Unix.gettimeofday ()
