(* ld-lint: allow-file poly-compare *)
(* Fixture: the whole file opts out of poly-compare — zero diagnostics. *)

let sorted xs = List.sort compare xs
let later ys = List.sort_uniq compare ys
