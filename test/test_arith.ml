(* Exact arithmetic: Z against native ints, Q field laws. *)

module Z = Ld_arith.Z
module Q = Ld_arith.Q

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let z_matches_native =
  QCheck.Test.make ~count:500 ~name:"Z add/sub/mul/div/rem match native ints"
    (QCheck.pair small_int small_int)
    (fun (a, b) ->
      let za = Z.of_int a and zb = Z.of_int b in
      Z.to_int (Z.add za zb) = a + b
      && Z.to_int (Z.sub za zb) = a - b
      && Z.to_int (Z.mul za zb) = a * b
      && (b = 0
         || Z.to_int (Z.div za zb) = a / b && Z.to_int (Z.rem za zb) = a mod b)
      && Z.compare za zb = Int.compare a b)

let z_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Z decimal round-trip" small_int (fun a ->
      Z.to_int (Z.of_string (string_of_int a)) = a
      && Z.to_string (Z.of_int a) = string_of_int a)

let z_gcd_props =
  QCheck.Test.make ~count:500 ~name:"Z gcd divides and is symmetric"
    (QCheck.pair small_int small_int)
    (fun (a, b) ->
      let g = Z.gcd (Z.of_int a) (Z.of_int b) in
      Z.equal g (Z.gcd (Z.of_int b) (Z.of_int a))
      && (Z.is_zero g
          || Z.is_zero (Z.rem (Z.of_int a) g) && Z.is_zero (Z.rem (Z.of_int b) g)))

let z_big_values () =
  let p = Z.pow (Z.of_int 2) 100 in
  Alcotest.(check string)
    "2^100" "1267650600228229401496703205376" (Z.to_string p);
  let q, r = Z.divmod p (Z.of_int 1000) in
  Alcotest.(check string) "2^100 / 1000" "1267650600228229401496703205" (Z.to_string q);
  Alcotest.(check string) "2^100 mod 1000" "376" (Z.to_string r);
  Alcotest.(check int) "min_int round-trips" min_int Z.(to_int (of_int min_int));
  Alcotest.(check int) "max_int round-trips" max_int Z.(to_int (of_int max_int));
  Alcotest.(check bool) "2^62 does not fit" true
    (Z.to_int_opt (Z.pow Z.two 62) = None)

let z_pow_negative () =
  Alcotest.check_raises "negative exponent" (Invalid_argument "Z.pow: negative exponent")
    (fun () -> ignore (Z.pow Z.two (-1)))

let q_gen =
  QCheck.map
    (fun (n, d) -> Q.of_ints n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-500) 500) (QCheck.int_range (-60) 60))

let q_field_laws =
  QCheck.Test.make ~count:500 ~name:"Q ring laws and normalisation"
    (QCheck.triple q_gen q_gen q_gen)
    (fun (a, b, c) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.sub a a) Q.zero
      && (Q.is_zero a || Q.equal (Q.div a a) Q.one)
      && Ld_arith.Z.sign (Q.den a) > 0
      && Ld_arith.Z.equal (Ld_arith.Z.gcd (Q.num a) (Q.den a))
           (if Q.is_zero a then Ld_arith.Z.one else Ld_arith.Z.one))

let q_order_consistent =
  QCheck.Test.make ~count:500 ~name:"Q compare agrees with float compare"
    (QCheck.pair q_gen q_gen)
    (fun (a, b) ->
      let fa = Q.to_float a and fb = Q.to_float b in
      if Float.abs (fa -. fb) > 1e-9 then
        (Q.compare a b > 0) = (fa > fb)
      else true)

let q_parsing () =
  Alcotest.(check string) "1/3 + 1/6" "1/2" Q.(to_string (add (of_ints 1 3) (of_ints 1 6)));
  Alcotest.(check bool) "of_string p/q" true Q.(equal (of_string "-3/9") (of_ints (-1) 3));
  Alcotest.(check bool) "of_string int" true Q.(equal (of_string "7") (of_int 7));
  Alcotest.(check bool) "half" true Q.(equal half (of_ints 2 4));
  Alcotest.(check bool) "is_integer" true Q.(is_integer (of_ints 8 4));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Q.of_ints 1 0))

let q_infix_operators () =
  let open Q.Infix in
  Alcotest.(check bool) "arith" true
    (Q.of_ints 1 2 + Q.of_ints 1 3 = Q.of_ints 5 6);
  Alcotest.(check bool) "comparison chain" true
    (Q.of_ints 1 3 < Q.half && Q.half <= Q.half && Q.one > Q.half
    && Q.of_ints 7 7 >= Q.one);
  Alcotest.(check bool) "mul div" true
    (Q.of_ints 2 3 * Q.of_ints 3 4 / Q.half = Q.one)

let q_extremes () =
  (* exponentially small weights — the Åstrand–Suomela regime *)
  let tiny =
    List.fold_left (fun acc _ -> Q.mul acc Q.half) Q.one (List.init 200 Fun.id)
  in
  Alcotest.(check bool) "2^-200 positive" true (Q.sign tiny > 0);
  let back =
    List.fold_left (fun acc _ -> Q.mul acc (Q.of_int 2)) tiny (List.init 200 Fun.id)
  in
  Alcotest.(check bool) "scales back to 1" true (Q.equal back Q.one);
  Alcotest.(check string) "den digits" "61"
    (string_of_int (String.length (Ld_arith.Z.to_string (Q.den tiny))))

let q_sum_exact () =
  (* 1/1 + 1/2 + ... + 1/20 exactly *)
  let s = Q.sum (List.init 20 (fun i -> Q.of_ints 1 (i + 1))) in
  Alcotest.(check string) "harmonic H20" "55835135/15519504" (Q.to_string s)

let () =
  Alcotest.run "arith"
    [
      ( "z",
        [
          QCheck_alcotest.to_alcotest z_matches_native;
          QCheck_alcotest.to_alcotest z_string_roundtrip;
          QCheck_alcotest.to_alcotest z_gcd_props;
          Alcotest.test_case "big values" `Quick z_big_values;
          Alcotest.test_case "pow negative" `Quick z_pow_negative;
        ] );
      ( "q",
        [
          QCheck_alcotest.to_alcotest q_field_laws;
          QCheck_alcotest.to_alcotest q_order_consistent;
          Alcotest.test_case "parsing and printing" `Quick q_parsing;
          Alcotest.test_case "exact harmonic sum" `Quick q_sum_exact;
          Alcotest.test_case "infix operators" `Quick q_infix_operators;
          Alcotest.test_case "exponentially small weights" `Quick q_extremes;
        ] );
    ]
