(* The §1.1 baselines: EC greedy matching, Israeli–Itai, Cole–Vishkin,
   Panconesi–Rizzi. *)

module Mm_ec = Ld_matching.Mm_ec
module II = Ld_matching.Israeli_itai
module Cv = Ld_matching.Cole_vishkin
module PR = Ld_matching.Panconesi_rizzi
module Ec = Ld_models.Ec
module Id = Ld_models.Labelled.Id
module G = Ld_graph.Graph
module Gen = Ld_graph.Generators
module Colouring = Ld_models.Edge_colouring

(* ---- EC greedy maximal matching (§2.1: trivial in EC) ---- *)

let mm_ec_maximal =
  QCheck.Test.make ~count:60 ~name:"EC greedy matching is maximal in k rounds"
    (QCheck.triple (QCheck.int_range 2 20) (QCheck.int_range 1 5)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let ec = Colouring.ec_of_simple (Gen.random_bounded_degree ~seed n d) in
      let r = Mm_ec.greedy ec in
      Mm_ec.is_maximal ec r && r.rounds <= (2 * d) - 1)

let mm_ec_loops () =
  (* On a loopy graph, a node may match its own fiber copy: maximality
     on the multigraph means maximality on every lift. *)
  let g = Ec.create ~n:2 ~edges:[ (0, 1, 1) ] ~loops:[ (0, 2); (1, 3) ] in
  let r = Mm_ec.greedy g in
  Alcotest.(check bool) "maximal" true (Mm_ec.is_maximal g r);
  Alcotest.(check int) "edge matched (colour 1 first)" 1
    (List.length r.matched_edges)

let mm_ec_truncated_incomplete () =
  let g = Ec.create ~n:4 ~edges:[ (0, 1, 1); (2, 3, 2) ] ~loops:[] in
  let r = Mm_ec.greedy ~truncate:1 g in
  Alcotest.(check bool) "not maximal" false (Mm_ec.is_maximal g r)

(* ---- Israeli–Itai ---- *)

let ii_always_maximal =
  QCheck.Test.make ~count:40 ~name:"Israeli–Itai output is a maximal matching"
    (QCheck.triple (QCheck.int_range 1 30) (QCheck.int_range 1 6)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let g = Gen.random_bounded_degree ~seed n d in
      let r = II.run ~seed ~max_rounds:500 (Id.trivial g) in
      II.is_maximal g r)

let ii_rounds_logarithmic () =
  (* Shape check: rounds grow far slower than n (fixed degree). *)
  let rounds n =
    let g = Gen.random_bounded_degree ~seed:(n + 1) n 4 in
    (II.run ~seed:7 ~max_rounds:5000 (Id.trivial g)).rounds
  in
  let r256 = rounds 256 and r1024 = rounds 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "r(256)=%d, r(1024)=%d stay O(log n)" r256 r1024)
    true
    (r256 <= 40 && r1024 <= 50)

(* ---- Cole–Vishkin ---- *)

let cv_step_properly_colours =
  QCheck.Test.make ~count:300 ~name:"CV step keeps child ≠ parent"
    (QCheck.triple (QCheck.int_range 0 100000) (QCheck.int_range 0 100000)
       (QCheck.int_range 0 100000))
    (fun (c, p, gp) ->
      (* child c with parent p, parent p with grandparent gp *)
      QCheck.assume (c <> p && p <> gp);
      Cv.step ~mine:c ~parent:p <> Cv.step ~mine:p ~parent:gp)

let cv_reduce_forest_props =
  QCheck.Test.make ~count:60 ~name:"CV reduction: < 6 colours, proper, log* speed"
    (QCheck.pair (QCheck.int_range 1 60) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~seed n in
      (* root at 0, parents toward the root *)
      let dist = G.bfs_dist tree 0 in
      let parent =
        Array.init n (fun v ->
            if v = 0 then -1
            else
              List.find (fun w -> dist.(w) = dist.(v) - 1) (G.neighbours tree v))
      in
      let init = Array.init n (fun v -> (v * 7919) + 13) in
      let colours, iters = Cv.reduce_forest ~parent ~init in
      Array.for_all (fun c -> c >= 0 && c < 6) colours
      && Array.for_all Fun.id
           (Array.mapi
              (fun v p -> p < 0 || colours.(v) <> colours.(p))
              parent)
      && iters <= Cv.iterations_for_bits (Cv.bits_needed ((n * 7919) + 13)))

let cv_helpers () =
  Alcotest.(check int) "bits 0" 1 (Cv.bits_needed 0);
  Alcotest.(check int) "bits 5" 3 (Cv.bits_needed 5);
  Alcotest.(check int) "bits 64" 7 (Cv.bits_needed 64);
  Alcotest.(check bool) "virtual parent differs" true
    (Cv.virtual_parent 0 <> 0 && Cv.virtual_parent 3 <> 3);
  Alcotest.check_raises "equal colours rejected"
    (Invalid_argument "Cole_vishkin.step: equal colours") (fun () ->
      ignore (Cv.step ~mine:5 ~parent:5));
  Alcotest.(check bool) "log* tiny" true (Cv.iterations_for_bits 3 <= 1);
  Alcotest.(check bool) "log* 62 bits small" true (Cv.iterations_for_bits 62 <= 5)

(* ---- Panconesi–Rizzi ---- *)

let pr_always_maximal =
  QCheck.Test.make ~count:30 ~name:"Panconesi–Rizzi output is a maximal matching"
    (QCheck.triple (QCheck.int_range 1 30) (QCheck.int_range 1 6)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let g = Gen.random_bounded_degree ~seed n d in
      let r = PR.run (Id.trivial g) in
      PR.is_maximal g r)

let pr_with_arbitrary_ids =
  QCheck.Test.make ~count:20 ~name:"Panconesi–Rizzi with scrambled large ids"
    (QCheck.pair (QCheck.int_range 2 25) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = Gen.random_bounded_degree ~seed n 4 in
      let ids = Array.init n (fun v -> 100000 + (((v * 7919) + seed) mod 899999)) in
      let ids = Array.of_list (List.sort_uniq Int.compare (Array.to_list ids)) in
      QCheck.assume (Array.length ids = n);
      let r = PR.run (Id.create g ids) in
      PR.is_maximal g r)

let pr_rounds_shape () =
  (* rounds ≈ 6Δ + log* n + O(1): doubling Δ roughly doubles rounds,
     squaring n barely moves them. *)
  let rounds ~n ~d ~seed =
    let g = Gen.random_bounded_degree ~seed n d in
    (PR.run (Id.trivial g)).rounds
  in
  let r_d2 = rounds ~n:40 ~d:2 ~seed:1 in
  let r_d8 = rounds ~n:40 ~d:8 ~seed:1 in
  Alcotest.(check bool)
    (Printf.sprintf "Δ matters: %d -> %d" r_d2 r_d8)
    true
    (r_d8 > r_d2 + 20);
  let r_small = rounds ~n:16 ~d:4 ~seed:2 in
  let r_large = rounds ~n:256 ~d:4 ~seed:2 in
  Alcotest.(check bool)
    (Printf.sprintf "n barely matters: %d -> %d" r_small r_large)
    true
    (r_large - r_small <= 4)

let pr_path_exact () =
  let g = Gen.path 10 in
  let r = PR.run (Id.trivial g) in
  Alcotest.(check bool) "maximal on path" true (PR.is_maximal g r);
  (* A maximal matching on P10 has at least 3 edges. *)
  let size =
    Array.fold_left (fun acc m -> if m <> None then acc + 1 else acc) 0 r.mate / 2
  in
  Alcotest.(check bool) "size >= 3" true (size >= 3)

let () =
  Alcotest.run "baselines"
    [
      ( "mm-ec",
        [
          QCheck_alcotest.to_alcotest mm_ec_maximal;
          Alcotest.test_case "loops" `Quick mm_ec_loops;
          Alcotest.test_case "truncated" `Quick mm_ec_truncated_incomplete;
        ] );
      ( "israeli-itai",
        [
          QCheck_alcotest.to_alcotest ii_always_maximal;
          Alcotest.test_case "log-n rounds" `Slow ii_rounds_logarithmic;
        ] );
      ( "cole-vishkin",
        [
          QCheck_alcotest.to_alcotest cv_step_properly_colours;
          QCheck_alcotest.to_alcotest cv_reduce_forest_props;
          Alcotest.test_case "helpers" `Quick cv_helpers;
        ] );
      ( "panconesi-rizzi",
        [
          QCheck_alcotest.to_alcotest pr_always_maximal;
          QCheck_alcotest.to_alcotest pr_with_arbitrary_ids;
          Alcotest.test_case "rounds shape" `Slow pr_rounds_shape;
          Alcotest.test_case "path" `Quick pr_path_exact;
        ] );
    ]
