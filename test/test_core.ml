(* The Section 4 adversary: Theorem 1 as machine-checked certificates. *)

module LB = Ld_core.Lower_bound
module Packing = Ld_matching.Packing
module Ec = Ld_models.Ec
module Fm = Ld_fm.Fm
module Q = Ld_arith.Q
module Refinement = Ld_cover.Refinement
module View = Ld_cover.View
module Lift = Ld_cover.Lift

let certs_of = function
  | LB.Certified certs -> certs
  | LB.Refuted _ -> Alcotest.fail "expected certification"

let check_certificate delta (c : LB.certificate) =
  (* P1: differing outputs on the distinguished colour-c loops... *)
  Alcotest.(check bool)
    (Printf.sprintf "level %d weights differ" c.level)
    false
    (Q.equal c.g_weight c.h_weight);
  Alcotest.(check int) "loop colour (G)" c.colour (Ec.loop c.g_graph c.g_loop).colour;
  Alcotest.(check int) "loop colour (H)" c.colour (Ec.loop c.h_graph c.h_loop).colour;
  Alcotest.(check int) "loop node (G)" c.g_node (Ec.loop c.g_graph c.g_loop).node;
  Alcotest.(check int) "loop node (H)" c.h_node (Ec.loop c.h_graph c.h_loop).node;
  (* ... on isomorphic radius-i views. *)
  Alcotest.(check bool)
    (Printf.sprintf "level %d views isomorphic" c.level)
    true
    (Refinement.equivalent_radius c.g_graph c.g_node c.h_graph c.h_node
       ~radius:c.level);
  (* P2: (Δ-1-i)-loopiness of the multigraphs themselves. *)
  Alcotest.(check bool) "P2 for G" true (Ec.min_loops c.g_graph >= delta - 1 - c.level);
  Alcotest.(check bool) "P2 for H" true (Ec.min_loops c.h_graph >= delta - 1 - c.level);
  (* Degrees stay within Δ. *)
  Alcotest.(check bool) "degree bound G" true (Ec.max_degree c.g_graph <= delta);
  Alcotest.(check bool) "degree bound H" true (Ec.max_degree c.h_graph <= delta)

let adversary_certifies_greedy () =
  List.iter
    (fun delta ->
      let certs = certs_of (LB.run ~delta Packing.greedy_algorithm) in
      Alcotest.(check int)
        (Printf.sprintf "delta=%d levels" delta)
        (delta - 1) (List.length certs);
      List.iter (check_certificate delta) certs)
    [ 2; 3; 4; 5; 6; 7 ]

let adversary_certifies_greedy_matching () =
  (* The companion result [13]: the greedy maximal matching (a 0/1
     maximal FM) also needs Ω(Δ) rounds; truncations are refuted. *)
  List.iter
    (fun delta ->
      let certs =
        certs_of (LB.run ~delta (Ld_matching.Mm_ec.as_packing_algorithm ()))
      in
      Alcotest.(check int)
        (Printf.sprintf "delta=%d levels" delta)
        (delta - 1) (List.length certs);
      List.iter (check_certificate delta) certs)
    [ 2; 3; 4; 5; 6 ];
  match LB.run ~delta:6 (Ld_matching.Mm_ec.as_packing_algorithm ~truncate:3 ()) with
  | LB.Certified _ -> Alcotest.fail "truncated matching certified"
  | LB.Refuted (_, f) ->
    Alcotest.(check bool) "prompt refutation" true (f.LB.fail_level <= 4)

let adversary_certifies_proposal () =
  List.iter
    (fun delta ->
      let certs = certs_of (LB.run ~delta Packing.proposal_algorithm) in
      Alcotest.(check int)
        (Printf.sprintf "delta=%d levels" delta)
        (delta - 1) (List.length certs))
    [ 2; 4; 6 ]

let base_case_is_figure5 () =
  (* Level 0: G_0 one node with Δ loops, H_0 with Δ-1 loops, same node. *)
  let certs = certs_of (LB.run ~delta:4 Packing.greedy_algorithm) in
  match certs with
  | c0 :: _ ->
    Alcotest.(check int) "G0 is a single node" 1 (Ec.n c0.g_graph);
    Alcotest.(check int) "G0 has delta loops" 4 (Ec.num_loops c0.g_graph);
    Alcotest.(check int) "H0 has delta-1 loops" 3 (Ec.num_loops c0.h_graph);
    Alcotest.(check int) "same node" c0.g_node c0.h_node
  | [] -> Alcotest.fail "no certificates"

let graphs_double_per_level () =
  (* COST: |G_i| = 2^i (the unfold step doubles). *)
  let certs = certs_of (LB.run ~delta:7 Packing.greedy_algorithm) in
  List.iter
    (fun (c : LB.certificate) ->
      Alcotest.(check int)
        (Printf.sprintf "level %d size" c.level)
        (1 lsl c.level) (Ec.n c.g_graph))
    certs

let truncated_algorithms_refuted () =
  (* The dichotomy: r-round truncations are refuted, with a concrete
     feasibility/maximality violation on a loopy graph, and the failure
     persists on the simple 2-lift. *)
  List.iter
    (fun r ->
      match LB.run ~delta:6 (Packing.truncated `Greedy r) with
      | LB.Certified _ -> Alcotest.fail "truncated algorithm cannot be certified"
      | LB.Refuted (certs, f) ->
        Alcotest.(check bool) "has violations" true (f.fail_violations <> []);
        Alcotest.(check bool) "graph is loopy" true (Ec.min_loops f.fail_graph >= 1);
        Alcotest.(check bool) "lift is a covering" true (Lift.is_covering f.fail_lift);
        Alcotest.(check int) "lift is loop-free" 0 (Ec.num_loops f.fail_lift.total);
        (* The pulled-back output fails on the simple lift too. *)
        let lifted = Fm.pull_back f.fail_lift f.fail_output in
        Alcotest.(check bool) "violation persists on simple lift" false
          (Fm.is_maximal_fm lifted);
        (* The refutation arrives within r+1 levels of the truncation. *)
        Alcotest.(check bool) "fails promptly" true (f.fail_level <= r + 1);
        Alcotest.(check int) "certificates before break" f.fail_level
          (List.length certs))
    [ 0; 1; 2; 3; 4 ]

let boundary_is_linear () =
  (* THM1 frontier: max certified level of the r-round truncation is
     exactly min(r-2, Δ-2) for the greedy algorithm — linear in r. *)
  let delta = 7 in
  List.iter
    (fun (r, level) ->
      let expected = max (-1) (min (r - 2) (delta - 2)) in
      Alcotest.(check int) (Printf.sprintf "r=%d" r) expected level)
    (LB.boundary ~delta ~truncate_max:8 `Greedy)

(* ---- memoised frontier scans ---- *)

let cache_shares_certificates () =
  let delta = 6 in
  let cache = LB.build_cache ~delta Packing.greedy_algorithm in
  (* Replaying the base algorithm returns the recorded outcome itself:
     the certificate list — and the (G_i, H_i) pairs inside — are
     physically shared, not rebuilt. *)
  let replayed = LB.cached_run cache Packing.greedy_algorithm in
  Alcotest.(check bool) "outcome physically shared" true
    (replayed == LB.cache_outcome cache);
  (match replayed with
  | LB.Certified certs ->
    let base_certs = certs_of (LB.cache_outcome cache) in
    List.iter2
      (fun (x : LB.certificate) (y : LB.certificate) ->
        Alcotest.(check bool) "G_i shared" true (x.g_graph == y.g_graph);
        Alcotest.(check bool) "H_i shared" true (x.h_graph == y.h_graph))
      certs base_certs
  | LB.Refuted _ -> Alcotest.fail "expected certification");
  (* A refuted truncation shares its certificate prefix with the cache. *)
  match LB.cached_run cache (Packing.truncated `Greedy 4) with
  | LB.Certified _ -> Alcotest.fail "truncation certified"
  | LB.Refuted (prefix, f) ->
    let base_certs = certs_of (LB.cache_outcome cache) in
    Alcotest.(check int) "prefix stops at failure" f.LB.fail_level
      (List.length prefix);
    List.iteri
      (fun i (c : LB.certificate) ->
        Alcotest.(check bool) "prefix certificate shared" true
          (c == List.nth base_certs i))
      prefix

let cached_frontier_matches_full_runs () =
  (* Δ = 2..6: for every truncation r, the cached replay and a fresh
     full adversary run reach the same verdict and the same max level. *)
  List.iter
    (fun delta ->
      let cache =
        LB.build_cache ~check_views:false ~delta Packing.greedy_algorithm
      in
      for r = 0 to delta + 1 do
        let algo = Packing.truncated `Greedy r in
        let cached = LB.cached_run cache algo in
        let full = LB.run ~check_views:false ~delta algo in
        Alcotest.(check int)
          (Printf.sprintf "delta=%d r=%d max level" delta r)
          (LB.max_level full) (LB.max_level cached);
        Alcotest.(check bool)
          (Printf.sprintf "delta=%d r=%d same verdict" delta r)
          (match full with LB.Certified _ -> true | LB.Refuted _ -> false)
          (match cached with LB.Certified _ -> true | LB.Refuted _ -> false)
      done)
    [ 2; 3; 4; 5; 6 ]

let incremental_views_match_from_scratch () =
  (* The covering-anchor incremental P1 check must be outcome-equivalent
     to refining the full unfolded target at every level — certified
     runs agree certificate-for-certificate, refuted runs at the same
     level. *)
  let same_outcome name a b =
    match (a, b) with
    | LB.Certified ca, LB.Certified cb ->
      Alcotest.(check int) (name ^ " cert count") (List.length ca)
        (List.length cb);
      List.iter2
        (fun (x : LB.certificate) (y : LB.certificate) ->
          Alcotest.(check int) (name ^ " level") x.level y.level;
          Alcotest.(check int) (name ^ " colour") x.colour y.colour;
          Alcotest.(check int) (name ^ " g_node") x.g_node y.g_node;
          Alcotest.(check int) (name ^ " h_node") x.h_node y.h_node;
          Alcotest.(check bool) (name ^ " weights") true
            (Q.equal x.g_weight y.g_weight && Q.equal x.h_weight y.h_weight);
          Alcotest.(check bool) (name ^ " views checked") true
            (x.views_checked && y.views_checked))
        ca cb
    | LB.Refuted (ca, fa), LB.Refuted (cb, fb) ->
      Alcotest.(check int) (name ^ " fail level") fa.LB.fail_level
        fb.LB.fail_level;
      Alcotest.(check int) (name ^ " cert prefix") (List.length ca)
        (List.length cb)
    | _ -> Alcotest.fail (name ^ ": verdicts differ")
  in
  List.iter
    (fun delta ->
      same_outcome
        (Printf.sprintf "greedy delta=%d" delta)
        (LB.run ~incremental_views:true ~delta Packing.greedy_algorithm)
        (LB.run ~incremental_views:false ~delta Packing.greedy_algorithm))
    [ 2; 3; 4; 5; 6; 7 ];
  List.iter
    (fun r ->
      same_outcome
        (Printf.sprintf "truncated r=%d delta=5" r)
        (LB.run ~incremental_views:true ~delta:5 (Packing.truncated `Greedy r))
        (LB.run ~incremental_views:false ~delta:5 (Packing.truncated `Greedy r)))
    [ 0; 2; 4 ]

let analytic_replay_matches_cached_run () =
  (* truncated_replay derives the outcome from the recorded colour
     thresholds without running anything; it must agree with the
     probe-re-running cached_run on every truncation — including the
     failure witness. *)
  List.iter
    (fun delta ->
      let cache = LB.build_cache ~delta Packing.greedy_algorithm in
      for r = 0 to delta + 2 do
        let name fmt = Printf.sprintf "delta=%d r=%d %s" delta r fmt in
        let analytic = LB.truncated_replay cache ~rounds:r in
        let rerun = LB.cached_run cache (Packing.truncated `Greedy r) in
        (* the witness-free verdict must agree with the full replay *)
        Alcotest.(check bool) (name "verdict matches replay") true
          (match (LB.truncated_verdict cache ~rounds:r, analytic) with
          | `Certified, LB.Certified _ | `Refuted, LB.Refuted _ -> true
          | _ -> false);
        match (analytic, rerun) with
        | LB.Certified _, LB.Certified _ ->
          Alcotest.(check bool) (name "certified outcome shared") true
            (analytic == LB.cache_outcome cache)
        | LB.Refuted (ca, fa), LB.Refuted (cb, fb) ->
          Alcotest.(check int) (name "fail level") fb.LB.fail_level
            fa.LB.fail_level;
          Alcotest.(check bool) (name "fail graph") true
            (Ec.equal fa.LB.fail_graph fb.LB.fail_graph);
          Alcotest.(check bool) (name "fail output") true
            (Fm.equal fa.LB.fail_output fb.LB.fail_output);
          Alcotest.(check int) (name "violations")
            (List.length fb.LB.fail_violations)
            (List.length fa.LB.fail_violations);
          Alcotest.(check string) (name "note") fb.LB.fail_note fa.LB.fail_note;
          Alcotest.(check int) (name "cert prefix") (List.length cb)
            (List.length ca);
          List.iter2
            (fun (x : LB.certificate) (y : LB.certificate) ->
              Alcotest.(check bool) (name "prefix shared") true (x == y))
            ca cb
        | _ -> Alcotest.fail (name "verdicts differ")
      done)
    [ 2; 3; 4; 5; 6 ]

let analytic_replay_validation () =
  let cache = LB.build_cache ~delta:4 Packing.proposal_algorithm in
  Alcotest.(check bool) "proposal cache rejected" true
    (try
       ignore (LB.truncated_replay cache ~rounds:3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "proposal cache rejected (verdict)" true
    (try
       ignore (LB.truncated_verdict cache ~rounds:3);
       false
     with Invalid_argument _ -> true);
  let gcache = LB.build_cache ~delta:4 Packing.greedy_algorithm in
  Alcotest.(check bool) "negative rounds rejected" true
    (try
       ignore (LB.truncated_replay gcache ~rounds:(-1));
       false
     with Invalid_argument _ -> true)

let pool_map_is_deterministic () =
  let xs = List.init 50 Fun.id in
  Alcotest.(check (list int)) "order preserved"
    (List.map (fun x -> x * x) xs)
    (Ld_core.Pool.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "mapi indices" (List.init 10 (fun i -> 2 * i))
    (Ld_core.Pool.mapi ~domains:3 (fun i x -> i + x) (List.init 10 Fun.id));
  Alcotest.check_raises "earliest failure re-raised" (Failure "boom3")
    (fun () ->
      ignore
        (Ld_core.Pool.map ~domains:3
           (fun x -> if x >= 3 then failwith (Printf.sprintf "boom%d" x) else x)
           xs))

let non_lift_invariant_rejected () =
  (* An "algorithm" that breaks symmetry it cannot see (uses node ids)
     must be caught by the lift-invariance sanity check. *)
  let cheating =
    {
      LB.name = "cheater";
      run =
        (fun g ->
          (* Saturate node 0's first loop only; elsewhere greedy. *)
          let y = Ld_fm.Greedy.maximal_fm g in
          match Ec.loops_at g 0 with
          | l0 :: _ ->
            let loop_w =
              Array.mapi
                (fun i w -> if i = l0 then Q.one else w)
                (Array.init (Ec.num_loops g) (Fm.loop_weight y))
            in
            let edge_w =
              Array.init (Ec.num_edges g) (fun i ->
                  if i = 0 then Q.zero else Fm.edge_weight y i)
            in
            Fm.create g ~edge_w ~loop_w
          | [] -> y);
    }
  in
  Alcotest.(check bool) "cheater detected or refuted" true
    (try
       match LB.run ~delta:5 cheating with
       | LB.Refuted _ -> true
       | LB.Certified _ -> false
     with Failure _ -> true)

let views_match_explicit_trees () =
  (* Cross-validate the refinement-based P1 check with explicit view
     trees at small levels. *)
  let certs = certs_of (LB.run ~delta:5 Packing.greedy_algorithm) in
  List.iter
    (fun (c : LB.certificate) ->
      if c.level <= 3 then
        Alcotest.(check bool)
          (Printf.sprintf "explicit views agree at level %d" c.level)
          true
          (View.equal
             (View.of_ec c.g_graph c.g_node ~radius:c.level)
             (View.of_ec c.h_graph c.h_node ~radius:c.level)))
    certs

let report_rendering () =
  let certified = LB.run ~delta:4 Packing.greedy_algorithm in
  let doc =
    Ld_core.Report.markdown ~delta:4 ~algorithm_name:"greedy" certified
  in
  let has needle =
    let n = String.length needle and h = String.length doc in
    let rec go i = i + n <= h && (String.sub doc i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions outcome" true (has "CERTIFIED");
  Alcotest.(check bool) "mentions levels" true (has "### Level 2");
  Alcotest.(check bool) "inlines base case" true (has "loop @0");
  let refuted = LB.run ~delta:4 (Packing.truncated `Greedy 1) in
  let doc' = Ld_core.Report.markdown ~delta:4 ~algorithm_name:"t" refuted in
  let has' needle =
    let n = String.length needle and h = String.length doc' in
    let rec go i = i + n <= h && (String.sub doc' i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions refutation" true (has' "REFUTED");
  Alcotest.(check bool) "includes 2-lift statement" true (has' "2-lift")

let delta_validation () =
  Alcotest.check_raises "delta >= 2"
    (Invalid_argument "Lower_bound.run: delta must be >= 2") (fun () ->
      ignore (LB.run ~delta:1 Packing.greedy_algorithm))

(* ---- empirical locality (Definition (1) as a test) ---- *)

let locality_of_certified_algorithm () =
  let module Loc = Ld_core.Locality in
  List.iter
    (fun delta ->
      let certs = certs_of (LB.run ~delta Packing.greedy_algorithm) in
      let probes = Loc.probes_of_certificates certs in
      (* The certificates are locality violations by construction, so the
         measured locality exceeds the top level. *)
      match Loc.empirical_locality ~max_radius:(delta + 2) Packing.greedy_algorithm probes with
      | Some t ->
        Alcotest.(check bool)
          (Printf.sprintf "delta=%d locality %d > %d" delta t (delta - 2))
          true
          (t > delta - 2)
      | None -> Alcotest.fail "no consistent radius found")
    [ 3; 4; 5; 6 ]

let locality_violation_details () =
  let module Loc = Ld_core.Locality in
  let certs = certs_of (LB.run ~delta:4 Packing.greedy_algorithm) in
  let top = List.nth certs (List.length certs - 1) in
  (* The top-level pair alone is a radius-(Δ-2) violation. *)
  match
    Loc.violation_at ~radius:top.level Packing.greedy_algorithm
      [ top.g_graph; top.h_graph ]
  with
  | None -> Alcotest.fail "certificate pair must violate its own level"
  | Some v -> Alcotest.(check int) "radius" top.level v.Loc.radius

let locality_respects_truncation () =
  let module Loc = Ld_core.Locality in
  (* A genuinely r-round machine can never be caught above r+1. *)
  let probes =
    List.map
      (fun s ->
        Ld_models.Edge_colouring.ec_of_simple
          (Ld_graph.Generators.random_bounded_degree ~seed:s 12 4))
      [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun r ->
      match
        Loc.empirical_locality ~max_radius:12 (Packing.truncated `Greedy r) probes
      with
      | Some t -> Alcotest.(check bool) "within r+1" true (t <= r + 1)
      | None -> Alcotest.fail "unbounded locality for a truncated machine")
    [ 0; 1; 2; 3 ]

let id_locality_of_israeli_itai () =
  (* Definition (1) for the ID model: with a fixed seed, Israeli–Itai's
     output at v is reproduced by running it on the identified ball of
     radius = (global round count); outputs are compared as partner
     identifiers, which are index-independent. *)
  let module Loc = Ld_core.Locality in
  let module II = Ld_matching.Israeli_itai in
  let module Id = Ld_models.Labelled.Id in
  let module Ball = Ld_cover.Ball in
  List.iter
    (fun seed ->
      let g = Ld_graph.Generators.random_bounded_degree ~seed 18 4 in
      let idg = Id.trivial g in
      let rounds = (II.run ~seed:9 ~max_rounds:1000 idg).II.rounds in
      let run idg' =
        let r = II.run ~seed:9 ~max_rounds:1000 idg' in
        Array.mapi
          (fun _ m -> Option.map (fun w -> Id.id idg' w) m)
          r.II.mate
      in
      for v = 0 to Ld_graph.Graph.n g - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "seed %d node %d is %d-local" seed v rounds)
          true
          (Loc.id_local_at ~radius:rounds ~run ~equal:( = ) idg v)
      done)
    [ 1; 2; 3 ]

let ball_extraction () =
  let module Ball = Ld_cover.Ball in
  let module Id = Ld_models.Labelled.Id in
  let g = Ld_graph.Generators.cycle 8 in
  let idg = Id.create g [| 10; 11; 12; 13; 14; 15; 16; 17 |] in
  let b = Ball.extract idg 0 ~radius:2 in
  Alcotest.(check int) "5 nodes within distance 2" 5 (Ball.size b);
  (* the two distance-2 nodes are not adjacent in the ball (their edge
     has distance 3) *)
  Alcotest.(check int) "4 edges" 4 (Ld_graph.Graph.m (Id.graph b.Ball.ball_graph));
  Alcotest.(check int) "root keeps its id" 10
    (Id.id b.Ball.ball_graph b.Ball.root);
  let b0 = Ball.extract idg 3 ~radius:0 in
  Alcotest.(check int) "radius 0 = bare node" 1 (Ball.size b0);
  Alcotest.(check int) "no edges at radius 0" 0
    (Ld_graph.Graph.m (Id.graph b0.Ball.ball_graph))

(* ---- certificate serialisation & independent verification ---- *)

let certificate_roundtrip () =
  let module CIO = Ld_core.Certificate_io in
  let certs = certs_of (LB.run ~delta:5 Packing.greedy_algorithm) in
  let text = CIO.to_string certs in
  let back = CIO.of_string text in
  Alcotest.(check int) "count preserved" (List.length certs) (List.length back);
  List.iter2
    (fun (a : LB.certificate) (b : LB.certificate) ->
      Alcotest.(check int) "level" a.level b.level;
      Alcotest.(check int) "colour" a.colour b.colour;
      Alcotest.(check bool) "g graph" true (Ec.equal a.g_graph b.g_graph);
      Alcotest.(check bool) "h graph" true (Ec.equal a.h_graph b.h_graph);
      Alcotest.(check bool) "weights" true
        (Q.equal a.g_weight b.g_weight && Q.equal a.h_weight b.h_weight))
    certs back;
  (* Independent verification, including re-running the algorithm. *)
  let checks =
    CIO.verify ~algorithm:Packing.greedy_algorithm ~delta:5 back
  in
  List.iter
    (fun c -> Alcotest.(check bool) "check ok" true (CIO.check_ok c))
    checks

let certificate_tamper_detected () =
  let module CIO = Ld_core.Certificate_io in
  let certs = certs_of (LB.run ~delta:4 Packing.greedy_algorithm) in
  (* Tamper 1: claim equal weights. *)
  let forged =
    List.map (fun (c : LB.certificate) -> { c with LB.h_weight = c.g_weight }) certs
  in
  Alcotest.(check bool) "equal weights rejected" false
    (List.for_all CIO.check_ok (CIO.verify ~delta:4 forged));
  (* Tamper 2: misreport the algorithm's output. *)
  let forged2 =
    List.map
      (fun (c : LB.certificate) ->
        { c with LB.g_weight = Q.add c.g_weight (Q.of_ints 1 7) })
      certs
  in
  Alcotest.(check bool) "wrong outputs rejected" false
    (List.for_all CIO.check_ok
       (CIO.verify ~algorithm:Packing.greedy_algorithm ~delta:4 forged2));
  (* Tamper 3: wrong distinguished node. *)
  let forged3 =
    List.filter_map
      (fun (c : LB.certificate) ->
        if c.LB.level >= 1 then Some { c with LB.g_node = (c.LB.g_node + 1) mod Ec.n c.LB.g_graph }
        else None)
      certs
  in
  Alcotest.(check bool) "wrong node rejected" false
    (List.for_all CIO.check_ok (CIO.verify ~delta:4 forged3))

let certificate_file_roundtrip () =
  let module CIO = Ld_core.Certificate_io in
  let certs = certs_of (LB.run ~delta:4 Packing.greedy_algorithm) in
  let path = Filename.temp_file "ld_cert" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      CIO.save path certs;
      let back = CIO.load path in
      Alcotest.(check int) "count" (List.length certs) (List.length back);
      Alcotest.(check bool) "verifies" true
        (List.for_all CIO.check_ok
           (CIO.verify ~algorithm:Packing.greedy_algorithm ~delta:4 back)))

let sexp_roundtrip () =
  let module S = Ld_core.Sexp in
  let s =
    S.list [ S.atom "a"; S.list [ S.int 1; S.int (-2) ]; S.field "f" [ S.atom "x" ] ]
  in
  let text = S.to_string s in
  Alcotest.(check string) "printed" "(a (1 -2) (f x))" text;
  Alcotest.(check bool) "parse back" true (S.of_string text = s);
  Alcotest.(check bool) "malformed rejected" true
    (try
       ignore (S.of_string "(a (b)");
       false
     with Failure _ -> true)

let () =
  Alcotest.run "core"
    [
      ( "theorem1",
        [
          Alcotest.test_case "greedy certified to level Δ-2" `Quick
            adversary_certifies_greedy;
          Alcotest.test_case "proposal certified to level Δ-2" `Quick
            adversary_certifies_proposal;
          Alcotest.test_case "greedy matching certified (cf. [13])" `Quick
            adversary_certifies_greedy_matching;
          Alcotest.test_case "boundary linear in r" `Quick boundary_is_linear;
        ] );
      ( "memoisation",
        [
          Alcotest.test_case "cache shares certificates" `Quick
            cache_shares_certificates;
          Alcotest.test_case "cached frontier = full runs" `Quick
            cached_frontier_matches_full_runs;
          Alcotest.test_case "incremental views = from scratch" `Quick
            incremental_views_match_from_scratch;
          Alcotest.test_case "analytic replay = cached run" `Quick
            analytic_replay_matches_cached_run;
          Alcotest.test_case "analytic replay validation" `Quick
            analytic_replay_validation;
          Alcotest.test_case "pool map deterministic" `Quick
            pool_map_is_deterministic;
        ] );
      ( "scale",
        [
          Alcotest.test_case "delta=10 full certification" `Slow (fun () ->
              let certs = certs_of (LB.run ~delta:10 Packing.greedy_algorithm) in
              Alcotest.(check int) "9 levels" 9 (List.length certs);
              List.iter (check_certificate 10) certs;
              let top = List.nth certs 8 in
              Alcotest.(check int) "top size 2^8" 256 (Ec.n top.g_graph));
        ] );
      ( "construction",
        [
          Alcotest.test_case "base case (Fig. 5)" `Quick base_case_is_figure5;
          Alcotest.test_case "sizes double (unfold)" `Quick graphs_double_per_level;
          Alcotest.test_case "explicit views agree" `Quick views_match_explicit_trees;
          Alcotest.test_case "delta validation" `Quick delta_validation;
          Alcotest.test_case "report rendering" `Quick report_rendering;
        ] );
      ( "refutation",
        [
          Alcotest.test_case "truncations refuted with witnesses" `Quick
            truncated_algorithms_refuted;
          Alcotest.test_case "cheating algorithms rejected" `Quick
            non_lift_invariant_rejected;
        ] );
      ( "locality",
        [
          Alcotest.test_case "certified algorithm locality > Δ-2" `Quick
            locality_of_certified_algorithm;
          Alcotest.test_case "violation details" `Quick locality_violation_details;
          Alcotest.test_case "truncation bound" `Quick locality_respects_truncation;
          Alcotest.test_case "ball extraction" `Quick ball_extraction;
          Alcotest.test_case "ID locality (Israeli-Itai)" `Quick id_locality_of_israeli_itai;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "sexp roundtrip" `Quick sexp_roundtrip;
          Alcotest.test_case "serialise + verify" `Quick certificate_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick certificate_file_roundtrip;
          Alcotest.test_case "tampering detected" `Quick certificate_tamper_detected;
        ] );
    ]
