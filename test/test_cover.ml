(* Lifts, views, refinement, factor graphs, loopiness (paper §3.4–3.5). *)

module Ec = Ld_models.Ec
module View = Ld_cover.View
module Refinement = Ld_cover.Refinement
module Lift = Ld_cover.Lift
module Factor = Ld_cover.Factor
module Loopy = Ld_cover.Loopy
module Gen = Ld_graph.Generators
module Colouring = Ld_models.Edge_colouring

let pair_compare (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

(* Random loopy tree-plus-loops EC graphs, the shape used in Section 4. *)
let random_loopy_ec ~seed n =
  let tree = Gen.random_tree ~seed n in
  let colour = Colouring.greedy tree in
  let base = Colouring.ec_of_simple tree in
  ignore colour;
  (* add one or two fresh-coloured loops per node *)
  let next = Ec.max_colour base in
  let rng = Random.State.make [| seed; n |] in
  let loops =
    List.concat_map
      (fun v ->
        let k = 1 + Random.State.int rng 2 in
        List.init k (fun i -> (v, next + 1 + i)))
      (List.init n Fun.id)
  in
  Ec.create ~n
    ~edges:(List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
    ~loops

(* Cross-validation: refinement equivalence at radius r must coincide
   with structural equality of explicit view trees of depth r. *)
let refinement_matches_views =
  QCheck.Test.make ~count:40
    ~name:"colour refinement = view-tree isomorphism (all radii, all node pairs)"
    (QCheck.pair (QCheck.int_range 2 7) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy_ec ~seed n in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          for r = 0 to 3 do
            let by_refinement = Refinement.equivalent_radius g u g v ~radius:r in
            let by_views =
              View.equal (View.of_ec g u ~radius:r) (View.of_ec g v ~radius:r)
            in
            if by_refinement <> by_views then ok := false
          done
        done
      done;
      !ok)

(* The optimised flat-array refinement must agree with the list-based
   reference implementation label-for-label (not merely up to partition
   renaming): both intern descriptors by first occurrence in node
   order, so the histories are exactly equal arrays. *)
let flat_refinement_matches_reference =
  QCheck.Test.make ~count:60
    ~name:"flat CSR refinement = list-based reference (exact labels, EC and PO)"
    (QCheck.pair (QCheck.int_range 2 9) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy_ec ~seed n in
      let rounds = n + 2 in
      let fast = Refinement.refine_ec g ~rounds in
      let slow = Refinement.refine_ec ~reference:true g ~rounds in
      let p = Ld_models.Po.of_ec g in
      let pfast = Refinement.refine_po p ~rounds in
      let pslow = Refinement.refine_po ~reference:true p ~rounds in
      fast = slow && pfast = pslow)

(* The soundness lemma behind the engine's incremental P1 checks:
   covering maps preserve universal-cover views at every radius, so a
   total node is refinement-equivalent to its base image at all radii —
   including through composed coverings. *)
let covering_preserves_views =
  QCheck.Test.make ~count:40
    ~name:"covering maps preserve views at every radius (anchor soundness)"
    (QCheck.pair (QCheck.int_range 2 7) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy_ec ~seed n in
      let cov = Lift.double g in
      let cov2 = Lift.compose cov (Lift.double cov.Lift.total) in
      let ok = ref true in
      List.iter
        (fun (c : Lift.covering) ->
          for v = 0 to Ec.n c.Lift.total - 1 do
            for r = 0 to 4 do
              if
                not
                  (Refinement.equivalent_radius c.Lift.total v c.Lift.base
                     c.Lift.map.(v) ~radius:r)
              then ok := false
            done
          done)
        [ cov; cov2 ];
      !ok)

let first_distinguishing_radius_works () =
  (* On a path with a 2-colouring, the two endpoints look alike at
     radius 0 and 1 but not deeper (one sees colour 1 first, the other
     colour 2); an endpoint and the middle differ at radius 1 already. *)
  let p = Ec.create ~n:5 ~edges:[ (0, 1, 1); (1, 2, 2); (2, 3, 1); (3, 4, 2) ] ~loops:[] in
  Alcotest.(check (option int)) "endpoints differ at 1" (Some 1)
    (Refinement.first_distinguishing_radius p 0 p 4 ~max_radius:5);
  Alcotest.(check (option int)) "endpoint vs middle at 1" (Some 1)
    (Refinement.first_distinguishing_radius p 0 p 2 ~max_radius:5);
  Alcotest.(check (option int)) "node vs itself never" None
    (Refinement.first_distinguishing_radius p 1 p 1 ~max_radius:5);
  (* Nodes 0 and 2 of the 2-coloured 4-cycle are never distinguished. *)
  let c4 = Ec.create ~n:4 ~edges:[ (0, 1, 1); (1, 2, 2); (2, 3, 1); (3, 0, 2) ] ~loops:[] in
  Alcotest.(check (option int)) "c4 antipodes equivalent" None
    (Refinement.first_distinguishing_radius c4 0 c4 2 ~max_radius:8)

let norris_stabilisation =
  (* Norris-flavoured sanity: the stable partition equals radius-(n+3)
     refinement equivalence — refining past stabilisation changes
     nothing. *)
  QCheck.Test.make ~count:40 ~name:"stable partition = deep-radius equivalence"
    (QCheck.pair (QCheck.int_range 2 8) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy_ec ~seed n in
      let cls = Refinement.stable_partition_ec g in
      let deep = Refinement.refine_ec g ~rounds:(n + 3) in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if cls.(u) = cls.(v) <> (deep.(n + 3).(u) = deep.(n + 3).(v)) then
            ok := false
        done
      done;
      !ok)

let po_refinement_sees_orientation () =
  (* The endpoints of a single arc have different views (out vs in),
     while all nodes of a uniformly-coloured directed cycle agree. *)
  let p = Ld_models.Po.create ~n:2 ~arcs:[ (0, 1, 1) ] ~loops:[] in
  let h = Refinement.refine_po p ~rounds:2 in
  Alcotest.(check bool) "arc endpoints differ" true (h.(1).(0) <> h.(1).(1));
  let c = Ld_models.Po.create ~n:3 ~arcs:[ (0, 1, 1); (1, 2, 1); (2, 0, 1) ] ~loops:[] in
  let hc = Refinement.refine_po c ~rounds:4 in
  Alcotest.(check bool) "cycle nodes agree" true
    (hc.(4).(0) = hc.(4).(1) && hc.(4).(1) = hc.(4).(2));
  Alcotest.(check int) "cycle stable partition is trivial" 1
    (List.length
       (List.sort_uniq Int.compare (Array.to_list (Refinement.stable_partition_po c))))

let view_shapes () =
  (* A single node with two loops: radius-1 view has two branches; each
     branch unfolds into a copy of the node minus the arrival dart. *)
  let g = Ec.create ~n:1 ~edges:[] ~loops:[ (0, 1); (0, 2) ] in
  let v1 = View.of_ec g 0 ~radius:1 in
  Alcotest.(check int) "radius-1 size" 3 (View.size v1);
  let v2 = View.of_ec g 0 ~radius:2 in
  Alcotest.(check int) "radius-2 size" 5 (View.size v2);
  Alcotest.(check int) "depth" 2 (View.depth v2);
  (* the colour-1 branch at depth 1 has only a colour-2 branch below *)
  match View.branch v2 1 with
  | None -> Alcotest.fail "missing branch"
  | Some sub ->
    Alcotest.(check bool) "banned arrival colour" true (View.branch sub 1 = None);
    Alcotest.(check bool) "other colour present" true (View.branch sub 2 <> None)

let view_materialise () =
  let g = random_loopy_ec ~seed:7 5 in
  let view = View.of_ec g 0 ~radius:3 in
  let tree = View.to_ec view in
  (* The materialised tree's root has the same radius-3 view. *)
  Alcotest.(check bool) "root view agrees" true
    (View.equal (View.of_ec tree 0 ~radius:3) view)

let unfold_loop_is_covering () =
  let g = random_loopy_ec ~seed:3 4 in
  let cov = Lift.unfold_loop g ~loop_id:0 in
  Alcotest.(check bool) "covering" true (Lift.is_covering cov);
  Alcotest.(check int) "doubled" (2 * Ec.n g) (Ec.n cov.total);
  Alcotest.(check int) "one loop unfolded"
    ((2 * Ec.num_loops g) - 2)
    (Ec.num_loops cov.total)

let double_is_simple_covering () =
  let g = random_loopy_ec ~seed:5 4 in
  let cov = Lift.double g in
  Alcotest.(check bool) "covering" true (Lift.is_covering cov);
  Alcotest.(check int) "no loops" 0 (Ec.num_loops cov.total)

let covering_rejects_junk () =
  let g = random_loopy_ec ~seed:9 4 in
  let cov = Lift.unfold_loop g ~loop_id:0 in
  let bad = { cov with map = Array.map (fun _ -> 0) cov.map } in
  Alcotest.(check bool) "constant map not covering" false (Lift.is_covering bad)

let simple_lift_properties =
  QCheck.Test.make ~count:40
    ~name:"simple_lift: loop-free, parallel-free covering of linear size"
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy_ec ~seed n in
      let cov = Lift.simple_lift g in
      let no_parallel =
        let pairs =
          List.map
            (fun (e : Ec.edge) -> (Stdlib.min e.u e.v, Stdlib.max e.u e.v))
            (Ec.edges cov.total)
        in
        List.length (List.sort_uniq pair_compare pairs) = List.length pairs
      in
      Lift.is_covering cov
      && Ec.num_loops cov.total = 0
      && no_parallel
      && Ec.n cov.total mod Ec.n g = 0)

let one_factorisation_is_proper () =
  List.iter
    (fun f ->
      let ms = Lift.one_factorisation f in
      Alcotest.(check int) "f-1 matchings" (f - 1) (List.length ms);
      (* each matching covers 0..f-1 exactly once *)
      List.iter
        (fun m ->
          let touched = List.concat_map (fun (a, b) -> [ a; b ]) m in
          Alcotest.(check (list int)) "perfect" (List.init f Fun.id)
            (List.sort Int.compare touched))
        ms;
      (* matchings are pairwise edge-disjoint *)
      let all =
        List.concat_map
          (List.map (fun (a, b) -> (Stdlib.min a b, Stdlib.max a b)))
          ms
      in
      Alcotest.(check int) "disjoint = all of K_f" (f * (f - 1) / 2)
        (List.length (List.sort_uniq pair_compare all)))
    [ 2; 4; 6; 8; 12 ]

let simple_lift_many_loops () =
  (* A single node with 8 loops: fiber of size 10, not 2^8. *)
  let g = Ec.create ~n:1 ~edges:[] ~loops:(List.init 8 (fun c -> (0, c + 1))) in
  let cov = Lift.simple_lift g in
  Alcotest.(check bool) "covering" true (Lift.is_covering cov);
  Alcotest.(check int) "linear size" 10 (Ec.n cov.total);
  Alcotest.(check int) "no loops" 0 (Ec.num_loops cov.total)

let compose_coverings () =
  let g = random_loopy_ec ~seed:11 3 in
  let c1 = Lift.unfold_loop g ~loop_id:0 in
  let c2 = Lift.unfold_loop c1.total ~loop_id:0 in
  let c = Lift.compose c1 c2 in
  Alcotest.(check bool) "composite covering" true (Lift.is_covering c);
  Alcotest.(check int) "4x" (4 * Ec.n g) (Ec.n c.total)

let factor_of_vertex_transitive () =
  (* A cycle with all-distinct... use the 2-coloured 4-cycle: vertex
     transitive, so the factor graph is a single node with loops
     (paper: "in the extreme case when G is vertex-transitive, FG
     consists of just one node and some loops"). *)
  let c4 =
    Ec.create ~n:4 ~edges:[ (0, 1, 1); (1, 2, 2); (2, 3, 1); (3, 0, 2) ] ~loops:[]
  in
  let fg, cls = Factor.factor c4 in
  Alcotest.(check int) "single class" 1 (Ec.n fg);
  Alcotest.(check int) "two loops" 2 (Ec.num_loops fg);
  Alcotest.(check bool) "covering" true
    (Lift.is_covering { total = c4; base = fg; map = cls })

let factor_identity_when_rigid () =
  (* A path with distinct colours is rigid: its own factor. *)
  let p = Ec.create ~n:3 ~edges:[ (0, 1, 1); (1, 2, 2) ] ~loops:[] in
  Alcotest.(check bool) "own factor" true (Factor.is_own_factor p);
  let fg, _ = Factor.factor p in
  Alcotest.(check int) "3 classes" 3 (Ec.n fg)

let factor_always_covers =
  QCheck.Test.make ~count:60 ~name:"factor quotient is always a covering map"
    (QCheck.pair (QCheck.int_range 2 9) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy_ec ~seed n in
      let fg, cls = Factor.factor g in
      Lift.is_covering { total = g; base = fg; map = cls })

let loopiness_measures () =
  let g0 = Ec.create ~n:1 ~edges:[] ~loops:[ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check int) "3-loopy" 3 (Loopy.loopiness g0);
  let p = Ec.create ~n:2 ~edges:[ (0, 1, 1) ] ~loops:[ (0, 2) ] in
  Alcotest.(check int) "not loopy" 0 (Loopy.loopiness p);
  Alcotest.(check bool) "is_loopy" true (Loopy.is_loopy g0);
  (* The lift of a loopy graph is as loopy: unfold one loop of a 2-loopy
     single node; every node of the 2-lift keeps 1 loop, and the factor
     graph recovers loopiness 1 at least. *)
  let g = Ec.create ~n:1 ~edges:[] ~loops:[ (0, 1); (0, 2) ] in
  let cov = Lift.unfold_loop g ~loop_id:0 in
  Alcotest.(check bool) "lift still loopy" true (Loopy.is_loopy cov.total)

let lift_preserves_views =
  QCheck.Test.make ~count:40
    ~name:"covering maps preserve universal-cover views (condition (2))"
    (QCheck.pair (QCheck.int_range 2 6) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy_ec ~seed n in
      let cov = Lift.unfold_loop g ~loop_id:0 in
      let ok = ref true in
      for v = 0 to Ec.n cov.total - 1 do
        for r = 0 to 3 do
          if
            not
              (View.equal
                 (View.of_ec cov.total v ~radius:r)
                 (View.of_ec g cov.map.(v) ~radius:r))
          then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "cover"
    [
      ( "views",
        [
          Alcotest.test_case "shapes" `Quick view_shapes;
          Alcotest.test_case "materialise" `Quick view_materialise;
          QCheck_alcotest.to_alcotest refinement_matches_views;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "first distinguishing radius" `Quick
            first_distinguishing_radius_works;
          QCheck_alcotest.to_alcotest norris_stabilisation;
          QCheck_alcotest.to_alcotest flat_refinement_matches_reference;
          QCheck_alcotest.to_alcotest covering_preserves_views;
          Alcotest.test_case "po orientation" `Quick po_refinement_sees_orientation;
        ] );
      ( "lifts",
        [
          Alcotest.test_case "unfold loop" `Quick unfold_loop_is_covering;
          Alcotest.test_case "double" `Quick double_is_simple_covering;
          Alcotest.test_case "reject junk" `Quick covering_rejects_junk;
          Alcotest.test_case "compose" `Quick compose_coverings;
          QCheck_alcotest.to_alcotest simple_lift_properties;
          Alcotest.test_case "one-factorisation" `Quick one_factorisation_is_proper;
          Alcotest.test_case "simple_lift many loops" `Quick simple_lift_many_loops;
          QCheck_alcotest.to_alcotest lift_preserves_views;
        ] );
      ( "factor",
        [
          Alcotest.test_case "vertex transitive" `Quick factor_of_vertex_transitive;
          Alcotest.test_case "rigid path" `Quick factor_identity_when_rigid;
          QCheck_alcotest.to_alcotest factor_always_covers;
          Alcotest.test_case "loopiness" `Quick loopiness_measures;
        ] );
    ]
