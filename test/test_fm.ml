(* Fractional matchings: checkers, propagation, maximum weight, greedy. *)

module Ec = Ld_models.Ec
module Fm = Ld_fm.Fm
module Q = Ld_arith.Q
module Propagation = Ld_fm.Propagation
module Maximum = Ld_fm.Maximum
module HK = Ld_fm.Hopcroft_karp
module Greedy = Ld_fm.Greedy
module Lift = Ld_cover.Lift
module G = Ld_graph.Graph
module Gen = Ld_graph.Generators

let q = Q.of_ints

(* The paper's §1.2 example graph: a path 0-1-2-3-4 (5 nodes). *)
let path5_ec =
  Ec.create ~n:5
    ~edges:[ (0, 1, 1); (1, 2, 2); (2, 3, 1); (3, 4, 2) ]
    ~loops:[]

let example_maximal () =
  (* §1.2 flavour: on the 5-cycle, the all-1/2 assignment saturates every
     node, hence is both maximal and of maximum weight 5/2; on the
     5-path, {1, 0, 0, 1} is maximal (each zero edge has a saturated
     endpoint) with total 2 = ν_f. *)
  let c5 =
    Ec.create ~n:5
      ~edges:[ (0, 1, 1); (1, 2, 2); (2, 3, 1); (3, 4, 2); (4, 0, 3) ]
      ~loops:[]
  in
  let y =
    Fm.create c5 ~edge_w:(Array.make 5 Q.half) ~loop_w:[||]
  in
  Alcotest.(check bool) "feasible" true (Fm.is_fm y);
  Alcotest.(check bool) "maximal" true (Fm.is_maximal_fm y);
  Alcotest.(check string) "total" "5/2" (Q.to_string (Fm.total y));
  Alcotest.(check string) "nu_f" "5/2"
    (Q.to_string (Maximum.value (Ec.to_simple c5)));
  let yp =
    Fm.create path5_ec ~edge_w:[| Q.one; Q.zero; Q.zero; Q.one |] ~loop_w:[||]
  in
  Alcotest.(check bool) "path maximal" true (Fm.is_maximal_fm yp);
  (* a maximal FM that is NOT of maximum weight: saturate the middle *)
  let ym =
    Fm.create path5_ec ~edge_w:[| Q.zero; Q.one; Q.zero; Q.half |] ~loop_w:[||]
  in
  Alcotest.(check bool) "middle-saturating not maximal (edge 3 endpoints open)"
    false (Fm.is_maximal_fm ym)

let violations_detected () =
  let y_over =
    Fm.create path5_ec ~edge_w:[| Q.one; Q.half; Q.zero; Q.zero |] ~loop_w:[||]
  in
  Alcotest.(check bool) "overload at node 1" true
    (List.mem (Fm.Node_overloaded 1) (Fm.validity_violations y_over));
  let y_neg =
    Fm.create path5_ec ~edge_w:[| q (-1) 2; Q.zero; Q.zero; Q.zero |] ~loop_w:[||]
  in
  Alcotest.(check bool) "negative weight" true
    (List.mem (Fm.Weight_out_of_range (`Edge 0)) (Fm.validity_violations y_neg));
  let y_nonmax = Fm.zero path5_ec in
  Alcotest.(check int) "all edges unsaturated" 4
    (List.length (Fm.maximality_violations y_nonmax));
  let y_loop = Fm.zero (Ec.create ~n:1 ~edges:[] ~loops:[ (0, 1) ]) in
  Alcotest.(check bool) "unsaturated loop flagged" true
    (List.mem (Fm.Unsaturated_loop 0) (Fm.maximality_violations y_loop))

(* The fused hot-path checker must agree with the two-pass pair on
   arbitrary (including infeasible) weight assignments: same
   violations, same order. *)
let fused_checker_matches_pair =
  QCheck.Test.make ~count:120
    ~name:"feasibility_violations = validity @ maximality (order included)"
    (QCheck.triple (QCheck.int_range 2 12) (QCheck.int_range 1 4)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let g = Gen.random_bounded_degree ~seed n d in
      let base = Ld_models.Edge_colouring.ec_of_simple g in
      let next = Ec.max_colour base in
      let ec =
        Ec.create ~n
          ~edges:
            (List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
          ~loops:(List.init n (fun v -> (v, next + 1)))
      in
      (* deterministic, deliberately messy weights: out of range,
         overloading, and unsaturated cases all occur across seeds *)
      let weight i = q ((seed + (3 * i)) mod 7 - 1) 4 in
      let y =
        Fm.create ec
          ~edge_w:(Array.init (Ec.num_edges ec) weight)
          ~loop_w:(Array.init (Ec.num_loops ec) (fun i -> weight (i + 13)))
      in
      Fm.feasibility_violations y
      = Fm.validity_violations y @ Fm.maximality_violations y)

let node_weight_loop_counts_once () =
  let g = Ec.create ~n:1 ~edges:[] ~loops:[ (0, 1); (0, 2) ] in
  let y = Fm.create g ~edge_w:[||] ~loop_w:[| Q.half; q 1 4 |] in
  Alcotest.(check string) "y[v]" "3/4" (Q.to_string (Fm.node_weight y 0));
  Alcotest.(check bool) "not saturated" false (Fm.is_saturated y 0)

let greedy_always_maximal =
  QCheck.Test.make ~count:80 ~name:"greedy maximal FM is feasible and maximal"
    (QCheck.triple (QCheck.int_range 2 20) (QCheck.int_range 1 5)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let g = Gen.random_bounded_degree ~seed n d in
      let ec = Ld_models.Edge_colouring.ec_of_simple g in
      Fm.is_maximal_fm (Greedy.maximal_fm ec))

let greedy_ratio_at_least_half =
  QCheck.Test.make ~count:60 ~name:"maximal FM is a 1/2-approximation (§1.2)"
    (QCheck.pair (QCheck.int_range 2 16) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = Gen.random_bounded_degree ~seed n 4 in
      let ec = Ld_models.Edge_colouring.ec_of_simple g in
      let y = Greedy.maximal_fm ec in
      Q.compare (Maximum.ratio y) Q.half >= 0)

let hk_matches_brute_force =
  QCheck.Test.make ~count:60 ~name:"ν_f via Hopcroft–Karp = brute force (König)"
    (QCheck.pair (QCheck.int_range 2 8) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = Gen.random_gnp ~seed n 0.4 in
      (* For bipartite double covers we test ν_f consistency instead:
         2·ν_f must be between ν and 2ν, and ν_f >= ν. *)
      let nu = HK.brute_force_size g in
      let nu_f = Maximum.value g in
      Q.compare nu_f (Q.of_int nu) >= 0
      && Q.compare nu_f (Q.mul (q 3 2) (Q.of_int (max nu 1))) <= 0
      (* ν_f <= 3/2 ν for any graph with ν >= 1 *)
      && Q.is_integer (Q.mul nu_f (Q.of_int 2)))

let maximum_witness_feasible =
  QCheck.Test.make ~count:60 ~name:"maximum FM witness is feasible, optimal"
    (QCheck.pair (QCheck.int_range 2 10) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = Gen.random_gnp ~seed n 0.5 in
      let w = Maximum.witness g in
      let slack = Array.make n Q.one in
      List.iter
        (fun (u, v, x) ->
          slack.(u) <- Q.sub slack.(u) x;
          slack.(v) <- Q.sub slack.(v) x)
        w;
      Array.for_all (fun s -> Q.sign s >= 0) slack
      && Q.equal
           (Q.sum (List.map (fun (_, _, x) -> x) w))
           (Maximum.value g))

let hk_known_values () =
  Alcotest.(check string) "path5 nu_f" "2" (Q.to_string (Maximum.value (Gen.path 5)));
  Alcotest.(check string) "C5 nu_f" "5/2" (Q.to_string (Maximum.value (Gen.cycle 5)));
  Alcotest.(check string) "K4 nu_f" "2" (Q.to_string (Maximum.value (Gen.complete 4)));
  Alcotest.(check string) "star nu_f" "1" (Q.to_string (Maximum.value (Gen.star 5)));
  Alcotest.(check string) "K33 nu_f" "3"
    (Q.to_string (Maximum.value (Gen.complete_bipartite 3 3)))

let propagation_principle =
  QCheck.Test.make ~count:60
    ~name:"Fact 3: disagreements never stop at a doubly saturated node"
    (QCheck.pair (QCheck.int_range 2 12) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      (* Two different greedy orders on a loopy tree: both fully
         saturate, so Fact 3 must hold at every node. *)
      let tree = Gen.random_tree ~seed n in
      let base = Ld_models.Edge_colouring.ec_of_simple tree in
      let next = Ec.max_colour base in
      let g =
        Ec.create ~n
          ~edges:
            (List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
          ~loops:(List.init n (fun v -> (v, next + 1)))
      in
      let order1 =
        List.init (Ec.num_edges g) (fun i -> `Edge i)
        @ List.init (Ec.num_loops g) (fun i -> `Loop i)
      in
      let order2 = List.rev order1 in
      let y = Greedy.maximal_fm_in_order g order1 in
      let y' = Greedy.maximal_fm_in_order g order2 in
      List.for_all (fun v -> Propagation.holds_at ~y ~y' v) (List.init n Fun.id))

let walk_finds_loop () =
  (* Hand instance: path g--x with loops; y and y' disagree on the edge,
     so the walk from g must end at a differing loop. *)
  let g =
    Ec.create ~n:2 ~edges:[ (0, 1, 1) ] ~loops:[ (0, 2); (1, 2) ]
  in
  let y = Fm.create g ~edge_w:[| Q.half |] ~loop_w:[| Q.half; Q.half |] in
  let y' = Fm.create g ~edge_w:[| q 1 4 |] ~loop_w:[| q 3 4; q 3 4 |] in
  (match Ec.dart_by_colour g 0 1 with
   | None -> Alcotest.fail "dart"
   | Some first ->
     (match Propagation.walk ~y ~y' ~start:0 ~first with
      | Propagation.Loop_found { node; loop_id; trace } ->
        Alcotest.(check int) "stays at node 0" 0 node;
        Alcotest.(check int) "its loop" 0 loop_id;
        Alcotest.(check int) "trace length" 2 (List.length trace)
      | Propagation.Stuck _ -> Alcotest.fail "stuck"))

let pull_back_preserves_feasibility =
  QCheck.Test.make ~count:40 ~name:"pull-back of maximal FM along 2-lift is maximal"
    (QCheck.pair (QCheck.int_range 2 10) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~seed n in
      let base = Ld_models.Edge_colouring.ec_of_simple tree in
      let next = Ec.max_colour base in
      let g =
        Ec.create ~n
          ~edges:
            (List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
          ~loops:(List.init n (fun v -> (v, next + 1)))
      in
      let y = Greedy.maximal_fm g in
      let cov = Lift.unfold_loop g ~loop_id:0 in
      let y' = Fm.pull_back cov y in
      Fm.is_maximal_fm y'
      && List.for_all
           (fun v -> Q.equal (Fm.node_weight y' v) (Fm.node_weight y cov.map.(v)))
           (List.init (Ec.n cov.total) Fun.id))

let greedy_matching_maximal =
  QCheck.Test.make ~count:60 ~name:"greedy maximal matching is maximal"
    (QCheck.pair (QCheck.int_range 1 20) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = Gen.random_gnp ~seed n 0.3 in
      Greedy.is_maximal_matching g (Greedy.maximal_matching g))

let pull_back_composes =
  QCheck.Test.make ~count:30
    ~name:"pull-back along composed coverings = composed pull-backs"
    (QCheck.pair (QCheck.int_range 2 8) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~seed n in
      let base = Ld_models.Edge_colouring.ec_of_simple tree in
      let next = Ec.max_colour base in
      let g =
        Ec.create ~n
          ~edges:
            (List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
          ~loops:(List.init n (fun v -> (v, next + 1)))
      in
      let c1 = Lift.unfold_loop g ~loop_id:0 in
      let c2 = Lift.unfold_loop c1.total ~loop_id:0 in
      let composed = Lift.compose c1 c2 in
      let y = Greedy.maximal_fm g in
      Fm.equal (Fm.pull_back composed y) (Fm.pull_back c2 (Fm.pull_back c1 y)))

let algorithms_agree_on_simple_lift =
  QCheck.Test.make ~count:25
    ~name:"greedy packing on the 1-factorisation lift = pulled-back base run"
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~seed n in
      let base = Ld_models.Edge_colouring.ec_of_simple tree in
      let next = Ec.max_colour base in
      let g =
        Ec.create ~n
          ~edges:
            (List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
          ~loops:(List.init n (fun v -> (v, next + 1 + (v mod 2))))
      in
      let cov = Ld_cover.Lift.simple_lift g in
      let on_lift = Ld_matching.Packing.greedy_by_colour cov.total in
      Fm.equal on_lift (Fm.pull_back cov (Ld_matching.Packing.greedy_by_colour g)))

(* ---- Vertex cover from edge packing ([3]/[4]) ---- *)

let vc_known_values () =
  let module VC = Ld_fm.Vertex_cover in
  Alcotest.(check int) "path5 tau" 2 (VC.minimum_size (Gen.path 5));
  Alcotest.(check int) "C5 tau" 3 (VC.minimum_size (Gen.cycle 5));
  Alcotest.(check int) "star tau" 1 (VC.minimum_size (Gen.star 6));
  Alcotest.(check int) "K5 tau" 4 (VC.minimum_size (Gen.complete 5));
  Alcotest.(check int) "K34 tau" 3 (VC.minimum_size (Gen.complete_bipartite 3 4))

let vc_two_approx =
  QCheck.Test.make ~count:60
    ~name:"saturated nodes of a maximal FM: valid vertex cover, ratio <= 2"
    (QCheck.triple (QCheck.int_range 2 14) (QCheck.int_range 1 4)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let module VC = Ld_fm.Vertex_cover in
      let g = Gen.random_bounded_degree ~seed n d in
      let ec = Ld_models.Edge_colouring.ec_of_simple g in
      let y = Greedy.maximal_fm ec in
      let cover = VC.of_fm y in
      VC.is_vertex_cover ec cover
      && (G.m g = 0 || Q.compare (VC.approximation_ratio y) (Q.of_int 2) <= 0))

let vc_rejects_non_cover () =
  let module VC = Ld_fm.Vertex_cover in
  let ec = Ld_models.Edge_colouring.ec_of_simple (Gen.path 3) in
  Alcotest.(check bool) "middle node covers P3" true (VC.is_vertex_cover ec [ 1 ]);
  Alcotest.(check bool) "endpoint does not" false (VC.is_vertex_cover ec [ 0 ]);
  let loopy = Ec.create ~n:1 ~edges:[] ~loops:[ (0, 1) ] in
  Alcotest.(check bool) "loop needs its node" false (VC.is_vertex_cover loopy []);
  Alcotest.(check bool) "loop covered" true (VC.is_vertex_cover loopy [ 0 ])

let () =
  Alcotest.run "fm"
    [
      ( "checkers",
        [
          Alcotest.test_case "paper example" `Quick example_maximal;
          Alcotest.test_case "violations" `Quick violations_detected;
          QCheck_alcotest.to_alcotest fused_checker_matches_pair;
          Alcotest.test_case "loop counts once" `Quick node_weight_loop_counts_once;
        ] );
      ( "greedy",
        [
          QCheck_alcotest.to_alcotest greedy_always_maximal;
          QCheck_alcotest.to_alcotest greedy_ratio_at_least_half;
          QCheck_alcotest.to_alcotest greedy_matching_maximal;
        ] );
      ( "maximum",
        [
          Alcotest.test_case "known values" `Quick hk_known_values;
          QCheck_alcotest.to_alcotest hk_matches_brute_force;
          QCheck_alcotest.to_alcotest maximum_witness_feasible;
        ] );
      ( "propagation",
        [
          QCheck_alcotest.to_alcotest propagation_principle;
          Alcotest.test_case "walk finds loop" `Quick walk_finds_loop;
        ] );
      ( "lift",
        [
          QCheck_alcotest.to_alcotest pull_back_preserves_feasibility;
          QCheck_alcotest.to_alcotest pull_back_composes;
          QCheck_alcotest.to_alcotest algorithms_agree_on_simple_lift;
        ] );
      ( "vertex-cover",
        [
          Alcotest.test_case "known values" `Quick vc_known_values;
          QCheck_alcotest.to_alcotest vc_two_approx;
          Alcotest.test_case "checker" `Quick vc_rejects_non_cover;
        ] );
    ]
