(* Simple-graph substrate and generators. *)

module G = Ld_graph.Graph
module Gen = Ld_graph.Generators

let create_validation () =
  Alcotest.check_raises "self-loop rejected"
    (Invalid_argument "Graph.create: self-loop") (fun () ->
      ignore (G.create 3 [ (1, 1) ]));
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Graph.create: duplicate edge") (fun () ->
      ignore (G.create 3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.create: endpoint out of range")
    (fun () -> ignore (G.create 2 [ (0, 2) ]))

let basics () =
  let g = G.create 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check int) "n" 4 (G.n g);
  Alcotest.(check int) "m" 4 (G.m g);
  Alcotest.(check (list int)) "neighbours 0" [ 1; 3 ] (G.neighbours g 0);
  Alcotest.(check int) "max degree" 2 (G.max_degree g);
  Alcotest.(check bool) "has edge" true (G.has_edge g 2 3);
  Alcotest.(check bool) "no edge" false (G.has_edge g 0 2)

let bfs_on_path () =
  let g = Gen.path 6 in
  let d = G.bfs_dist g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5 |] d

let bfs_on_cycle () =
  let g = Gen.cycle 6 in
  let d = G.bfs_dist g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 2; 1 |] d

let components () =
  let g = G.create 5 [ (0, 1); (2, 3) ] in
  let _, k = G.components g in
  Alcotest.(check int) "three components" 3 k;
  Alcotest.(check bool) "not connected" false (G.is_connected g);
  Alcotest.(check bool) "path connected" true (G.is_connected (Gen.path 4))

let disjoint_union () =
  let g = G.disjoint_union (Gen.path 3) (Gen.cycle 3) in
  Alcotest.(check int) "nodes" 6 (G.n g);
  Alcotest.(check int) "edges" 5 (G.m g);
  Alcotest.(check bool) "shifted edge" true (G.has_edge g 3 4)

let induced_subgraph () =
  let g = Gen.cycle 5 in
  let sub, names = G.induced g [ 0; 1; 2 ] in
  Alcotest.(check int) "induced nodes" 3 (G.n sub);
  Alcotest.(check int) "induced edges" 2 (G.m sub);
  Alcotest.(check (array int)) "names" [| 0; 1; 2 |] names

let isomorphism () =
  let c5 = Gen.cycle 5 in
  let c5' = G.relabel c5 [| 3; 1; 4; 0; 2 |] in
  Alcotest.(check bool) "cycle relabelled" true (G.is_isomorphic_small c5 c5');
  Alcotest.(check bool) "cycle vs path" false
    (G.is_isomorphic_small c5 (Gen.path 5));
  Alcotest.(check bool) "k33 vs c6" false
    (G.is_isomorphic_small (Gen.complete_bipartite 3 3) (Gen.cycle 6))

let generator_shapes () =
  Alcotest.(check int) "star degree" 7 (G.max_degree (Gen.star 7));
  Alcotest.(check int) "complete m" 10 (G.m (Gen.complete 5));
  Alcotest.(check int) "k23 m" 6 (G.m (Gen.complete_bipartite 2 3));
  Alcotest.(check int) "grid m" 12 (G.m (Gen.grid 3 3));
  Alcotest.(check int) "hypercube m" 32 (G.m (Gen.hypercube 4));
  Alcotest.(check int) "hypercube degree" 4 (G.max_degree (Gen.hypercube 4));
  Alcotest.(check int) "binary tree n" 15 (G.n (Gen.binary_tree 3));
  let cat = Gen.caterpillar ~spine:4 ~legs:2 in
  Alcotest.(check int) "caterpillar n" 12 (G.n cat);
  Alcotest.(check int) "caterpillar degree" 4 (G.max_degree cat);
  let sp = Gen.spider ~delta:5 ~tail:3 in
  Alcotest.(check int) "spider n" 16 (G.n sp);
  Alcotest.(check int) "spider degree" 5 (G.max_degree sp)

let random_tree_is_tree =
  QCheck.Test.make ~count:100 ~name:"Prüfer decoding yields spanning trees"
    (QCheck.pair (QCheck.int_range 1 40) (QCheck.int_range 0 1000))
    (fun (n, seed) ->
      let g = Gen.random_tree ~seed n in
      G.n g = n && G.m g = n - 1 && G.is_connected g)

let random_regular_is_regular =
  QCheck.Test.make ~count:50 ~name:"configuration model yields d-regular graphs"
    (QCheck.pair (QCheck.int_range 2 5) (QCheck.int_range 0 1000))
    (fun (d, seed) ->
      (* keep the graph sparse enough for the configuration model to
         find a simple pairing reliably *)
      let n = if (4 * d * d) mod 2 = 0 then 4 * d else (4 * d) + 1 in
      let g = Gen.random_regular ~seed n d in
      List.for_all (fun v -> G.degree g v = d) (List.init n Fun.id))

let bounded_degree_respected =
  QCheck.Test.make ~count:50 ~name:"random_bounded_degree respects the bound"
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 0 1000))
    (fun (d, seed) -> G.max_degree (Gen.random_bounded_degree ~seed 20 d) <= d)

let metrics_known_values () =
  let module M = Ld_graph.Metrics in
  Alcotest.(check int) "path diameter" 5 (M.diameter (Gen.path 6));
  Alcotest.(check int) "path radius" 3 (M.radius (Gen.path 6));
  Alcotest.(check int) "cycle diameter" 3 (M.diameter (Gen.cycle 6));
  Alcotest.(check (option int)) "tree girth" None (M.girth (Gen.binary_tree 3));
  Alcotest.(check (option int)) "c5 girth" (Some 5) (M.girth (Gen.cycle 5));
  Alcotest.(check (option int)) "c6 girth" (Some 6) (M.girth (Gen.cycle 6));
  Alcotest.(check (option int)) "k4 girth" (Some 3) (M.girth (Gen.complete 4));
  Alcotest.(check (option int)) "grid girth" (Some 4) (M.girth (Gen.grid 3 3));
  Alcotest.(check (option int)) "petersen-ish hypercube girth" (Some 4)
    (M.girth (Gen.hypercube 3));
  Alcotest.(check (list int)) "star degrees" [ 1; 1; 1; 3 ]
    (M.degree_sequence (Gen.star 3));
  Alcotest.(check bool) "disconnected rejected" true
    (try
       ignore (M.diameter (Ld_graph.Graph.create 2 []));
       false
     with Invalid_argument _ -> true)

let metrics_girth_vs_bruteforce =
  QCheck.Test.make ~count:50 ~name:"girth agrees with brute force on small graphs"
    (QCheck.pair (QCheck.int_range 3 8) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = Gen.random_gnp ~seed n 0.4 in
      (* brute force: shortest cycle through each edge via BFS avoiding it *)
      let brute =
        G.fold_edges
          (fun (u, v) acc ->
            (* distance from u to v without the edge (u, v) *)
            let es =
              List.filter (fun (a, b) -> not (a = u && b = v)) (G.edges g)
            in
            let g' = G.create n es in
            let d = (G.bfs_dist g' u).(v) in
            if d = max_int then acc else Stdlib.min acc (d + 1))
          max_int g
      in
      let brute = if brute = max_int then None else Some brute in
      Option.equal Int.equal (Ld_graph.Metrics.girth g) brute)

(* ---- streaming CSR generators (differential vs the list twins) ---- *)

module Csr = Ld_graph.Csr
module Colouring = Ld_models.Edge_colouring

(* The reference CSR: list-based generator + greedy edge colouring,
   converted through the neighbour-order path. *)
let reference_csr g = Csr.of_graph g ~colour:(Colouring.greedy g)

let stream_bounded_degree_identical =
  QCheck.Test.make ~count:50
    ~name:"stream_bounded_degree is byte-identical to the list twin"
    (QCheck.triple (QCheck.int_range 0 25) (QCheck.int_range 0 6)
       (QCheck.int_range 0 1000))
    (fun (n, d, seed) ->
      let s = Gen.stream_bounded_degree ~seed n d in
      Csr.validate s;
      Csr.equal s (reference_csr (Gen.random_bounded_degree ~seed n d)))

let stream_regular_identical =
  QCheck.Test.make ~count:50
    ~name:"stream_regular is byte-identical to the list twin"
    (QCheck.pair (QCheck.int_range 2 5) (QCheck.int_range 0 1000))
    (fun (d, seed) ->
      let n = if (4 * d * d) mod 2 = 0 then 4 * d else (4 * d) + 1 in
      let s = Gen.stream_regular ~seed n d in
      Csr.validate s;
      Csr.equal s (reference_csr (Gen.random_regular ~seed n d)))

let stream_perm_regular_wellformed =
  QCheck.Test.make ~count:50
    ~name:"stream_perm_regular is simple, bounded and deterministic"
    (QCheck.pair (QCheck.int_range 1 3) (QCheck.int_range 0 1000))
    (fun (half_d, seed) ->
      let d = 2 * half_d in
      let n = 8 * d in
      let g = Gen.stream_perm_regular ~seed n d in
      Csr.validate g;
      Csr.max_degree g <= d && Csr.equal g (Gen.stream_perm_regular ~seed n d))

let stream_biregular_tree_shape () =
  let g = Gen.stream_biregular_tree ~d:3 ~delta:5 200 in
  Csr.validate g;
  Alcotest.(check int) "n" 200 (Csr.n g);
  Alcotest.(check bool) "tree" true (Csr.m g = Csr.n g - 1);
  Alcotest.(check bool) "delta respected" true (Csr.max_degree g <= 5);
  Alcotest.(check bool)
    "colours within max d delta" true
    (Csr.max_colour g <= 5);
  Alcotest.(check bool) "connected" true (G.is_connected (Csr.to_graph g))

let bench_families_run () =
  List.iter
    (fun (name, make) ->
      let g = make ~seed:42 ~n:16 ~delta:4 in
      Alcotest.(check bool) (name ^ " nonempty") true (G.n g > 0))
    Gen.bench_families

let () =
  Alcotest.run "graph"
    [
      ( "structure",
        [
          Alcotest.test_case "validation" `Quick create_validation;
          Alcotest.test_case "basics" `Quick basics;
          Alcotest.test_case "bfs path" `Quick bfs_on_path;
          Alcotest.test_case "bfs cycle" `Quick bfs_on_cycle;
          Alcotest.test_case "components" `Quick components;
          Alcotest.test_case "disjoint union" `Quick disjoint_union;
          Alcotest.test_case "induced" `Quick induced_subgraph;
          Alcotest.test_case "isomorphism" `Quick isomorphism;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick generator_shapes;
          QCheck_alcotest.to_alcotest random_tree_is_tree;
          QCheck_alcotest.to_alcotest random_regular_is_regular;
          QCheck_alcotest.to_alcotest bounded_degree_respected;
          Alcotest.test_case "bench families" `Quick bench_families_run;
        ] );
      ( "streaming csr",
        [
          QCheck_alcotest.to_alcotest stream_bounded_degree_identical;
          QCheck_alcotest.to_alcotest stream_regular_identical;
          QCheck_alcotest.to_alcotest stream_perm_regular_wellformed;
          Alcotest.test_case "biregular tree" `Quick stream_biregular_tree_shape;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "known values" `Quick metrics_known_values;
          QCheck_alcotest.to_alcotest metrics_girth_vs_bruteforce;
        ] );
    ]
