(* ld-lint against its fixture corpus: each fixture file must trigger
   exactly its own rule (and nothing else), clean/suppressed fixtures
   must come back empty, and the JSON rendering must round-trip the
   rule ids. Runs from test/, so fixture paths are relative. *)

module Driver = Ld_lint.Driver
module Rules = Ld_lint.Rules
module Diagnostic = Ld_lint.Diagnostic

let fixture name = Filename.concat "lint_fixtures" name

let rule_ids diags =
  List.sort_uniq String.compare
    (List.map (fun (d : Diagnostic.t) -> d.rule) diags)

let check_fixture ~name ~expected_rules ~expected_count () =
  let diags = Driver.lint_file (fixture name) in
  Alcotest.(check (list string))
    (name ^ " rule set") expected_rules (rule_ids diags);
  Alcotest.(check int) (name ^ " count") expected_count (List.length diags)

let dirty_fixtures =
  [
    ("poly_compare.ml", "poly-compare", 5);
    ("refinement_poly.ml", "poly-compare", 5);
    ("nondet.ml", "nondet-source", 4);
    ("obs_sampler.ml", "nondet-source", 2);
    ("domain_safety.ml", "domain-safety", 3);
    ("packed_state.ml", "domain-safety", 3);
    ("machine_purity.ml", "machine-purity", 4);
    ("obj_magic.ml", "obj-magic", 2);
    ("iface_magic.mli", "obj-magic", 1);
    ("exn_swallow.ml", "exn-swallow", 2);
    ("serve_loop.ml", "exn-swallow", 2);
    ("stale_allow.ml", "stale-suppression", 2);
  ]

let each_fixture_triggers_only_its_rule () =
  List.iter
    (fun (name, rule, count) ->
      check_fixture ~name ~expected_rules:[ rule ] ~expected_count:count ())
    dirty_fixtures

let clean_fixtures_are_clean () =
  List.iter
    (fun name ->
      check_fixture ~name ~expected_rules:[] ~expected_count:0 ())
    [ "clean.ml"; "suppressed.ml"; "suppressed_file.ml" ]

let directory_walk_covers_all_rules () =
  let diags = Driver.lint_paths [ "lint_fixtures" ] in
  Alcotest.(check (list string))
    "every table rule fires across the corpus"
    (List.sort_uniq String.compare
       (List.map (fun (_, rule, _) -> rule) dirty_fixtures))
    (rule_ids diags);
  Alcotest.(check bool) "has errors" true (Driver.has_errors diags);
  let expected_total =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 dirty_fixtures
  in
  Alcotest.(check int) "total diagnostics" expected_total (List.length diags)

let diagnostics_are_sorted_and_deduped () =
  let diags = Driver.lint_paths [ "lint_fixtures" ] in
  let rec sorted = function
    | a :: (b :: _ as rest) -> Diagnostic.compare a b < 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly ascending (sorted, no dups)" true
    (sorted diags)

let selected_rules_only () =
  (* Restricting to one rule must silence the others. *)
  let rules =
    match Rules.find "poly-compare" with
    | Some r -> [ r ]
    | None -> Alcotest.fail "poly-compare rule missing from registry"
  in
  let diags = Driver.lint_paths ~rules [ "lint_fixtures" ] in
  Alcotest.(check (list string)) "only poly-compare" [ "poly-compare" ]
    (rule_ids diags)

let invalid_inputs_are_reported () =
  Alcotest.(check (list (pair string string)))
    "missing path and wrong extension"
    [
      ("lint_fixtures/no_such_file.ml", "no such file or directory");
      ("dune", "not an OCaml source file (expected .ml or .mli)");
    ]
    (Driver.invalid_inputs
       [ "lint_fixtures"; "lint_fixtures/no_such_file.ml"; "dune" ]);
  Alcotest.(check (list (pair string string)))
    "directories and sources are acceptable" []
    (Driver.invalid_inputs [ "lint_fixtures"; fixture "clean.ml" ])

let stale_check_skipped_for_restricted_runs () =
  (* A run restricted to one rule must not read the other rules'
     allows as stale: stale_allow.ml's two stale directives only
     surface under the full rule set. *)
  let rules =
    match Rules.find "obj-magic" with
    | Some r -> [ r ]
    | None -> Alcotest.fail "obj-magic rule missing from registry"
  in
  let diags = Driver.lint_file ~rules (fixture "stale_allow.ml") in
  Alcotest.(check (list string)) "no stale findings" [] (rule_ids diags)

let parse_error_is_a_diagnostic () =
  let tmp = Filename.temp_file "ld_lint_fixture" ".ml" in
  Out_channel.with_open_text tmp (fun oc ->
      Out_channel.output_string oc "let broken = (\n");
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let diags = Driver.lint_file tmp in
      Alcotest.(check (list string)) "parse-error rule" [ "parse-error" ]
        (rule_ids diags))

let json_rendering () =
  let diags = Driver.lint_file (fixture "poly_compare.ml") in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let code = Driver.report ~json:true fmt diags in
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  Alcotest.(check int) "exit code" 1 code;
  Alcotest.(check bool) "array" true
    (String.length s > 0 && s.[0] = '[');
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rule field present" true
    (contains "\"rule\":\"poly-compare\"");
  Alcotest.(check bool) "severity field present" true
    (contains "\"severity\":\"error\"")

let clean_report_exit_code () =
  let buf = Buffer.create 16 in
  let fmt = Format.formatter_of_buffer buf in
  let code = Driver.report ~json:false fmt [] in
  Format.pp_print_flush fmt ();
  Alcotest.(check int) "exit code" 0 code

let registry_is_complete () =
  Alcotest.(check (list string))
    "registry ids"
    [
      "poly-compare"; "nondet-source"; "domain-safety"; "machine-purity";
      "obj-magic"; "exn-swallow";
    ]
    (List.map (fun (r : Rules.rule) -> r.id) Rules.all)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "each dirty fixture triggers only its rule" `Quick
            each_fixture_triggers_only_its_rule;
          Alcotest.test_case "clean and suppressed fixtures are clean" `Quick
            clean_fixtures_are_clean;
          Alcotest.test_case "directory walk covers all rules" `Quick
            directory_walk_covers_all_rules;
          Alcotest.test_case "output sorted and deduped" `Quick
            diagnostics_are_sorted_and_deduped;
          Alcotest.test_case "rule selection" `Quick selected_rules_only;
          Alcotest.test_case "invalid inputs are reported" `Quick
            invalid_inputs_are_reported;
          Alcotest.test_case "stale check needs the full rule set" `Quick
            stale_check_skipped_for_restricted_runs;
          Alcotest.test_case "parse error becomes a diagnostic" `Quick
            parse_error_is_a_diagnostic;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "json" `Quick json_rendering;
          Alcotest.test_case "clean exit code" `Quick clean_report_exit_code;
          Alcotest.test_case "registry" `Quick registry_is_complete;
        ] );
    ]
