(* The deep linter against its seeded mini-project
   (test/deep_fixtures/): a three-call chain down to Random.int must be
   reported with the full chain printed, closures handed to Pool.map
   must be caught mutating shared state through a helper, the summary
   cache must make a warm run hit for every cmt (and self-heal from a
   flipped byte or a stale codec), and the SARIF rendering must be
   structurally valid 2.1.0.

   Runs from test/; the fixture cmts live under the library's .objs
   directory and their recorded source paths are relative to the build
   root, hence source_roots = [".."]. *)

module Deep = Ld_lint_deep.Deep_driver
module Diagnostic = Ld_lint.Diagnostic
module Sarif = Ld_lint.Sarif
module Store = Ld_store.Store
module Obs = Ld_obs.Obs
module Json = Ld_obs.Json

let cmt_dir = Filename.concat "deep_fixtures" ".deep_fixtures.objs/byte"

let config ?store () =
  { Deep.cmt_roots = [ cmt_dir ]; source_roots = [ ".." ]; skip = []; store }

let render (d : Diagnostic.t) =
  Printf.sprintf "%s:%d [%s] %s" d.file d.line d.rule d.message

let rendered diags = List.map render diags

(* ---------- fixture analysis ---------- *)

let fixture_diags () = Deep.analyze (config ())

let chain_is_reported () =
  let diags = fixture_diags () in
  Alcotest.(check int) "fixture finding count" 4 (List.length diags);
  let find rule file =
    match
      List.find_opt
        (fun (d : Diagnostic.t) ->
          d.rule = rule && Filename.basename d.file = file)
        diags
    with
    | Some d -> d
    | None -> Alcotest.fail (Printf.sprintf "no %s finding in %s" rule file)
  in
  (* the tentpole acceptance: a 3-deep chain, printed in full *)
  let step = find "deep-machine-purity" "chain.ml" in
  Alcotest.(check string)
    "transition chain message"
    "machine transition `step` transitively draws nondeterministic values \
     — transitions must be pure: Deep_fixtures.Chain.step -> \
     Deep_fixtures.Helpers.stage_one -> Deep_fixtures.Deeper.stage_two -> \
     Random.int (test/deep_fixtures/deeper.ml:2)"
    step.message;
  Alcotest.(check int) "transition anchored at its binding" 4 step.line;
  let middle = find "deep-nondet-source" "helpers.ml" in
  Alcotest.(check string)
    "transitive-only middle link"
    "`stage_one` transitively draws nondeterministic values: \
     Deep_fixtures.Helpers.stage_one -> Deep_fixtures.Deeper.stage_two -> \
     Random.int (test/deep_fixtures/deeper.ml:2)"
    middle.message;
  (* [Deeper.stage_two] uses Random directly: the shallow rule's
     finding, never a deep one *)
  Alcotest.(check bool) "no deep finding at the direct use" true
    (List.for_all
       (fun (d : Diagnostic.t) -> Filename.basename d.file <> "deeper.ml")
       diags)

let pool_mutation_through_helper () =
  let diags = fixture_diags () in
  let pool =
    List.filter
      (fun (d : Diagnostic.t) ->
        d.rule = "deep-domain-safety"
        && Filename.basename d.file = "pool_capture.ml")
      diags
  in
  Alcotest.(check int) "both Pool.map findings" 2 (List.length pool);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let witness =
    "Deep_fixtures.Shared_tally.bump -> reference increment to `tally` \
     (test/deep_fixtures/shared_tally.ml:3)"
  in
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.(check bool)
        ("mutation-through-helper witness in: " ^ d.message)
        true
        (contains d.message witness))
    pool;
  (* one anchored at the closure literal, one at the named reference *)
  let lines =
    List.sort Int.compare (List.map (fun (d : Diagnostic.t) -> d.line) pool)
  in
  Alcotest.(check (list int)) "anchors" [ 8; 13 ] lines

(* ---------- summary cache ---------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let rec object_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun e -> object_files (Filename.concat path e))
  else [ path ]

let flip_byte path off =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let delta counters name =
  match List.assoc_opt name counters with Some v -> v | None -> 0

let cache_lifecycle () =
  Obs.enable ();
  let dir = Filename.temp_file "ld-deep-store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let st = Store.open_store ~dir () in
      let cfg = config ~store:st () in
      (* cold: every summary extracted and put *)
      let s0 = Obs.Counter.snapshot_all () in
      let cold = Deep.analyze cfg in
      let s1 = Obs.Counter.snapshot_all () in
      let d_cold = Obs.Counter.diff s0 s1 in
      let n = delta d_cold "lint.deep.units" in
      Alcotest.(check bool) "fixture units seen" true (n >= 5);
      Alcotest.(check int) "cold run extracts everything" n
        (delta d_cold "lint.deep.extracted");
      Alcotest.(check int) "cold run misses everything" n
        (delta d_cold "store.misses");
      (* warm: zero inference — every unit is a store hit *)
      let warm = Deep.analyze cfg in
      let s2 = Obs.Counter.snapshot_all () in
      let d_warm = Obs.Counter.diff s1 s2 in
      Alcotest.(check (list string))
        "warm diagnostics identical" (rendered cold) (rendered warm);
      Alcotest.(check int) "warm run misses nothing" 0
        (delta d_warm "store.misses");
      Alcotest.(check int) "warm run extracts nothing" 0
        (delta d_warm "lint.deep.extracted");
      Alcotest.(check bool) "warm hits cover every cmt" true
        (delta d_warm "store.hits" >= n);
      (* a flipped payload byte surfaces as Store_corrupt and heals *)
      (match object_files (Filename.concat dir "objects") with
      | obj :: _ -> flip_byte obj Store.payload_offset
      | [] -> Alcotest.fail "store holds no objects after a cold run");
      let healed = Deep.analyze cfg in
      let s3 = Obs.Counter.snapshot_all () in
      let d_heal = Obs.Counter.diff s2 s3 in
      Alcotest.(check (list string))
        "healed diagnostics identical" (rendered cold) (rendered healed);
      Alcotest.(check bool) "corruption detected" true
        (delta d_heal "store.corrupt" >= 1);
      Alcotest.(check int) "only the bad record re-extracted" 1
        (delta d_heal "lint.deep.extracted");
      (* a validly-framed record in a stale codec version also heals *)
      let key = Deep.store_key (List.hd (Deep.collect_cmts cfg)) in
      Store.delete st ~key;
      Store.put st ~key "ld-lint-deep-summary 999\nend\n";
      let redone = Deep.analyze cfg in
      let s4 = Obs.Counter.snapshot_all () in
      let d_redo = Obs.Counter.diff s3 s4 in
      Alcotest.(check (list string))
        "codec-drift diagnostics identical" (rendered cold) (rendered redone);
      Alcotest.(check int) "only the stale record re-extracted" 1
        (delta d_redo "lint.deep.extracted"))

(* ---------- SARIF ---------- *)

let member_exn k v =
  match Json.member k v with
  | Some x -> x
  | None -> Alcotest.fail ("SARIF: missing member " ^ k)

let str_exn what v =
  match Json.to_string v with
  | Some s -> s
  | None -> Alcotest.fail ("SARIF: expected string at " ^ what)

let arr_exn what v =
  match Json.to_list v with
  | Some l -> l
  | None -> Alcotest.fail ("SARIF: expected array at " ^ what)

let sarif_is_structurally_valid () =
  let diags = fixture_diags () in
  let rules =
    Sarif.of_shallow_rules ()
    @ List.map
        (fun (id, severity, doc) -> Sarif.meta ~id ~severity ~doc)
        Deep.rules_meta
  in
  let log = Json.parse (Sarif.render ~rules diags) in
  Alcotest.(check string)
    "version" "2.1.0"
    (str_exn "version" (member_exn "version" log));
  let schema = str_exn "$schema" (member_exn "$schema" log) in
  Alcotest.(check bool) "schema uri names 2.1.0" true
    (Filename.basename schema = "sarif-schema-2.1.0.json");
  let runs = arr_exn "runs" (member_exn "runs" log) in
  Alcotest.(check int) "one run" 1 (List.length runs);
  let run = List.hd runs in
  let driver = member_exn "driver" (member_exn "tool" run) in
  Alcotest.(check string)
    "driver name" "ld-lint"
    (str_exn "name" (member_exn "name" driver));
  let rule_ids =
    arr_exn "rules" (member_exn "rules" driver)
    |> List.map (fun r -> str_exn "rule id" (member_exn "id" r))
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("catalogue has " ^ id) true (List.mem id rule_ids))
    [
      "poly-compare"; "nondet-source"; "domain-safety"; "machine-purity";
      "obj-magic"; "exn-swallow"; "deep-nondet-source"; "deep-domain-safety";
      "deep-machine-purity"; "parse-error"; "stale-suppression";
    ];
  let results = arr_exn "results" (member_exn "results" run) in
  Alcotest.(check int) "one result per diagnostic" (List.length diags)
    (List.length results);
  List.iter
    (fun r ->
      let rule_id = str_exn "ruleId" (member_exn "ruleId" r) in
      let index =
        match Json.to_float (member_exn "ruleIndex" r) with
        | Some f -> int_of_float f
        | None -> Alcotest.fail "SARIF: ruleIndex not a number"
      in
      Alcotest.(check string)
        "ruleIndex points at ruleId" rule_id
        (List.nth rule_ids index);
      Alcotest.(check string)
        "level" "error"
        (str_exn "level" (member_exn "level" r));
      ignore (str_exn "message" (member_exn "text" (member_exn "message" r)));
      let loc =
        match arr_exn "locations" (member_exn "locations" r) with
        | [ l ] -> member_exn "physicalLocation" l
        | _ -> Alcotest.fail "SARIF: expected exactly one location"
      in
      let region = member_exn "region" loc in
      let pos what =
        match Json.to_float (member_exn what region) with
        | Some f when f >= 1.0 -> ()
        | _ -> Alcotest.fail ("SARIF: " ^ what ^ " must be >= 1")
      in
      pos "startLine";
      pos "startColumn";
      ignore
        (str_exn "uri"
           (member_exn "uri" (member_exn "artifactLocation" loc))))
    results

let () =
  Alcotest.run "lint-deep"
    [
      ( "taint",
        [
          Alcotest.test_case "3-deep Random chain, full chain printed" `Quick
            chain_is_reported;
          Alcotest.test_case "Pool closures mutating through a helper" `Quick
            pool_mutation_through_helper;
        ] );
      ( "cache",
        [ Alcotest.test_case "cold/warm/self-heal lifecycle" `Quick
            cache_lifecycle ] );
      ( "sarif",
        [ Alcotest.test_case "structurally valid 2.1.0" `Quick
            sarif_is_structurally_valid ] );
    ]
