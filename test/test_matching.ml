(* Distributed maximal edge packing — the O(Δ) upper bound side. *)

module Ec = Ld_models.Ec
module Fm = Ld_fm.Fm
module Q = Ld_arith.Q
module Packing = Ld_matching.Packing
module Gen = Ld_graph.Generators
module G = Ld_graph.Graph
module Colouring = Ld_models.Edge_colouring
module Lift = Ld_cover.Lift

let loopy_of_tree ~seed n =
  let tree = Gen.random_tree ~seed n in
  let base = Colouring.ec_of_simple tree in
  let next = Ec.max_colour base in
  Ec.create ~n
    ~edges:(List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
    ~loops:(List.init n (fun v -> (v, next + 1 + (v mod 2))))

let greedy_maximal_on_simple =
  QCheck.Test.make ~count:80 ~name:"greedy-by-colour: maximal FM on simple graphs"
    (QCheck.triple (QCheck.int_range 2 24) (QCheck.int_range 1 6)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let ec = Colouring.ec_of_simple (Gen.random_bounded_degree ~seed n d) in
      Fm.is_maximal_fm (Packing.greedy_by_colour ec))

let greedy_maximal_on_loopy =
  QCheck.Test.make ~count:60 ~name:"greedy-by-colour: maximal + saturating on loopy graphs"
    (QCheck.pair (QCheck.int_range 1 15) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = loopy_of_tree ~seed n in
      let y = Packing.greedy_by_colour g in
      Fm.is_maximal_fm y && Fm.is_fully_saturated y)

let proposal_maximal =
  QCheck.Test.make ~count:60 ~name:"proposal: maximal FM, at most n+2 rounds"
    (QCheck.triple (QCheck.int_range 2 20) (QCheck.int_range 1 5)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let ec = Colouring.ec_of_simple (Gen.random_bounded_degree ~seed n d) in
      let y, rounds = Packing.proposal ec in
      Fm.is_maximal_fm y && rounds <= n + 2)

let proposal_maximal_on_loopy =
  QCheck.Test.make ~count:40 ~name:"proposal: maximal + saturating on loopy graphs"
    (QCheck.pair (QCheck.int_range 1 12) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = loopy_of_tree ~seed n in
      let y, _ = Packing.proposal g in
      Fm.is_maximal_fm y && Fm.is_fully_saturated y)

let algorithms_lift_invariant =
  QCheck.Test.make ~count:30 ~name:"both algorithms satisfy condition (2) on 2-lifts"
    (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = loopy_of_tree ~seed n in
      let cov = Lift.unfold_loop g ~loop_id:0 in
      let check (algo : Packing.algorithm) =
        Fm.equal (algo.run cov.total) (Fm.pull_back cov (algo.run g))
      in
      check Packing.greedy_algorithm && check Packing.proposal_algorithm)

let greedy_round_count () =
  (* Exactly k = number of colours communication rounds; on a greedily
     coloured star that is Δ. *)
  let star = Colouring.ec_of_simple (Gen.star 7) in
  Alcotest.(check int) "star colours" 7 (Packing.greedy_rounds star);
  let p = Colouring.ec_of_simple (Gen.path 9) in
  Alcotest.(check int) "path colours" 2 (Packing.greedy_rounds p)

let truncation_is_partial () =
  (* Two independent edges of colours 1 and 2: after one phase the
     colour-2 edge has both endpoints unsaturated, so maximality fails;
     after two phases it holds. *)
  let g = Ec.create ~n:4 ~edges:[ (0, 1, 1); (2, 3, 2) ] ~loops:[] in
  let y1 = Packing.greedy_by_colour ~truncate:1 g in
  Alcotest.(check bool) "feasible" true (Fm.is_fm y1);
  Alcotest.(check bool) "not maximal after 1 phase" false (Fm.is_maximal_fm y1);
  Alcotest.(check bool) "maximal after 2 phases" true
    (Fm.is_maximal_fm (Packing.greedy_by_colour ~truncate:2 g));
  let p = Colouring.ec_of_simple (Gen.path 9) in
  let y0 = Packing.greedy_by_colour ~truncate:0 p in
  Alcotest.(check bool) "zero rounds = zero output" true
    (Q.is_zero (Fm.total y0))

let truncation_prefix_consistent =
  QCheck.Test.make ~count:40
    ~name:"truncating more rounds only extends the processed colours"
    (QCheck.pair (QCheck.int_range 2 14) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let ec = Colouring.ec_of_simple (Gen.random_bounded_degree ~seed n 4) in
      let full = Packing.greedy_by_colour ec in
      let r = 1 + (seed mod 3) in
      let part = Packing.greedy_by_colour ~truncate:r ec in
      (* Every colour <= r edge agrees with the full run. *)
      List.for_all2
        (fun (e : Ec.edge) (w_part, w_full) ->
          if e.colour <= r then Q.equal w_part w_full else true)
        (Ec.edges ec)
        (List.mapi
           (fun i _ -> (Fm.edge_weight part i, Fm.edge_weight full i))
           (Ec.edges ec)))

let proposal_rounds_track_delta () =
  (* On spiders (the hard family), the proposal dynamics finish within a
     small multiple of Δ — recorded as the UPPER experiment's shape. *)
  List.iter
    (fun delta ->
      let g = Colouring.ec_of_simple (Gen.spider ~delta ~tail:3) in
      let y, rounds = Packing.proposal g in
      Alcotest.(check bool)
        (Printf.sprintf "spider delta=%d maximal" delta)
        true (Fm.is_maximal_fm y);
      Alcotest.(check bool)
        (Printf.sprintf "rounds %d <= 3*delta" rounds)
        true
        (rounds <= 3 * delta))
    [ 2; 4; 6; 8 ]

(* ---- O(log Δ) approximate packing (the §1.2 contrast class) ---- *)

let approx_quality =
  QCheck.Test.make ~count:60
    ~name:"doubling scheme: feasible, half-covering, >= nu_f/4, O(log delta) rounds"
    (QCheck.triple (QCheck.int_range 2 20) (QCheck.int_range 1 6)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let g = Gen.random_bounded_degree ~seed n d in
      QCheck.assume (G.m g > 0);
      let ec = Colouring.ec_of_simple g in
      let delta = max 1 (G.max_degree g) in
      let y, rounds = Ld_matching.Approx_packing.run ~delta ec in
      let half_covered =
        List.for_all
          (fun (e : Ec.edge) ->
            Q.compare (Fm.node_weight y e.u) Q.half >= 0
            || Q.compare (Fm.node_weight y e.v) Q.half >= 0)
          (Ec.edges ec)
      in
      let rec log2_ceil k = if 1 lsl k >= delta then k else log2_ceil (k + 1) in
      Fm.is_fm y && half_covered
      && Q.compare (Ld_fm.Maximum.ratio y) Ld_matching.Approx_packing.approximation_bound >= 0
      && rounds = log2_ceil 0 + 1)

let approx_rounds_logarithmic () =
  (* The §1.2 contrast: approximation in log Δ rounds, maximality in Δ. *)
  List.iter
    (fun delta ->
      let ec = Colouring.ec_of_simple (Gen.spider ~delta ~tail:2) in
      let _, r_approx = Ld_matching.Approx_packing.run ~delta ec in
      let r_maximal = Packing.greedy_rounds ec in
      Alcotest.(check bool)
        (Printf.sprintf "delta=%d: %d (approx) << %d (maximal)" delta r_approx
           r_maximal)
        true
        (r_approx <= 2 + (delta |> float_of_int |> log |> ( *. ) 1.5 |> ceil |> int_of_float)
        && r_maximal = delta))
    [ 4; 8; 16; 32; 64 ]

(* ---- PO-model packing ---- *)

let po_proposal_maximal =
  QCheck.Test.make ~count:40 ~name:"PO proposal: maximal FM on doubled EC inputs"
    (QCheck.triple (QCheck.int_range 2 16) (QCheck.int_range 1 4)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let ec = Colouring.ec_of_simple (Gen.random_bounded_degree ~seed n d) in
      let po = Ld_models.Po.of_ec ec in
      let y, rounds = Ld_matching.Po_packing.proposal po in
      Ld_fm.Po_fm.is_maximal_fm y && rounds <= n + 2)

let po_proposal_on_ports () =
  (* A hand-built port-numbered graph (Fig. 2 style). *)
  let po =
    Ld_models.Po.of_ports ~n:4
      ~connections:[ (0, 1, 1, 1); (1, 2, 2, 1); (2, 2, 3, 1); (3, 2, 0, 2) ]
  in
  let y, _ = Ld_matching.Po_packing.proposal po in
  Alcotest.(check bool) "maximal" true (Ld_fm.Po_fm.is_maximal_fm y)

let po_proposal_with_loops () =
  let po = Ld_models.Po.create ~n:2 ~arcs:[ (0, 1, 1) ] ~loops:[ (0, 2); (1, 2) ] in
  let y, _ = Ld_matching.Po_packing.proposal po in
  Alcotest.(check bool) "maximal" true (Ld_fm.Po_fm.is_maximal_fm y);
  (* every node saturated: loops force it (Lemma 2 in PO) *)
  Alcotest.(check bool) "saturated" true
    (Ld_fm.Po_fm.is_saturated y 0 && Ld_fm.Po_fm.is_saturated y 1)

let po_truncated_partial () =
  let po =
    Ld_models.Po.of_ec (Colouring.ec_of_simple (Gen.spider ~delta:5 ~tail:3))
  in
  let y0, _ = Ld_matching.Po_packing.proposal ~truncate:0 po in
  Alcotest.(check bool) "0 rounds: nothing" true
    (Ld_fm.Po_fm.is_fm y0 && not (Ld_fm.Po_fm.is_maximal_fm y0))

let () =
  Alcotest.run "matching"
    [
      ( "greedy-by-colour",
        [
          QCheck_alcotest.to_alcotest greedy_maximal_on_simple;
          QCheck_alcotest.to_alcotest greedy_maximal_on_loopy;
          Alcotest.test_case "round count" `Quick greedy_round_count;
          Alcotest.test_case "truncation partial" `Quick truncation_is_partial;
          QCheck_alcotest.to_alcotest truncation_prefix_consistent;
        ] );
      ( "proposal",
        [
          QCheck_alcotest.to_alcotest proposal_maximal;
          QCheck_alcotest.to_alcotest proposal_maximal_on_loopy;
          Alcotest.test_case "rounds vs delta" `Quick proposal_rounds_track_delta;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest algorithms_lift_invariant ]);
      ( "approx-packing",
        [
          QCheck_alcotest.to_alcotest approx_quality;
          Alcotest.test_case "log-delta contrast" `Quick approx_rounds_logarithmic;
        ] );
      ( "po-packing",
        [
          QCheck_alcotest.to_alcotest po_proposal_maximal;
          Alcotest.test_case "port-numbered input" `Quick po_proposal_on_ports;
          Alcotest.test_case "with loops" `Quick po_proposal_with_loops;
          Alcotest.test_case "truncated" `Quick po_truncated_partial;
        ] );
    ]
