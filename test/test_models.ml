(* The four models: EC, PO, OI, ID (paper §3.2–3.3, Figs. 1–2). *)

module Ec = Ld_models.Ec
module Po = Ld_models.Po
module Colouring = Ld_models.Edge_colouring
module Labelled = Ld_models.Labelled
module G = Ld_graph.Graph
module Gen = Ld_graph.Generators

let ec_properness () =
  (* Two darts of colour 1 at node 0: rejected. *)
  Alcotest.check_raises "edge/edge clash"
    (Invalid_argument "Ec.create: node 0 has two darts of colour 1 (colouring not proper)")
    (fun () -> ignore (Ec.create ~n:3 ~edges:[ (0, 1, 1); (0, 2, 1) ] ~loops:[]));
  Alcotest.check_raises "edge/loop clash"
    (Invalid_argument "Ec.create: node 0 has two darts of colour 2 (colouring not proper)")
    (fun () -> ignore (Ec.create ~n:2 ~edges:[ (0, 1, 2) ] ~loops:[ (0, 2) ]))

let ec_loop_degree () =
  (* Fig. 3 convention: an EC loop counts once. *)
  let g = Ec.create ~n:2 ~edges:[ (0, 1, 1) ] ~loops:[ (0, 2); (0, 3); (1, 2) ] in
  Alcotest.(check int) "deg 0" 3 (Ec.degree g 0);
  Alcotest.(check int) "deg 1" 2 (Ec.degree g 1);
  Alcotest.(check int) "max colour" 3 (Ec.max_colour g);
  Alcotest.(check int) "min loops" 1 (Ec.min_loops g);
  Alcotest.(check (list int)) "loops at 0" [ 0; 1 ]
    (List.sort Int.compare (Ec.loops_at g 0))

let ec_remove_loop () =
  let g = Ec.create ~n:1 ~edges:[] ~loops:[ (0, 1); (0, 2); (0, 3) ] in
  let h = Ec.remove_loop g 1 in
  Alcotest.(check int) "loops left" 2 (Ec.num_loops h);
  Alcotest.(check (list int)) "colours left" [ 1; 3 ]
    (List.sort Int.compare (List.map (fun (l : Ec.loop) -> l.colour) (Ec.loops h)))

let ec_union_and_simple () =
  let a = Ec.create ~n:2 ~edges:[ (0, 1, 1) ] ~loops:[ (0, 2) ] in
  let b = Ec.create ~n:1 ~edges:[] ~loops:[ (0, 1) ] in
  let u = Ec.disjoint_union a b in
  Alcotest.(check int) "n" 3 (Ec.n u);
  Alcotest.(check int) "loops" 2 (Ec.num_loops u);
  let s = Ec.of_simple (Gen.path 3) ~colour:(fun (u, _) -> u + 1) in
  Alcotest.(check int) "of_simple edges" 2 (Ec.num_edges s);
  Alcotest.(check bool) "roundtrip" true
    (G.is_isomorphic_small (Ec.to_simple s) (Gen.path 3));
  Alcotest.check_raises "to_simple with loops"
    (Invalid_argument "Ec.to_simple: graph has loops") (fun () ->
      ignore (Ec.to_simple a))

let po_loop_degree () =
  (* Fig. 3 convention: a PO loop counts twice (out + in). *)
  let g = Po.create ~n:2 ~arcs:[ (0, 1, 1) ] ~loops:[ (0, 2); (1, 2) ] in
  Alcotest.(check int) "deg 0" 3 (Po.degree g 0);
  Alcotest.(check int) "deg 1" 3 (Po.degree g 1)

let po_properness () =
  (* Two outgoing colour-1 arcs at node 0: rejected; an outgoing and an
     incoming arc of the same colour are fine. *)
  Alcotest.check_raises "out clash"
    (Invalid_argument "Po.create: node 0 has two outgoing darts of colour 1")
    (fun () -> ignore (Po.create ~n:3 ~arcs:[ (0, 1, 1); (0, 2, 1) ] ~loops:[]));
  let ok = Po.create ~n:3 ~arcs:[ (0, 1, 1); (2, 0, 1) ] ~loops:[] in
  Alcotest.(check int) "mixed colours fine" 2 (Po.degree ok 0)

let po_of_ports_roundtrip () =
  (* Fig. 2(a): the port-numbered triangle-ish example — encode, then
     check that port lists follow out-by-colour then in-by-colour. *)
  let g = Po.of_ports ~n:3 ~connections:[ (0, 1, 1, 2); (1, 1, 2, 1); (2, 2, 0, 2) ] in
  Alcotest.(check int) "arcs" 3 (Po.num_arcs g);
  List.iter
    (fun v -> Alcotest.(check int) (Printf.sprintf "deg %d" v) 2 (Po.degree g v))
    [ 0; 1; 2 ];
  let ports = Po.ports g 0 in
  Alcotest.(check bool) "port 1 of node 0 is outgoing" true
    (Po.dart_is_out ports.(0));
  Alcotest.(check bool) "port 2 of node 0 is incoming" false
    (Po.dart_is_out ports.(1));
  Alcotest.check_raises "port reuse rejected"
    (Invalid_argument "Po.of_ports: port 1 of node 0 used twice") (fun () ->
      ignore (Po.of_ports ~n:2 ~connections:[ (0, 1, 1, 1); (0, 1, 1, 2) ]))

let po_of_ec_doubles () =
  (* §5.1: every EC edge becomes two arcs, loops become directed loops;
     degrees double. *)
  let ec = Ec.create ~n:2 ~edges:[ (0, 1, 1) ] ~loops:[ (0, 2) ] in
  let po = Po.of_ec ec in
  Alcotest.(check int) "arcs" 2 (Po.num_arcs po);
  Alcotest.(check int) "loops" 1 (Po.num_loops po);
  Alcotest.(check int) "deg doubles" (2 * Ec.degree ec 0) (Po.degree po 0)

let colouring_proper_on_families =
  QCheck.Test.make ~count:60 ~name:"greedy edge colouring proper, <= 2Δ-1 colours"
    (QCheck.pair (QCheck.int_range 2 25) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = Ld_graph.Generators.random_bounded_degree ~seed n 5 in
      let colour = Colouring.greedy g in
      Colouring.is_proper g colour
      && (G.m g = 0
         || Colouring.num_colours g colour <= (2 * G.max_degree g) - 1))

let ec_of_simple_families () =
  List.iter
    (fun g ->
      let ec = Colouring.ec_of_simple g in
      Alcotest.(check int) "edges preserved" (G.m g) (Ec.num_edges ec);
      Alcotest.(check int) "degree preserved" (G.max_degree g) (Ec.max_degree ec))
    [ Gen.path 7; Gen.cycle 8; Gen.star 6; Gen.grid 3 4; Gen.complete 5 ]

(* Ec.of_csr must agree with the classic list path
   (Colouring.ec_of_simple = Ec.of_simple over Edge_colouring.greedy)
   given the CSR of the same graph under the same colouring: identical
   edge-id assignment and identical cached CSR arrays. *)
let ec_of_csr_identical =
  QCheck.Test.make ~count:50 ~name:"Ec.of_csr agrees with ec_of_simple"
    (QCheck.triple (QCheck.int_range 0 25) (QCheck.int_range 0 6)
       (QCheck.int_range 0 1000))
    (fun (n, d, seed) ->
      let g = Gen.random_bounded_degree ~seed n d in
      let via_csr =
        Ec.of_csr (Ld_graph.Csr.of_graph g ~colour:(Colouring.greedy g))
      in
      let via_lists = Colouring.ec_of_simple g in
      let a = Ec.csr via_csr and b = Ec.csr via_lists in
      Ec.n via_csr = Ec.n via_lists
      && Ec.num_edges via_csr = Ec.num_edges via_lists
      && a.Ec.row = b.Ec.row && a.Ec.colour = b.Ec.colour
      && a.Ec.other = b.Ec.other && a.Ec.code = b.Ec.code
      && List.equal
           (fun (x : Ec.edge) y -> x.u = y.u && x.v = y.v && x.colour = y.colour)
           (Ec.edges via_csr) (Ec.edges via_lists))

let labelled_id_oi () =
  let g = Gen.path 3 in
  Alcotest.check_raises "duplicate ids" (Invalid_argument "Id.create: duplicate id")
    (fun () -> ignore (Labelled.Id.create g [| 1; 1; 2 |]));
  let id = Labelled.Id.create g [| 30; 10; 20 |] in
  let oi = Labelled.Oi.of_id id in
  Alcotest.(check bool) "1 precedes 2" true (Labelled.Oi.precedes oi 1 2);
  Alcotest.(check bool) "2 precedes 0" true (Labelled.Oi.precedes oi 2 0);
  (* An order-respecting reassignment keeps the order. *)
  let id' = Labelled.Oi.assign oi [| 5; 100; 2 |] in
  Alcotest.(check int) "smallest id to rank-0 node" 2 (Labelled.Id.id id' 1);
  Alcotest.(check int) "largest id to rank-2 node" 100 (Labelled.Id.id id' 0)

let dot_export () =
  let has doc needle =
    let n = String.length needle and h = String.length doc in
    let rec go i = i + n <= h && (String.sub doc i n = needle || go (i + 1)) in
    go 0
  in
  let ec = Ec.create ~n:2 ~edges:[ (0, 1, 1) ] ~loops:[ (0, 2) ] in
  let doc = Ld_models.Dot.ec ec in
  Alcotest.(check bool) "graph header" true (has doc "graph G {");
  Alcotest.(check bool) "edge present" true (has doc "v0 -- v1");
  Alcotest.(check bool) "loop stub dashed" true (has doc "style=dashed");
  let po = Po.of_ec ec in
  let doc' = Ld_models.Dot.po po in
  Alcotest.(check bool) "digraph header" true (has doc' "digraph G {");
  Alcotest.(check bool) "both arcs" true (has doc' "v0 -> v1" && has doc' "v1 -> v0");
  Alcotest.(check bool) "directed self-loop" true (has doc' "v0 -> v0");
  let doc'' = Ld_models.Dot.simple (Gen.path 3) in
  Alcotest.(check bool) "simple edges" true (has doc'' "v1 -- v2")

let () =
  Alcotest.run "models"
    [
      ( "ec",
        [
          Alcotest.test_case "properness" `Quick ec_properness;
          Alcotest.test_case "loop degree" `Quick ec_loop_degree;
          Alcotest.test_case "remove loop" `Quick ec_remove_loop;
          Alcotest.test_case "union and simple" `Quick ec_union_and_simple;
        ] );
      ( "po",
        [
          Alcotest.test_case "loop degree" `Quick po_loop_degree;
          Alcotest.test_case "properness" `Quick po_properness;
          Alcotest.test_case "of_ports" `Quick po_of_ports_roundtrip;
          Alcotest.test_case "of_ec" `Quick po_of_ec_doubles;
        ] );
      ( "colouring",
        [
          QCheck_alcotest.to_alcotest colouring_proper_on_families;
          Alcotest.test_case "ec_of_simple families" `Quick ec_of_simple_families;
          QCheck_alcotest.to_alcotest ec_of_csr_identical;
        ] );
      ("labelled", [ Alcotest.test_case "id and oi" `Quick labelled_id_oi ]);
      ("dot", [ Alcotest.test_case "export" `Quick dot_export ]);
    ]
