(* Ld_obs: trace well-formedness, counter atomicity under the domain
   pool, the disabled sink as a true no-op, and the adversary's
   instrumented/uninstrumented equivalence. *)

module Obs = Ld_obs.Obs
module Trace = Ld_obs.Trace
module Summary = Ld_obs.Summary
module Hist = Ld_obs.Hist
module Json = Ld_obs.Json
module Openmetrics = Ld_obs.Openmetrics
module Bench_diff = Ld_obs.Bench_diff
module Provenance = Ld_obs.Provenance
module Pool = Ld_core.Pool
module LB = Ld_core.Lower_bound
module Packing = Ld_matching.Packing
module Ec = Ld_models.Ec
module Q = Ld_arith.Q

(* ------------------------------------------------------------------ *)
(* A minimal JSON validator: accepts exactly one JSON value plus
   whitespace. Raises [Failure] on malformed input — enough to assert
   the trace file is valid JSON without a JSON dependency. *)

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let peek_is c = !pos < n && Char.equal s.[!pos] c in
  let advance () = incr pos in
  let rec ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      ws ()
    | _ -> ()
  in
  let expect c =
    if peek_is c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal l =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
    then pos := !pos + String.length l
    else fail ("expected " ^ l)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    if peek_is '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    if peek_is '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  let rec value () =
    ws ();
    match peek () with
    | Some '{' ->
      advance ();
      ws ();
      if peek_is '}' then advance ()
      else begin
        let rec members () =
          ws ();
          string_lit ();
          ws ();
          expect ':';
          value ();
          ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      ws ();
      if peek_is ']' then advance ()
      else begin
        let rec elements () =
          value ();
          ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
      end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected value"
  in
  value ();
  ws ();
  if !pos <> n then fail "trailing garbage"

(* ------------------------------------------------------------------ *)

let with_enabled f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

let some_work delta = LB.run ~delta Packing.greedy_algorithm

let trace_well_formed () =
  with_enabled @@ fun () ->
  (* Spans from the main domain plus a 2-domain pool fan-out. *)
  ignore
    (Obs.with_span "test.outer" (fun () ->
         Pool.map ~domains:2 (fun d -> LB.max_level (some_work d)) [ 3; 4; 5; 6 ]));
  let events = Obs.events () in
  Alcotest.(check bool) "events recorded" true (events <> []);
  (* Per-domain streams: balanced begin/end, properly nested, monotone
     timestamps. A domain never appends to another domain's buffer, so
     grouping by tid reconstructs each stream. *)
  let tids = List.sort_uniq Int.compare (List.map (fun e -> e.Obs.ev_tid) events) in
  Alcotest.(check bool) "two domains traced" true (List.length tids >= 2);
  List.iter
    (fun tid ->
      let stream = List.filter (fun e -> e.Obs.ev_tid = tid) events in
      let depth = ref 0 in
      let last_ts = ref Int64.min_int in
      List.iter
        (fun (e : Obs.event) ->
          Alcotest.(check bool) "monotone ts" true (Int64.compare e.ev_ts !last_ts >= 0);
          last_ts := e.ev_ts;
          match e.ev_phase with
          | Obs.B -> incr depth
          | Obs.E ->
            decr depth;
            Alcotest.(check bool) "no end before begin" true (!depth >= 0))
        stream;
      Alcotest.(check int) (Printf.sprintf "balanced on tid %d" tid) 0 !depth)
    tids;
  (* The exported file is valid JSON. *)
  let path = Filename.temp_file "ld_obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.write ~path;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  validate_json contents;
  (* And the summary aggregation sees the outer span exactly once. *)
  match List.assoc_opt "test.outer" (Obs.span_totals ()) with
  | Some (count, total_ms, _) ->
    Alcotest.(check int) "outer span count" 1 count;
    Alcotest.(check bool) "outer span has wall time" true (total_ms > 0.)
  | None -> Alcotest.fail "test.outer span missing from totals"

let counter_atomic_under_pool () =
  with_enabled @@ fun () ->
  let c = Obs.Counter.make "test.atomic" in
  let per_task = 25_000 and tasks = 8 in
  ignore
    (Pool.map ~domains:4
       (fun _ ->
         for _ = 1 to per_task do
           Obs.Counter.incr c
         done)
       (List.init tasks Fun.id));
  Alcotest.(check int) "no lost increments" (per_task * tasks) (Obs.Counter.value c)

let disabled_sink_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.Counter.make "test.disabled" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "counter stays zero" 0 (Obs.Counter.value c);
  let ran = ref false in
  let v =
    Obs.with_span "test.disabled.span" (fun () ->
        ran := true;
        17)
  in
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "value passed through" 17 v;
  Alcotest.(check bool) "no events recorded" true (Obs.events () = []);
  let path = Filename.temp_file "ld_obs_disabled" ".json" in
  Sys.remove path;
  Trace.write ~path;
  Alcotest.(check bool) "no file written" false (Sys.file_exists path)

(* The property the whole PR hangs on: instrumentation never changes
   results. The adversary's outcome with the sink enabled is
   structurally identical to the outcome with it disabled. *)
let outcome_fingerprint = function
  | LB.Certified certs ->
    ( true,
      List.map
        (fun (c : LB.certificate) ->
          ( c.level,
            c.colour,
            c.g_node,
            c.h_node,
            Ec.n c.g_graph,
            Ec.n c.h_graph,
            Q.to_string c.g_weight,
            Q.to_string c.h_weight ))
        certs,
      -1 )
  | LB.Refuted (certs, f) -> (false, [], f.LB.fail_level + List.length certs)

let instrumented_equals_uninstrumented =
  QCheck.Test.make ~count:20 ~name:"instrumented run = uninstrumented run"
    (QCheck.pair (QCheck.int_range 2 6) (QCheck.int_range 0 4))
    (fun (delta, truncate_roll) ->
      (* Mix certified full runs with refuted truncations. *)
      let algo =
        if truncate_roll = 0 then Packing.truncated `Greedy (delta - 1)
        else Packing.greedy_algorithm
      in
      Obs.disable ();
      let plain = LB.run ~delta algo in
      Obs.enable ();
      Obs.reset ();
      let traced = Fun.protect ~finally:Obs.disable (fun () -> LB.run ~delta algo) in
      outcome_fingerprint plain = outcome_fingerprint traced)

(* ------------------------------------------------------------------ *)
(* Histograms: the quantile error bound the exposition documents, the
   shard merge across pool domains, the sink gate, and the span hook. *)

let hist_quantile_error_bound () =
  with_enabled @@ fun () ->
  let h = Hist.make "test.hist.quantile" in
  Hist.reset h;
  (* Deterministic spread across the exact region (< 32 ns) and many
     octaves, via a hand-rolled LCG — no global Random state. *)
  let seed = ref 123456789 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed
  in
  let values =
    Array.init 5000 (fun i ->
        if i mod 7 = 0 then i mod 32 else 1 + (next () mod 50_000_000))
  in
  Array.iter (Hist.observe h) values;
  let sn = Hist.snapshot h in
  Alcotest.(check int) "count" (Array.length values) sn.Hist.sn_count;
  Alcotest.(check int) "sum" (Array.fold_left ( + ) 0 values) sn.Hist.sn_sum;
  let sorted = Array.copy values in
  Array.sort Int.compare sorted;
  let n = Array.length sorted in
  (* Same rank rule as [Hist.quantile], read off the sorted values. *)
  let exact q =
    let r =
      Stdlib.max 1 (Stdlib.min (int_of_float (ceil (q *. float_of_int n))) n)
    in
    float_of_int sorted.(r - 1)
  in
  List.iter
    (fun q ->
      let est = Hist.quantile sn q in
      let tru = exact q in
      let err = Float.abs (est -. tru) in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within documented relative error" (q *. 100.))
        true
        (err <= (Hist.rel_error_bound *. tru) +. 1.0))
    [ 0.5; 0.9; 0.99; 0.999 ];
  Alcotest.(check (float 0.)) "q=1 is the exact max"
    (float_of_int sn.Hist.sn_max)
    (Hist.quantile sn 1.0)

let hist_merges_across_domains () =
  with_enabled @@ fun () ->
  let h = Hist.make "test.hist.merge" in
  Hist.reset h;
  let per_task = 1000 and tasks = 8 in
  ignore
    (Pool.map ~domains:4
       (fun task ->
         for j = 0 to per_task - 1 do
           Hist.observe h ((task * 1_000_000) + (j * 37))
         done)
       (List.init tasks Fun.id));
  let sn = Hist.snapshot h in
  Alcotest.(check int) "merged count" (tasks * per_task) sn.Hist.sn_count;
  let expected_sum = ref 0 in
  for task = 0 to tasks - 1 do
    for j = 0 to per_task - 1 do
      expected_sum := !expected_sum + (task * 1_000_000) + (j * 37)
    done
  done;
  Alcotest.(check int) "merged sum" !expected_sum sn.Hist.sn_sum;
  Alcotest.(check int) "merged max"
    (((tasks - 1) * 1_000_000) + ((per_task - 1) * 37))
    sn.Hist.sn_max;
  match Array.length sn.Hist.sn_buckets with
  | 0 -> Alcotest.fail "no buckets after 8000 observations"
  | len ->
    let _, cum = sn.Hist.sn_buckets.(len - 1) in
    Alcotest.(check int) "last cumulative = count" sn.Hist.sn_count cum

let hist_gate_and_reset () =
  Obs.disable ();
  let h = Hist.make "test.hist.gate" in
  Hist.reset h;
  Hist.observe h 1234;
  Alcotest.(check int) "disabled observe is a no-op" 0
    (Hist.snapshot h).Hist.sn_count;
  with_enabled @@ fun () ->
  Hist.observe h 1234;
  Hist.observe h 5678;
  Alcotest.(check int) "recorded while enabled" 2
    (Hist.snapshot h).Hist.sn_count;
  Hist.reset h;
  let sn = Hist.snapshot h in
  Alcotest.(check int) "reset count" 0 sn.Hist.sn_count;
  Alcotest.(check int) "reset sum" 0 sn.Hist.sn_sum;
  Alcotest.(check int) "reset max" 0 sn.Hist.sn_max;
  Alcotest.(check int) "reset buckets" 0 (Array.length sn.Hist.sn_buckets)

let hist_timed_span_hook () =
  with_enabled @@ fun () ->
  let h = Hist.make "test.hist.span" in
  Hist.reset h;
  let v = Hist.timed_span h (fun () -> 42) in
  Alcotest.(check int) "value passed through" 42 v;
  Alcotest.(check int) "one observation" 1 (Hist.snapshot h).Hist.sn_count;
  let span_events () =
    List.length
      (List.filter (fun e -> e.Obs.ev_name = "test.hist.span") (Obs.events ()))
  in
  Alcotest.(check int) "begin+end recorded" 2 (span_events ());
  (* With span recording off the histogram still accumulates but the
     per-domain event buffers stop growing — the sampler contract. *)
  Obs.set_span_recording false;
  Fun.protect ~finally:(fun () -> Obs.set_span_recording true) @@ fun () ->
  ignore (Hist.timed_span h (fun () -> 1));
  Alcotest.(check int) "observation without span" 2
    (Hist.snapshot h).Hist.sn_count;
  Alcotest.(check int) "no new span events" 2 (span_events ())

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition shape: counters as _total, every histogram
   family with ascending le, non-decreasing cumulative counts, +Inf
   equal to _count, and the terminator line. *)

let openmetrics_shape () =
  with_enabled @@ fun () ->
  let c = Obs.Counter.make "test.om.counter" in
  Obs.Counter.add c 7;
  let h = Hist.make "test.om.hist" in
  Hist.reset h;
  List.iter (Hist.observe h) [ 5; 40; 1_000; 50_000; 2_000_000; 2_000_000_000 ];
  let text = Openmetrics.render () in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "counter exposed as _total" true
    (List.mem "ld_test_om_counter_total 7" lines);
  let value_of line =
    match String.rindex_opt line ' ' with
    | Some i ->
      float_of_string (String.sub line (i + 1) (String.length line - i - 1))
    | None -> Alcotest.fail ("no sample value in: " ^ line)
  in
  let families =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; "histogram" ] -> Some name
        | _ -> None)
      lines
  in
  Alcotest.(check bool) "test histogram family present" true
    (List.mem "ld_test_om_hist_seconds" families);
  List.iter
    (fun fam ->
      let bucket_prefix = fam ^ "_bucket{le=\"" in
      let buckets =
        List.filter (String.starts_with ~prefix:bucket_prefix) lines
      in
      Alcotest.(check bool) (fam ^ " has bucket lines") true (buckets <> []);
      let le_of line =
        let start = String.length bucket_prefix in
        let stop = String.index_from line start '"' in
        String.sub line start (stop - start)
      in
      let les = List.map le_of buckets in
      (match List.rev les with
      | last :: _ -> Alcotest.(check string) (fam ^ " ends at +Inf") "+Inf" last
      | [] -> ());
      let finite =
        List.map float_of_string (List.filter (fun le -> le <> "+Inf") les)
      in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      Alcotest.(check bool) (fam ^ " le strictly ascending") true
        (ascending finite);
      let cums = List.map value_of buckets in
      let rec nondec = function
        | a :: (b :: _ as rest) -> a <= b && nondec rest
        | _ -> true
      in
      Alcotest.(check bool) (fam ^ " cumulative non-decreasing") true
        (nondec cums);
      let count_line =
        List.find (String.starts_with ~prefix:(fam ^ "_count ")) lines
      in
      Alcotest.(check (float 0.)) (fam ^ " +Inf equals _count")
        (value_of count_line)
        (List.nth cums (List.length cums - 1));
      Alcotest.(check bool) (fam ^ " has _sum") true
        (List.exists (String.starts_with ~prefix:(fam ^ "_sum ")) lines))
    families;
  match List.rev (List.filter (fun l -> l <> "") lines) with
  | last :: _ -> Alcotest.(check string) "terminator" "# EOF" last
  | [] -> Alcotest.fail "empty exposition"

(* ------------------------------------------------------------------ *)
(* JSON hardening: hostile bytes in span/counter names survive every
   emitter as valid pure-ASCII JSON, and the parser the bench-diff
   sentinel relies on round-trips what the emitters write. *)

let json_escape_units () =
  Alcotest.(check string) "quote" "\\\"" (Json.escape "\"");
  Alcotest.(check string) "backslash" "\\\\" (Json.escape "\\");
  Alcotest.(check string) "nul" "\\u0000" (Json.escape "\x00");
  Alcotest.(check string) "newline" "\\u000a" (Json.escape "\n");
  Alcotest.(check string) "high byte" "\\u00ff" (Json.escape "\xff");
  Alcotest.(check string) "plain passthrough" "abc" (Json.escape "abc")

let ascii_only s = String.for_all (fun c -> Char.code c < 0x80) s

let hostile_names_survive_export () =
  with_enabled @@ fun () ->
  let evil = "evil\"name\\with\ttab\x01ctl\x7fdel\xffhigh" in
  let v =
    Obs.with_span evil (fun () ->
        Obs.Counter.incr (Obs.Counter.make ("ctr." ^ evil));
        Hist.observe (Hist.make ("hist." ^ evil)) 100;
        17)
  in
  Alcotest.(check int) "value passed through" 17 v;
  let path = Filename.temp_file "ld_obs_evil" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.write ~path;
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  validate_json contents;
  Alcotest.(check bool) "trace is pure ASCII" true (ascii_only contents);
  let summary = Summary.to_json () in
  validate_json summary;
  Alcotest.(check bool) "summary is pure ASCII" true (ascii_only summary)

let json_parser () =
  let doc = Json.parse {|{"rows": [{"delta": 4, "wall_ms": 1.5}], "ok": true}|} in
  (match Option.bind (Json.member "rows" doc) Json.to_list with
  | Some [ row ] ->
    Alcotest.(check (option (float 0.))) "delta" (Some 4.)
      (Option.bind (Json.member "delta" row) Json.to_float)
  | _ -> Alcotest.fail "rows shape");
  (* Escaped low bytes round-trip exactly (high bytes re-encode as
     UTF-8, which is why the emitters stay ASCII and the check below
     only exercises the < 0x80 range). *)
  let s = "a\"b\\c\x01d\ne" in
  (match Json.parse ("\"" ^ Json.escape s ^ "\"") with
  | Json.Str back -> Alcotest.(check string) "escape round-trip" s back
  | _ -> Alcotest.fail "expected a string");
  let rejects input =
    match Json.parse input with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unclosed object" true (rejects "{");
  Alcotest.(check bool) "trailing garbage" true (rejects "1 2");
  Alcotest.(check bool) "bad escape" true (rejects "\"\\q\"");
  Alcotest.(check bool) "bare word" true (rejects "wall_ms")

(* ------------------------------------------------------------------ *)

let counter_snapshot_diff () =
  with_enabled @@ fun () ->
  let a = Obs.Counter.make "test.diff.a" in
  ignore (Obs.Counter.make "test.diff.untouched");
  let before = Obs.Counter.snapshot_all () in
  Obs.Counter.add a 5;
  let born = Obs.Counter.make "test.diff.born" in
  Obs.Counter.incr born;
  let after = Obs.Counter.snapshot_all () in
  let d = Obs.Counter.diff before after in
  Alcotest.(check (option int)) "increment" (Some 5)
    (List.assoc_opt "test.diff.a" d);
  Alcotest.(check (option int)) "born counter counts from zero" (Some 1)
    (List.assoc_opt "test.diff.born" d);
  Alcotest.(check (option int)) "zero delta dropped" None
    (List.assoc_opt "test.diff.untouched" d)

let gauge_max_under_contention () =
  with_enabled @@ fun () ->
  let g = Obs.Gauge.make "test.gauge.contended" in
  let per_task = 1000 and tasks = 8 in
  ignore
    (Pool.map ~domains:4
       (fun task ->
         for j = 0 to per_task - 1 do
           Obs.Gauge.record g ((task * per_task) + j)
         done)
       (List.init tasks Fun.id));
  Alcotest.(check int) "CAS max survives 4-domain contention"
    ((tasks * per_task) - 1)
    (Obs.Gauge.value g)

(* ------------------------------------------------------------------ *)
(* Provenance: the dirty probe against a throwaway git repository —
   clean after commit, still clean with an untracked scratch file
   (--untracked-files=no), dirty once a tracked file changes. *)

let provenance_git_dirty () =
  if Sys.command "git --version >/dev/null 2>&1" <> 0 then
    print_endline "git unavailable — skipping provenance probe test"
  else begin
    let dir = Filename.temp_file "ld_prov_repo" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o700;
    let here = Sys.getcwd () in
    Fun.protect
      ~finally:(fun () ->
        Sys.chdir here;
        ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
      (fun () ->
        Sys.chdir dir;
        let git fmt =
          Printf.ksprintf
            (fun cmd -> Alcotest.(check int) cmd 0 (Sys.command cmd))
            fmt
        in
        git "git init -q";
        Out_channel.with_open_text "tracked.txt" (fun oc ->
            Out_channel.output_string oc "v1\n");
        git "git add tracked.txt";
        git
          "git -c user.name=t -c user.email=t@t -c commit.gpgsign=false \
           commit -q -m init";
        Alcotest.(check (option bool)) "clean tree" (Some false)
          (Provenance.git_dirty ());
        Alcotest.(check bool) "head resolves" true
          (Provenance.git_head () <> None);
        Out_channel.with_open_text "scratch.txt" (fun oc ->
            Out_channel.output_string oc "x\n");
        Alcotest.(check (option bool)) "untracked file ignored" (Some false)
          (Provenance.git_dirty ());
        Out_channel.with_open_text "tracked.txt" (fun oc ->
            Out_channel.output_string oc "v2\n");
        Alcotest.(check (option bool)) "tracked modification flagged"
          (Some true) (Provenance.git_dirty ()))
  end

(* ------------------------------------------------------------------ *)
(* The bench-regression sentinel. *)

let write_bench path rows =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        (Printf.sprintf "{\"rows\": [%s]}" (String.concat ", " rows)))

let thm1_row delta wall =
  Printf.sprintf "{\"delta\": %d, \"wall_ms\": %.3f}" delta wall

let with_temp_pair f =
  let old_p = Filename.temp_file "ld_bd_old" ".json" in
  let new_p = Filename.temp_file "ld_bd_new" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove old_p;
      Sys.remove new_p)
    (fun () -> f old_p new_p)

let ok_or_fail = function Ok r -> r | Error e -> Alcotest.fail e

let bench_diff_identical_passes () =
  with_temp_pair @@ fun old_p new_p ->
  let rows = [ thm1_row 4 100.; thm1_row 5 200.; thm1_row 6 0.5 ] in
  write_bench old_p rows;
  write_bench new_p rows;
  let r =
    ok_or_fail (Bench_diff.compare_files ~old_path:old_p ~new_path:new_p ())
  in
  Alcotest.(check int) "identical files pass" 0 (Bench_diff.exit_code r);
  Alcotest.(check int) "all rows joined" 3
    (List.length r.Bench_diff.r_compared);
  let sub =
    List.find
      (fun c -> c.Bench_diff.c_key = "delta=6")
      r.Bench_diff.r_compared
  in
  Alcotest.(check bool) "sub-millisecond row not gated" false
    sub.Bench_diff.c_gated

let bench_diff_detects_regression () =
  with_temp_pair @@ fun old_p new_p ->
  write_bench old_p [ thm1_row 4 100.; thm1_row 5 200. ];
  write_bench new_p [ thm1_row 4 110.; thm1_row 5 450. ];
  let r =
    ok_or_fail (Bench_diff.compare_files ~old_path:old_p ~new_path:new_p ())
  in
  Alcotest.(check int) "regression exits 1" 1 (Bench_diff.exit_code r);
  match Bench_diff.regressions r with
  | [ c ] ->
    Alcotest.(check string) "the doubled row" "delta=5" c.Bench_diff.c_key;
    Alcotest.(check bool) "ratio beyond tolerance" true
      (c.Bench_diff.c_ratio > 2.0)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 regression, got %d"
                           (List.length rs))

let bench_diff_normalize () =
  with_temp_pair @@ fun old_p new_p ->
  write_bench old_p [ thm1_row 4 100.; thm1_row 5 200.; thm1_row 6 300. ];
  (* Uniform 2x: raw comparison regresses, normalized passes — the
     machine-speed case. *)
  write_bench new_p [ thm1_row 4 200.; thm1_row 5 400.; thm1_row 6 600. ];
  let raw =
    ok_or_fail (Bench_diff.compare_files ~old_path:old_p ~new_path:new_p ())
  in
  Alcotest.(check int) "uniform slowdown caught raw" 1
    (Bench_diff.exit_code raw);
  let norm =
    ok_or_fail
      (Bench_diff.compare_files ~normalize:true ~old_path:old_p
         ~new_path:new_p ())
  in
  Alcotest.(check (float 1e-9)) "median ratio" 2.0
    norm.Bench_diff.r_median_ratio;
  Alcotest.(check int) "uniform slowdown cancels normalized" 0
    (Bench_diff.exit_code norm);
  (* Selective 6x on one row stays visible through normalization. *)
  write_bench new_p [ thm1_row 4 200.; thm1_row 5 400.; thm1_row 6 1800. ];
  let sel =
    ok_or_fail
      (Bench_diff.compare_files ~normalize:true ~old_path:old_p
         ~new_path:new_p ())
  in
  (match Bench_diff.regressions sel with
  | [ c ] -> Alcotest.(check string) "selective row" "delta=6" c.Bench_diff.c_key
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 regression, got %d"
                           (List.length rs)))

let bench_diff_keys_and_shape () =
  Alcotest.(check (option (float 1e-9))) "1.5x" (Some 1.5)
    (Bench_diff.tolerance_of_string "1.5x");
  Alcotest.(check (option (float 1e-9))) "bare 2" (Some 2.0)
    (Bench_diff.tolerance_of_string "2");
  Alcotest.(check (option (float 1e-9))) "at most 1.0 rejected" None
    (Bench_diff.tolerance_of_string "1.0");
  Alcotest.(check (option (float 1e-9))) "garbage rejected" None
    (Bench_diff.tolerance_of_string "fast");
  with_temp_pair @@ fun old_p new_p ->
  (* Disjoint row sets never gate; they are reported as only-old /
     only-new. Runtime-style rows key on workload/algo/n/domains even
     when a delta column is also present. *)
  let rt workload n domains wall =
    Printf.sprintf
      "{\"workload\": \"%s\", \"algo\": \"israeli-itai\", \"n\": %d, \
       \"domains\": %d, \"delta\": 8, \"wall_ms\": %.3f}"
      workload n domains wall
  in
  write_bench old_p [ rt "biregular-tree" 100000 1 50.; thm1_row 4 10. ];
  write_bench new_p [ rt "biregular-tree" 100000 1 55.; rt "perm-regular" 100000 1 40. ];
  let r =
    ok_or_fail (Bench_diff.compare_files ~old_path:old_p ~new_path:new_p ())
  in
  Alcotest.(check int) "one runtime row joins" 1
    (List.length r.Bench_diff.r_compared);
  (match r.Bench_diff.r_compared with
  | [ c ] ->
    Alcotest.(check string) "runtime join key"
      "biregular-tree/israeli-itai n=100000 domains=1" c.Bench_diff.c_key
  | _ -> ());
  Alcotest.(check (list string)) "only-old rows" [ "delta=4" ]
    r.Bench_diff.r_only_old;
  Alcotest.(check int) "only-new count" 1
    (List.length r.Bench_diff.r_only_new);
  Alcotest.(check int) "subset coverage still passes" 0
    (Bench_diff.exit_code r);
  (* Shape errors surface as Error, not exceptions. *)
  write_bench new_p [ thm1_row 9 1. ];
  (match Bench_diff.compare_files ~old_path:old_p ~new_path:new_p () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "disjoint keys must not compare");
  Out_channel.with_open_text new_p (fun oc ->
      Out_channel.output_string oc "{\"meta\": {}}");
  match Bench_diff.compare_files ~old_path:old_p ~new_path:new_p () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing rows array must error"

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "well-formed events and JSON export" `Quick
            trace_well_formed;
        ] );
      ( "counters",
        [
          Alcotest.test_case "atomic under Pool.map (4 domains)" `Quick
            counter_atomic_under_pool;
          Alcotest.test_case "snapshot_all / diff" `Quick counter_snapshot_diff;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "CAS max under 4-domain contention" `Quick
            gauge_max_under_contention;
        ] );
      ( "hist",
        [
          Alcotest.test_case "quantiles within the error bound" `Quick
            hist_quantile_error_bound;
          Alcotest.test_case "shards merge across pool domains" `Quick
            hist_merges_across_domains;
          Alcotest.test_case "sink gate and reset" `Quick hist_gate_and_reset;
          Alcotest.test_case "timed_span feeds trace and histogram" `Quick
            hist_timed_span_hook;
        ] );
      ( "exposition",
        [ Alcotest.test_case "OpenMetrics shape" `Quick openmetrics_shape ] );
      ( "json",
        [
          Alcotest.test_case "escape units" `Quick json_escape_units;
          Alcotest.test_case "hostile names survive export" `Quick
            hostile_names_survive_export;
          Alcotest.test_case "parser accepts artefacts, rejects junk" `Quick
            json_parser;
        ] );
      ( "provenance",
        [ Alcotest.test_case "git_dirty probe" `Quick provenance_git_dirty ] );
      ( "bench-diff",
        [
          Alcotest.test_case "identical files pass" `Quick
            bench_diff_identical_passes;
          Alcotest.test_case "2x slowdown detected" `Quick
            bench_diff_detects_regression;
          Alcotest.test_case "median normalization" `Quick bench_diff_normalize;
          Alcotest.test_case "join keys, tolerance, shape errors" `Quick
            bench_diff_keys_and_shape;
        ] );
      ( "disabled",
        [ Alcotest.test_case "sink off is a no-op" `Quick disabled_sink_is_noop ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest instrumented_equals_uninstrumented ] );
    ]
