(* Ld_obs: trace well-formedness, counter atomicity under the domain
   pool, the disabled sink as a true no-op, and the adversary's
   instrumented/uninstrumented equivalence. *)

module Obs = Ld_obs.Obs
module Trace = Ld_obs.Trace
module Summary = Ld_obs.Summary
module Pool = Ld_core.Pool
module LB = Ld_core.Lower_bound
module Packing = Ld_matching.Packing
module Ec = Ld_models.Ec
module Q = Ld_arith.Q

(* ------------------------------------------------------------------ *)
(* A minimal JSON validator: accepts exactly one JSON value plus
   whitespace. Raises [Failure] on malformed input — enough to assert
   the trace file is valid JSON without a JSON dependency. *)

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let peek_is c = !pos < n && Char.equal s.[!pos] c in
  let advance () = incr pos in
  let rec ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      ws ()
    | _ -> ()
  in
  let expect c =
    if peek_is c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal l =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
    then pos := !pos + String.length l
    else fail ("expected " ^ l)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    if peek_is '-' then advance ();
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    if peek_is '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  let rec value () =
    ws ();
    match peek () with
    | Some '{' ->
      advance ();
      ws ();
      if peek_is '}' then advance ()
      else begin
        let rec members () =
          ws ();
          string_lit ();
          ws ();
          expect ':';
          value ();
          ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
      end
    | Some '[' ->
      advance ();
      ws ();
      if peek_is ']' then advance ()
      else begin
        let rec elements () =
          value ();
          ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
      end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected value"
  in
  value ();
  ws ();
  if !pos <> n then fail "trailing garbage"

(* ------------------------------------------------------------------ *)

let with_enabled f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) f

let some_work delta = LB.run ~delta Packing.greedy_algorithm

let trace_well_formed () =
  with_enabled @@ fun () ->
  (* Spans from the main domain plus a 2-domain pool fan-out. *)
  ignore
    (Obs.with_span "test.outer" (fun () ->
         Pool.map ~domains:2 (fun d -> LB.max_level (some_work d)) [ 3; 4; 5; 6 ]));
  let events = Obs.events () in
  Alcotest.(check bool) "events recorded" true (events <> []);
  (* Per-domain streams: balanced begin/end, properly nested, monotone
     timestamps. A domain never appends to another domain's buffer, so
     grouping by tid reconstructs each stream. *)
  let tids = List.sort_uniq Int.compare (List.map (fun e -> e.Obs.ev_tid) events) in
  Alcotest.(check bool) "two domains traced" true (List.length tids >= 2);
  List.iter
    (fun tid ->
      let stream = List.filter (fun e -> e.Obs.ev_tid = tid) events in
      let depth = ref 0 in
      let last_ts = ref Int64.min_int in
      List.iter
        (fun (e : Obs.event) ->
          Alcotest.(check bool) "monotone ts" true (Int64.compare e.ev_ts !last_ts >= 0);
          last_ts := e.ev_ts;
          match e.ev_phase with
          | Obs.B -> incr depth
          | Obs.E ->
            decr depth;
            Alcotest.(check bool) "no end before begin" true (!depth >= 0))
        stream;
      Alcotest.(check int) (Printf.sprintf "balanced on tid %d" tid) 0 !depth)
    tids;
  (* The exported file is valid JSON. *)
  let path = Filename.temp_file "ld_obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.write ~path;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  validate_json contents;
  (* And the summary aggregation sees the outer span exactly once. *)
  match List.assoc_opt "test.outer" (Obs.span_totals ()) with
  | Some (count, total_ms, _) ->
    Alcotest.(check int) "outer span count" 1 count;
    Alcotest.(check bool) "outer span has wall time" true (total_ms > 0.)
  | None -> Alcotest.fail "test.outer span missing from totals"

let counter_atomic_under_pool () =
  with_enabled @@ fun () ->
  let c = Obs.Counter.make "test.atomic" in
  let per_task = 25_000 and tasks = 8 in
  ignore
    (Pool.map ~domains:4
       (fun _ ->
         for _ = 1 to per_task do
           Obs.Counter.incr c
         done)
       (List.init tasks Fun.id));
  Alcotest.(check int) "no lost increments" (per_task * tasks) (Obs.Counter.value c)

let disabled_sink_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.Counter.make "test.disabled" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "counter stays zero" 0 (Obs.Counter.value c);
  let ran = ref false in
  let v =
    Obs.with_span "test.disabled.span" (fun () ->
        ran := true;
        17)
  in
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "value passed through" 17 v;
  Alcotest.(check bool) "no events recorded" true (Obs.events () = []);
  let path = Filename.temp_file "ld_obs_disabled" ".json" in
  Sys.remove path;
  Trace.write ~path;
  Alcotest.(check bool) "no file written" false (Sys.file_exists path)

(* The property the whole PR hangs on: instrumentation never changes
   results. The adversary's outcome with the sink enabled is
   structurally identical to the outcome with it disabled. *)
let outcome_fingerprint = function
  | LB.Certified certs ->
    ( true,
      List.map
        (fun (c : LB.certificate) ->
          ( c.level,
            c.colour,
            c.g_node,
            c.h_node,
            Ec.n c.g_graph,
            Ec.n c.h_graph,
            Q.to_string c.g_weight,
            Q.to_string c.h_weight ))
        certs,
      -1 )
  | LB.Refuted (certs, f) -> (false, [], f.LB.fail_level + List.length certs)

let instrumented_equals_uninstrumented =
  QCheck.Test.make ~count:20 ~name:"instrumented run = uninstrumented run"
    (QCheck.pair (QCheck.int_range 2 6) (QCheck.int_range 0 4))
    (fun (delta, truncate_roll) ->
      (* Mix certified full runs with refuted truncations. *)
      let algo =
        if truncate_roll = 0 then Packing.truncated `Greedy (delta - 1)
        else Packing.greedy_algorithm
      in
      Obs.disable ();
      let plain = LB.run ~delta algo in
      Obs.enable ();
      Obs.reset ();
      let traced = Fun.protect ~finally:Obs.disable (fun () -> LB.run ~delta algo) in
      outcome_fingerprint plain = outcome_fingerprint traced)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "well-formed events and JSON export" `Quick
            trace_well_formed;
        ] );
      ( "counters",
        [
          Alcotest.test_case "atomic under Pool.map (4 domains)" `Quick
            counter_atomic_under_pool;
        ] );
      ( "disabled",
        [ Alcotest.test_case "sink off is a no-op" `Quick disabled_sink_is_noop ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest instrumented_equals_uninstrumented ] );
    ]
