(* The Appendix A canonical order: Lemma 4's properties as executable
   checks on random tree addresses. *)

module O = Ld_order.Tree_order

let step_gen =
  QCheck.map
    (fun (fwd, colour) -> { O.fwd; colour })
    (QCheck.pair QCheck.bool (QCheck.int_range 1 3))

let address_gen =
  QCheck.map O.normalize (QCheck.list_of_size (QCheck.Gen.int_range 0 7) step_gen)

let normalize_cancels () =
  let s c = { O.fwd = true; colour = c } in
  let inv c = { O.fwd = false; colour = c } in
  Alcotest.(check int) "fwd then bwd cancels" 0
    (List.length (O.normalize [ s 1; inv 1 ]));
  Alcotest.(check int) "nested cancellation" 0
    (List.length (O.normalize [ s 1; s 2; inv 2; inv 1 ]));
  Alcotest.(check int) "non-inverse stays" 2 (List.length (O.normalize [ s 1; s 2 ]));
  (* same colour, same direction does NOT cancel *)
  Alcotest.(check int) "repeat stays" 2 (List.length (O.normalize [ s 1; s 1 ]))

let bracket_antisymmetric =
  QCheck.Test.make ~count:300 ~name:"⟦x⇝y⟧ = -⟦y⇝x⟧"
    (QCheck.pair address_gen address_gen)
    (fun (x, y) -> O.bracket x y = -O.bracket y x)

let bracket_odd =
  QCheck.Test.make ~count:300 ~name:"⟦x⇝y⟧ odd for distinct nodes (totality)"
    (QCheck.pair address_gen address_gen)
    (fun (x, y) -> x = y || abs (O.bracket x y) mod 2 = 1)

let order_transitive =
  QCheck.Test.make ~count:500 ~name:"transitivity"
    (QCheck.triple address_gen address_gen address_gen)
    (fun (x, y, z) ->
      if O.compare x y < 0 && O.compare y z < 0 then O.compare x z < 0 else true)

let order_total_antisym =
  QCheck.Test.make ~count:300 ~name:"comparisons are a strict total order"
    (QCheck.pair address_gen address_gen)
    (fun (x, y) ->
      let c = O.compare x y and c' = O.compare y x in
      if x = y then c = 0 && c' = 0 else c = -c' && c <> 0)

let order_homogeneous =
  QCheck.Test.make ~count:300
    ~name:"homogeneity: translation by any node preserves the order (Lemma 4)"
    (QCheck.triple address_gen address_gen address_gen)
    (fun (z, x, y) ->
      O.compare (O.concat z x) (O.concat z y) = O.compare x y)

let sort_agrees_with_compare () =
  let s c = { O.fwd = true; colour = c } in
  let i c = { O.fwd = false; colour = c } in
  let nodes = [ []; [ s 1 ]; [ i 1 ]; [ s 2 ]; [ s 1; s 2 ]; [ i 2; s 1 ] ] in
  let sorted = O.sort_nodes nodes in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> O.compare a b < 0 && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted strictly" true (strictly_increasing sorted);
  Alcotest.(check int) "same cardinality" (List.length nodes) (List.length sorted)

let bracket_hand_example () =
  (* A two-step path o -> (+1) -> (+1 -2): edges +1 (out of origin: +1
     term) and -2. Walk from x=[] to y=[+1;-2]: edge terms: +1 (fwd),
     -1 (bwd) = 0; interior node term at [+1]: arrival dart of step +1 =
     (in,1); departure dart of step -2 = (in,2); (1,1) < (1,2) so +1.
     Total = +1, so origin ≺ y. *)
  let y = [ { O.fwd = true; colour = 1 }; { O.fwd = false; colour = 2 } ] in
  Alcotest.(check int) "bracket" 1 (O.bracket [] y);
  Alcotest.(check int) "compare" (-1) (O.compare [] y)

let concat_normalizes =
  QCheck.Test.make ~count:200 ~name:"concat output is reduced"
    (QCheck.pair address_gen address_gen)
    (fun (a, b) ->
      let c = O.concat a b in
      O.normalize c = c)

let () =
  Alcotest.run "order"
    [
      ( "normalize",
        [
          Alcotest.test_case "cancellation" `Quick normalize_cancels;
          QCheck_alcotest.to_alcotest concat_normalizes;
        ] );
      ( "lemma4",
        [
          QCheck_alcotest.to_alcotest bracket_antisymmetric;
          QCheck_alcotest.to_alcotest bracket_odd;
          QCheck_alcotest.to_alcotest order_transitive;
          QCheck_alcotest.to_alcotest order_total_antisym;
          QCheck_alcotest.to_alcotest order_homogeneous;
          Alcotest.test_case "sorting" `Quick sort_agrees_with_compare;
          Alcotest.test_case "hand example" `Quick bracket_hand_example;
        ] );
    ]
