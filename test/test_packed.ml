(* Differential tests for the packed-state runtime: every packed
   machine must agree exactly with its boxed twin — same observables,
   same halting rounds — at 1 domain and at a forced multi-domain
   split (par_threshold 0 so even tiny inputs get partitioned). *)

module G = Ld_graph.Graph
module Csr = Ld_graph.Csr
module Gen = Ld_graph.Generators
module Ec = Ld_models.Ec
module Colouring = Ld_models.Edge_colouring
module Id = Ld_models.Labelled.Id
module Fm = Ld_fm.Fm
module Packing = Ld_matching.Packing
module Mm_ec = Ld_matching.Mm_ec
module Packed_mm = Ld_matching.Packed_mm
module Packed_packing = Ld_matching.Packed_packing
module Packed_ii = Ld_matching.Packed_ii
module Packed_pr = Ld_matching.Packed_pr
module Davies_peck = Ld_matching.Davies_peck
module Pr = Ld_matching.Panconesi_rizzi

let graph_gen = QCheck.triple (QCheck.int_range 0 25) (QCheck.int_range 0 6) (QCheck.int_range 0 1000)

let make_graph (n, d, seed) = Gen.random_bounded_degree ~seed n d
let csr_of g = Csr.of_graph g ~colour:(Colouring.greedy g)

(* Both split modes the executors distinguish: the sequential path and
   a forced 4-way parallel split. *)
let domain_legs = [ (1, None); (4, Some 0) ]

(* ---- greedy maximal matching (Broadcast) ---- *)

let mm_matches_boxed =
  QCheck.Test.make ~count:50 ~name:"packed mm = Mm_ec.greedy (all domains)"
    graph_gen
    (fun input ->
      let ec = Colouring.ec_of_simple (make_graph input) in
      let oracle = Mm_ec.greedy ec in
      let expect =
        Array.map (function Some c -> c | None -> -1) oracle.Mm_ec.matched_colour
      in
      List.for_all
        (fun (domains, par_threshold) ->
          let r, _ = Packed_mm.greedy ?par_threshold ~domains ec in
          r.Packed_mm.matched_colour = expect
          && r.Packed_mm.rounds = oracle.Mm_ec.rounds)
        domain_legs)

(* ---- packing (Broadcast, exact rationals) ---- *)

let packing_greedy_matches_boxed =
  QCheck.Test.make ~count:50
    ~name:"packed greedy packing = Packing.greedy_by_colour" graph_gen
    (fun input ->
      let ec = Colouring.ec_of_simple (make_graph input) in
      let oracle = Packing.greedy_by_colour ec in
      List.for_all
        (fun (domains, par_threshold) ->
          let fm, _ = Packed_packing.greedy ?par_threshold ~domains ec in
          Fm.equal fm oracle)
        domain_legs)

let packing_greedy_truncated_matches_boxed =
  QCheck.Test.make ~count:50
    ~name:"packed greedy packing respects truncation"
    (QCheck.pair graph_gen (QCheck.int_range 0 8))
    (fun (input, truncate) ->
      let ec = Colouring.ec_of_simple (make_graph input) in
      let oracle = Packing.greedy_by_colour ~truncate ec in
      let fm, _ = Packed_packing.greedy ~truncate ec in
      Fm.equal fm oracle)

let packing_proposal_matches_boxed =
  QCheck.Test.make ~count:50 ~name:"packed proposal packing = Packing.proposal"
    graph_gen
    (fun input ->
      let ec = Colouring.ec_of_simple (make_graph input) in
      let oracle, _rounds = Packing.proposal ec in
      List.for_all
        (fun (domains, par_threshold) ->
          let fm, _ = Packed_packing.proposal ?par_threshold ~domains ec in
          Fm.equal fm oracle)
        domain_legs)

(* ---- Israeli–Itai (Port, shared coin stream) ---- *)

let ii_matches_twin =
  QCheck.Test.make ~count:50 ~name:"packed II = boxed twin (all domains)"
    graph_gen
    (fun input ->
      let g = make_graph input in
      let csr = csr_of g in
      let oracle = Packed_ii.reference_run ~seed:7 ~max_rounds:10_000 g in
      List.for_all
        (fun (domains, par_threshold) ->
          let r, _ =
            Packed_ii.run ?par_threshold ~domains ~seed:7 ~max_rounds:10_000
              csr
          in
          r.Packed_ii.mate = oracle.Packed_ii.mate
          && r.Packed_ii.rounds = oracle.Packed_ii.rounds
          && Packed_ii.is_maximal csr r)
        domain_legs)

(* ---- Panconesi–Rizzi (Port, deterministic) ---- *)

let pr_matches_boxed =
  QCheck.Test.make ~count:50
    ~name:"packed PR = Panconesi_rizzi.run (all domains)" graph_gen
    (fun input ->
      let g = make_graph input in
      let csr = csr_of g in
      let oracle = Pr.run (Id.trivial g) in
      let expect =
        Array.map (function Some w -> w | None -> -1) oracle.Pr.mate
      in
      List.for_all
        (fun (domains, par_threshold) ->
          let r, _ = Packed_pr.run ?par_threshold ~domains csr in
          r.Packed_pr.mate = expect
          && r.Packed_pr.rounds = oracle.Pr.rounds
          && r.Packed_pr.cv_iterations = oracle.Pr.cv_iterations)
        domain_legs)

(* ---- Davies–Peck schedule (Port, shared coin stream) ---- *)

let dp_matches_twin =
  QCheck.Test.make ~count:50
    ~name:"packed Davies-Peck = boxed twin, covers" graph_gen
    (fun input ->
      let g = make_graph input in
      let csr = csr_of g in
      let delta = Stdlib.max 1 (G.max_degree g) in
      let oracle =
        Davies_peck.reference_run ~seed:11 ~max_rounds:10_000 g ~delta
      in
      List.for_all
        (fun (domains, par_threshold) ->
          let r, _ =
            Davies_peck.run ?par_threshold ~domains ~seed:11
              ~max_rounds:10_000 csr
          in
          r.Davies_peck.mate = oracle.Davies_peck.mate
          && r.Davies_peck.rounds = oracle.Davies_peck.rounds
          && Davies_peck.is_vertex_cover csr r)
        domain_legs)

let () =
  Alcotest.run "packed"
    [
      ( "broadcast",
        [
          QCheck_alcotest.to_alcotest mm_matches_boxed;
          QCheck_alcotest.to_alcotest packing_greedy_matches_boxed;
          QCheck_alcotest.to_alcotest packing_greedy_truncated_matches_boxed;
          QCheck_alcotest.to_alcotest packing_proposal_matches_boxed;
        ] );
      ( "port",
        [
          QCheck_alcotest.to_alcotest ii_matches_twin;
          QCheck_alcotest.to_alcotest pr_matches_boxed;
          QCheck_alcotest.to_alcotest dp_matches_twin;
        ] );
    ]
