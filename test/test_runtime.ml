(* LOCAL runtime: anonymous runners (loop reflection, active-set
   executor vs dense reference oracle) and the ID simulator. *)

module Ec = Ld_models.Ec
module Po = Ld_models.Po
module Anon_ec = Ld_runtime.Anon_ec
module Anon_po = Ld_runtime.Anon_po
module Sync = Ld_runtime.Sync
module View = Ld_cover.View
module Lift = Ld_cover.Lift
module Gen = Ld_graph.Generators
module Labelled = Ld_models.Labelled

(* A full-information machine whose state after r rounds is (a hash of)
   the radius-r view: used to validate loop reflection against explicit
   lifts and view trees. *)
type probe = { seen : string }

let probe_machine : (probe, string) Anon_ec.machine =
  {
    init =
      (fun ~degree:_ ~colours ->
        { seen = String.concat "," (List.map string_of_int colours) });
    send = (fun s -> s.seen);
    recv =
      (fun s inbox ->
        {
          seen =
            s.seen ^ "|"
            ^ String.concat ";"
                (List.map
                   (fun (c, m) -> Printf.sprintf "%d<%s>" c m)
                   (Anon_ec.Inbox.to_list inbox));
        });
    halted = (fun _ -> false);
  }

let random_loopy ~seed n =
  let tree = Gen.random_tree ~seed n in
  let base = Ld_models.Edge_colouring.ec_of_simple tree in
  let next = Ec.max_colour base in
  Ec.create ~n
    ~edges:(List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
    ~loops:(List.init n (fun v -> (v, next + 1)))

let reflection_agrees_with_lift =
  QCheck.Test.make ~count:40
    ~name:"EC runner on multigraph = runner on 2-lift, fiberwise"
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy ~seed n in
      let cov = Lift.unfold_loop g ~loop_id:0 in
      let rounds = 3 in
      let base_states = Anon_ec.run probe_machine ~rounds g in
      let lift_states = Anon_ec.run probe_machine ~rounds cov.total in
      Array.for_all Fun.id
        (Array.mapi
           (fun v s -> s.seen = base_states.(cov.map.(v)).seen)
           lift_states))

let state_determined_by_view =
  QCheck.Test.make ~count:40
    ~name:"after r rounds, probe state = function of radius-(r+1) view"
    (QCheck.pair (QCheck.int_range 2 6) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = random_loopy ~seed n in
      let rounds = 2 in
      let states = Anon_ec.run probe_machine ~rounds g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let same_view =
            View.equal
              (View.of_ec g u ~radius:(rounds + 1))
              (View.of_ec g v ~radius:(rounds + 1))
          in
          if same_view && states.(u).seen <> states.(v).seen then ok := false
        done
      done;
      !ok)

let run_until_halts () =
  (* Nodes halt after seeing [degree] rounds. *)
  let machine : (int * int, unit) Anon_ec.machine =
    {
      init = (fun ~degree ~colours:_ -> (degree, 0));
      send = (fun _ -> ());
      recv = (fun (d, r) _ -> (d, r + 1));
      halted = (fun (d, r) -> r >= d);
    }
  in
  let g = Ld_models.Edge_colouring.ec_of_simple (Gen.star 4) in
  let _, rounds = Anon_ec.run_until machine ~max_rounds:100 g in
  Alcotest.(check int) "rounds = max degree" 4 rounds

(* ------------------------------------------------------------------ *)
(* Differential oracle: active-set executor vs dense reference.        *)

(* A family of halting machines with staggered, state-dependent halting
   times. The state mixes a rolling hash of everything the node reads
   (via both [fold] and [find], so both inbox paths are exercised), so
   any divergence in message plumbing, halting schedule or round count
   between the two executors surfaces as a state mismatch.
   [quota ~-1] never halts; [quota 0] is all-halted-at-round-0. *)
type diff_st = { h : int; r : int; quota : int }

let diff_quota ~quota_mod ~salt ~degree ~weight =
  if quota_mod < 0 then max_int
  else if quota_mod = 0 then 0
  else (degree + salt + weight) mod quota_mod

let diff_ec_machine ~salt ~quota_mod : (diff_st, int) Anon_ec.machine =
  {
    init =
      (fun ~degree ~colours ->
        let weight = List.fold_left ( + ) 0 colours in
        {
          h = (salt * 131) + (degree * 7) + weight;
          r = 0;
          quota = diff_quota ~quota_mod ~salt ~degree ~weight;
        });
    send = (fun s -> (s.h * 31) + s.r);
    recv =
      (fun s ib ->
        let h =
          Anon_ec.Inbox.fold
            (fun acc ~colour m -> (acc * 1000003) lxor (colour * 7919) lxor m)
            s.h ib
        in
        let h =
          match Anon_ec.Inbox.find ib ~colour:(1 + (s.r mod 5)) with
          | None -> h
          | Some m -> (h * 31) lxor m
        in
        { s with h; r = s.r + 1 });
    halted = (fun s -> s.r >= s.quota);
  }

let diff_po_machine ~salt ~quota_mod : (diff_st, int) Anon_po.machine =
  {
    init =
      (fun ~darts ->
        let degree = List.length darts in
        let weight =
          List.fold_left
            (fun acc (k : Anon_po.dart_key) ->
              acc + (2 * k.colour) + if k.out then 1 else 0)
            0 darts
        in
        {
          h = (salt * 131) + (degree * 7) + weight;
          r = 0;
          quota = diff_quota ~quota_mod ~salt ~degree ~weight;
        });
    send = (fun s -> (s.h * 31) + s.r);
    recv =
      (fun s ib ->
        let h =
          Anon_po.Inbox.fold
            (fun acc ~key m ->
              (acc * 1000003)
              lxor ((key.colour * 7919) + if key.out then 1 else 0)
              lxor m)
            s.h ib
        in
        let h =
          match
            Anon_po.Inbox.find ib
              ~key:{ out = s.r mod 2 = 0; colour = 1 + (s.r mod 5) }
          with
          | None -> h
          | Some m -> (h * 31) lxor m
        in
        { s with h; r = s.r + 1 });
    halted = (fun s -> s.r >= s.quota);
  }

(* quota_mod sweeps never-halts (-1), halt-at-init (0) and staggered
   halting (1..5); max_rounds 12 keeps never-halts runs bounded. *)
let diff_params =
  QCheck.triple
    (QCheck.pair (QCheck.int_range 1 9) (QCheck.int_range 0 999))
    (QCheck.int_range (-1) 5)
    (QCheck.int_range 0 63)

let check_ec (n, seed) quota_mod salt =
  let g = random_loopy ~seed n in
  let m = diff_ec_machine ~salt ~quota_mod in
  let max_rounds = 12 in
  let act, ra = Anon_ec.run_until m ~max_rounds g in
  let ref_, rr = Anon_ec.run_until ~reference:true m ~max_rounds g in
  let par, rp =
    Anon_ec.run_until ~par_threshold:0 ~domains:4 m ~max_rounds g
  in
  ra = rr && rp = rr && act = ref_ && par = ref_
  && Anon_ec.run m ~rounds:5 g = Anon_ec.run ~reference:true m ~rounds:5 g

let ec_active_equals_reference =
  QCheck.Test.make ~count:60
    ~name:"EC active-set executor = dense reference (states and rounds)"
    diff_params
    (fun (gp, quota_mod, salt) -> check_ec gp quota_mod salt)

let check_po (n, seed) quota_mod salt =
  let g = Po.of_ec (random_loopy ~seed n) in
  let m = diff_po_machine ~salt ~quota_mod in
  let max_rounds = 12 in
  let act, ra = Anon_po.run_until m ~max_rounds g in
  let ref_, rr = Anon_po.run_until ~reference:true m ~max_rounds g in
  let par, rp =
    Anon_po.run_until ~par_threshold:0 ~domains:4 m ~max_rounds g
  in
  ra = rr && rp = rr && act = ref_ && par = ref_
  && Anon_po.run m ~rounds:5 g = Anon_po.run ~reference:true m ~rounds:5 g

let po_active_equals_reference =
  QCheck.Test.make ~count:60
    ~name:"PO active-set executor = dense reference (states and rounds)"
    diff_params
    (fun (gp, quota_mod, salt) -> check_po gp quota_mod salt)

let ec_edge_cases () =
  let g = random_loopy ~seed:7 6 in
  (* All halted at round 0: no rounds run, states are the initial ones. *)
  let m0 = diff_ec_machine ~salt:3 ~quota_mod:0 in
  let s, r = Anon_ec.run_until m0 ~max_rounds:10 g in
  Alcotest.(check int) "halt-at-init rounds" 0 r;
  let s_ref, r_ref = Anon_ec.run_until ~reference:true m0 ~max_rounds:10 g in
  Alcotest.(check int) "halt-at-init rounds (reference)" 0 r_ref;
  Alcotest.(check bool) "halt-at-init states" true (s = s_ref);
  (* Never halts: both executors run to the round limit. *)
  let mn = diff_ec_machine ~salt:3 ~quota_mod:(-1) in
  let _, r = Anon_ec.run_until mn ~max_rounds:10 g in
  let _, r_ref = Anon_ec.run_until ~reference:true mn ~max_rounds:10 g in
  Alcotest.(check int) "never-halts rounds" 10 r;
  Alcotest.(check int) "never-halts rounds (reference)" 10 r_ref

(* ------------------------------------------------------------------ *)

(* PO probe: also checks that out/in darts are distinguished. *)
type po_probe = { po_seen : string }

let po_probe_machine : (po_probe, string) Anon_po.machine =
  {
    init =
      (fun ~darts ->
        {
          po_seen =
            String.concat ","
              (List.map
                 (fun (k : Anon_po.dart_key) ->
                   Printf.sprintf "%s%d" (if k.out then "+" else "-") k.colour)
                 darts);
        });
    send = (fun s -> s.po_seen);
    recv =
      (fun s inbox ->
        {
          po_seen =
            s.po_seen ^ "|"
            ^ String.concat ";"
                (List.map
                   (fun ((k : Anon_po.dart_key), m) ->
                     Printf.sprintf "%s%d<%s>" (if k.out then "+" else "-")
                       k.colour m)
                   (Anon_po.Inbox.to_list inbox));
        });
    halted = (fun _ -> false);
  }

let po_loop_reflection () =
  (* A single node with one directed loop is covered by any directed
     cycle with all arcs the same colour: states must match. *)
  let base = Po.create ~n:1 ~arcs:[] ~loops:[ (0, 1) ] in
  let cycle =
    Po.create ~n:3 ~arcs:[ (0, 1, 1); (1, 2, 1); (2, 0, 1) ] ~loops:[]
  in
  let sb = Anon_po.run po_probe_machine ~rounds:3 base in
  let sc = Anon_po.run po_probe_machine ~rounds:3 cycle in
  Array.iter
    (fun (s : po_probe) ->
      Alcotest.(check string) "cycle node = loop node" sb.(0).po_seen s.po_seen)
    sc

let po_reflection_agrees_with_lift =
  QCheck.Test.make ~count:40
    ~name:"PO runner on multigraph = runner on EC-doubled lift, fiberwise"
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      (* Build a loopy EC graph; its PO version has directed loops. The
         EC 2-lift's PO version covers it, with the same fiber map. *)
      let g = random_loopy ~seed n in
      let cov = Ld_cover.Lift.unfold_loop g ~loop_id:0 in
      let po_base = Po.of_ec g in
      let po_total = Po.of_ec cov.total in
      let rounds = 3 in
      let base_states = Anon_po.run po_probe_machine ~rounds po_base in
      let lift_states = Anon_po.run po_probe_machine ~rounds po_total in
      Array.for_all Fun.id
        (Array.mapi
           (fun v (s : po_probe) -> s.po_seen = base_states.(cov.map.(v)).po_seen)
           lift_states))

let po_orientation_matters () =
  (* A 2-cycle (0->1, 1->0) of colour 1 versus a single undirected-ish
     pair using distinct arcs: from a node's perspective, out and in
     darts differ, so the directed path (0->1) gives different states at
     its two endpoints. *)
  let p = Po.create ~n:2 ~arcs:[ (0, 1, 1) ] ~loops:[] in
  let s = Anon_po.run po_probe_machine ~rounds:2 p in
  Alcotest.(check bool) "tail and head differ" true (s.(0).po_seen <> s.(1).po_seen)

(* ID simulator: flood the minimum identifier; check rounds = eccentricity. *)
type flood = { my_min : int; deg : int; halt_at : int; round : int }

let flood_machine : (flood, int, int) Sync.machine =
  {
    init =
      (fun ~id ~degree ~rng:_ ->
        { my_min = id; deg = degree; halt_at = max_int; round = 0 });
    send = (fun s ~port:_ -> Some s.my_min);
    recv =
      (fun s inbox ->
        let m = List.fold_left (fun acc (_, v) -> min acc v) s.my_min inbox in
        { s with my_min = m; round = s.round + 1 });
    output = (fun s -> if s.round >= s.halt_at then Some s.my_min else None);
  }

let flood_min () =
  let g = Gen.path 6 in
  let id = Labelled.Id.create g [| 12; 4; 9; 3; 40; 7 |] in
  let machine = { flood_machine with output = (fun s -> if s.round >= 5 then Some s.my_min else None) } in
  let res = Sync.run machine ~seed:0 ~max_rounds:50 id in
  Array.iter (fun o -> Alcotest.(check int) "all learn min" 3 o) res.outputs;
  Alcotest.(check int) "rounds" 5 res.rounds

let sync_staggered_halting () =
  (* Nodes halt at different rounds (their own id), so late rounds see
     a shrinking active frontier whose halted senders must keep
     "sending" their frozen message. Each node floods the minimum it has
     seen; node with halt_at=k only aggregates for k rounds. *)
  let g = Gen.path 5 in
  let id = Labelled.Id.create g [| 5; 1; 4; 2; 3 |] in
  let machine =
    {
      flood_machine with
      init =
        (fun ~id ~degree ~rng:_ ->
          { my_min = id; deg = degree; halt_at = id; round = 0 });
    }
  in
  let res = Sync.run machine ~seed:0 ~max_rounds:50 id in
  (* The id-1 node halts after round 1 with the global min; the min then
     travels through nodes that freeze along the way (node 3 freezes at
     round 2 holding 1, and node 4 reads that frozen message in round
     3), so every node outputs 1 — which only works if halted senders
     keep delivering their frozen state's message. *)
  Alcotest.(check int) "rounds = max halt_at" 5 res.rounds;
  Alcotest.(check (list int)) "outputs"
    [ 1; 1; 1; 1; 1 ]
    (Array.to_list res.outputs)

let sync_reports_nonhalting () =
  let g = Gen.path 2 in
  let id = Labelled.Id.trivial g in
  let never = { flood_machine with output = (fun _ -> None) } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sync.run never ~seed:0 ~max_rounds:3 id);
       false
     with Failure _ -> true)

let () =
  Alcotest.run "runtime"
    [
      ( "anon_ec",
        [
          QCheck_alcotest.to_alcotest reflection_agrees_with_lift;
          QCheck_alcotest.to_alcotest state_determined_by_view;
          Alcotest.test_case "run_until" `Quick run_until_halts;
          QCheck_alcotest.to_alcotest ec_active_equals_reference;
          Alcotest.test_case "differential edge cases" `Quick ec_edge_cases;
        ] );
      ( "anon_po",
        [
          Alcotest.test_case "loop reflection" `Quick po_loop_reflection;
          QCheck_alcotest.to_alcotest po_reflection_agrees_with_lift;
          Alcotest.test_case "orientation" `Quick po_orientation_matters;
          QCheck_alcotest.to_alcotest po_active_equals_reference;
        ] );
      ( "sync",
        [
          Alcotest.test_case "flood min" `Quick flood_min;
          Alcotest.test_case "staggered halting" `Quick sync_staggered_halting;
          Alcotest.test_case "non-halting detected" `Quick sync_reports_nonhalting;
        ] );
    ]
