(* Section 5: the simulation chain EC ⇐ PO ⇐ OI, Ramsey (§5.4) and
   derandomisation (Appendix B). *)

module Sim = Ld_core.Simulate
module Theorem = Ld_core.Theorem
module LB = Ld_core.Lower_bound
module Ramsey = Ld_core.Ramsey
module Derand = Ld_core.Derand
module Po_packing = Ld_matching.Po_packing
module Packing = Ld_matching.Packing
module Po_fm = Ld_fm.Po_fm
module Fm = Ld_fm.Fm
module Po = Ld_models.Po
module Ec = Ld_models.Ec
module View_po = Ld_cover.View_po
module Gen = Ld_graph.Generators
module Q = Ld_arith.Q

let loopy_po ~seed n =
  let tree = Gen.random_tree ~seed n in
  let base = Ld_models.Edge_colouring.ec_of_simple tree in
  let next = Ec.max_colour base in
  let ec =
    Ec.create ~n
      ~edges:(List.map (fun (e : Ec.edge) -> (e.u, e.v, e.colour)) (Ec.edges base))
      ~loops:(List.init n (fun v -> (v, next + 1)))
  in
  Po.of_ec ec

(* ---- EC ⇐ PO (§5.1) ---- *)

let ec_of_po_maximal =
  QCheck.Test.make ~count:40 ~name:"EC⇐PO: simulated PO proposal solves maximal FM"
    (QCheck.triple (QCheck.int_range 2 14) (QCheck.int_range 1 4)
       (QCheck.int_range 0 999))
    (fun (n, d, seed) ->
      let ec =
        Ld_models.Edge_colouring.ec_of_simple
          (Gen.random_bounded_degree ~seed n d)
      in
      let algo = Sim.ec_of_po Po_packing.proposal_algorithm in
      Fm.is_maximal_fm (algo.run ec))

let ec_of_po_node_weights =
  QCheck.Test.make ~count:30
    ~name:"EC⇐PO: node weights transfer exactly (arcs sum per edge)"
    (QCheck.pair (QCheck.int_range 2 10) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let ec =
        Ld_models.Edge_colouring.ec_of_simple (Gen.random_bounded_degree ~seed n 3)
      in
      let po = Po.of_ec ec in
      let y_po, _ = Po_packing.proposal po in
      let y_ec = (Sim.ec_of_po Po_packing.proposal_algorithm).run ec in
      List.for_all
        (fun v -> Q.equal (Fm.node_weight y_ec v) (Po_fm.node_weight y_po v))
        (List.init (Ec.n ec) Fun.id))

let theorem_against_po () =
  match Theorem.against_po ~delta:5 Po_packing.proposal_algorithm with
  | LB.Certified certs -> Alcotest.(check int) "levels" 4 (List.length certs)
  | LB.Refuted (_, f) ->
    Alcotest.failf "unexpected refutation: %s" f.LB.fail_note

(* ---- PO ⇐ OI (§5.3) ---- *)

let simulated_proposal_exact =
  QCheck.Test.make ~count:15
    ~name:"PO⇐OI: simulating the proposal rule = direct truncated run"
    (QCheck.triple (QCheck.int_range 2 7) (QCheck.int_range 0 3)
       (QCheck.int_range 0 999))
    (fun (n, rounds, seed) ->
      let g = loopy_po ~seed n in
      let direct, _ = Po_packing.proposal ~truncate:rounds g in
      let simulated = (Sim.po_of_oi (Sim.proposal_rule ~rounds)).run g in
      Po_fm.equal direct simulated)

let rank_rule_feasible_and_lift_invariant =
  QCheck.Test.make ~count:20
    ~name:"PO⇐OI: the rank-weighted OI rule is feasible and consistent on loopy graphs"
    (QCheck.pair (QCheck.int_range 1 7) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      (* Consistency (endpoint agreement and equal loop-dart answers) is
         asserted inside po_of_oi — reaching a feasible result means the
         homogeneous order made the rule's answers agree. *)
      let g = loopy_po ~seed n in
      Po_fm.is_fm ((Sim.po_of_oi Sim.rank_weighted_rule).run g))

let ordered_view_ranks_are_permutation =
  QCheck.Test.make ~count:30 ~name:"ordered views carry a permutation rank"
    (QCheck.pair (QCheck.int_range 2 6) (QCheck.int_range 0 999))
    (fun (n, seed) ->
      let g = loopy_po ~seed n in
      let ov = Sim.ordered_view g (seed mod n) ~radius:2 in
      let sorted = List.sort Int.compare (Array.to_list ov.ov_rank) in
      List.equal Int.equal sorted (List.init (Po.n ov.ov_graph) Fun.id))

let view_po_matches_po_structure () =
  (* A directed loop unfolds through both darts. *)
  let g = Po.create ~n:1 ~arcs:[] ~loops:[ (0, 1) ] in
  let v = View_po.of_po g 0 ~radius:2 in
  Alcotest.(check int) "two branches at root" 2 (List.length v.View_po.branches);
  Alcotest.(check int) "size" 5 (View_po.size v);
  (* Against the 3-cycle lift: views agree. *)
  let c3 = Po.create ~n:3 ~arcs:[ (0, 1, 1); (1, 2, 1); (2, 0, 1) ] ~loops:[] in
  Alcotest.(check bool) "lift view equal" true
    (View_po.equal (View_po.of_po c3 0 ~radius:2) v)

let oi_rule_refuted () =
  (* A small-radius OI rule cannot be correct: the adversary finds the
     witness through both simulation layers. *)
  match Theorem.against_oi ~delta:4 (Sim.proposal_rule ~rounds:2) with
  | LB.Certified _ -> Alcotest.fail "a 2-round OI rule cannot be certified"
  | LB.Refuted (_, f) ->
    Alcotest.(check bool) "violations recorded" true (f.LB.fail_violations <> [])

(* ---- Ramsey (§5.4) ---- *)

let ramsey_finds_parity_class () =
  (* An indicator that depends on identifier parities becomes constant
     (order-invariant) on a single-parity identifier set. *)
  let indicator ids =
    [|
      ids.(0) mod 2 = 0; ids.(1) mod 2 = 0; (ids.(0) + ids.(2)) mod 2 = 0;
    |]
  in
  match
    Ramsey.order_invariant_identifiers
      ~universe:(List.init 20 Fun.id)
      ~nodes:3 ~indicator ~size:6
  with
  | None -> Alcotest.fail "no monochromatic identifier set found"
  | Some ids ->
    Alcotest.(check int) "size" 6 (List.length ids);
    let patterns =
      List.map
        (fun t -> indicator (Array.of_list t))
        (List.filteri (fun i _ -> i < 10)
           (List.concat_map
              (fun a ->
                List.concat_map
                  (fun b ->
                    List.filter_map
                      (fun c -> if a < b && b < c then Some [ a; b; c ] else None)
                      ids)
                  ids)
              ids))
    in
    match patterns with
    | [] -> Alcotest.fail "no tuples"
    | p :: rest -> List.iter (fun q -> Alcotest.(check bool) "constant" true (p = q)) rest

let ramsey_no_subset_when_impossible () =
  (* A colouring injective on tuples admits no monochromatic pair set. *)
  let colour t = List.fold_left (fun acc x -> (acc * 100) + x) 0 t in
  Alcotest.(check bool) "none" true
    (Ramsey.monochromatic_subset ~universe:(List.init 8 Fun.id) ~arity:2 ~colour
       ~size:3
    = None)

let sparsify_spacing () =
  let j = Ramsey.sparsify ~gap:2 (List.init 10 Fun.id) in
  Alcotest.(check (list int)) "every third" [ 0; 3; 6; 9 ] j

let relabelling_stability () =
  (* Order-invariant run: stable. Value-dependent run: not. *)
  Alcotest.(check bool) "order-invariant stable" true
    (Ramsey.relabelling_stable ~ids:[ 3; 7; 20; 41 ] ~nodes:2
       ~run:(fun ids -> ids.(0) < ids.(1))
       ~equal:( = ));
  Alcotest.(check bool) "parity-dependent unstable" false
    (Ramsey.relabelling_stable ~ids:[ 3; 4; 7; 10 ] ~nodes:2
       ~run:(fun ids -> (ids.(0) + ids.(1)) mod 2)
       ~equal:( = ))

(* ---- Derandomisation (Appendix B) ---- *)

let ii_correct idg ~seed =
  try
    let r = Ld_matching.Israeli_itai.run ~seed ~max_rounds:12 idg in
    Ld_matching.Israeli_itai.is_maximal (Ld_models.Labelled.Id.graph idg) r
  with Failure _ -> false

let derand_enumerates_graphs () =
  Alcotest.(check int) "graphs over 3 ids" 17
    (List.length (Derand.all_id_graphs [ 1; 2; 3 ]));
  Alcotest.(check int) "graphs over 4 ids" 112
    (List.length (Derand.all_id_graphs [ 1; 2; 3; 4 ]))

let derand_finds_rho () =
  match
    Derand.find_seed ~ids:[ 2; 5; 11; 17 ] ~seeds:(List.init 200 Fun.id)
      ~correct:ii_correct
  with
  | None -> Alcotest.fail "Lemma 10 search failed"
  | Some (seed, _) ->
    (* Re-verify the winning assignment independently. *)
    List.iter
      (fun idg -> Alcotest.(check bool) "correct" true (ii_correct idg ~seed))
      (Derand.all_id_graphs [ 2; 5; 11; 17 ])

let () =
  Alcotest.run "simulate"
    [
      ( "ec-of-po",
        [
          QCheck_alcotest.to_alcotest ec_of_po_maximal;
          QCheck_alcotest.to_alcotest ec_of_po_node_weights;
          Alcotest.test_case "theorem vs PO proposal" `Quick theorem_against_po;
        ] );
      ( "po-of-oi",
        [
          QCheck_alcotest.to_alcotest simulated_proposal_exact;
          QCheck_alcotest.to_alcotest rank_rule_feasible_and_lift_invariant;
          QCheck_alcotest.to_alcotest ordered_view_ranks_are_permutation;
          Alcotest.test_case "po view trees" `Quick view_po_matches_po_structure;
          Alcotest.test_case "small OI rule refuted" `Quick oi_rule_refuted;
        ] );
      ( "ramsey",
        [
          Alcotest.test_case "parity class found" `Quick ramsey_finds_parity_class;
          Alcotest.test_case "impossible detected" `Quick ramsey_no_subset_when_impossible;
          Alcotest.test_case "sparsify" `Quick sparsify_spacing;
          Alcotest.test_case "relabelling stability" `Quick relabelling_stability;
        ] );
      ( "derand",
        [
          Alcotest.test_case "graph enumeration" `Quick derand_enumerates_graphs;
          Alcotest.test_case "Lemma 10 search" `Quick derand_finds_rho;
        ] );
    ]
