(* Ld_store + Cache_store: the persistent certificate store.

   - frame round-trip and corruption detection: any single-byte flip in
     a record file surfaces as [Store_corrupt], never as a silent wrong
     payload and never as a crash;
   - entry codec round-trip: decode-then-re-encode is byte-identical,
     truncation at every prefix raises [Failure];
   - warm restart: a cache reloaded from the store re-serialises
     byte-for-byte like the cold one, and its analytic frontier
     verdicts agree at every truncation;
   - put races: concurrent putters of one content-addressed key leave
     exactly one valid record;
   - self-healing: [Cache_store.build_cache] over a corrupted store
     recomputes and republishes clean records. *)

module Store = Ld_store.Store
module Cache_store = Ld_core.Cache_store
module Certificate_io = Ld_core.Certificate_io
module LB = Ld_core.Lower_bound
module Packing = Ld_matching.Packing

(* Each test gets a fresh directory under the build sandbox. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ld-store-test.%d.%d" (Unix.getpid ()) !n)
    in
    dir

let with_store f =
  let dir = fresh_dir () in
  let store = Store.open_store ~dir () in
  f store

let record_path store ~key =
  Filename.concat
    (Filename.concat
       (Filename.concat (Store.dir store) "objects")
       (String.sub (Store.digest_hex key) 0 2))
    (Store.digest_hex key)

let read_file path =
  In_channel.with_open_bin path (fun ic ->
      really_input_string ic (In_channel.length ic |> Int64.to_int))

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ------------------------------------------------------------------ *)
(* Basic store behaviour. *)

let put_get_roundtrip () =
  with_store @@ fun store ->
  Alcotest.(check (option string)) "miss" None (Store.get store ~key:"k");
  Alcotest.(check bool) "mem miss" false (Store.mem store ~key:"k");
  Store.put store ~key:"k" "payload";
  Alcotest.(check (option string))
    "hit" (Some "payload") (Store.get store ~key:"k");
  Alcotest.(check bool) "mem hit" true (Store.mem store ~key:"k");
  (* Re-put of the identical payload is a no-op, not an error. *)
  Store.put store ~key:"k" "payload";
  (* The advisory index dedupes to one entry. *)
  Alcotest.(check int) "index entries" 1 (List.length (Store.entries store));
  Store.delete store ~key:"k";
  Alcotest.(check (option string)) "deleted" None (Store.get store ~key:"k")

let put_conflicting_payload_is_corrupt () =
  with_store @@ fun store ->
  Store.put store ~key:"k" "one";
  Alcotest.check_raises "non-content-addressed re-put"
    (Store.Store_corrupt
       (record_path store ~key:"k"
       ^ ": existing valid record differs from re-put payload (key is not \
          content-addressed)"))
    (fun () -> Store.put store ~key:"k" "two")

(* Any single-byte flip anywhere in the record file must surface as
   [Store_corrupt] — never a silently different payload, never an
   out-of-bounds crash. *)
let corruption_single_byte_flip =
  QCheck.Test.make ~count:60 ~name:"byte flip => Store_corrupt"
    (QCheck.pair QCheck.small_printable_string QCheck.small_nat)
    (fun (payload, flip_seed) ->
      with_store @@ fun store ->
      Store.put store ~key:"k" payload;
      let path = record_path store ~key:"k" in
      let raw = read_file path in
      let pos = flip_seed mod String.length raw in
      let b = Bytes.of_string raw in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x41));
      write_file path (Bytes.to_string b);
      match Store.get store ~key:"k" with
      | Some _ -> false (* corrupted record must never read as a hit *)
      | None -> false (* ... and must not read as a clean miss either *)
      | exception Store.Store_corrupt _ -> true)

let truncation_is_corrupt () =
  with_store @@ fun store ->
  Store.put store ~key:"k" "some payload long enough to truncate";
  let path = record_path store ~key:"k" in
  let raw = read_file path in
  List.iter
    (fun keep ->
      write_file path (String.sub raw 0 keep);
      match Store.get store ~key:"k" with
      | Some _ | None -> Alcotest.fail "truncated record did not raise"
      | exception Store.Store_corrupt _ -> ())
    [ 0; 3; Store.payload_offset - 1; Store.payload_offset + 4 ]

(* ------------------------------------------------------------------ *)
(* Entry codec. *)

let cold_cache delta = LB.build_cache ~delta Packing.greedy_algorithm

let entries_of_cache cache =
  match LB.cache_outcome cache with
  | LB.Refuted _ -> Alcotest.fail "greedy unexpectedly refuted"
  | LB.Certified certs ->
    List.map
      (fun (c : LB.certificate) ->
        {
          Cache_store.entry_level = c.level;
          entry_certificate = c;
          entry_probes =
            List.filter
              (fun (p : LB.probe) -> p.probe_level = c.level)
              (LB.cache_probes cache);
        })
      certs

let codec_reencode_is_identity () =
  let cache = cold_cache 5 in
  List.iter
    (fun entry ->
      let s = Cache_store.entry_to_string entry in
      let s' = Cache_store.entry_to_string (Cache_store.entry_of_string s) in
      Alcotest.(check string)
        (Printf.sprintf "level %d re-encode" entry.Cache_store.entry_level)
        s s')
    (entries_of_cache cache)

(* Every strict prefix of a valid entry must fail to decode — cleanly. *)
let codec_truncation_fails =
  QCheck.Test.make ~count:80 ~name:"entry prefix => Failure"
    (QCheck.float_range 0.0 1.0)
    (fun frac ->
      let s = Cache_store.entry_to_string (List.hd (entries_of_cache (cold_cache 3))) in
      let keep = int_of_float (frac *. float_of_int (String.length s - 1)) in
      match Cache_store.entry_of_string (String.sub s 0 keep) with
      | _ -> false
      | exception Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Warm restart. *)

let warm_equals_cold_bytes =
  QCheck.Test.make ~count:4 ~name:"warm cache re-serialises byte-identically"
    (QCheck.int_range 3 6)
    (fun delta ->
      with_store @@ fun store ->
      let cold = cold_cache delta in
      assert (Cache_store.save_cache store cold);
      match
        Cache_store.load_cache store ~check_views:true ~delta
          ~algo_name:Packing.greedy_algorithm.Packing.name
      with
      | None -> false
      | Some warm ->
        let ser cache =
          String.concat "" (List.map Cache_store.entry_to_string (entries_of_cache cache))
        in
        String.equal (ser cold) (ser warm))

let warm_equals_cold_verdicts () =
  with_store @@ fun store ->
  let delta = 6 in
  let cold = cold_cache delta in
  Alcotest.(check bool) "saved" true (Cache_store.save_cache store cold);
  let warm =
    Cache_store.build_cache ~store ~delta Packing.greedy_algorithm
  in
  (* The warm path is [assemble_cache], not a re-run: same delta, same
     probe stream, and the analytic frontier agrees at every truncation. *)
  Alcotest.(check int) "delta" (LB.cache_delta cold) (LB.cache_delta warm);
  Alcotest.(check int)
    "probe count"
    (List.length (LB.cache_probes cold))
    (List.length (LB.cache_probes warm));
  for rounds = 0 to (2 * delta) + 2 do
    let v cache =
      match LB.truncated_verdict cache ~rounds with
      | `Certified -> true
      | `Refuted -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "verdict at r=%d" rounds)
      (v cold) (v warm)
  done;
  (* And the records it consulted really came from the store. *)
  Alcotest.(check int)
    "level records" (delta - 1)
    (List.length (Store.entries store))

let build_cache_self_heals () =
  with_store @@ fun store ->
  let delta = 4 in
  let cold = cold_cache delta in
  Alcotest.(check bool) "saved" true (Cache_store.save_cache store cold);
  (* Garble one level record on disk (keep the file length so only the
     checksum can notice). *)
  let key =
    Cache_store.key ~delta ~level:1
      ~algo:Packing.greedy_algorithm.Packing.name ~check_views:true
  in
  let path = record_path store ~key in
  let raw = read_file path in
  let b = Bytes.of_string raw in
  Bytes.set b (String.length raw - 1)
    (Char.chr (Char.code (Bytes.get b (String.length raw - 1)) lxor 0xFF));
  write_file path (Bytes.to_string b);
  (* load_cache surfaces the corruption... *)
  (match
     Cache_store.load_cache store ~check_views:true ~delta
       ~algo_name:Packing.greedy_algorithm.Packing.name
   with
  | Some _ | None -> Alcotest.fail "corrupt record did not raise"
  | exception Store.Store_corrupt _ -> ());
  (* ...and build_cache self-heals: recompute, republish, same verdicts. *)
  let healed = Cache_store.build_cache ~store ~delta Packing.greedy_algorithm in
  for rounds = 0 to (2 * delta) + 2 do
    let v cache =
      match LB.truncated_verdict cache ~rounds with
      | `Certified -> true
      | `Refuted -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "healed verdict r=%d" rounds)
      (v cold) (v healed)
  done;
  match
    Cache_store.load_cache store ~check_views:true ~delta
      ~algo_name:Packing.greedy_algorithm.Packing.name
  with
  | Some _ -> ()
  | None -> Alcotest.fail "store not repopulated after self-heal"

(* ------------------------------------------------------------------ *)
(* Concurrency: racing putters of one content-addressed key. *)

let racing_puts_leave_one_valid_record () =
  with_store @@ fun store ->
  let payload = String.concat "-" (List.init 200 string_of_int) in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              Store.put store ~key:"raced" payload
            done))
  in
  List.iter Domain.join workers;
  (* Exactly one valid record with the agreed bytes — every racer wrote
     a byte-identical frame and rename is atomic, so no interleaving
     can leave a torn or divergent object. *)
  Alcotest.(check (option string))
    "one valid record" (Some payload)
    (Store.get store ~key:"raced");
  let objects = Sys.readdir (Filename.dirname (record_path store ~key:"raced")) in
  Alcotest.(check int) "one object file" 1 (Array.length objects);
  (* No staging litter left behind. *)
  Alcotest.(check int)
    "tmp dir empty" 0
    (Array.length (Sys.readdir (Filename.concat (Store.dir store) "tmp")))

let () =
  Alcotest.run "store"
    [
      ( "store",
        [
          Alcotest.test_case "put/get/delete round-trip" `Quick
            put_get_roundtrip;
          Alcotest.test_case "conflicting re-put is corrupt" `Quick
            put_conflicting_payload_is_corrupt;
          QCheck_alcotest.to_alcotest corruption_single_byte_flip;
          Alcotest.test_case "truncated records are corrupt" `Quick
            truncation_is_corrupt;
        ] );
      ( "codec",
        [
          Alcotest.test_case "re-encode is identity" `Quick
            codec_reencode_is_identity;
          QCheck_alcotest.to_alcotest codec_truncation_fails;
        ] );
      ( "warm restart",
        [
          QCheck_alcotest.to_alcotest warm_equals_cold_bytes;
          Alcotest.test_case "warm verdicts = cold verdicts" `Quick
            warm_equals_cold_verdicts;
          Alcotest.test_case "build_cache self-heals corruption" `Quick
            build_cache_self_heals;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "racing puts leave one valid record" `Quick
            racing_puts_leave_one_valid_record;
        ] );
    ]
